//! Property-based tests over the core invariants, spanning crates.

use olive_core::aggregation::grouped::aggregate_grouped_with_threads;
use olive_core::aggregation::{
    aggregate, aggregate_with_threads, reference_average, Aggregator, AggregatorKind,
    StreamingAggregator,
};
use olive_fl::SparseGradient;
use olive_memsim::{trace_of, Granularity, NullTracer, RecordingTracer, TrackedBuf};
use olive_oblivious::sort::bitonic_sort_by_key;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a set of sparse updates sharing dimension `d`, arbitrary
/// (possibly colliding, unsorted-source) indices and finite values.
fn updates_strategy(max_n: usize, d: usize) -> impl Strategy<Value = Vec<SparseGradient>> {
    vec(
        vec((0..d as u32, -100.0f32..100.0), 1..=16).prop_map(move |cells| {
            let mut idxs: Vec<u32> = cells.iter().map(|(i, _)| *i).collect();
            idxs.sort_unstable();
            idxs.dedup();
            let values =
                idxs.iter().map(|i| cells.iter().find(|(j, _)| j == i).unwrap().1).collect();
            SparseGradient { dense_dim: d, indices: idxs, values }
        }),
        1..=max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every aggregation algorithm equals the dense reference sum on
    /// arbitrary inputs (duplicates across clients included).
    #[test]
    fn aggregators_match_reference(updates in updates_strategy(6, 48)) {
        let d = 48;
        let expected = reference_average(&updates, d);
        for kind in [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
        ] {
            let got = aggregate(kind, &updates, d, &mut NullTracer);
            for (i, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
                prop_assert!((a - b).abs() < 1e-3,
                    "{kind:?} coordinate {i}: {a} vs {b}");
            }
        }
    }

    /// Advanced's trace is a pure function of the input shape: derive a
    /// second input of identical shape (same n, same per-client k) but
    /// different indices/values and require identical traces.
    #[test]
    fn advanced_trace_depends_only_on_shape(
        a in updates_strategy(4, 32),
        shift in 1u32..31,
    ) {
        let d = 32u32;
        let b: Vec<SparseGradient> = a
            .iter()
            .map(|u| {
                // Modular index shift preserves distinctness and count.
                let mut indices: Vec<u32> =
                    u.indices.iter().map(|i| (i + shift) % d).collect();
                indices.sort_unstable();
                let values = u.values.iter().map(|v| v * -0.5 + 1.0).collect();
                SparseGradient { dense_dim: u.dense_dim, indices, values }
            })
            .collect();
        let ta = trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::Advanced, &a, 32, tr);
        });
        let tb = trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::Advanced, &b, 32, tr);
        });
        prop_assert_eq!(ta, tb);
    }

    /// The thread-aware tracer contract, end to end: for any input and
    /// group size, the parallel grouped aggregation (a) returns bitwise
    /// the serial output and (b) records the serial trace as a multiset
    /// (events reorder across groups but none appear or vanish), for
    /// worker counts 1, 2 and 8.
    #[test]
    fn grouped_parallel_matches_serial_trace_multiset_and_output(
        updates in updates_strategy(8, 48),
        h in 1usize..5,
    ) {
        let d = 48;
        let run = |threads: usize| {
            let mut tr = RecordingTracer::with_events(Granularity::Element);
            let out = aggregate_grouped_with_threads(&updates, d, h, threads, &mut tr);
            let mut ev: Vec<(u32, u64, bool)> = tr
                .events()
                .unwrap()
                .iter()
                .map(|a| (a.region, a.offset, a.op == olive_memsim::Op::Write))
                .collect();
            ev.sort_unstable();
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            (bits, ev)
        };
        let (serial_out, serial_ev) = run(1);
        for threads in [2usize, 8] {
            let (out, ev) = run(threads);
            prop_assert_eq!(&out, &serial_out, "output drifted at threads={}", threads);
            prop_assert_eq!(&ev, &serial_ev, "trace multiset drifted at threads={}", threads);
        }
    }

    /// The streaming contract as a property: for arbitrary inputs and an
    /// arbitrary chunk size, driving the Aggregator trait chunk-by-chunk
    /// reproduces the one-shot output bits and trace digest for every
    /// aggregator kind — chunk boundaries never change the result.
    #[test]
    fn chunk_boundaries_never_change_the_result(
        updates in updates_strategy(8, 32),
        chunk in 1usize..9,
        threads in 1usize..3,
    ) {
        let d = 32;
        for kind in [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
        ] {
            let mut one_tr = RecordingTracer::new(Granularity::Element);
            let one = aggregate_with_threads(kind, &updates, d, threads, &mut one_tr);
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = StreamingAggregator::new(kind, d, threads);
            for c in updates.chunks(chunk) {
                agg.ingest(c, &mut tr);
            }
            let got = agg.finalize(&mut tr);
            let one_bits: Vec<u32> = one.iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, one_bits,
                "{:?} chunk={} threads={}: output drifted", kind, chunk, threads);
            prop_assert_eq!(tr.digest(), one_tr.digest(),
                "{:?} chunk={} threads={}: trace drifted", kind, chunk, threads);
        }
    }

    /// The sharding contract as a property: for an arbitrary placement of
    /// stripe boundaries (any number of shards, any interior cut points),
    /// the sharded aggregator reproduces the monolithic output bits and
    /// trace digest exactly — shard-boundary placement never changes the
    /// round, and every shard budget balances back to zero.
    #[test]
    fn shard_boundaries_never_change_the_result(
        updates in updates_strategy(6, 32),
        bounds in vec(1usize..32, 0..5),
        chunk in 1usize..7,
    ) {
        use olive_core::aggregation::{ShardRuntime, ShardedAggregator};
        use olive_memsim::ShardPlan;
        use olive_tee::{AttestationService, Enclave, EnclaveConfig};
        let d = 32;
        let mut interior = bounds;
        interior.sort_unstable();
        interior.dedup();
        let plan = ShardPlan::from_boundaries(d, &interior);
        for kind in [AggregatorKind::Advanced, AggregatorKind::Grouped { h: 2 }] {
            let mut one_tr = RecordingTracer::new(Granularity::Element);
            let one = aggregate_with_threads(kind, &updates, d, 1, &mut one_tr);
            let service = AttestationService::new([7u8; 32]);
            let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [8u8; 32]);
            coordinator.attest(&service, b"shard-proptest");
            let rt = ShardRuntime::provision_with_plan(
                &service,
                &mut coordinator,
                b"shard-proptest",
                [9u8; 32],
                96 << 20,
                plan.clone(),
            ).expect("provisioning succeeds in the simulation");
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = ShardedAggregator::new(kind, d, 1, rt);
            for c in updates.chunks(chunk) {
                agg.ingest(c, &mut tr);
            }
            let (got, _peaks, rt) = agg.finalize_with_peaks(&mut tr).expect("fault-free round");
            prop_assert!(rt.live().iter().all(|&b| b == 0),
                "{:?} bounds={:?}: shard budgets must balance", kind, interior);
            let one_bits: Vec<u32> = one.iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, one_bits,
                "{:?} bounds={:?} chunk={}: output drifted", kind, interior, chunk);
            prop_assert_eq!(tr.digest(), one_tr.digest(),
                "{:?} bounds={:?} chunk={}: trace drifted", kind, interior, chunk);
        }
    }

    /// The fault-recovery contract as a property: for an *arbitrary* fault
    /// script (any kinds, any chunk/egress sites, any shard targets) over
    /// an arbitrary input at S ∈ {1, 2, 4}, the sharded round either
    /// recovers — bitwise the monolithic output and trace digest, budgets
    /// balanced — or fails with a *structured* [`ShardError`] carrying the
    /// exhausted attempt budget. Never a panic, never a silently wrong
    /// answer.
    #[test]
    fn faults_never_change_the_result(
        updates in updates_strategy(6, 32),
        raw_events in vec((0usize..5, 0u32..7, 0u32..4), 0..6),
        shards_sel in 0usize..3,
        chunk in 1usize..7,
    ) {
        use olive_core::aggregation::{ShardFailure, ShardRuntime, ShardedAggregator};
        use olive_memsim::{FaultEvent, FaultKind, FaultPlan, RetryPolicy, EGRESS_CHUNK};
        use olive_tee::{AttestationService, Enclave, EnclaveConfig};
        let d = 32;
        let shards = [1usize, 2, 4][shards_sel];
        const KINDS: [FaultKind; 5] = [
            FaultKind::ShardKill,
            FaultKind::TunnelTamper,
            FaultKind::TunnelDrop,
            FaultKind::ReceiptCorrupt,
            FaultKind::StaleSeal,
        ];
        let events: Vec<FaultEvent> = raw_events
            .iter()
            .map(|&(k, c, s)| FaultEvent {
                kind: KINDS[k],
                chunk: if c == 6 { EGRESS_CHUNK } else { c },
                shard: s % shards as u32,
            })
            .collect();
        for kind in [AggregatorKind::Advanced, AggregatorKind::Grouped { h: 2 }] {
            let mut one_tr = RecordingTracer::new(Granularity::Element);
            let one = aggregate_with_threads(kind, &updates, d, 1, &mut one_tr);
            let service = AttestationService::new([7u8; 32]);
            let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [8u8; 32]);
            coordinator.attest(&service, b"fault-proptest");
            let mut rt = ShardRuntime::provision(
                &service,
                &mut coordinator,
                b"fault-proptest",
                [9u8; 32],
                96 << 20,
                d,
                shards,
            ).expect("provisioning succeeds in the simulation");
            rt.set_fault_plan(FaultPlan::from_events(events.clone()));
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = ShardedAggregator::new(kind, d, 1, rt);
            for c in updates.chunks(chunk) {
                agg.ingest(c, &mut tr);
            }
            match agg.finalize_with_peaks(&mut tr) {
                Ok((got, _peaks, rt)) => {
                    prop_assert!(rt.live().iter().all(|&b| b == 0),
                        "{:?} events={:?}: shard budgets must balance", kind, events);
                    let one_bits: Vec<u32> = one.iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(got_bits, one_bits,
                        "{:?} S={} events={:?}: output drifted", kind, shards, events);
                    prop_assert_eq!(tr.digest(), one_tr.digest(),
                        "{:?} S={} events={:?}: trace drifted", kind, shards, events);
                }
                Err(e) => {
                    // Recovery only gives up when a site stacks enough
                    // delivery failures to exhaust the whole retry budget
                    // (checkpointing is on, so kills are always absorbed).
                    prop_assert_eq!(e.attempts, RetryPolicy::MAX_ATTEMPTS,
                        "{:?} events={:?}: gave up early: {}", kind, events, e);
                    prop_assert!((e.shard as usize) < shards);
                    prop_assert!(matches!(
                        e.failure,
                        ShardFailure::Tunnel(_)
                            | ShardFailure::Dropped
                            | ShardFailure::ReceiptMismatch
                    ), "{:?} events={:?}: unstructured terminal failure {}", kind, events, e);
                }
            }
        }
    }

    /// Recovery exhaustion as a property: stacking exactly the retry
    /// budget of delivery failures at *any* single site fails cleanly and
    /// structurally — correct shard, exhausted attempts, matching failure
    /// kind — for any input geometry.
    #[test]
    fn stacked_faults_exhaust_into_structured_errors(
        updates in updates_strategy(6, 32),
        site_chunk in 0u32..3,
        site_shard in 0u32..4,
        fail_sel in 0usize..3,
        chunk in 1usize..5,
    ) {
        use olive_core::aggregation::{ShardFailure, ShardRuntime, ShardedAggregator};
        use olive_memsim::{FaultEvent, FaultKind, FaultPlan, RetryPolicy, EGRESS_CHUNK};
        use olive_tee::{AttestationService, Enclave, EnclaveConfig};
        let d = 32;
        let n_chunks = updates.len().div_ceil(chunk) as u32;
        prop_assume!(site_chunk < n_chunks);
        let (fault, expect_egress) = [
            (FaultKind::TunnelTamper, false),
            (FaultKind::TunnelDrop, false),
            (FaultKind::ReceiptCorrupt, true),
        ][fail_sel];
        let site_chunk = if expect_egress { EGRESS_CHUNK } else { site_chunk };
        let events = vec![
            FaultEvent { kind: fault, chunk: site_chunk, shard: site_shard % 4 };
            RetryPolicy::MAX_ATTEMPTS as usize
        ];
        let service = AttestationService::new([7u8; 32]);
        let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [8u8; 32]);
        coordinator.attest(&service, b"fault-proptest");
        let mut rt = ShardRuntime::provision(
            &service, &mut coordinator, b"fault-proptest", [9u8; 32], 96 << 20, d, 4,
        ).expect("provisioning succeeds in the simulation");
        rt.set_fault_plan(FaultPlan::from_events(events));
        let mut tr = RecordingTracer::new(Granularity::Element);
        let mut agg = ShardedAggregator::new(AggregatorKind::Advanced, d, 1, rt);
        for c in updates.chunks(chunk) {
            agg.ingest(c, &mut tr);
        }
        let e = agg.finalize_with_peaks(&mut tr).expect_err("the stacked script must exhaust");
        prop_assert_eq!(e.shard, site_shard % 4);
        prop_assert_eq!(e.attempts, RetryPolicy::MAX_ATTEMPTS);
        match fault {
            FaultKind::TunnelDrop => prop_assert_eq!(e.failure, ShardFailure::Dropped),
            FaultKind::ReceiptCorrupt =>
                prop_assert_eq!(e.failure, ShardFailure::ReceiptMismatch),
            _ => prop_assert!(matches!(e.failure, ShardFailure::Tunnel(_))),
        }
    }

    /// Bitonic sort sorts (against std) for arbitrary content and length.
    #[test]
    fn bitonic_sort_matches_std(data in vec(0u64..1_000_000, 0..200)) {
        let mut expected = data.clone();
        expected.sort_unstable();
        let got = bitonic_sort_by_key(0, data, u64::MAX, |x| *x, &mut NullTracer);
        prop_assert_eq!(got, expected);
    }

    /// Sparse encode/decode round-trips arbitrary well-formed gradients.
    #[test]
    fn sparse_gradient_codec_roundtrip(updates in updates_strategy(1, 64)) {
        let sg = &updates[0];
        let decoded = SparseGradient::decode(&sg.encode()).expect("well-formed");
        prop_assert_eq!(&decoded, sg);
    }

    /// Oblivious scan read equals direct indexing for any index.
    #[test]
    fn o_scan_read_equals_direct(data in vec(0u64..u64::MAX, 1..64), idx in 0usize..64) {
        prop_assume!(idx < data.len());
        let buf = TrackedBuf::new(0, data.clone());
        let got = olive_oblivious::o_scan_read(&buf, idx, &mut NullTracer);
        prop_assert_eq!(got, data[idx]);
    }

    /// PathORAM agrees with a HashMap model under arbitrary op sequences.
    #[test]
    fn path_oram_matches_model(ops in vec((0u32..32, proptest::option::of(0u64..1000)), 1..60)) {
        use olive_oram::{PathOram, PathOramConfig, PosMapKind};
        let mut oram = PathOram::<u64>::new(
            PathOramConfig {
                capacity: 32,
                stash_limit: 20,
                posmap: PosMapKind::LinearScan,
                region_base: 0,
            },
            9,
        );
        let mut model = std::collections::HashMap::new();
        for (key, write) in ops {
            match write {
                Some(v) => {
                    oram.write(key, v, &mut NullTracer);
                    model.insert(key, v);
                }
                None => {
                    let got = oram.read(key, &mut NullTracer);
                    let want = model.get(&key).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "key {}", key);
                }
            }
        }
    }

    /// The PathORAM fast-path invariant, fuzzed: the batched kernel is
    /// bitwise output-, trace-digest-, and serialized-state-identical to
    /// the scalar reference for arbitrary op sequences (reads, writes,
    /// updates, read-and-clear takes) across posmap kind × capacity —
    /// including capacity 1 and non-powers-of-two.
    #[test]
    fn path_oram_kernels_bitwise_identical(
        ops in vec((0u32..97, 0u8..4, 0u64..1000), 1..40),
        cap_sel in 0usize..4,
        posmap_sel in 0usize..3,
    ) {
        use olive_oram::{OramKernel, PathOram, PathOramConfig, PosMapKind};
        let capacity = [1usize, 7, 64, 97][cap_sel];
        let posmap =
            [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive][posmap_sel];
        let cfg = PathOramConfig { capacity, stash_limit: 40, posmap, region_base: 0 };
        let mut scalar = PathOram::<u64>::new(cfg, 23);
        scalar.set_kernel(OramKernel::Scalar);
        let mut batched = PathOram::<u64>::new(cfg, 23);
        batched.set_kernel(OramKernel::Batched);
        let mut tr_s = RecordingTracer::new(Granularity::Element);
        let mut tr_b = RecordingTracer::new(Granularity::Element);
        for (key, op, v) in ops {
            let key = key % capacity as u32;
            let (a, b) = match op {
                0 => { scalar.write(key, v, &mut tr_s); batched.write(key, v, &mut tr_b); continue; }
                1 => (scalar.read(key, &mut tr_s), batched.read(key, &mut tr_b)),
                2 => (scalar.update(key, move |x| x.wrapping_add(v), &mut tr_s),
                      batched.update(key, move |x| x.wrapping_add(v), &mut tr_b)),
                _ => (scalar.take(key, &mut tr_s), batched.take(key, &mut tr_b)),
            };
            prop_assert_eq!(a, b, "output divergence at key {}", key);
        }
        prop_assert_eq!(tr_s.digest(), tr_b.digest(), "trace digest divergence");
        prop_assert_eq!(scalar.save_state(), batched.save_state(), "state divergence");
        prop_assert_eq!(
            scalar.stats().max_stash_occupancy,
            batched.stats().max_stash_occupancy
        );
        prop_assert_eq!(scalar.stats().evicted_blocks, batched.stats().evicted_blocks);
    }

    /// AES-GCM round-trips arbitrary payloads and rejects any bit flip.
    #[test]
    fn gcm_roundtrip_and_tamper(payload in vec(any::<u8>(), 0..256), flip in 0usize..256) {
        let key = olive_crypto::AesGcm::new(&[3u8; 32]).unwrap();
        let nonce = [5u8; 12];
        let mut ct = key.seal(&nonce, &payload, b"it");
        prop_assert_eq!(key.open(&nonce, &ct, b"it").unwrap(), payload);
        let pos = flip % ct.len();
        ct[pos] ^= 1;
        prop_assert!(key.open(&nonce, &ct, b"it").is_err());
    }
}
