//! Integration: the attack against the full system, with and without the
//! defense — the paper's end-to-end claim.

use olive_attack::{run_attack, AttackMethod, AttackPipelineConfig, NnParams};
use olive_core::aggregation::AggregatorKind;
use olive_integration_tests::small_system;
use olive_memsim::Granularity;

#[test]
fn attack_succeeds_against_linear_aggregation() {
    let (mut sys, pool) = small_system(AggregatorKind::NonOblivious, None, 42);
    let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
    let outcome = run_attack(&mut sys, &pool, &cfg);
    assert!(
        outcome.metrics.all >= 0.6,
        "attack should succeed well above the 20% random baseline, got {}",
        outcome.metrics.all
    );
}

#[test]
fn attack_succeeds_at_cacheline_granularity() {
    let (mut sys, pool) = small_system(AggregatorKind::NonOblivious, None, 43);
    let mut cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
    cfg.granularity = Granularity::Cacheline;
    let outcome = run_attack(&mut sys, &pool, &cfg);
    assert!(
        outcome.metrics.top1 >= 0.5,
        "cacheline-level attack should retain signal, got {}",
        outcome.metrics.top1
    );
}

#[test]
fn nn_method_works_end_to_end() {
    let (mut sys, pool) = small_system(AggregatorKind::NonOblivious, None, 44);
    let params = NnParams { hidden: 32, epochs: 60, lr: 0.3 };
    let cfg = AttackPipelineConfig::new(AttackMethod::Nn(params), Some(1));
    let outcome = run_attack(&mut sys, &pool, &cfg);
    assert!(
        outcome.metrics.top1 >= 0.5,
        "NN attack should beat chance, got {}",
        outcome.metrics.top1
    );
}

#[test]
fn every_oblivious_aggregator_stops_the_attack() {
    for kind in [
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::Baseline { cacheline_weights: 1 },
    ] {
        let (mut sys, pool) = small_system(kind, None, 45);
        let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
        let outcome = run_attack(&mut sys, &pool, &cfg);
        // 5 labels, 1 per client → random guessing = 20%. Allow noise
        // headroom but demand the attack lose its signal.
        assert!(
            outcome.metrics.all <= 0.45,
            "{kind:?} should reduce the attack to ~chance, got {}",
            outcome.metrics.all
        );
    }
}

#[test]
fn defense_does_not_change_the_learned_model() {
    // "our previous algorithms do not degrade utility" (Section 5.5): the
    // defended system converges identically to the vulnerable one.
    let (mut vulnerable, pool) = small_system(AggregatorKind::NonOblivious, None, 46);
    let (mut defended, _) = small_system(AggregatorKind::Advanced, None, 46);
    for _ in 0..4 {
        vulnerable.run_round(&mut olive_memsim::NullTracer).expect("round");
        defended.run_round(&mut olive_memsim::NullTracer).expect("round");
    }
    let (_, acc_v) = vulnerable.server.model.evaluate(&pool.features, &pool.labels, 64);
    let (_, acc_d) = defended.server.model.evaluate(&pool.features, &pool.labels, 64);
    assert!((acc_v - acc_d).abs() < 1e-6, "identical trajectories: {acc_v} vs {acc_d}");
}
