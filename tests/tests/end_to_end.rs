//! End-to-end integration: provisioning → encrypted rounds → convergence,
//! across every aggregation algorithm, with and without DP.

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::DpConfig;
use olive_integration_tests::small_system;
use olive_memsim::NullTracer;
use olive_oram::PosMapKind;

#[test]
fn every_aggregator_trains_the_same_model() {
    // The oblivious algorithms are exact: given identical protocol
    // randomness they must produce the identical global trajectory as the
    // non-oblivious reference.
    let mut reference = None;
    for kind in [
        AggregatorKind::NonOblivious,
        AggregatorKind::Baseline { cacheline_weights: 16 },
        AggregatorKind::Baseline { cacheline_weights: 1 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::PathOram { posmap: PosMapKind::LinearScan },
    ] {
        let (mut sys, _) = small_system(kind, None, 7);
        for _ in 0..2 {
            sys.run_round(&mut NullTracer).expect("round");
        }
        let params = sys.global_params();
        match &reference {
            None => reference = Some(params),
            Some(r) => {
                for (i, (a, b)) in r.iter().zip(params.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-4,
                        "{kind:?} diverged from reference at parameter {i}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn federated_training_converges_under_oblivious_aggregation() {
    let (mut sys, pool) = small_system(AggregatorKind::Advanced, None, 21);
    let (loss0, acc0) = sys.server.model.evaluate(&pool.features, &pool.labels, 64);
    for _ in 0..10 {
        sys.run_round(&mut NullTracer).expect("round");
    }
    let (loss1, acc1) = sys.server.model.evaluate(&pool.features, &pool.labels, 64);
    assert!(loss1 < loss0 * 0.8, "loss {loss0} -> {loss1}");
    assert!(acc1 > acc0, "accuracy {acc0} -> {acc1}");
    assert!(acc1 > 0.5, "final accuracy {acc1}");
}

#[test]
fn model_signatures_verify_per_round() {
    let (mut sys, _) = small_system(AggregatorKind::Grouped { h: 4 }, None, 3);
    for _ in 0..3 {
        let report = sys.run_round(&mut NullTracer).expect("round");
        let params = sys.global_params();
        assert!(sys.verify_model_signature(report.round, &params, &report.model_signature));
        // Wrong round → signature must fail (no cross-round replay).
        assert!(!sys.verify_model_signature(report.round + 1, &params, &report.model_signature));
    }
}

#[test]
fn dp_mode_accumulates_budget_monotonically() {
    let dp = DpConfig { sigma: 1.5, clip: 0.5, delta: 1e-5 };
    let (mut sys, _) = small_system(AggregatorKind::Advanced, Some(dp), 5);
    let mut last = 0.0f64;
    for _ in 0..4 {
        let report = sys.run_round(&mut NullTracer).expect("round");
        let eps = report.epsilon_spent.expect("dp mode reports epsilon");
        assert!(eps > last, "epsilon must grow: {last} -> {eps}");
        last = eps;
    }
    assert!(last < 50.0, "epsilon accounting went wild: {last}");
}

#[test]
fn dp_noise_actually_perturbs_the_trajectory() {
    let (mut clean, _) = small_system(AggregatorKind::Advanced, None, 11);
    let dp = DpConfig { sigma: 1.0, clip: 0.5, delta: 1e-5 };
    let (mut noised, _) = small_system(AggregatorKind::Advanced, Some(dp), 11);
    clean.run_round(&mut NullTracer).expect("round");
    noised.run_round(&mut NullTracer).expect("round");
    let a = clean.global_params();
    let b = noised.global_params();
    let diff: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 1e-3, "DP noise must move the model ({diff})");
}
