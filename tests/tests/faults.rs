//! Deterministic fault injection and mid-round shard failover, at the
//! full-system level.
//!
//! The hard bar these tests pin: any scripted fault sequence the runtime
//! can recover from — shard kills mid-stream, tampered and dropped tunnel
//! frames, corrupted egress receipts, rolled-back shard checkpoints on
//! restore — must leave the round **bitwise identical** (global model,
//! enclave signature, adversary-visible trace digest) to the fault-free
//! round, for every aggregator kind at every shard count. And a fault
//! sequence recovery *cannot* absorb must fail with a structured
//! [`RoundError`] — never a panic — leaving the round restorable.

use olive_core::aggregation::{AggregatorKind, ShardFailure};
use olive_core::olive::{DpConfig, RoundError, RoundReport};
use olive_core::ShardError;
use olive_integration_tests::small_system;
use olive_memsim::{FaultPlan, Granularity, RecordingTracer, RetryPolicy, TraceDigest};
use olive_tee::TunnelError;

/// A fault script touching every fault kind, with shard targets folded
/// into the `shards` actually provisioned. The stale-seal event rides on
/// the chunk-2 kill (two checkpoints exist by then, so the rollback
/// corpus is non-empty).
fn full_script(shards: usize) -> FaultPlan {
    let s = |i: usize| (i % shards).to_string();
    let spec = format!(
        "kill@2.{k},stale@e.{k},tamper@1.{t},drop@2.{d},tamper@e.{et},receipt@e.{r},kill@e.{ek}",
        k = s(1),
        t = s(0),
        d = s(2),
        et = s(3),
        r = s(0),
        ek = s(2),
    );
    FaultPlan::parse(&spec).expect("well-formed fault script")
}

/// One traced round at the given shard count, optionally faulted.
fn run_round(
    kind: AggregatorKind,
    dp: Option<DpConfig>,
    shards: usize,
    plan: Option<FaultPlan>,
) -> (Vec<u32>, TraceDigest, RoundReport, u64) {
    let (mut sys, _) = small_system(kind, dp, 97);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(shards);
    if let Some(plan) = plan {
        sys.set_fault_plan(plan);
    }
    let mut tr = RecordingTracer::new(Granularity::Element);
    let report = sys.run_round(&mut tr).expect("the scripted faults must all recover");
    let recovery = report.telemetry.recovery;
    let bits = sys.global_params().iter().map(|v| v.to_bits()).collect();
    (bits, tr.digest(), report, recovery.retries + recovery.relaunches)
}

/// The acceptance matrix: every aggregator kind × S ∈ {1, 2, 4, 8}, a
/// scripted kill + stale-restore + tamper + drop + receipt-corrupt
/// sequence against the fault-free round — output, signature and trace
/// digest all bitwise.
#[test]
fn recovered_rounds_are_bitwise_identical_for_every_kind_and_shard_count() {
    for kind in [
        AggregatorKind::NonOblivious,
        AggregatorKind::Baseline { cacheline_weights: 16 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
        AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 11 },
    ] {
        let (ref_bits, ref_digest, ref_report, _) = run_round(kind, None, 1, None);
        for shards in [1usize, 2, 4, 8] {
            let ctx = format!("{kind:?} S={shards}");
            let (bits, digest, report, recoveries) =
                run_round(kind, None, shards, Some(full_script(shards.max(1))));
            assert_eq!(bits, ref_bits, "{ctx}: faults changed the global model");
            assert_eq!(digest, ref_digest, "{ctx}: faults changed the trace digest");
            assert_eq!(
                report.model_signature, ref_report.model_signature,
                "{ctx}: faults changed the signed output"
            );
            if shards > 1 {
                assert!(recoveries > 0, "{ctx}: the script must actually exercise recovery");
            }
        }
    }
}

/// DP rounds recover bitwise too: the shard plane never touches the
/// enclave RNG, so the post-recovery noise draw is the exact draw of the
/// fault-free round and ε composition is unchanged.
#[test]
fn dp_round_recovers_bitwise_with_identical_epsilon() {
    let dp = Some(DpConfig { sigma: 1.1, clip: 0.5, delta: 1e-5 });
    let kind = AggregatorKind::Advanced;
    let (ref_bits, ref_digest, ref_report, _) = run_round(kind, dp, 1, None);
    let (bits, digest, report, recoveries) = run_round(kind, dp, 4, Some(full_script(4)));
    assert_eq!(bits, ref_bits, "faults changed the DP model");
    assert_eq!(digest, ref_digest);
    assert_eq!(report.model_signature, ref_report.model_signature);
    assert_eq!(report.epsilon_spent, ref_report.epsilon_spent, "ε composition must match");
    assert!(recoveries > 0);
}

/// Satellite pin: a poisoned tunnel frame that exhausts the retry budget
/// aborts the round *cleanly* — a structured [`RoundError::Shard`] naming
/// the shard, the attempts and the terminal failure — and the round stays
/// restorable, finishing bitwise identical to the fault-free run (one
/// tracer spans the abort and the restore, so the digest proves no
/// adversary-visible access was added or lost).
#[test]
fn poisoned_frame_exhaustion_aborts_cleanly_and_restores_bitwise() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let (ref_bits, ref_digest, ref_report, _) = run_round(kind, None, 1, None);

    let (mut sys, _) = small_system(kind, None, 97);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(4);
    // One more tamper than the retry budget at a single delivery site.
    let spec = vec!["tamper@1.2"; RetryPolicy::MAX_ATTEMPTS as usize].join(",");
    sys.set_fault_plan(FaultPlan::parse(&spec).expect("well-formed script"));
    let mut tr = RecordingTracer::new(Granularity::Element);
    let err = sys.run_round(&mut tr).expect_err("the stacked tampers must exhaust recovery");
    assert_eq!(
        err,
        RoundError::Shard(ShardError {
            shard: 2,
            attempts: RetryPolicy::MAX_ATTEMPTS,
            failure: ShardFailure::Tunnel(TunnelError::AuthFailure),
        })
    );
    assert!(sys.interrupted(), "the aborted round must stay pending");

    let report = sys.restore_round(&mut tr).expect("the poisoned round restores");
    assert!(!sys.interrupted());
    let bits: Vec<u32> = sys.global_params().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, ref_bits, "restored round changed the global model");
    assert_eq!(tr.digest(), ref_digest, "restored round changed the trace digest");
    assert_eq!(report.model_signature, ref_report.model_signature);
}

/// A fault at chunk 0 aborts *before the first checkpoint exists*: the
/// restore path must restart the round whole from the untrusted material
/// (there is no blob), still bitwise identical.
#[test]
fn chunk_zero_exhaustion_restores_without_a_checkpoint_blob() {
    let kind = AggregatorKind::Advanced;
    let (ref_bits, ref_digest, ref_report, _) = run_round(kind, None, 1, None);

    let (mut sys, _) = small_system(kind, None, 97);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(2);
    let spec = vec!["drop@0.1"; RetryPolicy::MAX_ATTEMPTS as usize].join(",");
    sys.set_fault_plan(FaultPlan::parse(&spec).expect("well-formed script"));
    let mut tr = RecordingTracer::new(Granularity::Element);
    let err = sys.run_round(&mut tr).expect_err("stacked drops exhaust recovery");
    match err {
        RoundError::Shard(e) => {
            assert_eq!(e.shard, 1);
            assert_eq!(e.failure, ShardFailure::Dropped);
        }
        other => panic!("expected a shard error, got {other:?}"),
    }
    assert!(sys.interrupted());
    assert!(sys.checkpoint_blob().is_none(), "chunk 0 died before any checkpoint was sealed");

    let report = sys.restore_round(&mut tr).expect("no-blob restart");
    let bits: Vec<u32> = sys.global_params().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, ref_bits, "no-blob restart changed the global model");
    assert_eq!(tr.digest(), ref_digest, "no-blob restart changed the trace digest");
    assert_eq!(report.model_signature, ref_report.model_signature);
}

/// Egress-phase exhaustion (receipts corrupted past the budget) also
/// aborts structurally and restores — the final checkpoint holds the
/// fully folded aggregator, so the restore replays only the finalize +
/// egress step. (Finalize re-emits its trace, so this case checks model
/// and signature; the mid-stream cases above pin digest continuity.)
#[test]
fn egress_exhaustion_aborts_cleanly_and_restores() {
    let kind = AggregatorKind::NonOblivious;
    let (ref_bits, _, ref_report, _) = run_round(kind, None, 1, None);

    let (mut sys, _) = small_system(kind, None, 97);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(4);
    let spec = vec!["receipt@e.3"; RetryPolicy::MAX_ATTEMPTS as usize].join(",");
    sys.set_fault_plan(FaultPlan::parse(&spec).expect("well-formed script"));
    let err = sys
        .run_round(&mut RecordingTracer::new(Granularity::Element))
        .expect_err("stacked receipt corruption exhausts recovery");
    match err {
        RoundError::Shard(e) => {
            assert_eq!(e.shard, 3);
            assert_eq!(e.attempts, RetryPolicy::MAX_ATTEMPTS);
            assert_eq!(e.failure, ShardFailure::ReceiptMismatch);
        }
        other => panic!("expected a shard error, got {other:?}"),
    }
    assert!(sys.interrupted());
    let report = sys
        .restore_round(&mut RecordingTracer::new(Granularity::Element))
        .expect("egress abort restores from the final checkpoint");
    let bits: Vec<u32> = sys.global_params().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, ref_bits, "egress restore changed the global model");
    assert_eq!(report.model_signature, ref_report.model_signature);
}

/// The CI chaos pass, pinned end-to-end: the exact `OLIVE_FAULTS` spec
/// the tier-1 workflow exports (`seed:1337x5@6.4` — the scripted
/// generator whose per-site caps guarantee recoverability) must recover
/// bitwise under `OLIVE_SHARDS=4`'s topology.
#[test]
fn ci_chaos_spec_recovers_bitwise() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let plan = FaultPlan::parse("seed:1337x5@6.4").expect("the CI spec must stay parseable");
    assert_eq!(plan.remaining(), 5, "the CI spec arms five events");
    let (ref_bits, ref_digest, ref_report, _) = run_round(kind, None, 1, None);
    let (bits, digest, report, _) = run_round(kind, None, 4, Some(plan));
    assert_eq!(bits, ref_bits, "CI chaos spec changed the global model");
    assert_eq!(digest, ref_digest, "CI chaos spec changed the trace digest");
    assert_eq!(report.model_signature, ref_report.model_signature);
}
