//! The sharding contract, cross-crate: splitting the `G` dimension across
//! `S` mutually attested shard enclaves is **bitwise invisible** — model
//! bits, enclave signature and adversary-visible trace digest all match
//! the monolithic round for every aggregator kind at every tested
//! (S, chunk) combination — while each shard's own EPC budget sees only
//! its stripe share of the footprint.

use olive_core::aggregation::{
    Aggregator, AggregatorKind, ShardRuntime, ShardedAggregator, StreamingAggregator,
};
use olive_core::olive::{sharded_working_set_bytes, working_set_bytes};
use olive_fl::SparseGradient;
use olive_integration_tests::small_system;
use olive_memsim::{Granularity, RecordingTracer, TraceDigest};
use olive_tee::{AttestationService, Enclave, EnclaveConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_updates(n: usize, k: usize, d: usize, seed: u64) -> Vec<SparseGradient> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut idxs: Vec<u32> = (0..d as u32).collect();
            for t in 0..k {
                let j = rng.gen_range(t..d);
                idxs.swap(t, j);
            }
            let mut indices: Vec<u32> = idxs[..k].to_vec();
            indices.sort_unstable();
            SparseGradient {
                dense_dim: d,
                indices,
                values: (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            }
        })
        .collect()
}

fn all_kinds() -> Vec<AggregatorKind> {
    vec![
        AggregatorKind::NonOblivious,
        AggregatorKind::Baseline { cacheline_weights: 16 },
        AggregatorKind::Baseline { cacheline_weights: 1 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
        AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 11 },
    ]
}

fn runtime(d: usize, shards: usize, seed: u8) -> ShardRuntime {
    let service = AttestationService::new([seed; 32]);
    let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [seed ^ 1; 32]);
    coordinator.attest(&service, b"sharding-suite");
    ShardRuntime::provision(
        &service,
        &mut coordinator,
        b"sharding-suite",
        [seed ^ 2; 32],
        96 << 20,
        d,
        shards,
    )
    .expect("provisioning succeeds in the simulation")
}

fn stream_sharded(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
    chunk: usize,
    shards: usize,
) -> (Vec<u32>, TraceDigest, Vec<u64>) {
    let mut tr = RecordingTracer::new(Granularity::Element);
    let mut agg = ShardedAggregator::new(kind, d, 1, runtime(d, shards, 5));
    for c in updates.chunks(chunk) {
        agg.ingest(c, &mut tr);
    }
    assert_eq!(agg.clients(), updates.len());
    let (out, peaks, rt) = agg.finalize_with_peaks(&mut tr).expect("fault-free round");
    assert!(
        rt.live().iter().all(|&b| b == 0),
        "{kind:?} S={shards} chunk={chunk}: shard budgets must balance to zero"
    );
    (out.iter().map(|v| v.to_bits()).collect(), tr.digest(), peaks)
}

/// The acceptance matrix: every aggregator kind × S ∈ {1, 2, 4, 8} ×
/// chunk ∈ {1, 64}, bitwise against the monolithic streaming path.
#[test]
fn sharded_matches_monolithic_for_every_kind() {
    let d = 96;
    let n = 13;
    let updates = random_updates(n, 6, d, 77);
    for kind in all_kinds() {
        let (ref_bits, ref_digest) = {
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = StreamingAggregator::new(kind, d, 1);
            for c in updates.chunks(5) {
                agg.ingest(c, &mut tr);
            }
            let out = agg.finalize(&mut tr);
            (out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(), tr.digest())
        };
        for shards in [1usize, 2, 4, 8] {
            for chunk in [1usize, 64] {
                let (bits, digest, peaks) = stream_sharded(kind, &updates, d, chunk, shards);
                assert_eq!(
                    bits, ref_bits,
                    "{kind:?} S={shards} chunk={chunk}: output bits drifted"
                );
                assert_eq!(
                    digest, ref_digest,
                    "{kind:?} S={shards} chunk={chunk}: trace digest drifted"
                );
                assert_eq!(peaks.len(), shards);
            }
        }
    }
}

/// Full-system sharding: a complete round — attestation, uploads, DP-free
/// aggregation, signature — is bitwise identical at S ∈ {1, 4}, and the
/// sharded report carries per-shard peaks while the canonical working-set
/// number stays shard-independent.
#[test]
fn system_round_is_shard_invariant() {
    for kind in [AggregatorKind::Advanced, AggregatorKind::Grouped { h: 3 }] {
        let run = |shards: usize| {
            let (mut sys, _) = small_system(kind, None, 23);
            sys.set_threads(1);
            sys.set_chunk(3);
            sys.set_shards(shards);
            let mut tr = RecordingTracer::new(Granularity::Element);
            let report = sys.run_round(&mut tr).expect("round");
            (sys.global_params(), tr.digest(), report)
        };
        let (ref_params, ref_digest, ref_report) = run(1);
        let (params, digest, report) = run(4);
        for (i, (a, b)) in ref_params.iter().zip(&params).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{kind:?}: param {i} drifted under S=4");
        }
        assert_eq!(digest, ref_digest, "{kind:?}: trace digest drifted under S=4");
        assert_eq!(report.model_signature, ref_report.model_signature, "{kind:?}: signature");
        assert_eq!(report.working_set_bytes, ref_report.working_set_bytes);
        assert_eq!(report.shard_peaks.len(), 4);
        assert!(ref_report.shard_peaks.is_empty());
    }
}

/// Crash-safety composes with sharding: a round killed mid-ingestion and
/// restored from its sealed checkpoint under S = 4 matches both the
/// uninterrupted sharded round and the monolithic one, bitwise — and the
/// checkpoint blob itself is shard-agnostic, so a round killed at S = 4
/// restores at S = 1 (the shard plane is runtime topology, not state).
#[test]
fn kill_and_restore_composes_with_sharding() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let (ref_params, ref_digest) = {
        let (mut sys, _) = small_system(kind, None, 31);
        sys.set_threads(2);
        sys.set_chunk(2);
        let mut tr = RecordingTracer::new(Granularity::Element);
        sys.run_round(&mut tr).expect("round");
        (sys.global_params(), tr.digest())
    };
    for restore_shards in [4usize, 1] {
        let (mut sys, _) = small_system(kind, None, 31);
        sys.set_threads(2);
        sys.set_chunk(2);
        sys.set_shards(4);
        let mut tr = RecordingTracer::new(Granularity::Element);
        let killed = sys.run_round_kill_after(1, &mut tr).expect("kill injection is not a fault");
        assert!(killed.is_none() && sys.interrupted(), "kill point must fire");
        sys.set_shards(restore_shards);
        let report = sys.restore_round(&mut tr).expect("genuine checkpoint restores");
        let ctx = format!("restore at S={restore_shards}");
        for (i, (a, b)) in ref_params.iter().zip(&sys.global_params()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: param {i} drifted");
        }
        assert_eq!(tr.digest(), ref_digest, "{ctx}: trace digest drifted");
        let expected_peaks = if restore_shards == 1 { 0 } else { restore_shards };
        assert_eq!(report.shard_peaks.len(), expected_peaks, "{ctx}: peaks follow S");
    }
}

/// The capacity claim, measured (not estimated): a paper-scale Advanced
/// round that overflows a monolithic 96 MiB EPC runs with every shard's
/// *measured* peak under it at S = 4. `n = 10⁵` here; the 10⁶ variant is
/// the `full-scale` workflow's `OLIVE_BENCH_FULL=1` bench sweep. Ignored
/// in tier-1 (minutes of release-mode sort work); run via
/// `cargo test --release -- --ignored` in the scheduled workflow.
#[test]
#[ignore = "paper-scale: run with --release -- --ignored (full-scale workflow)"]
fn paper_scale_advanced_round_fits_sharded_epc() {
    let (n, k, d, shards) = (100_000, 128, 16_384, 4);
    let epc = 96u64 << 20;
    assert!(working_set_bytes(AggregatorKind::Advanced, n, k, d) > epc);
    for &p in &sharded_working_set_bytes(AggregatorKind::Advanced, n, k, d, shards) {
        assert!(p < epc);
    }
    let updates = random_updates(n, k, d, 2024);
    let mut agg = ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, shards, 9));
    for c in updates.chunks(256) {
        agg.ingest(c, &mut olive_memsim::NullTracer);
    }
    let (out, peaks, rt) =
        agg.finalize_with_peaks(&mut olive_memsim::NullTracer).expect("fault-free round");
    assert_eq!(out.len(), d);
    assert!(rt.live().iter().all(|&b| b == 0), "budgets balance at scale");
    for (i, &p) in peaks.iter().enumerate() {
        assert!(
            p < epc,
            "shard {i}: measured peak {:.1} MiB must stay under 96 MiB",
            p as f64 / (1 << 20) as f64
        );
    }
}
