//! Crash-safe rounds: kill-and-restore fidelity, replay-floor rewinding,
//! and checkpoint tamper/rollback rejection.
//!
//! The hard bar these tests pin: a round killed after *any* chunk and
//! restored from its sealed checkpoint must be **bitwise identical** — in
//! the global model, the enclave signature, and the adversary-visible
//! trace digest — to the same round run uninterrupted. One
//! `RecordingTracer` spans the kill and the restore, so any extra or
//! missing adversary-visible access would break the digest.

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{DpConfig, OliveSystem, RoundError, RoundReport};
use olive_integration_tests::small_system;
use olive_memsim::{Granularity, RecordingTracer, TraceDigest};
use olive_tee::TeeError;

/// Runs one uninterrupted round and returns (params, digest, report).
fn uninterrupted(
    kind: AggregatorKind,
    dp: Option<DpConfig>,
    seed: u64,
    chunk: usize,
    threads: usize,
) -> (Vec<f32>, TraceDigest, RoundReport) {
    let (mut sys, _) = small_system(kind, dp, seed);
    sys.set_threads(threads);
    sys.set_chunk(chunk);
    let mut tr = RecordingTracer::new(Granularity::Element);
    let report = sys.run_round(&mut tr).expect("round");
    (sys.global_params(), tr.digest(), report)
}

fn fresh(
    kind: AggregatorKind,
    dp: Option<DpConfig>,
    seed: u64,
    chunk: usize,
    threads: usize,
) -> OliveSystem {
    let (mut sys, _) = small_system(kind, dp, seed);
    sys.set_threads(threads);
    sys.set_chunk(chunk);
    sys
}

fn assert_bitwise_eq(a: &[f32], b: &[f32], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: params diverge at {i}: {x} vs {y}");
    }
}

/// Kill after chunk i ∈ {0, 1, mid, last} × three aggregator kinds ×
/// chunk sizes {1, 7, 64}. Restored rounds must match the uninterrupted
/// round bitwise in output, signature, and trace digest.
///
/// This matrix also exercises replay-floor rewinding implicitly: with the
/// double-buffered opener, the chunk after the kill point was already
/// *opened* (replay floors advanced) but never folded when the enclave
/// died. If the restore did not rewind the floors to the checkpoint's
/// folded-prefix snapshot, re-opening those same ciphertexts would be
/// misclassified as a replay and the restore would abort.
#[test]
fn kill_and_restore_is_bitwise_identical() {
    let seed = 41;
    let threads = 2; // double-buffered opening: the historical crash bug
    for kind in
        [AggregatorKind::NonOblivious, AggregatorKind::Grouped { h: 3 }, AggregatorKind::Advanced]
    {
        for chunk in [1usize, 7, 64] {
            let (ref_params, ref_digest, ref_report) =
                uninterrupted(kind, None, seed, chunk, threads);
            let n_chunks = ref_report.processed_users.len().div_ceil(chunk);
            assert!(n_chunks >= 1, "fixture rounds are non-empty");
            let mut kill_points = vec![0, 1, n_chunks / 2, n_chunks - 1];
            kill_points.retain(|&kp| kp < n_chunks);
            kill_points.dedup();
            for kp in kill_points {
                let ctx = format!("kind={kind:?} chunk={chunk} kill_after={kp}");
                let mut sys = fresh(kind, None, seed, chunk, threads);
                let mut tr = RecordingTracer::new(Granularity::Element);
                let killed =
                    sys.run_round_kill_after(kp, &mut tr).expect("kill injection is not a fault");
                assert!(killed.is_none(), "{ctx}: kill point must interrupt the round");
                assert!(sys.interrupted(), "{ctx}: round must be pending");
                let report = sys.restore_round(&mut tr).expect("restore must succeed");
                assert!(!sys.interrupted(), "{ctx}: restore clears the pending round");
                assert_bitwise_eq(&sys.global_params(), &ref_params, &ctx);
                assert_eq!(tr.digest(), ref_digest, "{ctx}: trace digest diverged");
                assert_eq!(report.round, ref_report.round, "{ctx}");
                assert_eq!(report.processed_users, ref_report.processed_users, "{ctx}");
                assert_eq!(report.k_per_user, ref_report.k_per_user, "{ctx}");
                assert_eq!(report.model_signature, ref_report.model_signature, "{ctx}");
            }
        }
    }
}

/// The checkpoint carries the enclave's RNG state, so the post-restore
/// Gaussian noise draw is the exact draw the uninterrupted round makes —
/// DP rounds restore bitwise too.
#[test]
fn kill_and_restore_preserves_dp_noise_bits() {
    let dp = Some(DpConfig { sigma: 1.1, clip: 0.5, delta: 1e-5 });
    let kind = AggregatorKind::Advanced;
    let (ref_params, ref_digest, ref_report) = uninterrupted(kind, dp, 13, 2, 1);
    let mut sys = fresh(kind, dp, 13, 2, 1);
    let mut tr = RecordingTracer::new(Granularity::Element);
    assert!(sys.run_round_kill_after(0, &mut tr).expect("no shard faults").is_none());
    let report = sys.restore_round(&mut tr).expect("restore must succeed");
    assert_bitwise_eq(&sys.global_params(), &ref_params, "dp restore");
    assert_eq!(tr.digest(), ref_digest);
    assert_eq!(report.epsilon_spent, ref_report.epsilon_spent, "ε composition must match");
}

/// A bit flipped anywhere in the sealed blob must fail authentication;
/// putting the genuine blob back lets the round finish identically.
#[test]
fn tampered_checkpoint_is_rejected_and_recoverable() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let (ref_params, ref_digest, _) = uninterrupted(kind, None, 5, 3, 1);
    let mut sys = fresh(kind, None, 5, 3, 1);
    let mut tr = RecordingTracer::new(Granularity::Element);
    assert!(sys.run_round_kill_after(1, &mut tr).expect("no shard faults").is_none());
    let good = sys.checkpoint_blob().expect("a killed round leaves a blob").to_vec();

    let mut evil = good.clone();
    let mid = evil.len() / 2;
    evil[mid] ^= 0x40;
    sys.set_checkpoint_blob(evil);
    assert_eq!(
        sys.restore_round(&mut tr).unwrap_err(),
        RoundError::Checkpoint(TeeError::AuthFailure)
    );
    assert!(sys.interrupted(), "a failed restore leaves the round pending");

    sys.set_checkpoint_blob(good);
    let _ = sys.restore_round(&mut tr).expect("genuine blob restores");
    assert_bitwise_eq(&sys.global_params(), &ref_params, "post-tamper recovery");
    assert_eq!(tr.digest(), ref_digest);
}

/// A *genuine but older* checkpoint — the rollback attack — must be
/// rejected against the pinned counter floor, and seal counters must be
/// strictly monotone across kill/restore cycles and rounds (the
/// nonce-non-reuse invariant: every sealed blob draws a fresh counter,
/// even from a relaunched enclave that lost its in-memory counters).
#[test]
fn rolled_back_checkpoint_is_rejected() {
    let counter_of = |blob: &[u8]| u64::from_be_bytes(blob[..8].try_into().unwrap());
    let kind = AggregatorKind::NonOblivious;
    let mut sys = fresh(kind, None, 29, 1, 1);
    let mut tr = RecordingTracer::new(Granularity::Element);

    // Kill after chunk 0 → blob A; restore and kill again after chunk 1
    // → blob B with a strictly larger counter.
    assert!(sys.run_round_kill_after(0, &mut tr).expect("no shard faults").is_none());
    let blob_a = sys.checkpoint_blob().unwrap().to_vec();
    assert!(sys.restore_round_kill_after(1, &mut tr).expect("restore succeeds").is_none());
    let blob_b = sys.checkpoint_blob().unwrap().to_vec();
    assert!(
        counter_of(&blob_b) > counter_of(&blob_a),
        "the relaunched enclave must not reuse a seal counter: {} vs {}",
        counter_of(&blob_b),
        counter_of(&blob_a)
    );

    // Rollback: untrusted storage presents the older (authentic!) blob.
    sys.set_checkpoint_blob(blob_a);
    assert_eq!(
        sys.restore_round(&mut tr).unwrap_err(),
        RoundError::Checkpoint(TeeError::StaleSeal)
    );
    assert!(sys.interrupted(), "the rolled-back round stays pending");

    // The newest blob still restores, and the next round's checkpoints
    // keep climbing (floor monotone across rounds).
    sys.set_checkpoint_blob(blob_b.clone());
    let report = sys.restore_round(&mut tr).expect("newest blob restores");
    assert_eq!(report.round, 0);
    assert!(sys.run_round_kill_after(0, &mut tr).expect("no shard faults").is_none());
    let blob_c = sys.checkpoint_blob().unwrap().to_vec();
    assert!(counter_of(&blob_c) > counter_of(&blob_b), "counters climb across rounds");
    let report = sys.restore_round(&mut tr).expect("round 1 restores too");
    assert_eq!(report.round, 1);
}

/// Checkpointing is a pure overhead knob: turning it off must change
/// neither the round output nor the trace.
#[test]
fn checkpointing_does_not_change_the_round() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let (ref_params, ref_digest, _) = uninterrupted(kind, None, 17, 4, 2);
    let (mut sys, _) = small_system(kind, None, 17);
    sys.set_threads(2);
    sys.set_chunk(4);
    sys.set_checkpointing(false);
    let mut tr = RecordingTracer::new(Granularity::Element);
    sys.run_round(&mut tr).expect("round");
    assert_bitwise_eq(&sys.global_params(), &ref_params, "checkpointing off");
    assert_eq!(tr.digest(), ref_digest);
    assert!(sys.checkpoint_blob().is_none(), "no blob is written when disabled");
}
