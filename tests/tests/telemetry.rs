//! The telemetry plane's hard bar: it is **side-band**. Arming metrics
//! must never perturb the computation — round output, enclave signature
//! and the adversary-visible trace digest stay bitwise identical to the
//! disarmed run, for every aggregator kind, monolithic and sharded,
//! fault-free and under the CI chaos script. And the stream itself must
//! be reproducible: two identical runs project to byte-identical
//! deterministic records once the wall-clock suffixes are stripped.

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::RoundReport;
use olive_integration_tests::small_system;
use olive_memsim::{FaultPlan, Granularity, RecordingTracer, RecoveryStats, TraceDigest};
use olive_telemetry::{deterministic_projection, Telemetry};

/// The CI chaos script (`seed:1337x5@6.4`), or no faults.
fn chaos_plan() -> FaultPlan {
    FaultPlan::parse("seed:1337x5@6.4").expect("the CI spec must stay parseable")
}

fn all_kinds() -> [AggregatorKind; 6] {
    [
        AggregatorKind::NonOblivious,
        AggregatorKind::Baseline { cacheline_weights: 16 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
        AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 11 },
    ]
}

/// One traced round with an explicit telemetry handle. Returns the
/// global model bits, the trace digest, the report, and — when armed
/// into a buffer — the emitted JSONL stream.
fn run_round(
    kind: AggregatorKind,
    shards: usize,
    chaos: bool,
    telemetry: Telemetry,
) -> (Vec<u32>, TraceDigest, RoundReport, Option<String>) {
    let (mut sys, _) = small_system(kind, None, 97);
    sys.set_threads(1);
    sys.set_chunk(3);
    sys.set_shards(shards);
    if chaos {
        sys.set_fault_plan(chaos_plan());
    }
    sys.set_telemetry(telemetry.clone());
    let mut tr = RecordingTracer::new(Granularity::Element);
    let report = sys.run_round(&mut tr).expect("the scripted faults must all recover");
    let bits = sys.global_params().iter().map(|v| v.to_bits()).collect();
    (bits, tr.digest(), report, telemetry.buffer_contents())
}

/// The acceptance matrix: armed vs disarmed telemetry for every
/// aggregator kind at S ∈ {1, 4}, fault-free and (sharded) under the CI
/// chaos script — model, signature and trace digest all bitwise, and the
/// deterministic round summary identical too.
#[test]
fn armed_telemetry_never_perturbs_output_signature_or_trace() {
    for kind in all_kinds() {
        for (shards, chaos) in [(1usize, false), (4, false), (4, true)] {
            let ctx = format!("{kind:?} S={shards} chaos={chaos}");
            let (ref_bits, ref_digest, ref_report, none) =
                run_round(kind, shards, chaos, Telemetry::off());
            assert!(none.is_none(), "{ctx}: a disarmed handle must emit nothing");
            let (bits, digest, report, stream) =
                run_round(kind, shards, chaos, Telemetry::to_buffer());
            assert_eq!(bits, ref_bits, "{ctx}: arming telemetry changed the global model");
            assert_eq!(digest, ref_digest, "{ctx}: arming telemetry changed the trace digest");
            assert_eq!(
                report.model_signature, ref_report.model_signature,
                "{ctx}: arming telemetry changed the signed output"
            );
            assert_eq!(
                report.telemetry, ref_report.telemetry,
                "{ctx}: the round summary must not depend on the exporter"
            );
            let stream = stream.unwrap_or_else(|| panic!("{ctx}: armed buffer sink"));
            assert!(
                stream.lines().any(|l| l.contains("\"name\":\"round\"")),
                "{ctx}: the armed stream must carry the round span"
            );
        }
    }
}

/// Two identical armed runs emit byte-identical deterministic
/// projections — span ids, nesting, fault sites, recovery attempts and
/// all counter totals are pure functions of the computation. Only the
/// `"wall"` suffix may differ between runs.
#[test]
fn deterministic_projection_is_byte_stable_across_runs() {
    let kind = AggregatorKind::Grouped { h: 3 };
    let run = || {
        let (_, _, _, stream) = run_round(kind, 4, true, Telemetry::to_buffer());
        deterministic_projection(&stream.expect("armed buffer sink"))
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty() && !a.contains("\"wall\""), "projection must strip wall-clock data");
    assert_eq!(a, b, "the deterministic projection must be byte-stable");
    assert!(a.lines().any(|l| l.contains("\"name\":\"fault_fired\"")));
    assert!(a.lines().any(|l| l.contains("\"name\":\"recovery_attempt\"")));
}

/// ORAM comparator rounds surface the stash high-water mark and the
/// eviction volume on the stream's existing counter/histogram schema —
/// and only ORAM rounds do (the names are a stable contract; the pinned
/// Grouped metrics-snapshot golden is untouched by construction).
#[test]
fn oram_rounds_emit_stash_and_eviction_counters() {
    let oram_kind = AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan };
    let (_, _, _, stream) = run_round(oram_kind, 1, false, Telemetry::to_buffer());
    let stream = stream.expect("armed buffer sink");
    assert!(
        stream.lines().any(|l| l.contains("\"name\":\"oram_evicted_blocks\"")),
        "ORAM round must count evicted blocks"
    );
    assert!(
        stream.lines().any(|l| l.contains("\"name\":\"oram_stash_occupancy\"")),
        "ORAM round must observe stash occupancy"
    );
    let (_, _, _, stream) =
        run_round(AggregatorKind::Grouped { h: 3 }, 1, false, Telemetry::to_buffer());
    let stream = stream.expect("armed buffer sink");
    assert!(
        !stream.contains("oram_"),
        "non-ORAM rounds must not grow ORAM counters (the pinned golden depends on it)"
    );
}

/// The `RoundReport` summary replaces the old `shard_recovery_stats()`
/// side channel: unsharded rounds carry an explicit zeroed recovery
/// summary (not an absent one), sharded chaos rounds a non-zero one, and
/// the chunk/checkpoint counts always reflect the round that ran.
#[test]
fn round_report_telemetry_summary_is_always_populated() {
    let kind = AggregatorKind::Advanced;
    let (_, _, mono, _) = run_round(kind, 1, false, Telemetry::off());
    assert_eq!(mono.telemetry.recovery, RecoveryStats::default(), "S=1 recovery must be zeroed");
    assert!(mono.telemetry.chunks > 0, "the summary must count folded chunks");
    assert_eq!(
        mono.telemetry.ckpt_seals, mono.telemetry.chunks,
        "default checkpointing seals once per folded chunk"
    );
    assert!(mono.telemetry.ckpt_bytes > 0);

    let (_, _, chaotic, _) = run_round(kind, 4, true, Telemetry::off());
    let recovery = chaotic.telemetry.recovery;
    assert!(recovery.retries + recovery.relaunches > 0, "the chaos script must exercise recovery");
}
