//! The streaming-aggregation contract, cross-crate: for every aggregator
//! kind, driving the [`Aggregator`] trait chunk-by-chunk is **bitwise
//! output- and trace-digest-identical** to the one-shot path, at every
//! tested (chunk, threads) combination — and the trace stays a pure
//! function of the public shape (obliviousness is preserved under
//! chunking, since the chunk schedule is public).

use olive_core::aggregation::{
    aggregate_with_threads, reference_average, Aggregator, AggregatorKind, StreamingAggregator,
};
use olive_fl::SparseGradient;
use olive_memsim::{assert_oblivious, Granularity, NullTracer, RecordingTracer, TraceDigest};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_updates(n: usize, k: usize, d: usize, seed: u64) -> Vec<SparseGradient> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut idxs: Vec<u32> = (0..d as u32).collect();
            for t in 0..k {
                let j = rng.gen_range(t..d);
                idxs.swap(t, j);
            }
            let mut indices: Vec<u32> = idxs[..k].to_vec();
            indices.sort_unstable();
            SparseGradient {
                dense_dim: d,
                indices,
                values: (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            }
        })
        .collect()
}

fn all_kinds() -> Vec<AggregatorKind> {
    vec![
        AggregatorKind::NonOblivious,
        AggregatorKind::Baseline { cacheline_weights: 16 },
        AggregatorKind::Baseline { cacheline_weights: 1 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 3 },
        AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
        AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 11 },
    ]
}

fn stream(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
    chunk: usize,
    threads: usize,
) -> (Vec<u32>, TraceDigest) {
    let mut tr = RecordingTracer::new(Granularity::Element);
    let mut agg = StreamingAggregator::new(kind, d, threads);
    for c in updates.chunks(chunk) {
        agg.ingest(c, &mut tr);
    }
    assert_eq!(agg.clients(), updates.len());
    let out = agg.finalize(&mut tr);
    (out.iter().map(|v| v.to_bits()).collect(), tr.digest())
}

/// The satellite matrix: chunk ∈ {1, 7, n} × threads ∈ {1, 2, 8} for
/// every aggregator kind, against the one-shot path at the same thread
/// count.
#[test]
fn streaming_equals_one_shot_at_every_chunk_and_thread_count() {
    let d = 96;
    let n = 13;
    let updates = random_updates(n, 6, d, 41);
    for kind in all_kinds() {
        for threads in [1usize, 2, 8] {
            let (one_bits, one_digest) = {
                let mut tr = RecordingTracer::new(Granularity::Element);
                let out = aggregate_with_threads(kind, &updates, d, threads, &mut tr);
                (out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(), tr.digest())
            };
            for chunk in [1usize, 7, n] {
                let (bits, digest) = stream(kind, &updates, d, chunk, threads);
                assert_eq!(
                    bits, one_bits,
                    "{kind:?} chunk={chunk} threads={threads}: output bits drifted"
                );
                assert_eq!(
                    digest, one_digest,
                    "{kind:?} chunk={chunk} threads={threads}: trace drifted"
                );
            }
        }
    }
}

/// Chunked ingestion still computes the right answer (guards against the
/// equality test comparing two identically-wrong paths).
#[test]
fn streaming_matches_dense_reference() {
    let d = 64;
    let updates = random_updates(11, 5, d, 7);
    let expected = reference_average(&updates, d);
    for kind in all_kinds() {
        let mut agg = StreamingAggregator::new(kind, d, 2);
        for c in updates.chunks(4) {
            agg.ingest(c, &mut NullTracer);
        }
        let got = agg.finalize(&mut NullTracer);
        for (i, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
            assert!((a - b).abs() < 1e-3, "{kind:?} coordinate {i}: {a} vs {b}");
        }
    }
}

/// Chunk size is public: for a fixed (shape, chunk, threads) schedule the
/// oblivious kinds still produce content-independent traces.
#[test]
fn streaming_is_oblivious_at_fixed_chunk_schedule() {
    let d = 96;
    let inputs: Vec<Vec<SparseGradient>> =
        [1u64, 2, 3].iter().map(|&s| random_updates(9, 6, d, s)).collect();
    for kind in [
        AggregatorKind::Baseline { cacheline_weights: 1 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 2 },
    ] {
        for chunk in [1usize, 4] {
            for threads in [1usize, 2] {
                assert_oblivious(Granularity::Element, &inputs, |ups, tr| {
                    let mut agg = StreamingAggregator::new(kind, d, threads);
                    for c in ups.chunks(chunk) {
                        agg.ingest(c, tr);
                    }
                    agg.finalize(tr);
                });
            }
        }
    }
}

/// Uneven chunk partitions (not just fixed sizes): splitting the round at
/// any single cut point reproduces the one-shot bits and trace.
#[test]
fn arbitrary_cut_points_are_invisible() {
    let d = 48;
    let n = 9;
    let updates = random_updates(n, 4, d, 99);
    for kind in all_kinds() {
        let (one_bits, one_digest) = stream(kind, &updates, d, n, 2);
        for cut in 1..n {
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = StreamingAggregator::new(kind, d, 2);
            agg.ingest(&updates[..cut], &mut tr);
            agg.ingest(&updates[cut..], &mut tr);
            let out = agg.finalize(&mut tr);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, one_bits, "{kind:?} cut={cut}: output bits drifted");
            assert_eq!(tr.digest(), one_digest, "{kind:?} cut={cut}: trace drifted");
        }
    }
}
