//! Section 3.3's generality claim, cross-crate: the index leak is
//! independent of the wire encoding and of quantization. Whatever format
//! the client transmits, the server decodes to positions before the
//! dense update — and the access pattern is identical. Runs over real
//! trained top-k updates from the shared canonical deployment.

use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_fl::encoding::{quantize_stochastic, BitmapEncoded};
use olive_fl::SparseGradient;
use olive_integration_tests::canonical_updates;
use olive_memsim::{trace_of, Granularity};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn updates() -> Vec<SparseGradient> {
    canonical_updates().to_vec()
}

fn dim() -> usize {
    canonical_updates()[0].dense_dim
}

#[test]
fn bitmap_encoding_produces_identical_leak() {
    let pair_encoded = updates();
    let bitmap_encoded: Vec<SparseGradient> = pair_encoded
        .iter()
        .map(|sg| BitmapEncoded::encode(sg).decode().expect("valid encoding"))
        .collect();
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::NonOblivious, ups, dim(), tr);
        })
    };
    assert_eq!(
        trace(&pair_encoded),
        trace(&bitmap_encoded),
        "the adversary sees the same access sequence whatever the wire format"
    );
}

#[test]
fn quantization_does_not_change_the_leak() {
    let original = updates();
    let mut quantized = updates();
    let mut rng = SmallRng::seed_from_u64(5);
    for sg in &mut quantized {
        quantize_stochastic(sg, &mut rng);
    }
    // Values differ…
    assert_ne!(original[0].values, quantized[0].values);
    // …but the trace (hence the leaked index sets) is identical.
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::NonOblivious, ups, dim(), tr);
        })
    };
    assert_eq!(trace(&original), trace(&quantized));
}

#[test]
fn defense_covers_alternative_encodings_too() {
    // Obliviousness is a property of the aggregation algorithm, so it
    // holds for bitmap-decoded updates exactly as for pair-decoded ones:
    // compare against a same-shape input with every index rotated.
    let a: Vec<SparseGradient> =
        updates().iter().map(|sg| BitmapEncoded::encode(sg).decode().unwrap()).collect();
    let d = dim() as u32;
    let b: Vec<SparseGradient> = updates()
        .iter()
        .map(|sg| {
            let mut indices: Vec<u32> = sg.indices.iter().map(|i| (i + 13) % d).collect();
            indices.sort_unstable();
            SparseGradient {
                dense_dim: sg.dense_dim,
                indices,
                values: sg.values.iter().map(|v| -v).collect(),
            }
        })
        .collect();
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::Advanced, ups, dim(), tr);
        })
    };
    assert_eq!(trace(&a), trace(&b));
}
