//! Section 3.3's generality claim, cross-crate: the index leak is
//! independent of the wire encoding and of quantization. Whatever format
//! the client transmits, the server decodes to positions before the
//! dense update — and the access pattern is identical.

use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_fl::encoding::{quantize_stochastic, BitmapEncoded};
use olive_fl::SparseGradient;
use olive_memsim::{trace_of, Granularity};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn updates() -> Vec<SparseGradient> {
    vec![
        SparseGradient {
            dense_dim: 64,
            indices: vec![2, 17, 40, 63],
            values: vec![0.5, -1.5, 2.5, 0.25],
        },
        SparseGradient { dense_dim: 64, indices: vec![2, 9, 33], values: vec![1.0, 1.0, 1.0] },
    ]
}

#[test]
fn bitmap_encoding_produces_identical_leak() {
    let pair_encoded = updates();
    let bitmap_encoded: Vec<SparseGradient> = pair_encoded
        .iter()
        .map(|sg| BitmapEncoded::encode(sg).decode().expect("valid encoding"))
        .collect();
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::NonOblivious, ups, 64, tr);
        })
    };
    assert_eq!(
        trace(&pair_encoded),
        trace(&bitmap_encoded),
        "the adversary sees the same access sequence whatever the wire format"
    );
}

#[test]
fn quantization_does_not_change_the_leak() {
    let original = updates();
    let mut quantized = updates();
    let mut rng = SmallRng::seed_from_u64(5);
    for sg in &mut quantized {
        quantize_stochastic(sg, &mut rng);
    }
    // Values differ…
    assert_ne!(original[0].values, quantized[0].values);
    // …but the trace (hence the leaked index sets) is identical.
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::NonOblivious, ups, 64, tr);
        })
    };
    assert_eq!(trace(&original), trace(&quantized));
}

#[test]
fn defense_covers_alternative_encodings_too() {
    // Obliviousness is a property of the aggregation algorithm, so it
    // holds for bitmap-decoded updates exactly as for pair-decoded ones.
    let a: Vec<SparseGradient> =
        updates().iter().map(|sg| BitmapEncoded::encode(sg).decode().unwrap()).collect();
    let b = vec![
        SparseGradient { dense_dim: 64, indices: vec![0, 1, 2, 3], values: vec![9.0; 4] },
        SparseGradient { dense_dim: 64, indices: vec![60, 61, 62], values: vec![-9.0; 3] },
    ];
    let trace = |ups: &[SparseGradient]| {
        trace_of(Granularity::Element, |tr| {
            aggregate(AggregatorKind::Advanced, ups, 64, tr);
        })
    };
    assert_eq!(trace(&a), trace(&b));
}
