//! Cross-crate executable versions of the paper's obliviousness claims
//! (Definition 2.1, Propositions 3.1/3.2/5.1/5.2), at both observation
//! granularities, over randomized inputs.

use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_fl::SparseGradient;
use olive_memsim::{assert_not_oblivious, assert_oblivious, Granularity};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_updates(n: usize, k: usize, d: usize, seed: u64) -> Vec<SparseGradient> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut idxs: Vec<u32> = (0..d as u32).collect();
            for t in 0..k {
                let j = rng.gen_range(t..d);
                idxs.swap(t, j);
            }
            let mut indices: Vec<u32> = idxs[..k].to_vec();
            indices.sort_unstable();
            SparseGradient {
                dense_dim: d,
                indices,
                values: (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            }
        })
        .collect()
}

fn inputs(seeds: &[u64]) -> Vec<Vec<SparseGradient>> {
    seeds.iter().map(|&s| random_updates(4, 6, 96, s)).collect()
}

#[test]
fn linear_on_sparse_leaks_at_both_granularities() {
    let ins = inputs(&[1, 2, 3]);
    for granularity in [Granularity::Element, Granularity::Cacheline] {
        assert_not_oblivious(granularity, &ins, |ups, tr| {
            aggregate(AggregatorKind::NonOblivious, ups, 96, tr);
        });
    }
}

#[test]
fn baseline_c16_oblivious_at_cacheline() {
    let ins = inputs(&[4, 5, 6]);
    assert_oblivious(Granularity::Cacheline, &ins, |ups, tr| {
        aggregate(AggregatorKind::Baseline { cacheline_weights: 16 }, ups, 96, tr);
    });
}

#[test]
fn baseline_c1_oblivious_at_element() {
    let ins = inputs(&[7, 8, 9]);
    assert_oblivious(Granularity::Element, &ins, |ups, tr| {
        aggregate(AggregatorKind::Baseline { cacheline_weights: 1 }, ups, 96, tr);
    });
}

#[test]
fn advanced_fully_oblivious() {
    let ins = inputs(&[10, 11, 12, 13]);
    for granularity in [Granularity::Element, Granularity::Cacheline] {
        assert_oblivious(granularity, &ins, |ups, tr| {
            aggregate(AggregatorKind::Advanced, ups, 96, tr);
        });
    }
}

#[test]
fn grouped_fully_oblivious() {
    let ins = inputs(&[14, 15, 16]);
    for h in [1usize, 2, 4] {
        assert_oblivious(Granularity::Element, &ins, |ups, tr| {
            aggregate(AggregatorKind::Grouped { h }, ups, 96, tr);
        });
    }
}

/// Proposition 5.2 extended to the parallel grouped path: for any fixed
/// worker count the merged multi-thread trace is still a pure function of
/// the input shape, at both observation granularities.
#[test]
fn grouped_parallel_oblivious_at_every_thread_count() {
    use olive_core::aggregation::grouped::aggregate_grouped_with_threads;
    let ins = inputs(&[17, 18, 19]);
    for threads in [2usize, 4, 8] {
        for granularity in [Granularity::Element, Granularity::Cacheline] {
            assert_oblivious(granularity, &ins, |ups, tr| {
                aggregate_grouped_with_threads(ups, 96, 2, threads, tr);
            });
        }
    }
}

/// Adversarially structured inputs: extreme index skew (everyone sends
/// the same coordinates) vs perfectly spread indices. If any oblivious
/// algorithm's trace depended on collision structure, this would catch it.
#[test]
fn oblivious_algorithms_hide_index_collisions() {
    let d = 64usize;
    let k = 8usize;
    let skewed: Vec<SparseGradient> = (0..4)
        .map(|_| SparseGradient {
            dense_dim: d,
            indices: (0..k as u32).collect(),
            values: vec![1.0; k],
        })
        .collect();
    let spread: Vec<SparseGradient> = (0..4)
        .map(|u| SparseGradient {
            dense_dim: d,
            indices: (0..k as u32).map(|j| u as u32 * k as u32 + j).collect(),
            values: vec![1.0; k],
        })
        .collect();
    let ins = vec![skewed, spread];
    for kind in [
        AggregatorKind::Baseline { cacheline_weights: 1 },
        AggregatorKind::Advanced,
        AggregatorKind::Grouped { h: 2 },
    ] {
        assert_oblivious(Granularity::Element, &ins, |ups, tr| {
            aggregate(kind, ups, d, tr);
        });
    }
}

/// PathORAM is *statistically* oblivious: traces vary with path
/// randomness, but the access-count shape is input-independent.
#[test]
fn path_oram_trace_shape_input_independent() {
    use olive_memsim::RecordingTracer;
    let shape = |seed: u64| {
        let ups = random_updates(3, 5, 32, seed);
        let mut tr = RecordingTracer::new(Granularity::Element);
        aggregate(
            AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
            &ups,
            32,
            &mut tr,
        );
        (tr.stats().reads, tr.stats().writes)
    };
    assert_eq!(shape(100), shape(200));
}
