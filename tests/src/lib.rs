//! Shared helpers for the cross-crate integration tests.

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{DpConfig, OliveConfig, OliveSystem};
use olive_data::synthetic::{Dataset, Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_fl::{ClientConfig, Sparsifier};
use olive_nn::zoo::mlp;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Canonical small deployment used across the integration tests:
/// 16 clients, 5 classes, 1 label each, an MLP with ~1k parameters.
pub fn small_system(
    aggregator: AggregatorKind,
    dp: Option<DpConfig>,
    seed: u64,
) -> (OliveSystem, Dataset) {
    let generator = Generator::new(SyntheticConfig::tiny(32, 5), seed);
    let clients = partition(&generator, 16, LabelAssignment::Fixed(1), 20, seed);
    let model = mlp(32, 12, 5, 0.0, seed);
    let d = model.param_count();
    let cfg = OliveConfig {
        n_clients: 16,
        sample_rate: 0.6,
        client: ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.25,
            sparsifier: Sparsifier::TopK(d / 16),
            clip: None,
        },
        aggregator,
        server_lr: 0.8,
        dp,
        seed,
    };
    let system = OliveSystem::new(model, clients, cfg);
    let mut rng = SmallRng::seed_from_u64(seed ^ 1);
    let pool = generator.sample_balanced(25, &mut rng);
    (system, pool)
}
