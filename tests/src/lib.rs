//! Shared helpers for the cross-crate integration tests.
//!
//! All three behavioural suites (`end_to_end`, `attack_defense`,
//! `encoding_leak`) draw on **one canonical small deployment**, generated
//! once per test binary and cloned per test. Dataset synthesis, label
//! partitioning, model init and the attacker pool are fixture-seeded and
//! paid once; only the protocol seed (sampling order, training batches,
//! DP noise) varies per test. This keeps the suites fast as scenario
//! coverage grows and makes regressions comparable across suites — every
//! test sees literally the same federation.

use std::sync::OnceLock;

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{DpConfig, OliveConfig, OliveSystem};
use olive_data::synthetic::{Dataset, Generator, SyntheticConfig};
use olive_data::{partition, ClientData, LabelAssignment};
use olive_fl::{local_update, ClientConfig, SparseGradient, Sparsifier};
use olive_nn::zoo::mlp;
use olive_nn::Model;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Seed of the canonical deployment's *data* (clients, model init, pool).
/// Per-test seeds only steer the protocol on top of this fixed world.
const FIXTURE_SEED: u64 = 7;

/// The canonical small deployment: 16 clients, 5 classes, 1 label each,
/// an MLP with ~1k parameters, and a balanced attacker/test pool.
struct CanonicalFixture {
    clients: Vec<ClientData>,
    model: Model,
    pool: Dataset,
}

fn fixture() -> &'static CanonicalFixture {
    static FIXTURE: OnceLock<CanonicalFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let generator = Generator::new(SyntheticConfig::tiny(32, 5), FIXTURE_SEED);
        let clients = partition(&generator, 16, LabelAssignment::Fixed(1), 20, FIXTURE_SEED);
        let model = mlp(32, 12, 5, 0.0, FIXTURE_SEED);
        let mut rng = SmallRng::seed_from_u64(FIXTURE_SEED ^ 1);
        let pool = generator.sample_balanced(25, &mut rng);
        CanonicalFixture { clients, model, pool }
    })
}

fn client_config(d: usize) -> ClientConfig {
    ClientConfig {
        epochs: 2,
        batch_size: 10,
        lr: 0.25,
        sparsifier: Sparsifier::TopK(d / 16),
        clip: None,
    }
}

/// A system over the canonical deployment. `seed` steers only the
/// protocol randomness (participant sampling, batch order, DP noise) —
/// the federation itself is the shared fixture.
pub fn small_system(
    aggregator: AggregatorKind,
    dp: Option<DpConfig>,
    seed: u64,
) -> (OliveSystem, Dataset) {
    let fx = fixture();
    let d = fx.model.param_count();
    let cfg = OliveConfig {
        n_clients: fx.clients.len(),
        sample_rate: 0.6,
        client: client_config(d),
        aggregator,
        server_lr: 0.8,
        dp,
        seed,
    };
    let system = OliveSystem::new(fx.model.clone(), fx.clients.clone(), cfg);
    (system, fx.pool.clone())
}

/// Sparse top-k updates a handful of canonical clients would upload in
/// round 0 — real trained gradients for encoding/trace tests, computed
/// once per test binary.
pub fn canonical_updates() -> &'static [SparseGradient] {
    static UPDATES: OnceLock<Vec<SparseGradient>> = OnceLock::new();
    UPDATES.get_or_init(|| {
        let fx = fixture();
        let global: Vec<f32> = fx.model.get_params();
        let cfg = client_config(global.len());
        let mut scratch = fx.model.clone();
        fx.clients
            .iter()
            .take(4)
            .map(|c| {
                local_update(&mut scratch, &global, &c.dataset, &cfg, FIXTURE_SEED ^ c.user as u64)
            })
            .collect()
    })
}
