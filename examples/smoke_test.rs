//! Smoke test: every example binary must run to completion.
//!
//! `cargo test` builds the package's bin targets and exposes their paths
//! via `CARGO_BIN_EXE_<name>`, so this exercises exactly the binaries a
//! user would run. The examples are already written against tiny
//! parameters; each should finish in seconds.

use std::process::Command;

fn run(name: &str, exe: &str) {
    let output = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example `{name}` ({exe}): {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(!output.stdout.is_empty(), "example `{name}` produced no output");
}

#[test]
fn quickstart_runs() {
    run("quickstart", env!("CARGO_BIN_EXE_quickstart"));
}

#[test]
fn attack_and_defense_runs() {
    run("attack_and_defense", env!("CARGO_BIN_EXE_attack_and_defense"));
}

#[test]
fn dp_federated_hospital_runs() {
    run("dp_federated_hospital", env!("CARGO_BIN_EXE_dp_federated_hospital"));
}

#[test]
fn enclave_attestation_runs() {
    run("enclave_attestation", env!("CARGO_BIN_EXE_enclave_attestation"));
}
