//! Remote attestation walkthrough: what a client checks before joining.
//!
//! Demonstrates the full provisioning handshake of Algorithm 1 line 1 —
//! enclave measurement, platform quote, client verification, DH key
//! exchange, encrypted upload — plus the two failure cases the protocol
//! must catch: a forged quote and a genuine quote for the *wrong* enclave
//! binary.
//!
//! Run with: `cargo run --release -p olive-examples --bin enclave_attestation`

use olive_tee::attestation::verify_quote;
use olive_tee::{AttestationService, ClientSession, Enclave, EnclaveConfig};

fn main() {
    // Platform provisioning (Intel's role, simulated).
    let service = AttestationService::new([1u8; 32]);
    println!("platform verification key: {:#018x}", service.public_key());

    // The FL operator launches the aggregation enclave.
    let config = EnclaveConfig::default();
    let mut enclave = Enclave::launch(&config, [2u8; 32]);
    println!("enclave measurement (MRENCLAVE): {}", hex(&enclave.measurement()));

    // The enclave requests a quote binding its DH share.
    let quote = enclave.attest(&service, b"olive-fl-v1 rounds<=100");
    println!(
        "quote obtained; report user_data = {:?}",
        String::from_utf8_lossy(&quote.report.user_data)
    );

    // A client verifies and joins.
    let expected = enclave.measurement();
    let mut client =
        ClientSession::establish(42, service.public_key(), &expected, &quote, [3u8; 32])
            .expect("genuine enclave must verify");
    enclave
        .register_client(42, client.dh_public())
        .expect("enclave attested above, registration is permitted");
    println!("client 42: attestation OK, session key established");

    // Round 0: encrypted gradient upload.
    enclave.begin_round(0, vec![42]);
    let upload = client.seal_upload(0, b"(sparse gradient cells would go here)");
    let plain = enclave.open_upload(&upload).expect("authentic upload");
    println!("enclave decrypted {} bytes from client 42", plain.len());

    // Failure case 1: a forged quote (wrong platform key).
    let rogue_service = AttestationService::new([9u8; 32]);
    let rogue_quote = rogue_service.quote(quote.report.clone());
    let err = verify_quote(service.public_key(), &expected, &rogue_quote).unwrap_err();
    println!("forged quote rejected: {err}");

    // Failure case 2: a genuine quote for a backdoored enclave binary.
    let evil_cfg = EnclaveConfig {
        code_identity: "olive-aggregator-with-exfiltration".into(),
        ..Default::default()
    };
    let mut evil = Enclave::launch(&evil_cfg, [4u8; 32]);
    let evil_quote = evil.attest(&service, b"olive-fl-v1 rounds<=100");
    let err = ClientSession::establish(43, service.public_key(), &expected, &evil_quote, [5u8; 32])
        .unwrap_err();
    println!("wrong-measurement enclave rejected: {err}");

    println!("\nper Algorithm 1: clients that fail attestation refuse to join the FL task.");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
