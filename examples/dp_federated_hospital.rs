//! DP-FL in Olive (Algorithm 6): the hospital scenario from the paper's
//! introduction.
//!
//! A consortium of 40 clinics trains a diagnosis model. Each clinic's
//! label mix is sensitive (which cancer subtypes it treats). Olive gives
//! them client-level central DP **and** side-channel protection: clipping
//! on the client, Gaussian noise inside the enclave, oblivious
//! aggregation, and a live (ε, δ) budget from the RDP accountant.
//!
//! Run with: `cargo run --release -p olive-examples --bin dp_federated_hospital`

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{DpConfig, OliveConfig, OliveSystem};
use olive_data::synthetic::{Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_dp::sigma_theorem_d8;
use olive_fl::{ClientConfig, Sparsifier};
use olive_memsim::NullTracer;
use olive_nn::zoo::mlp;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let rounds = 12u64;
    let (n_clinics, q) = (40usize, 0.4f64);
    // Pick sigma from the paper's closed form (Theorem D.8) for a target
    // (8.0, 1e-5)-DP budget over the planned rounds, then let the tight
    // accountant report the actually-spent epsilon as training progresses.
    // (Client-level DP at a 40-clinic cohort is intrinsically noisy — the
    // paper's Appendix D runs N = 1000; the point here is the machinery.)
    let sigma = sigma_theorem_d8(8.0, 1e-5, q, rounds);
    println!("Theorem D.8 noise multiplier for (ε=8, δ=1e-5, q={q}, T={rounds}): σ = {sigma:.2}");

    let generator = Generator::new(SyntheticConfig::tiny(80, 8), 12);
    let clinics = partition(&generator, n_clinics, LabelAssignment::Random(3), 50, 3);
    let model = mlp(80, 24, 8, 0.0, 6);
    let d = model.param_count();
    let cfg = OliveConfig {
        n_clients: n_clinics,
        sample_rate: q,
        client: ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.25,
            sparsifier: Sparsifier::TopK(d / 10),
            clip: None, // the DP config below supplies the clip bound
        },
        aggregator: AggregatorKind::Grouped { h: 8 },
        server_lr: 1.0,
        dp: Some(DpConfig { sigma, clip: 1.0, delta: 1e-5 }),
        seed: 888,
    };
    let mut system = OliveSystem::new(model, clinics, cfg);

    let mut rng = SmallRng::seed_from_u64(55);
    let test = generator.sample_balanced(40, &mut rng);
    println!("round | clinics | test acc | ε spent (δ=1e-5)");
    for _ in 0..rounds {
        let report = system.run_round(&mut NullTracer).expect("fault-free round completes");
        let (_, acc) = system.server.model.evaluate(&test.features, &test.labels, 64);
        println!(
            "{:>5} | {:>7} | {:>7.1}% | {:.3}",
            report.round,
            report.processed_users.len(),
            acc * 100.0,
            report.epsilon_spent.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nThe enclave released only differentially private models; the access pattern\n\
         revealed nothing about which clinic treats which subtype (Grouped-Advanced is\n\
         fully oblivious), and the spent ε stayed under the provisioned budget."
    );
}
