//! Quickstart: oblivious federated learning in ~60 lines.
//!
//! Builds a small federated deployment (synthetic non-IID data, an MLP
//! global model), provisions the simulated enclave via remote attestation,
//! runs a few rounds with the fully oblivious Advanced aggregator
//! (Algorithm 4), and prints the model's progress.
//!
//! Run with: `cargo run --release -p olive-examples --bin quickstart`

use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{OliveConfig, OliveSystem};
use olive_data::synthetic::{Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_fl::{ClientConfig, Sparsifier};
use olive_memsim::NullTracer;
use olive_nn::zoo::mlp;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic 10-class dataset, split non-IID across 30 clients
    //    (each holds 2 labels — the sensitive attribute).
    let generator = Generator::new(SyntheticConfig::tiny(64, 10), 7);
    let clients = partition(&generator, 30, LabelAssignment::Fixed(2), 40, 7);

    // 2. The global model and the FL configuration: top-k sparsification
    //    at alpha = 5%, oblivious Advanced aggregation inside the enclave.
    let model = mlp(64, 24, 10, 0.0, 7);
    let d = model.param_count();
    println!("global model: {} parameters, top-k = {}", d, d / 20);
    let cfg = OliveConfig {
        n_clients: 30,
        sample_rate: 0.4,
        client: ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.2,
            sparsifier: Sparsifier::TopK(d / 20),
            clip: None,
        },
        aggregator: AggregatorKind::Advanced,
        server_lr: 1.0,
        dp: None,
        seed: 2024,
    };

    // 3. Provisioning performs remote attestation with all 30 clients and
    //    stores per-user AES-GCM session keys in the enclave.
    let mut system = OliveSystem::new(model, clients, cfg);

    // 4. Run rounds. Every gradient is encrypted client-side, decrypted
    //    only inside the enclave, and aggregated with a data-independent
    //    memory access pattern.
    let mut rng = SmallRng::seed_from_u64(99);
    let test = generator.sample_balanced(30, &mut rng);
    for round in 0..8 {
        let report = system.run_round(&mut NullTracer).expect("fault-free round completes");
        let (loss, acc) = system.server.model.evaluate(&test.features, &test.labels, 64);
        println!(
            "round {round}: {} participants, test loss {loss:.3}, accuracy {:.1}%  (enclave-signed: {})",
            report.processed_users.len(),
            acc * 100.0,
            system.verify_model_signature(report.round, &system.global_params(), &report.model_signature),
        );
    }
    println!("\ndone — the server never saw a plaintext gradient or a data-dependent access.");
}
