//! Attack & defense, side by side (the paper's core story).
//!
//! Runs the *same* federated deployment twice:
//!   1. with the plain linear aggregation (Proposition 3.2: leaky) —
//!      mounts Algorithm 2's label-inference attack from the observed
//!      memory trace and prints the recovered labels;
//!   2. with the oblivious Advanced aggregation (Proposition 5.2) —
//!      shows the identical attack collapsing to chance.
//!
//! Run with: `cargo run --release -p olive-examples --bin attack_and_defense`

use olive_attack::{run_attack, AttackMethod, AttackPipelineConfig};
use olive_core::aggregation::AggregatorKind;
use olive_core::olive::{OliveConfig, OliveSystem};
use olive_data::synthetic::{Generator, SyntheticConfig};
use olive_data::{partition, LabelAssignment};
use olive_fl::{ClientConfig, Sparsifier};
use olive_nn::zoo::mlp;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(aggregator: AggregatorKind) -> (OliveSystem, olive_data::Dataset) {
    let generator = Generator::new(SyntheticConfig::tiny(48, 6), 31);
    let clients = partition(&generator, 24, LabelAssignment::Fixed(1), 30, 11);
    let model = mlp(48, 16, 6, 0.0, 5);
    let d = model.param_count();
    let cfg = OliveConfig {
        n_clients: 24,
        sample_rate: 0.75,
        client: ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.25,
            sparsifier: Sparsifier::TopK(d / 20),
            clip: None,
        },
        aggregator,
        server_lr: 0.5,
        dp: None,
        seed: 4321,
    };
    let system = OliveSystem::new(model, clients, cfg);
    let mut rng = SmallRng::seed_from_u64(77);
    let pool = generator.sample_balanced(30, &mut rng);
    (system, pool)
}

fn mount(name: &str, aggregator: AggregatorKind) {
    println!("\n--- {name} ---");
    let (mut system, pool) = build(aggregator);
    let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
    let outcome = run_attack(&mut system, &pool, &cfg);
    for r in outcome.per_user.iter().take(6) {
        println!(
            "  user {:>2}: true label {:?} → inferred {:?} {}",
            r.user,
            r.truth,
            r.inferred,
            if r.truth == r.inferred { "LEAKED" } else { "(wrong)" }
        );
    }
    println!(
        "  attack success over {} victims: all = {:.0}%, top-1 = {:.0}%",
        outcome.metrics.evaluated,
        outcome.metrics.all * 100.0,
        outcome.metrics.top1 * 100.0,
    );
}

fn main() {
    println!("Each of 24 clients holds ONE sensitive label (think: a cancer subtype).");
    println!("The semi-honest server watches the enclave's memory access pattern.");
    mount("linear aggregation (vulnerable)", AggregatorKind::NonOblivious);
    mount("Olive's Advanced aggregation (oblivious)", AggregatorKind::Advanced);
    println!("\nSame protocol, same crypto — the only difference is the access pattern.");
}
