//! The Olive system: Algorithm 1 (and its DP variant, Algorithm 6)
//! end-to-end on the simulated TEE.
//!
//! Round flow, mirroring the paper line by line:
//! 1. provisioning — every client remote-attests the enclave and derives a
//!    per-user AES-GCM session key (line 1);
//! 2. each round, the enclave samples participants `Q_t` (line 5);
//! 3. sampled clients locally train, top-k sparsify, optionally clip, and
//!    encrypt their deltas (lines 7, 15–23);
//! 4. the enclave verifies membership and authenticity, decrypts
//!    (lines 8–11), and aggregates **obliviously** (line 12) — under the
//!    chosen [`AggregatorKind`], with every adversary-visible access
//!    reported to the caller's [`Tracer`]. Since the streaming refactor
//!    this runs as a *chunked pipeline*: uploads are opened in batches
//!    ([`Enclave::open_upload_batch`]) and folded incrementally through
//!    the [`StreamingAggregator`], bounding the enclave working set at
//!    O(chunk·k + d·threads) and overlapping decryption of chunk i+1
//!    with aggregation of chunk i;
//! 5. in DP mode the enclave perturbs the aggregate with Gaussian noise
//!    calibrated to (σ, C) before it leaves the enclave (Algorithm 6
//!    line 12), and the RDP accountant tracks the spent budget;
//! 6. the update is applied to the global model and the enclave signs the
//!    result so clients can detect server-side tampering (Section 5.6).

use olive_data::ClientData;
use olive_dp::{GaussianMechanism, RdpAccountant};
use olive_fl::{local_update, sample_clients, ClientConfig, FedAvgServer, SparseGradient};
use olive_memsim::{ParallelTracer, WorkingSet};
use olive_nn::Model;
use olive_tee::{AttestationService, ClientSession, Enclave, EnclaveConfig, SealedMessage, UserId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::aggregation::{Aggregator, AggregatorKind, StreamingAggregator};
use crate::parallel::default_threads;

/// Central-DP configuration (Algorithm 6).
#[derive(Clone, Copy, Debug)]
pub struct DpConfig {
    /// Noise multiplier σ.
    pub sigma: f64,
    /// ℓ2 clipping bound C.
    pub clip: f32,
    /// Target δ for ε reporting.
    pub delta: f64,
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct OliveConfig {
    /// Total registered clients N.
    pub n_clients: usize,
    /// Per-round sampling rate q.
    pub sample_rate: f64,
    /// Client-side training hyperparameters (includes the sparsifier).
    pub client: ClientConfig,
    /// Which in-enclave aggregation algorithm to run.
    pub aggregator: AggregatorKind,
    /// Server learning rate η_s.
    pub server_lr: f32,
    /// Enable Algorithm 6 (client clipping + enclave Gaussian noise).
    pub dp: Option<DpConfig>,
    /// Master seed (sampling, training batch order, DP noise).
    pub seed: u64,
}

/// What one round produced — including everything the *adversary* gets
/// (the processing order of users, needed by the attack's trace parser).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round counter t.
    pub round: u64,
    /// Users processed, in upload-processing order (public to the server).
    pub processed_users: Vec<UserId>,
    /// Per-user transmitted k (public: ciphertext length reveals it).
    pub k_per_user: usize,
    /// Cumulative (ε, δ)-DP spent, if DP mode is on.
    pub epsilon_spent: Option<f64>,
    /// Peak enclave working-set bytes observed during this round's
    /// chunked ingestion + aggregation (staged chunks, aggregator-resident
    /// state and transient scratch, charged per chunk).
    pub working_set_bytes: u64,
    /// Whether that peak exceeds the enclave's *configured* EPC budget
    /// (`EnclaveConfig::epc_bytes` — not a hardcoded constant).
    pub would_page: bool,
    /// Enclave signature over the updated global parameters.
    pub model_signature: [u8; 32],
}

/// The running system: server + enclave + provisioned clients.
pub struct OliveSystem {
    /// The FedAvg server (global model lives here).
    pub server: FedAvgServer,
    enclave: Enclave,
    sessions: Vec<ClientSession>,
    clients: Vec<ClientData>,
    scratch: Model,
    cfg: OliveConfig,
    rng: SmallRng,
    round: u64,
    accountant: RdpAccountant,
    threads: Option<usize>,
    chunk: Option<usize>,
}

/// Process-default ingestion chunk size: `OLIVE_CHUNK` if set to a
/// positive integer, else 64 clients per chunk. Read once and cached;
/// [`OliveSystem::set_chunk`] overrides per system. Any value produces
/// the identical round output and aggregation trace (the streaming
/// contract) — the knob trades enclave working set against per-chunk
/// overhead.
pub fn default_chunk() -> usize {
    use std::sync::OnceLock;
    static CHUNK: OnceLock<usize> = OnceLock::new();
    *CHUNK.get_or_init(|| {
        if let Ok(v) = std::env::var("OLIVE_CHUNK") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("OLIVE_CHUNK={v:?} is not a positive integer; using default");
        }
        64
    })
}

impl OliveSystem {
    /// Provisions the system: launches the enclave, runs remote
    /// attestation with every client, and registers the session keys
    /// (Algorithm 1 line 1). Panics if any client rejects the enclave —
    /// in the simulation that indicates a harness bug.
    pub fn new(model: Model, clients: Vec<ClientData>, cfg: OliveConfig) -> Self {
        Self::with_enclave_config(model, clients, cfg, EnclaveConfig::default())
    }

    /// [`OliveSystem::new`] with an explicit enclave configuration — how a
    /// deployment with a different usable-EPC budget (or code identity) is
    /// provisioned. [`RoundReport::would_page`] compares the observed
    /// working-set peak against *this* configuration's `epc_bytes`.
    pub fn with_enclave_config(
        model: Model,
        clients: Vec<ClientData>,
        cfg: OliveConfig,
        enclave_cfg: EnclaveConfig,
    ) -> Self {
        assert_eq!(clients.len(), cfg.n_clients, "client shards vs n_clients mismatch");
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&cfg.seed.to_be_bytes());
        let service = AttestationService::new(seed_bytes);
        let mut enclave = Enclave::launch(&enclave_cfg, seed_bytes);
        let quote = enclave.attest(&service, b"olive-fl-v1");
        let measurement = enclave.measurement();
        let sessions: Vec<ClientSession> = clients
            .iter()
            .map(|c| {
                let mut cs = seed_bytes;
                cs[24..28].copy_from_slice(&c.user.to_be_bytes());
                cs[28] ^= 0xC1;
                let session = ClientSession::establish(
                    c.user,
                    service.public_key(),
                    &measurement,
                    &quote,
                    cs,
                )
                .expect("attestation must succeed in the simulation");
                enclave.register_client(c.user, session.dh_public());
                session
            })
            .collect();
        let scratch = model.clone();
        let server = FedAvgServer::new(model, cfg.server_lr);
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x011F_E5EED);
        OliveSystem {
            server,
            enclave,
            sessions,
            clients,
            scratch,
            cfg,
            rng,
            round: 0,
            accountant: RdpAccountant::new(),
            threads: None,
            chunk: None,
        }
    }

    /// Pins the worker-thread count for parallel round work (client-side
    /// training and the grouped aggregation). Unset, the process default
    /// applies: `OLIVE_THREADS` or `available_parallelism().min(8)`;
    /// `1` forces the exact serial code paths and traces.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = Some(threads);
    }

    /// The worker-thread count rounds will use ([`OliveSystem::set_threads`]
    /// or the process default).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// Pins the ingestion chunk size (clients opened, decoded and folded
    /// per step). Unset, the process default applies ([`default_chunk`]:
    /// `OLIVE_CHUNK` or 64). The chunk size is public and does not affect
    /// the round output or the aggregation trace — only the enclave's
    /// peak working set and the open/aggregate overlap granularity.
    pub fn set_chunk(&mut self, chunk: usize) {
        assert!(chunk >= 1, "chunk size must be at least 1");
        self.chunk = Some(chunk);
    }

    /// The ingestion chunk size rounds will use ([`OliveSystem::set_chunk`]
    /// or the process default).
    pub fn chunk(&self) -> usize {
        self.chunk.unwrap_or_else(default_chunk)
    }

    /// The current global parameters θ_t.
    pub fn global_params(&self) -> Vec<f32> {
        self.server.params()
    }

    /// Model dimension d.
    pub fn dim(&self) -> usize {
        self.server.dim()
    }

    /// The label set of a client (ground truth for attack evaluation —
    /// *not* visible to the adversary).
    pub fn client_label_set(&self, user: UserId) -> &[usize] {
        &self.clients[user as usize].label_set
    }

    /// Runs one full round (Algorithm 1 lines 4–14 / Algorithm 6),
    /// reporting the enclave's memory accesses during aggregation to `tr`.
    ///
    /// Since the streaming refactor the enclave never materializes the
    /// whole round: uploads are opened, decoded and folded into the
    /// [`StreamingAggregator`] in chunks of [`OliveSystem::chunk`]
    /// clients, the EPC budget is charged per chunk (staged plaintext +
    /// aggregator-resident state + transient scratch), and — with a
    /// worker-thread budget ≥ 2 — chunk i+1 is opened/decoded on a spare
    /// thread while chunk i aggregates. The round output and the
    /// aggregation trace are bitwise identical at every chunk size (the
    /// streaming contract), so this changes memory and throughput, never
    /// results.
    pub fn run_round<TR: ParallelTracer>(&mut self, tr: &mut TR) -> RoundReport {
        let t = self.round;
        // Line 5: secure in-enclave sampling.
        let sampled = sample_clients(self.cfg.n_clients, self.cfg.sample_rate, &mut self.rng);
        self.enclave.begin_round(t, sampled.clone());

        // Lines 7 + 15–23: local training, sparsify, clip, encrypt.
        let global = self.server.params();
        let mut client_cfg = self.cfg.client;
        if let Some(dp) = self.cfg.dp {
            client_cfg.clip = Some(dp.clip);
        }
        let local_results = self.train_sampled(&sampled, &global, &client_cfg, t);

        // Clients seal their uploads; the ciphertexts sit in *untrusted*
        // server memory (no EPC pressure) until the enclave pulls them in
        // chunk by chunk.
        let sealed: Vec<SealedMessage> = sampled
            .iter()
            .zip(local_results.iter())
            .map(|(&user, sparse)| self.sessions[user as usize].seal_upload(t, &sparse.encode()))
            .collect();

        // Lines 8–12: chunked verify/decrypt/fold under the adversary's
        // tracer, with per-chunk EPC accounting.
        let d = self.server.dim();
        let threads = self.threads();
        let chunk_size = self.chunk();
        let k = local_results.first().map(|u| u.k()).unwrap_or(0);
        let mut agg = StreamingAggregator::new(self.cfg.aggregator, d, threads);
        let mut ws = WorkingSet::default();
        let mut resident = agg.resident_bytes();
        ws.alloc(resident);
        self.enclave.epc.alloc(resident);

        let msg_chunks: Vec<&[SealedMessage]> = sealed.chunks(chunk_size).collect();
        let mut staged: Vec<SparseGradient> = Vec::new();
        let mut staged_bytes = 0u64;
        if let Some(first) = msg_chunks.first() {
            staged_bytes = staged_chunk_bytes(first);
            ws.alloc(staged_bytes);
            self.enclave.epc.alloc(staged_bytes);
            staged = open_and_decode(&mut self.enclave, first);
        }
        for i in 0..msg_chunks.len() {
            // Charge the transient ingest scratch, and — when
            // double-buffering — the next chunk's staging, both live
            // while this chunk folds.
            let scratch = agg.ingest_scratch_bytes(staged.len(), k);
            ws.alloc(scratch);
            self.enclave.epc.alloc(scratch);
            let next_msgs = msg_chunks.get(i + 1).copied();
            let next_bytes = next_msgs.map(staged_chunk_bytes).unwrap_or(0);
            ws.alloc(next_bytes);
            self.enclave.epc.alloc(next_bytes);
            let next = if let Some(msgs) = next_msgs {
                if threads >= 2 {
                    // Pipeline: open/decode chunk i+1 on an extra worker
                    // while chunk i aggregates on this thread. Opening
                    // touches only the enclave's session/replay state,
                    // which the aggregation does not. The opener rides
                    // *on top of* the aggregation's thread budget (up to
                    // threads+1 runnable threads): shrinking the
                    // aggregation to threads−1 workers would change the
                    // Grouped wave schedule and break the bitwise
                    // chunk-invariance contract, and the opener is
                    // crypto-bound while the sorts are memory-bound, so
                    // the deliberate oversubscription overlaps well.
                    let enclave = &mut self.enclave;
                    std::thread::scope(|scope| {
                        let opener = scope.spawn(move || open_and_decode(enclave, msgs));
                        agg.ingest(&staged, tr);
                        opener.join().expect("upload opener thread must not panic")
                    })
                } else {
                    agg.ingest(&staged, tr);
                    open_and_decode(&mut self.enclave, msgs)
                }
            } else {
                agg.ingest(&staged, tr);
                Vec::new()
            };
            ws.free(scratch);
            self.enclave.epc.free(scratch);
            ws.free(staged_bytes);
            self.enclave.epc.free(staged_bytes);
            staged_bytes = next_bytes;
            staged = next;
            let now_resident = agg.resident_bytes();
            ws.resize(resident, now_resident);
            self.enclave.epc.free(resident);
            self.enclave.epc.alloc(now_resident);
            resident = now_resident;
        }

        let fin_scratch = agg.finalize_scratch_bytes();
        ws.alloc(fin_scratch);
        self.enclave.epc.alloc(fin_scratch);
        let mut delta = agg.finalize(tr);
        ws.free(fin_scratch);
        self.enclave.epc.free(fin_scratch);
        ws.free(resident);
        self.enclave.epc.free(resident);

        // Algorithm 6 line 12: enclave-side Gaussian perturbation. The
        // finalize() above divides by the realized n; Algorithm 6 scales
        // by qN, so rescale before noising.
        let n = sampled.len();
        let epsilon_spent = if let Some(dp) = self.cfg.dp {
            let qn = (self.cfg.sample_rate * self.cfg.n_clients as f64) as f32;
            let rescale = n as f32 / qn.max(1.0);
            for x in &mut delta {
                *x *= rescale;
            }
            let mech = GaussianMechanism::new(dp.sigma / qn.max(1.0) as f64, dp.clip);
            mech.perturb(&mut delta, &mut self.rng);
            self.accountant.add_subsampled_gaussian(self.cfg.sample_rate, dp.sigma, 1);
            Some(self.accountant.epsilon(dp.delta))
        } else {
            None
        };

        // Line 14: global update + enclave signature (Section 5.6).
        self.server.apply_aggregate(&delta);
        let new_params = self.server.params();
        let mut payload = Vec::with_capacity(new_params.len() * 4 + 8);
        payload.extend_from_slice(&t.to_be_bytes());
        for p in &new_params {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        let model_signature = self.enclave.sign_output(&payload);

        self.round += 1;
        RoundReport {
            round: t,
            processed_users: sampled,
            k_per_user: k,
            epsilon_spent,
            working_set_bytes: ws.peak,
            would_page: ws.peak > self.enclave.epc.limit,
            model_signature,
        }
    }

    /// Local training for the sampled users, parallelized across threads
    /// (client-side compute, outside the enclave).
    fn train_sampled(
        &mut self,
        sampled: &[UserId],
        global: &[f32],
        client_cfg: &ClientConfig,
        round: u64,
    ) -> Vec<SparseGradient> {
        let n_threads = self.threads();
        if sampled.len() < 4 || n_threads == 1 {
            return sampled
                .iter()
                .map(|&user| {
                    let data = &self.clients[user as usize].dataset;
                    local_update(
                        &mut self.scratch,
                        global,
                        data,
                        client_cfg,
                        self.cfg.seed ^ (round << 20) ^ user as u64,
                    )
                })
                .collect();
        }
        let clients = &self.clients;
        let template = &self.scratch;
        let seed = self.cfg.seed;
        let mut results: Vec<Option<SparseGradient>> = vec![None; sampled.len()];
        let chunk = sampled.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            for (slot_chunk, user_chunk) in results.chunks_mut(chunk).zip(sampled.chunks(chunk)) {
                scope.spawn(move || {
                    let mut model = template.clone();
                    for (slot, &user) in slot_chunk.iter_mut().zip(user_chunk.iter()) {
                        let data = &clients[user as usize].dataset;
                        *slot = Some(local_update(
                            &mut model,
                            global,
                            data,
                            client_cfg,
                            seed ^ (round << 20) ^ user as u64,
                        ));
                    }
                });
            }
        });
        results.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Verifies an enclave model signature (what a client would do).
    pub fn verify_model_signature(&self, round: u64, params: &[f32], sig: &[u8; 32]) -> bool {
        let mut payload = Vec::with_capacity(params.len() * 4 + 8);
        payload.extend_from_slice(&round.to_be_bytes());
        for p in params {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        self.enclave.verify_output(&payload, sig)
    }
}

/// Enclave-resident bytes of one *staged* upload chunk: the decoded
/// `(index, value)` pairs (8 B per transmitted cell, read off the public
/// ciphertext lengths: payload = 8-byte header + 8k, ciphertext =
/// payload + 16-byte tag).
pub fn staged_chunk_bytes(msgs: &[SealedMessage]) -> u64 {
    msgs.iter().map(|m| m.ciphertext.len().saturating_sub(8 + 16) as u64).sum()
}

/// Opens one chunk of uploads through [`Enclave::open_upload_batch`] and
/// decodes the plaintext gradient encodings — the per-chunk enclave work
/// of the streaming round pipeline ([`OliveSystem::run_round`]), shared
/// with the ingestion benchmarks. Panics on any invalid upload (the
/// simulation's clients are honest; a deployment would drop the slot and
/// continue, which [`Enclave::open_upload_batch`]'s per-message `Result`s
/// support).
pub fn open_and_decode(enclave: &mut Enclave, msgs: &[SealedMessage]) -> Vec<SparseGradient> {
    enclave
        .open_upload_batch(msgs)
        .into_iter()
        .map(|r| {
            let plain = r.expect("sampled, registered, fresh uploads must verify");
            SparseGradient::decode(&plain).expect("well-formed client encoding")
        })
        .collect()
}

/// Scratch working-set estimate (bytes) for each aggregator — what the
/// enclave allocates beyond the d-cell output (drives the EPC/grouping
/// analysis of Sections 5.3 and 5.5, e.g. the paper's 122 MB at N = 10⁴).
/// `n` is the participant count and `k` the per-client cell count.
pub fn working_set_bytes(kind: AggregatorKind, n: usize, k: usize, d: usize) -> u64 {
    let cell = 8u64;
    let nk = n * k;
    match kind {
        AggregatorKind::NonOblivious => nk as u64 * cell + d as u64 * 4,
        AggregatorKind::Baseline { cacheline_weights } => {
            nk as u64 * cell + (d.div_ceil(cacheline_weights) * cacheline_weights) as u64 * 4
        }
        AggregatorKind::Advanced => ((nk + d).next_power_of_two() as u64) * cell + d as u64 * 4,
        AggregatorKind::Grouped { h } => {
            // One group's sort vector in flight at a time + the running
            // total (Section 5.3: this is exactly what the optimization
            // shrinks below cache/EPC size).
            let hk = h.max(1).min(n) * k;
            let group_cells = (hk + d).next_power_of_two() as u64;
            group_cells * cell + 2 * d as u64 * 4
        }
        AggregatorKind::PathOram { .. } => {
            // Tree (2·leaves−1 buckets × Z slots × 16 B) + stash.
            let leaves = d.next_power_of_two().max(2) as u64;
            (2 * leaves - 1) * 4 * 16 + nk as u64 * cell
        }
        AggregatorKind::DiffOblivious { .. } => nk as u64 * cell * 2 + d as u64 * 4,
    }
}

/// [`working_set_bytes`] adjusted for parallel execution: the grouped
/// algorithm keeps up to `threads` group sort vectors (plus their partial
/// sums) in flight per wave, so its enclave footprint scales with the
/// worker count. Serial algorithms are unaffected; `threads = 1` equals
/// the serial estimate.
pub fn working_set_bytes_threaded(
    kind: AggregatorKind,
    n: usize,
    k: usize,
    d: usize,
    threads: usize,
) -> u64 {
    match kind {
        AggregatorKind::Grouped { h } => {
            let cell = 8u64;
            let hk = h.max(1).min(n) * k;
            let group_cells = (hk + d).next_power_of_two() as u64;
            let groups = n.div_ceil(h.max(1)).max(1);
            let in_flight = threads.clamp(1, groups) as u64;
            // Per worker: one sort vector + one d-sized partial; shared:
            // the running total (cf. the serial formula's 2·d term =
            // one partial + the total).
            in_flight * (group_cells * cell + d as u64 * 4) + d as u64 * 4
        }
        _ => working_set_bytes(kind, n, k, d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_data::synthetic::{Generator, SyntheticConfig};
    use olive_data::{partition, LabelAssignment};
    use olive_fl::Sparsifier;
    use olive_memsim::NullTracer;
    use olive_nn::zoo::mlp;

    fn tiny_system(aggregator: AggregatorKind, dp: Option<DpConfig>) -> OliveSystem {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let clients = partition(&gen, 8, LabelAssignment::Fixed(2), 10, 1);
        let model = mlp(12, 6, 4, 0.0, 5);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 8,
            sample_rate: 0.5,
            client: ClientConfig {
                epochs: 1,
                batch_size: 5,
                lr: 0.1,
                sparsifier: Sparsifier::TopK(d / 10),
                clip: None,
            },
            aggregator,
            server_lr: 1.0,
            dp,
            seed: 77,
        };
        OliveSystem::new(model, clients, cfg)
    }

    #[test]
    fn round_runs_and_updates_model() {
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let before = sys.global_params();
        let report = sys.run_round(&mut NullTracer);
        assert!(!report.processed_users.is_empty());
        assert!(report.epsilon_spent.is_none());
        let after = sys.global_params();
        assert_ne!(before, after, "global model must move");
        assert!(sys.verify_model_signature(0, &after, &report.model_signature));
        assert!(!sys.verify_model_signature(0, &before, &report.model_signature));
    }

    #[test]
    fn all_aggregators_produce_same_model() {
        // With identical seeds, every oblivious aggregator must yield the
        // same global trajectory as the non-oblivious reference.
        let reference = {
            let mut sys = tiny_system(AggregatorKind::NonOblivious, None);
            sys.run_round(&mut NullTracer);
            sys.global_params()
        };
        for kind in [
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
        ] {
            let mut sys = tiny_system(kind, None);
            sys.run_round(&mut NullTracer);
            let params = sys.global_params();
            for (a, b) in reference.iter().zip(params.iter()) {
                assert!((a - b).abs() < 1e-4, "{kind:?} diverged");
            }
        }
    }

    #[test]
    fn threaded_working_set_scales_with_workers() {
        let kind = AggregatorKind::Grouped { h: 4 };
        let serial = working_set_bytes(kind, 16, 8, 256);
        assert_eq!(working_set_bytes_threaded(kind, 16, 8, 256, 1), serial);
        let w2 = working_set_bytes_threaded(kind, 16, 8, 256, 2);
        let w4 = working_set_bytes_threaded(kind, 16, 8, 256, 4);
        assert!(serial < w2 && w2 < w4, "{serial} < {w2} < {w4}");
        // Capped at the group count: 16 clients / h=4 → 4 groups.
        assert_eq!(w4, working_set_bytes_threaded(kind, 16, 8, 256, 64));
        // Serial algorithms are unaffected by the worker count.
        assert_eq!(
            working_set_bytes_threaded(AggregatorKind::Advanced, 16, 8, 256, 8),
            working_set_bytes(AggregatorKind::Advanced, 16, 8, 256)
        );
    }

    #[test]
    fn thread_count_does_not_change_the_round() {
        // One full round — parallel training + parallel grouped
        // aggregation — must be bitwise reproducible at any thread count.
        let run = |threads: usize| {
            let mut sys = tiny_system(AggregatorKind::Grouped { h: 2 }, None);
            sys.set_threads(threads);
            assert_eq!(sys.threads(), threads);
            sys.run_round(&mut NullTracer);
            sys.global_params()
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            assert_eq!(serial, run(threads), "threads={threads} changed the global model");
        }
    }

    /// The streaming contract at round level: the ingestion chunk size is
    /// a public knob that must change neither the global model bits nor
    /// the aggregation trace.
    #[test]
    fn chunk_size_does_not_change_the_round() {
        use olive_memsim::{Granularity, RecordingTracer};
        let run = |chunk: usize, threads: usize| {
            let mut sys = tiny_system(AggregatorKind::Grouped { h: 2 }, None);
            sys.set_threads(threads);
            sys.set_chunk(chunk);
            assert_eq!(sys.chunk(), chunk);
            let mut tr = RecordingTracer::new(Granularity::Element);
            sys.run_round(&mut tr);
            (sys.global_params(), tr.digest())
        };
        for threads in [1usize, 2] {
            let (ref_params, ref_digest) = run(64, threads);
            for chunk in [1usize, 2, 3] {
                let (params, digest) = run(chunk, threads);
                assert_eq!(params, ref_params, "chunk={chunk} threads={threads} changed model");
                assert_eq!(digest, ref_digest, "chunk={chunk} threads={threads} changed trace");
            }
        }
    }

    /// EPC accounting is balanced (everything charged per chunk is freed)
    /// and a smaller chunk size yields a no-larger working-set peak.
    #[test]
    fn streaming_epc_accounting_balances_and_bounds() {
        let peak = |chunk: usize| {
            let mut sys = tiny_system(AggregatorKind::NonOblivious, None);
            sys.set_threads(1);
            sys.set_chunk(chunk);
            let report = sys.run_round(&mut NullTracer);
            assert!(report.working_set_bytes > 0);
            assert_eq!(sys.enclave.epc.live, 0, "all round allocations must be freed");
            report.working_set_bytes
        };
        assert!(peak(1) <= peak(64), "smaller chunks must not increase the peak");
    }

    /// `would_page` compares against the *configured* EPC budget, not a
    /// hardcoded constant.
    #[test]
    fn would_page_uses_configured_epc_budget() {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let clients = partition(&gen, 8, LabelAssignment::Fixed(2), 10, 1);
        let model = mlp(12, 6, 4, 0.0, 5);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 8,
            sample_rate: 0.5,
            client: ClientConfig {
                epochs: 1,
                batch_size: 5,
                lr: 0.1,
                sparsifier: Sparsifier::TopK(d / 10),
                clip: None,
            },
            aggregator: AggregatorKind::Advanced,
            server_lr: 1.0,
            dp: None,
            seed: 77,
        };
        let tiny_epc = olive_tee::EnclaveConfig {
            epc_bytes: 64, // far below any real round's working set
            ..Default::default()
        };
        let mut sys =
            OliveSystem::with_enclave_config(model.clone(), clients.clone(), cfg.clone(), tiny_epc);
        let report = sys.run_round(&mut NullTracer);
        assert!(report.would_page, "a 64-byte EPC must page");
        let mut roomy = OliveSystem::new(model, clients, cfg);
        let report = roomy.run_round(&mut NullTracer);
        assert!(!report.would_page, "a tiny round fits the default 96 MiB EPC");
    }

    #[test]
    fn dp_mode_reports_epsilon_and_noises() {
        let dp = DpConfig { sigma: 1.12, clip: 0.5, delta: 1e-5 };
        let mut sys = tiny_system(AggregatorKind::Advanced, Some(dp));
        let r1 = sys.run_round(&mut NullTracer);
        let e1 = r1.epsilon_spent.expect("dp mode reports epsilon");
        let r2 = sys.run_round(&mut NullTracer);
        let e2 = r2.epsilon_spent.unwrap();
        assert!(e2 > e1, "budget accumulates: {e1} -> {e2}");
    }

    #[test]
    fn rounds_progress_and_sampling_varies() {
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let a = sys.run_round(&mut NullTracer);
        let b = sys.run_round(&mut NullTracer);
        assert_eq!(a.round, 0);
        assert_eq!(b.round, 1);
    }

    #[test]
    fn training_improves_global_model() {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let test = gen.sample_balanced(25, &mut rng);
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let (loss0, _) = sys.server.model.evaluate(&test.features, &test.labels, 32);
        for _ in 0..6 {
            sys.run_round(&mut NullTracer);
        }
        let (loss1, _) = sys.server.model.evaluate(&test.features, &test.labels, 32);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }
}
