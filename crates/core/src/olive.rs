//! The Olive system: Algorithm 1 (and its DP variant, Algorithm 6)
//! end-to-end on the simulated TEE.
//!
//! Round flow, mirroring the paper line by line:
//! 1. provisioning — every client remote-attests the enclave and derives a
//!    per-user AES-GCM session key (line 1);
//! 2. each round, the enclave samples participants `Q_t` (line 5);
//! 3. sampled clients locally train, top-k sparsify, optionally clip, and
//!    encrypt their deltas (lines 7, 15–23);
//! 4. the enclave verifies membership and authenticity, decrypts
//!    (lines 8–11), and aggregates **obliviously** (line 12) — under the
//!    chosen [`AggregatorKind`], with every adversary-visible access
//!    reported to the caller's [`Tracer`]. Since the streaming refactor
//!    this runs as a *chunked pipeline*: uploads are opened in batches
//!    ([`Enclave::open_upload_batch`]) and folded incrementally through
//!    the [`StreamingAggregator`], bounding the enclave working set at
//!    O(chunk·k + d·threads) and overlapping decryption of chunk i+1
//!    with aggregation of chunk i;
//! 5. in DP mode the enclave perturbs the aggregate with Gaussian noise
//!    calibrated to (σ, C) before it leaves the enclave (Algorithm 6
//!    line 12), and the RDP accountant tracks the spent budget;
//! 6. the update is applied to the global model and the enclave signs the
//!    result so clients can detect server-side tampering (Section 5.6).

use std::collections::BTreeMap;

use olive_data::ClientData;
use olive_dp::{GaussianMechanism, RdpAccountant};
use olive_fl::{local_update, sample_clients, ClientConfig, FedAvgServer, SparseGradient};
use olive_memsim::{
    FaultPlan, ParallelTracer, RecoveryStats, ShardPlan, StateError, StateReader, StateWriter,
    WorkingSet,
};
use olive_nn::Model;
use olive_tee::{
    AttestationService, ClientSession, Enclave, EnclaveConfig, SealedMessage, TeeError, UserId,
};
use olive_telemetry::Telemetry;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::aggregation::{
    Aggregator, AggregatorKind, ShardError, ShardRuntime, StreamingAggregator,
};
use crate::parallel::default_threads;

/// Sealing label for mid-round checkpoints. One label, one monotonic
/// nonce counter: every checkpoint of every round draws from the same
/// sequence, which is what makes the rollback floor a single u64.
const CKPT_LABEL: &[u8] = b"round-ckpt";

/// Checkpoint blob format version (bump on any layout change).
const CKPT_VERSION: u8 = 1;

/// Attestation user data binding the enclave quote to the FL protocol.
const ATTEST_CONTEXT: &[u8] = b"olive-fl-v1";

/// Why a round could not run (or resume) to completion. Every variant is
/// recoverable state, not a panic: the interrupted round stays pending
/// ([`OliveSystem::interrupted`]) and [`OliveSystem::restore_round`] can
/// finish it once the cause is repaired — bitwise identical to an
/// uninterrupted round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundError {
    /// The sealed round checkpoint failed to restore: tampered blob
    /// ([`TeeError::AuthFailure`]) or a rollback below the pinned counter
    /// floor ([`TeeError::StaleSeal`]).
    Checkpoint(TeeError),
    /// The shard transport plane failed after its retry/failover budget
    /// was exhausted (which shard, how many attempts, terminal failure).
    Shard(ShardError),
}

impl core::fmt::Display for RoundError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RoundError::Checkpoint(e) => write!(f, "checkpoint restore failed: {e:?}"),
            RoundError::Shard(e) => write!(f, "shard plane failed: {e}"),
        }
    }
}

impl std::error::Error for RoundError {}

impl From<TeeError> for RoundError {
    fn from(e: TeeError) -> Self {
        RoundError::Checkpoint(e)
    }
}

impl From<ShardError> for RoundError {
    fn from(e: ShardError) -> Self {
        RoundError::Shard(e)
    }
}

/// Central-DP configuration (Algorithm 6).
#[derive(Clone, Copy, Debug)]
pub struct DpConfig {
    /// Noise multiplier σ.
    pub sigma: f64,
    /// ℓ2 clipping bound C.
    pub clip: f32,
    /// Target δ for ε reporting.
    pub delta: f64,
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct OliveConfig {
    /// Total registered clients N.
    pub n_clients: usize,
    /// Per-round sampling rate q.
    pub sample_rate: f64,
    /// Client-side training hyperparameters (includes the sparsifier).
    pub client: ClientConfig,
    /// Which in-enclave aggregation algorithm to run.
    pub aggregator: AggregatorKind,
    /// Server learning rate η_s.
    pub server_lr: f32,
    /// Enable Algorithm 6 (client clipping + enclave Gaussian noise).
    pub dp: Option<DpConfig>,
    /// Master seed (sampling, training batch order, DP noise).
    pub seed: u64,
}

/// Deterministic per-round telemetry summary embedded in every
/// [`RoundReport`]. Always populated — armed or not, it is plain
/// accounting over the round's schedule, not sink output — and zeroed
/// for empty/monolithic aspects that did not occur (an unsharded round
/// reports an explicit all-zero [`RecoveryStats`], never an absence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundTelemetry {
    /// Ingestion chunks folded by the completing invocation (a restored
    /// round counts the chunks folded after the restore point).
    pub chunks: u64,
    /// Coordinator round checkpoints sealed during those chunks.
    pub ckpt_seals: u64,
    /// Total bytes of the sealed coordinator checkpoint blobs.
    pub ckpt_bytes: u64,
    /// Shard-plane recovery work (retries, relaunches, simulated
    /// backoff) performed during this round; zeroed on the monolithic
    /// path and for fault-free sharded rounds.
    pub recovery: RecoveryStats,
}

/// What one round produced — including everything the *adversary* gets
/// (the processing order of users, needed by the attack's trace parser).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round counter t.
    pub round: u64,
    /// Users processed, in upload-processing order (public to the server).
    pub processed_users: Vec<UserId>,
    /// Per-user transmitted k (public: ciphertext length reveals it).
    pub k_per_user: usize,
    /// Cumulative (ε, δ)-DP spent, if DP mode is on.
    pub epsilon_spent: Option<f64>,
    /// Peak enclave working-set bytes observed during this round's
    /// chunked ingestion + aggregation (staged chunks, aggregator-resident
    /// state and transient scratch, charged per chunk).
    pub working_set_bytes: u64,
    /// Whether the round would page encrypted memory: monolithically
    /// (S = 1), the working-set peak against the enclave's *configured*
    /// EPC budget (`EnclaveConfig::epc_bytes` — not a hardcoded
    /// constant); sharded (S > 1), whether *any* shard enclave's own peak
    /// exceeded its own budget.
    pub would_page: bool,
    /// Per-shard EPC peaks (bytes) observed this round, in stripe order —
    /// empty when the round ran monolithically (S = 1).
    pub shard_peaks: Vec<u64>,
    /// Enclave signature over the updated global parameters.
    pub model_signature: [u8; 32],
    /// Deterministic side-band telemetry summary (chunk/checkpoint
    /// accounting plus the round's shard-recovery delta).
    pub telemetry: RoundTelemetry,
}

/// The running system: server + enclave + provisioned clients.
pub struct OliveSystem {
    /// The FedAvg server (global model lives here).
    pub server: FedAvgServer,
    enclave: Enclave,
    service: AttestationService,
    enclave_cfg: EnclaveConfig,
    seed_bytes: [u8; 32],
    sessions: Vec<ClientSession>,
    clients: Vec<ClientData>,
    scratch: Model,
    cfg: OliveConfig,
    rng: SmallRng,
    round: u64,
    accountant: RdpAccountant,
    threads: Option<usize>,
    chunk: Option<usize>,
    shards: Option<usize>,
    /// The provisioned shard plane when rounds run sharded (S > 1);
    /// `None` on the monolithic path. Lazily (re)built by
    /// [`OliveSystem::ensure_shard_runtime`] whenever the shard count
    /// changes. Shard enclaves model separate machines: they survive a
    /// coordinator crash, but the restore path re-provisions them anyway
    /// (fresh tunnels to the relaunched coordinator).
    shard_rt: Option<ShardRuntime>,
    /// Provisioning generation of the shard plane. Mixed into the shard
    /// platform seeds so a re-provisioned plane (after a coordinator
    /// restore) derives *fresh* sealing keys: the previous incarnation's
    /// discarded `"shard-ckpt"` blobs and the new plane's could otherwise
    /// share a (key, label, nonce-counter) triple with different
    /// plaintexts — an AES-GCM nonce reuse.
    shard_provision_epoch: u32,
    /// A fault script awaiting the next provisioned shard runtime
    /// ([`OliveSystem::set_fault_plan`] may be called before the plane
    /// exists; armed — `take()`n — once it does).
    pending_faults: Option<FaultPlan>,
    /// Seal a restorable checkpoint after every folded chunk (default on;
    /// [`OliveSystem::set_checkpointing`] is the escape hatch).
    checkpoint: bool,
    /// The interrupted round awaiting [`OliveSystem::restore_round`]:
    /// untrusted server-side material (public sample, ciphertexts) that
    /// survives an enclave crash.
    pending: Option<PendingRound>,
    /// Newest sealed checkpoint, as *untrusted* storage would hold it.
    ckpt_store: Option<Vec<u8>>,
    /// Rollback-protected pin of the newest checkpoint's seal counter
    /// (simulating platform NV storage that survives enclave death):
    /// [`OliveSystem::restore_round`] refuses any blob sealed earlier.
    ckpt_floor: u64,
    /// The system-wide side-band metrics handle (armed from
    /// `OLIVE_METRICS` at provisioning; [`OliveSystem::set_telemetry`]
    /// overrides). Threaded through the enclave, every client session,
    /// and the shard plane — and re-threaded across every relaunch.
    telemetry: Telemetry,
}

/// The untrusted remainder of an in-flight round: everything that lives
/// *outside* the enclave and therefore survives a crash. The sampled set
/// is public (Algorithm 1 publishes the processing order), the sealed
/// uploads are ciphertexts in server memory, and the replay floors are
/// nonce counters already visible on the wire — integrity of all of it is
/// enforced by the sealed checkpoint, not by this struct.
struct PendingRound {
    t: u64,
    sampled: Vec<UserId>,
    sealed: Vec<SealedMessage>,
    k: usize,
    /// Replay floors as of round start (before any upload was opened):
    /// the base the per-chunk floor snapshots are computed from.
    base_floors: Vec<(UserId, u64)>,
    /// Chunk geometry the round started with, so a round that dies
    /// *before its first checkpoint* (e.g. a chunk-0 shard fault) can be
    /// restarted from the untrusted material with the same schedule.
    chunk_size: usize,
    threads: usize,
    /// DP/sampling generator state right after the sample was drawn —
    /// the no-checkpoint restart's RNG restore point (training seeds are
    /// derived per-user, not drawn from this stream, so post-prepare the
    /// next draw is the finalize-time noise).
    rng_after_prepare: [u64; 4],
}

/// Enclave-side ingestion state threaded through [`OliveSystem`]'s
/// chunked fold — the part a crash destroys and a checkpoint restores.
struct IngestState {
    agg: StreamingAggregator,
    ws: WorkingSet,
    next_chunk: usize,
    chunk_size: usize,
    threads: usize,
    /// ORAM eviction count already reported to the `oram_evicted_blocks`
    /// counter (the ORAM reports a running total; telemetry wants
    /// per-chunk deltas). Zero for non-ORAM kinds and after a restore —
    /// a restored ORAM restarts its non-serialized eviction counter.
    oram_evicted_seen: u64,
}

/// Decoded checkpoint payload (the sealed blob's plaintext).
struct Checkpoint {
    chunks_done: usize,
    chunk_size: usize,
    threads: usize,
    rng_state: [u64; 4],
    floors: Vec<(UserId, u64)>,
    agg_state: Vec<u8>,
}

/// Process-default ingestion chunk size: `OLIVE_CHUNK` if set to a
/// positive integer, else 64 clients per chunk. Read once and cached;
/// [`OliveSystem::set_chunk`] overrides per system. Any value produces
/// the identical round output and aggregation trace (the streaming
/// contract) — the knob trades enclave working set against per-chunk
/// overhead.
pub fn default_chunk() -> usize {
    use std::sync::OnceLock;
    static CHUNK: OnceLock<usize> = OnceLock::new();
    *CHUNK.get_or_init(|| {
        if let Ok(v) = std::env::var("OLIVE_CHUNK") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("OLIVE_CHUNK={v:?} is not a positive integer; using default");
        }
        64
    })
}

/// Process-default shard count: `OLIVE_SHARDS` if set to a positive
/// integer, else 1 (monolithic). Read once and cached;
/// [`OliveSystem::set_shards`] overrides per system. Sharding never
/// changes the round output or the aggregation trace (the canonical
/// compute schedule is untouched) — the knob splits the enclave memory
/// plane into per-stripe EPC budgets.
pub fn default_shards() -> usize {
    use std::sync::OnceLock;
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        if let Ok(v) = std::env::var("OLIVE_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("OLIVE_SHARDS={v:?} is not a positive integer; using default");
        }
        1
    })
}

impl OliveSystem {
    /// Provisions the system: launches the enclave, runs remote
    /// attestation with every client, and registers the session keys
    /// (Algorithm 1 line 1). Panics if any client rejects the enclave —
    /// in the simulation that indicates a harness bug.
    pub fn new(model: Model, clients: Vec<ClientData>, cfg: OliveConfig) -> Self {
        Self::with_enclave_config(model, clients, cfg, EnclaveConfig::default())
    }

    /// [`OliveSystem::new`] with an explicit enclave configuration — how a
    /// deployment with a different usable-EPC budget (or code identity) is
    /// provisioned. [`RoundReport::would_page`] compares the observed
    /// working-set peak against *this* configuration's `epc_bytes`.
    pub fn with_enclave_config(
        model: Model,
        clients: Vec<ClientData>,
        cfg: OliveConfig,
        enclave_cfg: EnclaveConfig,
    ) -> Self {
        assert_eq!(clients.len(), cfg.n_clients, "client shards vs n_clients mismatch");
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&cfg.seed.to_be_bytes());
        let telemetry = Telemetry::from_env();
        let service = AttestationService::new(seed_bytes);
        let mut enclave = Enclave::launch(&enclave_cfg, seed_bytes);
        enclave.set_telemetry(telemetry.clone());
        let quote = enclave.attest(&service, ATTEST_CONTEXT);
        let measurement = enclave.measurement();
        let sessions: Vec<ClientSession> = clients
            .iter()
            .map(|c| {
                let mut cs = seed_bytes;
                cs[24..28].copy_from_slice(&c.user.to_be_bytes());
                cs[28] ^= 0xC1;
                let mut session = ClientSession::establish(
                    c.user,
                    service.public_key(),
                    &measurement,
                    &quote,
                    cs,
                )
                .expect("attestation must succeed in the simulation");
                session.set_telemetry(telemetry.clone());
                enclave
                    .register_client(c.user, session.dh_public())
                    .expect("the enclave attested above, so registration is permitted");
                session
            })
            .collect();
        let scratch = model.clone();
        let server = FedAvgServer::new(model, cfg.server_lr);
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x011F_E5EED);
        OliveSystem {
            server,
            enclave,
            service,
            enclave_cfg,
            seed_bytes,
            sessions,
            clients,
            scratch,
            cfg,
            rng,
            round: 0,
            accountant: RdpAccountant::new(),
            threads: None,
            chunk: None,
            shards: None,
            shard_rt: None,
            shard_provision_epoch: 0,
            pending_faults: None,
            checkpoint: true,
            pending: None,
            ckpt_store: None,
            ckpt_floor: 0,
            telemetry,
        }
    }

    /// Replaces the system-wide telemetry handle and re-threads it
    /// through every instrumented component: the coordinator enclave,
    /// every client session, and the shard plane (if provisioned).
    /// Arming or swapping the sink never perturbs round output,
    /// signature or trace — telemetry is strictly side-band.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.enclave.set_telemetry(telemetry.clone());
        for s in &mut self.sessions {
            s.set_telemetry(telemetry.clone());
        }
        if let Some(rt) = self.shard_rt.as_mut() {
            rt.set_telemetry(telemetry);
        }
    }

    /// Pins the worker-thread count for parallel round work (client-side
    /// training and the grouped aggregation). Unset, the process default
    /// applies: `OLIVE_THREADS` or `available_parallelism().min(8)`;
    /// `1` forces the exact serial code paths and traces.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = Some(threads);
    }

    /// The worker-thread count rounds will use ([`OliveSystem::set_threads`]
    /// or the process default).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// Pins the ingestion chunk size (clients opened, decoded and folded
    /// per step). Unset, the process default applies ([`default_chunk`]:
    /// `OLIVE_CHUNK` or 64). The chunk size is public and does not affect
    /// the round output or the aggregation trace — only the enclave's
    /// peak working set and the open/aggregate overlap granularity.
    pub fn set_chunk(&mut self, chunk: usize) {
        assert!(chunk >= 1, "chunk size must be at least 1");
        self.chunk = Some(chunk);
    }

    /// The ingestion chunk size rounds will use ([`OliveSystem::set_chunk`]
    /// or the process default).
    pub fn chunk(&self) -> usize {
        self.chunk.unwrap_or_else(default_chunk)
    }

    /// Pins the shard count (stripes of the `G` dimension, one enclave
    /// per stripe). Unset, the process default applies
    /// ([`default_shards`]: `OLIVE_SHARDS` or 1). Sharding is public
    /// topology and changes neither the round output nor the trace — only
    /// how the enclave memory plane is partitioned. The effective count
    /// is clamped to the model dimension (a stripe must be non-empty).
    pub fn set_shards(&mut self, shards: usize) {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = Some(shards);
    }

    /// The shard count rounds will use ([`OliveSystem::set_shards`] or
    /// the process default).
    pub fn shards(&self) -> usize {
        self.shards.unwrap_or_else(default_shards)
    }

    /// (Re)provisions the shard plane to match the configured count:
    /// drops it on the monolithic path, keeps a matching runtime, and
    /// launches + mutually attests a fresh one when the count changed.
    /// The coordinator re-attests under [`ATTEST_CONTEXT`] — the same
    /// user data as client provisioning, so its transcript (which every
    /// client session key is bound to) is unchanged.
    ///
    /// Each provisioning generation mixes a fresh epoch into the shard
    /// platform seeds: a re-provisioned plane must not reuse its
    /// predecessor's sealing keys, or the discarded incarnation's
    /// checkpoint blobs and the new one's could collide on a sealing
    /// nonce (same key, same label, restarted counter).
    fn ensure_shard_runtime(&mut self) -> Result<(), RoundError> {
        let s = self.shards().min(self.server.dim());
        if s <= 1 {
            self.shard_rt = None;
            return Ok(());
        }
        if self.shard_rt.as_ref().is_some_and(|rt| rt.shards() == s) {
            return Ok(());
        }
        self.shard_provision_epoch += 1;
        let _span = self.telemetry.span(
            "shard_provision",
            &[
                ("shards", (s as u64).into()),
                ("d", (self.server.dim() as u64).into()),
                ("epoch", self.shard_provision_epoch.into()),
            ],
        );
        let mut seed = self.seed_bytes;
        for (b, e) in seed[8..12].iter_mut().zip(self.shard_provision_epoch.to_be_bytes()) {
            *b ^= e;
        }
        let mut rt = ShardRuntime::provision(
            &self.service,
            &mut self.enclave,
            ATTEST_CONTEXT,
            seed,
            self.enclave_cfg.epc_bytes,
            self.server.dim(),
            s,
        )?;
        rt.set_telemetry(self.telemetry.clone());
        self.shard_rt = Some(rt);
        Ok(())
    }

    /// Arms a deterministic fault script for the next sharded round(s)
    /// (on the monolithic path there is no transport plane to fault and
    /// the plan is simply never consumed). Composes with `OLIVE_FAULTS`:
    /// an explicit plan wins; the environment plan re-arms whenever no
    /// script is active ([`ShardRuntime::begin_round`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(rt) = self.shard_rt.as_mut() {
            rt.set_fault_plan(plan);
        } else {
            self.pending_faults = Some(plan);
        }
    }

    /// Recovery work (retries, relaunches, simulated backoff) the current
    /// shard plane has performed; `None` on the monolithic path.
    #[deprecated(note = "read `RoundReport::telemetry.recovery` instead — it is always \
                populated (zeroed when unsharded) and scoped to the round")]
    pub fn shard_recovery_stats(&self) -> Option<RecoveryStats> {
        self.shard_rt.as_ref().map(|rt| rt.recovery_stats())
    }

    /// The current global parameters θ_t.
    pub fn global_params(&self) -> Vec<f32> {
        self.server.params()
    }

    /// Model dimension d.
    pub fn dim(&self) -> usize {
        self.server.dim()
    }

    /// The label set of a client (ground truth for attack evaluation —
    /// *not* visible to the adversary).
    pub fn client_label_set(&self, user: UserId) -> &[usize] {
        &self.clients[user as usize].label_set
    }

    /// Runs one full round (Algorithm 1 lines 4–14 / Algorithm 6),
    /// reporting the enclave's memory accesses during aggregation to `tr`.
    ///
    /// Since the streaming refactor the enclave never materializes the
    /// whole round: uploads are opened, decoded and folded into the
    /// [`StreamingAggregator`] in chunks of [`OliveSystem::chunk`]
    /// clients, the EPC budget is charged per chunk (staged plaintext +
    /// aggregator-resident state + transient scratch), and — with a
    /// worker-thread budget ≥ 2 — chunk i+1 is opened/decoded on a spare
    /// thread while chunk i aggregates. The round output and the
    /// aggregation trace are bitwise identical at every chunk size (the
    /// streaming contract), so this changes memory and throughput, never
    /// results.
    ///
    /// Rounds are **crash-safe**: after every folded chunk the enclave
    /// seals a restore point (round counter, aggregator state, replay
    /// floors, RNG state) under [`CKPT_LABEL`], so a crashed round
    /// resumes via [`OliveSystem::restore_round`] instead of restarting —
    /// bitwise identical in output and trace to an uninterrupted run.
    /// [`OliveSystem::set_checkpointing`] turns the sealing off.
    ///
    /// Sharded rounds (S > 1) are additionally **fault-tolerant**: shard
    /// deaths and tunnel corruption recover in-band (bounded retries,
    /// mid-round shard relaunch + re-attestation + checkpoint restore)
    /// without perturbing output, signature or trace. Only *exhausted*
    /// recovery surfaces, as [`RoundError::Shard`] — the round stays
    /// pending and [`OliveSystem::restore_round`] finishes it.
    pub fn run_round<TR: ParallelTracer>(
        &mut self,
        tr: &mut TR,
    ) -> Result<RoundReport, RoundError> {
        self.run_round_inner(None, tr)
            .map(|r| r.expect("round completes when no kill point is injected"))
    }

    /// [`OliveSystem::run_round`] with a simulated crash injected after
    /// chunk `kill_after` (0-based) has been folded and checkpointed: the
    /// enclave is torn down and relaunched cold — aggregator, staged
    /// plaintexts, replay floors and seal counters all gone — and `None`
    /// is returned. [`OliveSystem::restore_round`] then resumes from the
    /// sealed checkpoint. A `kill_after` at or past the last chunk lets
    /// the round complete normally (`Some(report)`).
    pub fn run_round_kill_after<TR: ParallelTracer>(
        &mut self,
        kill_after: usize,
        tr: &mut TR,
    ) -> Result<Option<RoundReport>, RoundError> {
        assert!(self.checkpoint, "kill testing requires checkpointing to be enabled");
        self.run_round_inner(Some(kill_after), tr)
    }

    fn run_round_inner<TR: ParallelTracer>(
        &mut self,
        kill_after: Option<usize>,
        tr: &mut TR,
    ) -> Result<Option<RoundReport>, RoundError> {
        assert!(
            self.pending.is_none(),
            "an interrupted round must be restored (restore_round) before starting a new one"
        );
        self.ensure_shard_runtime()?;
        if let Some(rt) = self.shard_rt.as_mut() {
            if let Some(plan) = self.pending_faults.take() {
                rt.set_fault_plan(plan);
            }
        }
        let _round_span = self.telemetry.span("round", &[("round", self.round.into())]);
        let pending = self.prepare_round();
        if pending.sampled.is_empty() {
            return Ok(Some(self.finish_empty_round(pending.t)));
        }
        let st = IngestState {
            agg: StreamingAggregator::new(self.cfg.aggregator, self.server.dim(), pending.threads),
            ws: WorkingSet::default(),
            next_chunk: 0,
            chunk_size: pending.chunk_size,
            threads: pending.threads,
            oram_evicted_seen: 0,
        };
        self.resume_ingestion(pending, st, kill_after, tr)
    }

    /// Algorithm 1 lines 4–7 + 15–23: sample, train, sparsify, encrypt.
    /// Everything this returns lives in *untrusted* server memory — it is
    /// the part of a round that survives an enclave crash.
    fn prepare_round(&mut self) -> PendingRound {
        let t = self.round;
        // Line 5: secure in-enclave sampling.
        let sampled = sample_clients(self.cfg.n_clients, self.cfg.sample_rate, &mut self.rng);
        let _span = self.telemetry.span(
            "sample",
            &[("round", t.into()), ("participants", (sampled.len() as u64).into())],
        );
        self.enclave.begin_round(t, sampled.clone());
        if let Some(rt) = self.shard_rt.as_mut() {
            rt.begin_round();
        }
        let base_floors = self.enclave.replay_floors();

        // Lines 7 + 15–23: local training, sparsify, clip, encrypt.
        let global = self.server.params();
        let mut client_cfg = self.cfg.client;
        if let Some(dp) = self.cfg.dp {
            client_cfg.clip = Some(dp.clip);
        }
        let local_results = self.train_sampled(&sampled, &global, &client_cfg, t);

        // Clients seal their uploads; the ciphertexts sit in *untrusted*
        // server memory (no EPC pressure) until the enclave pulls them in
        // chunk by chunk.
        let sealed: Vec<SealedMessage> = sampled
            .iter()
            .zip(local_results.iter())
            .map(|(&user, sparse)| self.sessions[user as usize].seal_upload(t, &sparse.encode()))
            .collect();
        let k = local_results.first().map(|u| u.k()).unwrap_or(0);
        PendingRound {
            t,
            sampled,
            sealed,
            k,
            base_floors,
            chunk_size: self.chunk(),
            threads: self.threads(),
            rng_after_prepare: self.rng.state(),
        }
    }

    /// An honest Poisson sample is empty with probability `(1−q)^N`.
    /// Before this short-circuit that shape reached `finalize` with
    /// n = 0, where the linear average's 0/0 produced NaN deltas that
    /// poisoned the global model. Zero participants mean zero privacy
    /// loss, so DP mode adds no noise and composes nothing — the
    /// accountant's running ε is simply re-reported.
    fn finish_empty_round(&mut self, t: u64) -> RoundReport {
        let delta = vec![0.0f32; self.server.dim()];
        self.server.apply_aggregate(&delta);
        let model_signature = self.sign_params(t);
        self.round += 1;
        let report = RoundReport {
            round: t,
            processed_users: Vec::new(),
            k_per_user: 0,
            epsilon_spent: self.cfg.dp.map(|dp| self.accountant.epsilon(dp.delta)),
            working_set_bytes: 0,
            would_page: false,
            shard_peaks: self.shard_rt.as_ref().map(|rt| rt.peaks()).unwrap_or_default(),
            model_signature,
            telemetry: RoundTelemetry::default(),
        };
        self.telemetry.flush_stats();
        report
    }

    /// Lines 8–12 (+ Algorithm 6 line 12 and line 14): chunked
    /// verify/decrypt/fold under the adversary's tracer with per-chunk
    /// EPC accounting, then finalize, noise, apply, sign. Entered at
    /// chunk 0 by a fresh round and at `st.next_chunk` by
    /// [`OliveSystem::restore_round`]; returns `Ok(None)` only when
    /// `kill_after` injects a crash, and `Err` when the shard plane
    /// exhausts its recovery budget — in both cases the round stays
    /// pending and restorable.
    fn resume_ingestion<TR: ParallelTracer>(
        &mut self,
        pending: PendingRound,
        mut st: IngestState,
        kill_after: Option<usize>,
        tr: &mut TR,
    ) -> Result<Option<RoundReport>, RoundError> {
        let t = pending.t;
        let k = pending.k;
        let threads = st.threads;
        // The shard plane rides alongside the canonical schedule: every
        // coordinator charge below is mirrored stripe-weighted onto the
        // shard budgets, and each staged chunk is broadcast through the
        // tunnels before it folds. Taken out of `self` for the loop so
        // the opener thread's enclave borrow stays exclusive.
        let mut rt = self.shard_rt.take();
        // The round's recovery delta is the runtime's monotone counters
        // minus this snapshot; unsharded rounds keep the explicit zeroes.
        let recovery_base = rt.as_ref().map(|rt| rt.recovery_stats()).unwrap_or_default();
        let mut round_tel = RoundTelemetry::default();
        let mut resident = st.agg.resident_bytes();
        st.ws.alloc_counted(resident, &self.telemetry, "coordinator");
        self.enclave.epc.alloc(resident);
        if let Some(rt) = rt.as_mut() {
            rt.alloc_split(resident);
        }

        let msg_chunks: Vec<&[SealedMessage]> = pending.sealed.chunks(st.chunk_size).collect();
        let mut staged: Vec<SparseGradient> = Vec::new();
        let mut staged_bytes = 0u64;
        if let Some(first) = msg_chunks.get(st.next_chunk) {
            staged_bytes = staged_chunk_bytes(first);
            st.ws.alloc_counted(staged_bytes, &self.telemetry, "coordinator");
            self.enclave.epc.alloc(staged_bytes);
            if let Some(rt) = rt.as_mut() {
                rt.alloc_split(staged_bytes);
            }
            staged = open_and_decode(&mut self.enclave, first);
        }
        for i in st.next_chunk..msg_chunks.len() {
            let _chunk_span = self.telemetry.span(
                "ingest_chunk",
                &[("chunk", (i as u64).into()), ("clients", (msg_chunks[i].len() as u64).into())],
            );
            // Charge the transient ingest scratch, and — when
            // double-buffering — the next chunk's staging, both live
            // while this chunk folds.
            let scratch = st.agg.ingest_scratch_bytes(staged.len(), k);
            st.ws.alloc_counted(scratch, &self.telemetry, "coordinator");
            self.enclave.epc.alloc(scratch);
            let next_msgs = msg_chunks.get(i + 1).copied();
            let next_bytes = next_msgs.map(staged_chunk_bytes).unwrap_or(0);
            st.ws.alloc_counted(next_bytes, &self.telemetry, "coordinator");
            self.enclave.epc.alloc(next_bytes);
            if let Some(rt2) = rt.as_mut() {
                rt2.alloc_split(scratch);
                rt2.alloc_split(next_bytes);
                // Broadcast the chunk's cell segment to every shard
                // before it folds (fixed shape: a pure function of the
                // public chunk schedule, so the transport leaks nothing
                // the schedule doesn't already reveal). Recovery from
                // shard faults happens inside this call; only exhausted
                // recovery aborts the round — with every outstanding
                // charge unwound and chunk i unfolded, so the sealed
                // checkpoint of chunk i−1 (or the untrusted round
                // material, if i = 0) restores it exactly.
                if let Err(e) = rt2.ingress_chunk(&staged) {
                    self.enclave.epc.free(scratch);
                    self.enclave.epc.free(next_bytes);
                    self.enclave.epc.free(staged_bytes);
                    self.enclave.epc.free(resident);
                    rt2.free_split(scratch);
                    rt2.free_split(next_bytes);
                    rt2.free_split(staged_bytes);
                    rt2.free_split(resident);
                    self.shard_rt = rt;
                    self.pending = Some(pending);
                    return Err(RoundError::Shard(e));
                }
            }
            let next = if let Some(msgs) = next_msgs {
                if threads >= 2 {
                    // Pipeline: open/decode chunk i+1 on an extra worker
                    // while chunk i aggregates on this thread. Opening
                    // touches only the enclave's session/replay state,
                    // which the aggregation does not. The opener rides
                    // *on top of* the aggregation's thread budget (up to
                    // threads+1 runnable threads): shrinking the
                    // aggregation to threads−1 workers would change the
                    // Grouped wave schedule and break the bitwise
                    // chunk-invariance contract, and the opener is
                    // crypto-bound while the sorts are memory-bound, so
                    // the deliberate oversubscription overlaps well.
                    let enclave = &mut self.enclave;
                    let agg = &mut st.agg;
                    std::thread::scope(|scope| {
                        let opener = scope.spawn(move || open_and_decode(enclave, msgs));
                        agg.ingest(&staged, tr);
                        opener.join().expect("upload opener thread must not panic")
                    })
                } else {
                    st.agg.ingest(&staged, tr);
                    open_and_decode(&mut self.enclave, msgs)
                }
            } else {
                st.agg.ingest(&staged, tr);
                Vec::new()
            };
            st.ws.free_counted(scratch, &self.telemetry, "coordinator");
            self.enclave.epc.free(scratch);
            st.ws.free_counted(staged_bytes, &self.telemetry, "coordinator");
            self.enclave.epc.free(staged_bytes);
            if let Some(rt) = rt.as_mut() {
                rt.free_split(scratch);
                rt.free_split(staged_bytes);
            }
            staged_bytes = next_bytes;
            staged = next;
            let now_resident = st.agg.resident_bytes();
            // The aggregator's persistent state grew (or shrank) in
            // place: one resize event, so the peak never counts both
            // generations of the same state.
            st.ws.resize_counted(resident, now_resident, &self.telemetry, "coordinator");
            self.enclave.epc.free(resident);
            self.enclave.epc.alloc(now_resident);
            if let Some(rt) = rt.as_mut() {
                rt.free_split(resident);
                rt.alloc_split(now_resident);
            }
            resident = now_resident;
            // ORAM comparator rounds expose the stash high-water mark and
            // eviction volume on the side-band counters (deterministic
            // values: both kernels count identically).
            if let Some(stats) = st.agg.oram_stats() {
                self.telemetry.observe(
                    "oram_stash_occupancy",
                    "max",
                    stats.max_stash_occupancy as u64,
                );
                let evicted_delta = stats.evicted_blocks - st.oram_evicted_seen;
                st.oram_evicted_seen = stats.evicted_blocks;
                self.telemetry.count("oram_evicted_blocks", "coordinator", evicted_delta);
            }
            round_tel.chunks += 1;

            // Chunk i is folded: seal the restore point. Sealing touches
            // only enclave-private state (seal counter, sealing key), so
            // it emits no adversary-visible trace events — checkpoint
            // cadence cannot perturb the bitwise trace contract.
            if self.checkpoint {
                let blob_bytes = self.seal_checkpoint(
                    &pending,
                    &st.agg,
                    &mut st.ws,
                    st.chunk_size,
                    threads,
                    i + 1,
                );
                round_tel.ckpt_seals += 1;
                round_tel.ckpt_bytes += blob_bytes;
            }
            if kill_after == Some(i) {
                // The simulated crash: enclave memory — aggregator state,
                // staged plaintexts, session keys, replay floors, seal
                // counters — vanishes with the dying enclave. What
                // survives is untrusted storage (the round's ciphertexts
                // and the sealed checkpoint) plus the rollback-protected
                // counter floor.
                self.enclave = Enclave::launch(&self.enclave_cfg, self.seed_bytes);
                self.enclave.set_telemetry(self.telemetry.clone());
                // The shard enclaves model separate machines and outlive
                // the coordinator crash; the restore path re-provisions
                // their tunnels against the relaunched coordinator.
                self.shard_rt = rt;
                self.pending = Some(pending);
                return Ok(None);
            }
        }

        let fin_span = self.telemetry.span("finalize", &[("round", t.into())]);
        let fin_scratch = st.agg.finalize_scratch_bytes();
        st.ws.alloc_counted(fin_scratch, &self.telemetry, "coordinator");
        self.enclave.epc.alloc(fin_scratch);
        if let Some(rt) = rt.as_mut() {
            rt.alloc_split(fin_scratch);
        }
        let mut delta = st.agg.finalize(tr);
        if let Some(rt2) = rt.as_mut() {
            // Stripe the finalized delta out to the shards and fold the
            // shard-held stripes back in ascending shard order — the
            // deterministic merge, bitwise the canonical delta. An
            // exhausted egress recovery aborts with charges unwound; the
            // final checkpoint (all chunks folded) restores the round at
            // the finalize step.
            match rt2.egress_round(&delta) {
                Ok(merged) => delta = merged,
                Err(e) => {
                    self.enclave.epc.free(fin_scratch);
                    self.enclave.epc.free(resident);
                    rt2.free_split(fin_scratch);
                    rt2.free_split(resident);
                    self.shard_rt = rt;
                    self.pending = Some(pending);
                    return Err(RoundError::Shard(e));
                }
            }
        }
        st.ws.free_counted(fin_scratch, &self.telemetry, "coordinator");
        self.enclave.epc.free(fin_scratch);
        st.ws.free_counted(resident, &self.telemetry, "coordinator");
        self.enclave.epc.free(resident);
        if let Some(rt) = rt.as_mut() {
            rt.free_split(fin_scratch);
            rt.free_split(resident);
        }

        // Algorithm 6 line 12: enclave-side Gaussian perturbation. The
        // finalize() above divides by the realized n; Algorithm 6 scales
        // by qN, so rescale before noising.
        let n = pending.sampled.len();
        let epsilon_spent = if let Some(dp) = self.cfg.dp {
            let qn = (self.cfg.sample_rate * self.cfg.n_clients as f64) as f32;
            let rescale = n as f32 / qn.max(1.0);
            for x in &mut delta {
                *x *= rescale;
            }
            let mech = GaussianMechanism::new(dp.sigma / qn.max(1.0) as f64, dp.clip);
            mech.perturb(&mut delta, &mut self.rng);
            self.accountant.add_subsampled_gaussian(self.cfg.sample_rate, dp.sigma, 1);
            Some(self.accountant.epsilon(dp.delta))
        } else {
            None
        };

        // Line 14: global update + enclave signature (Section 5.6).
        self.server.apply_aggregate(&delta);
        let model_signature = self.sign_params(t);

        self.round += 1;
        // The round is durable in the model now; the checkpoint is dead
        // weight. The floor stays pinned forever — monotone across rounds,
        // so no stale blob can ever replay into a later round.
        self.ckpt_store = None;
        let shard_peaks = rt.as_ref().map(|rt| rt.peaks()).unwrap_or_default();
        let would_page = match rt.as_ref() {
            Some(rt) => rt.any_would_page(),
            None => st.ws.peak > self.enclave.epc.limit,
        };
        round_tel.recovery =
            rt.as_ref().map(|rt| rt.recovery_stats().since(recovery_base)).unwrap_or_default();
        self.shard_rt = rt;
        drop(fin_span);
        // Drain the accumulated counters/histograms at the round
        // boundary — a deterministic point, so the stream's record order
        // is reproducible run to run.
        self.telemetry.flush_stats();
        Ok(Some(RoundReport {
            round: t,
            processed_users: pending.sampled,
            k_per_user: k,
            epsilon_spent,
            working_set_bytes: st.ws.peak,
            would_page,
            shard_peaks,
            model_signature,
            telemetry: round_tel,
        }))
    }

    /// Serializes and seals the round's restore point under
    /// [`CKPT_LABEL`], pins the rollback floor to its seal counter, and
    /// parks the blob in (simulated) untrusted storage.
    ///
    /// The replay-floor snapshot covers the base floors plus exactly the
    /// uploads of the `chunks_done` *folded* chunks. The double-buffered
    /// opener may already have advanced the live enclave's floors past
    /// chunk `chunks_done` (opened, not yet folded) — those uploads get
    /// no entry, so after a restore their re-sends are accepted again
    /// instead of being misclassified as replays. That
    /// opened-but-not-folded gap was the crash-unsafety this checkpoint
    /// scheme exists to fix.
    fn seal_checkpoint(
        &mut self,
        pending: &PendingRound,
        agg: &StreamingAggregator,
        ws: &mut WorkingSet,
        chunk_size: usize,
        threads: usize,
        chunks_done: usize,
    ) -> u64 {
        let mut span =
            self.telemetry.span("checkpoint_seal", &[("chunks_done", (chunks_done as u64).into())]);
        let mut w = StateWriter::new();
        w.put_u8(CKPT_VERSION);
        w.put_u64(pending.t);
        w.put_usize(chunks_done);
        w.put_usize(pending.sealed.len());
        w.put_usize(chunk_size);
        w.put_usize(threads);
        w.put_usize(pending.k);
        // The DP/sampling generator is enclave state too: the post-restore
        // noise draw must be the exact draw the uninterrupted round would
        // have made.
        for word in self.rng.state() {
            w.put_u64(word);
        }
        let folded = (chunks_done * chunk_size).min(pending.sealed.len());
        let mut floors: BTreeMap<UserId, u64> = pending.base_floors.iter().copied().collect();
        for m in &pending.sealed[..folded] {
            floors.insert(m.user, m.nonce_counter);
        }
        w.put_usize(floors.len());
        for (u, c) in floors {
            w.put_u32(u);
            w.put_u64(c);
        }
        w.put_bytes(&agg.save_state());
        let plain = w.into_bytes();

        // The serialized state is enclave-resident while it is built and
        // sealed; charge it like any other transient.
        let transient = plain.len() as u64;
        ws.alloc_counted(transient, &self.telemetry, "coordinator");
        self.enclave.epc.alloc(transient);
        let sealed = self.enclave.seal(&plain, CKPT_LABEL);
        ws.free_counted(transient, &self.telemetry, "coordinator");
        self.enclave.epc.free(transient);

        let blob_bytes = sealed.len() as u64;
        span.field("blob_bytes", blob_bytes.into());
        self.telemetry.observe("ckpt_blob_bytes", "coordinator", blob_bytes);
        let counter = u64::from_be_bytes(sealed[..8].try_into().expect("8-byte counter prefix"));
        self.ckpt_floor = self.ckpt_floor.max(counter);
        self.ckpt_store = Some(sealed);
        blob_bytes
    }

    /// Whether a killed round is awaiting [`OliveSystem::restore_round`].
    pub fn interrupted(&self) -> bool {
        self.pending.is_some()
    }

    /// Disables (or re-enables) per-chunk checkpoint sealing — the escape
    /// hatch for measuring the overhead it adds, and for deployments that
    /// prefer to re-run a crashed round from scratch.
    pub fn set_checkpointing(&mut self, on: bool) {
        self.checkpoint = on;
    }

    /// The newest sealed checkpoint as untrusted storage holds it (test
    /// hook: what an attacker could copy).
    pub fn checkpoint_blob(&self) -> Option<&[u8]> {
        self.ckpt_store.as_deref()
    }

    /// Replaces the stored checkpoint blob (test hook: the
    /// tamper/rollback attacker writing to untrusted storage).
    pub fn set_checkpoint_blob(&mut self, blob: Vec<u8>) {
        self.ckpt_store = Some(blob);
    }

    /// Recovers an interrupted round from the newest sealed checkpoint
    /// and runs it to completion.
    ///
    /// The restore path re-does provisioning from scratch — exactly what
    /// a crashed deployment does: relaunch the enclave (same platform
    /// seed ⇒ same sealing key and DH keypair, so existing client
    /// sessions stay valid), re-attest, re-register the session keys,
    /// and re-provision the shard plane (fresh tunnels, fresh shard
    /// sealing keys via the provisioning epoch).
    /// Then the checkpoint is unsealed against the rollback-protected
    /// floor ([`TeeError::StaleSeal`] for an older genuine blob,
    /// [`TeeError::AuthFailure`] for a tampered one), replay floors are
    /// rewound to cover only *folded* uploads, the aggregator is rebuilt
    /// from its serialized state, and ingestion continues from the next
    /// chunk. A round that died *before its first checkpoint* (a chunk-0
    /// shard fault, or egress failure with checkpointing off) has no blob
    /// and is restarted whole from the untrusted round material — nothing
    /// was folded, so that too is exact. Output and trace are bitwise
    /// identical to the uninterrupted round. On error the interrupted
    /// round stays pending, so the caller can repair storage and retry.
    pub fn restore_round<TR: ParallelTracer>(
        &mut self,
        tr: &mut TR,
    ) -> Result<RoundReport, RoundError> {
        self.restore_round_inner(None, tr)
            .map(|r| r.expect("restore completes when no kill point is injected"))
    }

    /// [`OliveSystem::restore_round`] with another crash injected after
    /// chunk `kill_after` — lets tests exercise repeated kill/restore
    /// cycles within one round. Returns `Ok(None)` when the kill fired.
    pub fn restore_round_kill_after<TR: ParallelTracer>(
        &mut self,
        kill_after: usize,
        tr: &mut TR,
    ) -> Result<Option<RoundReport>, RoundError> {
        self.restore_round_inner(Some(kill_after), tr)
    }

    fn restore_round_inner<TR: ParallelTracer>(
        &mut self,
        kill_after: Option<usize>,
        tr: &mut TR,
    ) -> Result<Option<RoundReport>, RoundError> {
        assert!(self.pending.is_some(), "restore_round requires an interrupted round");
        let _span = self.telemetry.span(
            "round_restore",
            &[
                ("round", self.pending.as_ref().expect("checked above").t.into()),
                ("has_checkpoint", self.ckpt_store.is_some().into()),
            ],
        );
        let blob = self.ckpt_store.clone();

        // Cold relaunch + re-provisioning.
        self.enclave = Enclave::launch(&self.enclave_cfg, self.seed_bytes);
        self.enclave.set_telemetry(self.telemetry.clone());
        self.enclave.attest(&self.service, ATTEST_CONTEXT);
        for s in &self.sessions {
            self.enclave
                .register_client(s.user(), s.dh_public())
                .expect("the enclave re-attested above");
        }
        // A fresh coordinator means fresh tunnels: re-provision the shard
        // plane against the relaunched enclave (the shard machines
        // survived the crash, but their attested channels died with the
        // coordinator's ephemeral state).
        self.shard_rt = None;
        self.ensure_shard_runtime()?;

        let restored = match &blob {
            Some(blob) => {
                // Unseal against the pinned floor: stale (rolled-back)
                // blobs and tampered blobs both fail here, leaving the
                // round pending.
                let plain = self.enclave.unseal_with_floor(blob, CKPT_LABEL, self.ckpt_floor)?;
                let ckpt = decode_checkpoint(&plain, self.pending.as_ref().expect("checked above"))
                    // An authenticated blob that decodes to the wrong
                    // shape means it was sealed for a different round
                    // than the pending one — treat it like any other
                    // unusable blob.
                    .map_err(|_| RoundError::Checkpoint(TeeError::AuthFailure))?;
                let mut agg =
                    StreamingAggregator::new(self.cfg.aggregator, self.server.dim(), ckpt.threads);
                agg.load_state(&ckpt.agg_state)
                    .map_err(|_| RoundError::Checkpoint(TeeError::AuthFailure))?;
                Some((agg, ckpt))
            }
            // No checkpoint was ever sealed for this round: nothing was
            // folded before the abort, so the exact pre-crash state is a
            // fresh aggregator over the untrusted round material.
            None => None,
        };

        let mut pending = self.pending.take().expect("checked above");
        let st = match restored {
            Some((agg, ckpt)) => {
                self.rng = SmallRng::from_state(ckpt.rng_state);
                self.enclave.begin_round(pending.t, pending.sampled.clone());
                if let Some(rt) = self.shard_rt.as_mut() {
                    if let Some(plan) = self.pending_faults.take() {
                        rt.set_fault_plan(plan);
                    }
                    rt.begin_round();
                    // Keep scripted fault coordinates absolute: the
                    // resumed half of the round continues the original
                    // chunk numbering.
                    rt.skip_to_chunk(ckpt.chunks_done);
                }
                self.enclave.restore_replay_floors(&ckpt.floors);
                // Future checkpoints of this round rebuild their
                // snapshots from the restored floors: unfolded users
                // still carry their base entries there, folded users'
                // overrides are permanent.
                pending.base_floors = ckpt.floors;
                IngestState {
                    agg,
                    ws: WorkingSet::default(),
                    next_chunk: ckpt.chunks_done,
                    chunk_size: ckpt.chunk_size,
                    threads: ckpt.threads,
                    oram_evicted_seen: 0,
                }
            }
            None => {
                self.rng = SmallRng::from_state(pending.rng_after_prepare);
                self.enclave.begin_round(pending.t, pending.sampled.clone());
                if let Some(rt) = self.shard_rt.as_mut() {
                    if let Some(plan) = self.pending_faults.take() {
                        rt.set_fault_plan(plan);
                    }
                    rt.begin_round();
                }
                self.enclave.restore_replay_floors(&pending.base_floors);
                IngestState {
                    agg: StreamingAggregator::new(
                        self.cfg.aggregator,
                        self.server.dim(),
                        pending.threads,
                    ),
                    ws: WorkingSet::default(),
                    next_chunk: 0,
                    chunk_size: pending.chunk_size,
                    threads: pending.threads,
                    oram_evicted_seen: 0,
                }
            }
        };
        self.resume_ingestion(pending, st, kill_after, tr)
    }

    /// Signs `t ∥ θ` with the enclave's output key (Section 5.6).
    fn sign_params(&mut self, t: u64) -> [u8; 32] {
        let new_params = self.server.params();
        let mut payload = Vec::with_capacity(new_params.len() * 4 + 8);
        payload.extend_from_slice(&t.to_be_bytes());
        for p in &new_params {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        self.enclave.sign_output(&payload)
    }

    /// Local training for the sampled users, parallelized across threads
    /// (client-side compute, outside the enclave).
    fn train_sampled(
        &mut self,
        sampled: &[UserId],
        global: &[f32],
        client_cfg: &ClientConfig,
        round: u64,
    ) -> Vec<SparseGradient> {
        let n_threads = self.threads();
        if sampled.len() < 4 || n_threads == 1 {
            return sampled
                .iter()
                .map(|&user| {
                    let data = &self.clients[user as usize].dataset;
                    local_update(
                        &mut self.scratch,
                        global,
                        data,
                        client_cfg,
                        self.cfg.seed ^ (round << 20) ^ user as u64,
                    )
                })
                .collect();
        }
        let clients = &self.clients;
        let template = &self.scratch;
        let seed = self.cfg.seed;
        let mut results: Vec<Option<SparseGradient>> = vec![None; sampled.len()];
        let chunk = sampled.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            for (slot_chunk, user_chunk) in results.chunks_mut(chunk).zip(sampled.chunks(chunk)) {
                scope.spawn(move || {
                    let mut model = template.clone();
                    for (slot, &user) in slot_chunk.iter_mut().zip(user_chunk.iter()) {
                        let data = &clients[user as usize].dataset;
                        *slot = Some(local_update(
                            &mut model,
                            global,
                            data,
                            client_cfg,
                            seed ^ (round << 20) ^ user as u64,
                        ));
                    }
                });
            }
        });
        results.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Verifies an enclave model signature (what a client would do).
    pub fn verify_model_signature(&self, round: u64, params: &[f32], sig: &[u8; 32]) -> bool {
        let mut payload = Vec::with_capacity(params.len() * 4 + 8);
        payload.extend_from_slice(&round.to_be_bytes());
        for p in params {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        self.enclave.verify_output(&payload, sig)
    }
}

/// Parses a checkpoint blob's plaintext and validates it against the
/// pending round it claims to resume: version, round counter, upload
/// count and per-client k must all match, and the chunk geometry must be
/// internally consistent.
fn decode_checkpoint(plain: &[u8], pending: &PendingRound) -> Result<Checkpoint, StateError> {
    let mut r = StateReader::new(plain);
    if r.get_u8()? != CKPT_VERSION {
        return Err(StateError::Mismatch);
    }
    if r.get_u64()? != pending.t {
        return Err(StateError::Mismatch);
    }
    let chunks_done = r.get_usize()?;
    if r.get_usize()? != pending.sealed.len() {
        return Err(StateError::Mismatch);
    }
    let chunk_size = r.get_usize()?;
    let threads = r.get_usize()?;
    if r.get_usize()? != pending.k {
        return Err(StateError::Mismatch);
    }
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.get_u64()?;
    }
    let n_floors = r.get_usize()?;
    let mut floors = Vec::with_capacity(n_floors.min(plain.len() / 12 + 1));
    for _ in 0..n_floors {
        floors.push((r.get_u32()?, r.get_u64()?));
    }
    let agg_state = r.get_bytes()?.to_vec();
    r.expect_end()?;
    if chunk_size == 0 || threads == 0 || chunks_done > pending.sealed.len().div_ceil(chunk_size) {
        return Err(StateError::Corrupt);
    }
    Ok(Checkpoint { chunks_done, chunk_size, threads, rng_state, floors, agg_state })
}

/// Enclave-resident bytes of one *staged* upload chunk: the decoded
/// `(index, value)` pairs (8 B per transmitted cell, read off the public
/// ciphertext lengths: payload = 8-byte header + 8k, ciphertext =
/// payload + 16-byte tag).
pub fn staged_chunk_bytes(msgs: &[SealedMessage]) -> u64 {
    msgs.iter().map(|m| m.ciphertext.len().saturating_sub(8 + 16) as u64).sum()
}

/// Opens one chunk of uploads through [`Enclave::open_upload_batch`] and
/// decodes the plaintext gradient encodings — the per-chunk enclave work
/// of the streaming round pipeline ([`OliveSystem::run_round`]), shared
/// with the ingestion benchmarks. Panics on any invalid upload (the
/// simulation's clients are honest; a deployment would drop the slot and
/// continue, which [`Enclave::open_upload_batch`]'s per-message `Result`s
/// support).
pub fn open_and_decode(enclave: &mut Enclave, msgs: &[SealedMessage]) -> Vec<SparseGradient> {
    enclave
        .open_upload_batch(msgs)
        .into_iter()
        .map(|r| {
            let plain = r.expect("sampled, registered, fresh uploads must verify");
            SparseGradient::decode(&plain).expect("well-formed client encoding")
        })
        .collect()
}

/// Scratch working-set estimate (bytes) for each aggregator — what the
/// enclave allocates beyond the d-cell output (drives the EPC/grouping
/// analysis of Sections 5.3 and 5.5, e.g. the paper's 122 MB at N = 10⁴).
/// `n` is the participant count and `k` the per-client cell count.
pub fn working_set_bytes(kind: AggregatorKind, n: usize, k: usize, d: usize) -> u64 {
    let cell = 8u64;
    let nk = n * k;
    match kind {
        AggregatorKind::NonOblivious => nk as u64 * cell + d as u64 * 4,
        AggregatorKind::Baseline { cacheline_weights } => {
            nk as u64 * cell + (d.div_ceil(cacheline_weights) * cacheline_weights) as u64 * 4
        }
        AggregatorKind::Advanced => ((nk + d).next_power_of_two() as u64) * cell + d as u64 * 4,
        AggregatorKind::Grouped { h } => {
            // One group's sort vector in flight at a time + the running
            // total (Section 5.3: this is exactly what the optimization
            // shrinks below cache/EPC size).
            let hk = h.max(1).min(n) * k;
            let group_cells = (hk + d).next_power_of_two() as u64;
            group_cells * cell + 2 * d as u64 * 4
        }
        AggregatorKind::PathOram { posmap } => {
            // The full ORAM working set — tree, stash, position map
            // (recursively), access scratch — via the closed-form mirror
            // of the construction arithmetic, plus the staged cells.
            olive_oram::predicted_resident_bytes(d.max(1), 20, 16, posmap) + nk as u64 * cell
        }
        AggregatorKind::DiffOblivious { .. } => nk as u64 * cell * 2 + d as u64 * 4,
    }
}

/// [`working_set_bytes`] adjusted for parallel execution: the grouped
/// algorithm keeps up to `threads` group sort vectors (plus their partial
/// sums) in flight per wave, so its enclave footprint scales with the
/// worker count. Serial algorithms are unaffected; `threads = 1` equals
/// the serial estimate.
pub fn working_set_bytes_threaded(
    kind: AggregatorKind,
    n: usize,
    k: usize,
    d: usize,
    threads: usize,
) -> u64 {
    match kind {
        AggregatorKind::Grouped { h } => {
            let cell = 8u64;
            let hk = h.max(1).min(n) * k;
            let group_cells = (hk + d).next_power_of_two() as u64;
            let groups = n.div_ceil(h.max(1)).max(1);
            let in_flight = threads.clamp(1, groups) as u64;
            // Per worker: one sort vector + one d-sized partial; shared:
            // the running total (cf. the serial formula's 2·d term =
            // one partial + the total).
            in_flight * (group_cells * cell + d as u64 * 4) + d as u64 * 4
        }
        _ => working_set_bytes(kind, n, k, d),
    }
}

/// Per-shard stripe share of [`working_set_bytes`] under an even
/// `shards`-way plan — the resident EPC footprint each shard enclave of
/// the sharded deployment must hold (the transient broadcast segment,
/// O(chunk·k) bytes, rides on top but is orders of magnitude smaller at
/// production chunk sizes). This is the Section 5.3-style capacity math
/// behind choosing S: the monolithic Advanced working set crosses the
/// 96 MiB EPC near n = 10⁵ (the Figure 10 cliff); striping divides it.
pub fn sharded_working_set_bytes(
    kind: AggregatorKind,
    n: usize,
    k: usize,
    d: usize,
    shards: usize,
) -> Vec<u64> {
    ShardPlan::even(d, shards).split_charge(working_set_bytes(kind, n, k, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_data::synthetic::{Generator, SyntheticConfig};
    use olive_data::{partition, LabelAssignment};
    use olive_fl::Sparsifier;
    use olive_memsim::NullTracer;
    use olive_nn::zoo::mlp;

    fn tiny_system(aggregator: AggregatorKind, dp: Option<DpConfig>) -> OliveSystem {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let clients = partition(&gen, 8, LabelAssignment::Fixed(2), 10, 1);
        let model = mlp(12, 6, 4, 0.0, 5);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 8,
            sample_rate: 0.5,
            client: ClientConfig {
                epochs: 1,
                batch_size: 5,
                lr: 0.1,
                sparsifier: Sparsifier::TopK(d / 10),
                clip: None,
            },
            aggregator,
            server_lr: 1.0,
            dp,
            seed: 77,
        };
        OliveSystem::new(model, clients, cfg)
    }

    #[test]
    fn round_runs_and_updates_model() {
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let before = sys.global_params();
        let report = sys.run_round(&mut NullTracer).expect("round");
        assert!(!report.processed_users.is_empty());
        assert!(report.epsilon_spent.is_none());
        let after = sys.global_params();
        assert_ne!(before, after, "global model must move");
        assert!(sys.verify_model_signature(0, &after, &report.model_signature));
        assert!(!sys.verify_model_signature(0, &before, &report.model_signature));
    }

    #[test]
    fn all_aggregators_produce_same_model() {
        // With identical seeds, every oblivious aggregator must yield the
        // same global trajectory as the non-oblivious reference.
        let reference = {
            let mut sys = tiny_system(AggregatorKind::NonOblivious, None);
            sys.run_round(&mut NullTracer).expect("round");
            sys.global_params()
        };
        for kind in [
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
        ] {
            let mut sys = tiny_system(kind, None);
            sys.run_round(&mut NullTracer).expect("round");
            let params = sys.global_params();
            for (a, b) in reference.iter().zip(params.iter()) {
                assert!((a - b).abs() < 1e-4, "{kind:?} diverged");
            }
        }
    }

    #[test]
    fn threaded_working_set_scales_with_workers() {
        let kind = AggregatorKind::Grouped { h: 4 };
        let serial = working_set_bytes(kind, 16, 8, 256);
        assert_eq!(working_set_bytes_threaded(kind, 16, 8, 256, 1), serial);
        let w2 = working_set_bytes_threaded(kind, 16, 8, 256, 2);
        let w4 = working_set_bytes_threaded(kind, 16, 8, 256, 4);
        assert!(serial < w2 && w2 < w4, "{serial} < {w2} < {w4}");
        // Capped at the group count: 16 clients / h=4 → 4 groups.
        assert_eq!(w4, working_set_bytes_threaded(kind, 16, 8, 256, 64));
        // Serial algorithms are unaffected by the worker count.
        assert_eq!(
            working_set_bytes_threaded(AggregatorKind::Advanced, 16, 8, 256, 8),
            working_set_bytes(AggregatorKind::Advanced, 16, 8, 256)
        );
    }

    #[test]
    fn thread_count_does_not_change_the_round() {
        // One full round — parallel training + parallel grouped
        // aggregation — must be bitwise reproducible at any thread count.
        let run = |threads: usize| {
            let mut sys = tiny_system(AggregatorKind::Grouped { h: 2 }, None);
            sys.set_threads(threads);
            assert_eq!(sys.threads(), threads);
            sys.run_round(&mut NullTracer).expect("round");
            sys.global_params()
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            assert_eq!(serial, run(threads), "threads={threads} changed the global model");
        }
    }

    /// The sharding contract at round level: the shard count is public
    /// topology that must change neither the global model bits, nor the
    /// signature, nor the aggregation trace — only the per-shard memory
    /// accounting the report carries.
    #[test]
    fn shard_count_does_not_change_the_round() {
        use olive_memsim::{Granularity, RecordingTracer};
        let run = |shards: usize| {
            let mut sys = tiny_system(AggregatorKind::Advanced, None);
            sys.set_threads(1);
            sys.set_shards(shards);
            assert_eq!(sys.shards(), shards);
            let mut tr = RecordingTracer::new(Granularity::Element);
            let report = sys.run_round(&mut tr).expect("round");
            (sys.global_params(), tr.digest(), report)
        };
        let (ref_params, ref_digest, ref_report) = run(1);
        assert!(ref_report.shard_peaks.is_empty(), "monolithic rounds report no shard peaks");
        for shards in [2usize, 4, 8] {
            let (params, digest, report) = run(shards);
            assert_eq!(params, ref_params, "S={shards} changed the global model");
            assert_eq!(digest, ref_digest, "S={shards} changed the aggregation trace");
            assert_eq!(
                report.model_signature, ref_report.model_signature,
                "S={shards} changed the signed output"
            );
            assert_eq!(
                report.working_set_bytes, ref_report.working_set_bytes,
                "the canonical working-set report is shard-independent"
            );
            assert_eq!(report.shard_peaks.len(), shards);
            assert!(report.shard_peaks.iter().all(|&p| p > 0), "every shard sees charges");
        }
    }

    /// The capacity math the shard count is chosen by: at the paper's
    /// production scale the monolithic Advanced working set overflows the
    /// 96 MiB EPC (the Figure 10 cliff), and a 4-way stripe plan brings
    /// every shard's resident share back under it.
    #[test]
    fn sharding_brings_paper_scale_advanced_under_epc() {
        let (n, k, d) = (100_000, 128, 16_384);
        let epc = 96u64 << 20;
        let mono = working_set_bytes(AggregatorKind::Advanced, n, k, d);
        assert!(mono > epc, "monolithic Advanced at n=1e5 must exceed the EPC ({mono} bytes)");
        let stripes = sharded_working_set_bytes(AggregatorKind::Advanced, n, k, d, 4);
        assert_eq!(stripes.iter().sum::<u64>(), mono, "stripe shares partition the footprint");
        for (i, &p) in stripes.iter().enumerate() {
            assert!(p < epc, "shard {i} share {p} must fit the 96 MiB EPC");
        }
    }

    /// The streaming contract at round level: the ingestion chunk size is
    /// a public knob that must change neither the global model bits nor
    /// the aggregation trace.
    #[test]
    fn chunk_size_does_not_change_the_round() {
        use olive_memsim::{Granularity, RecordingTracer};
        let run = |chunk: usize, threads: usize| {
            let mut sys = tiny_system(AggregatorKind::Grouped { h: 2 }, None);
            sys.set_threads(threads);
            sys.set_chunk(chunk);
            assert_eq!(sys.chunk(), chunk);
            let mut tr = RecordingTracer::new(Granularity::Element);
            sys.run_round(&mut tr).expect("round");
            (sys.global_params(), tr.digest())
        };
        for threads in [1usize, 2] {
            let (ref_params, ref_digest) = run(64, threads);
            for chunk in [1usize, 2, 3] {
                let (params, digest) = run(chunk, threads);
                assert_eq!(params, ref_params, "chunk={chunk} threads={threads} changed model");
                assert_eq!(digest, ref_digest, "chunk={chunk} threads={threads} changed trace");
            }
        }
    }

    /// EPC accounting is balanced (everything charged per chunk is freed),
    /// a smaller chunk size yields a no-larger working-set peak, and the
    /// enclave's EPC high-water mark is **per round** (epoch-scoped by
    /// `begin_round`), matching the round report exactly — not a lifetime
    /// maximum that round 2 would inherit from round 1.
    #[test]
    fn streaming_epc_accounting_balances_and_bounds() {
        let peak = |chunk: usize| {
            let mut sys = tiny_system(AggregatorKind::NonOblivious, None);
            sys.set_threads(1);
            sys.set_chunk(chunk);
            let r1 = sys.run_round(&mut NullTracer).expect("round");
            assert!(r1.working_set_bytes > 0);
            assert_eq!(sys.enclave.epc.live, 0, "all round allocations must be freed");
            assert_eq!(
                sys.enclave.epc.peak, r1.working_set_bytes,
                "round-1 EPC peak must equal the report's working set"
            );
            // A second, differently-shaped round: its peak must stand on
            // its own, not under round 1's shadow.
            sys.set_chunk(1);
            let r2 = sys.run_round(&mut NullTracer).expect("round");
            assert_eq!(sys.enclave.epc.live, 0);
            assert_eq!(
                sys.enclave.epc.peak, r2.working_set_bytes,
                "round-2 EPC peak must reset to round 2's own working set"
            );
            r1.working_set_bytes
        };
        assert!(peak(1) <= peak(64), "smaller chunks must not increase the peak");
    }

    /// Regression pin for the empty-sample NaN bug: an honest Poisson
    /// sample selects nobody with probability `(1−q)^N`; that round used
    /// to reach `finalize` with n = 0, where the 0/0 average produced NaN
    /// deltas that silently poisoned θ forever. The short-circuit must
    /// leave the model bit-identical, sign it, and spend no extra ε.
    #[test]
    fn empty_sampled_round_is_a_finite_noop() {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let clients = partition(&gen, 8, LabelAssignment::Fixed(2), 10, 1);
        let model = mlp(12, 6, 4, 0.0, 5);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 8,
            sample_rate: 0.01, // ≈92% of rounds sample nobody
            client: ClientConfig {
                epochs: 1,
                batch_size: 5,
                lr: 0.1,
                sparsifier: Sparsifier::TopK(d / 10),
                clip: None,
            },
            aggregator: AggregatorKind::Advanced,
            server_lr: 1.0,
            dp: Some(DpConfig { sigma: 1.12, clip: 0.5, delta: 1e-5 }),
            seed: 77,
        };
        let mut sys = OliveSystem::new(model, clients, cfg);
        let mut saw_empty = false;
        for _ in 0..12 {
            let before = sys.global_params();
            let report = sys.run_round(&mut NullTracer).expect("round");
            let after = sys.global_params();
            assert!(after.iter().all(|x| x.is_finite()), "NaN/∞ leaked into θ");
            if report.processed_users.is_empty() {
                saw_empty = true;
                assert_eq!(before, after, "an empty round must not move the model");
                assert_eq!(report.k_per_user, 0);
                assert_eq!(report.working_set_bytes, 0);
                assert!(!report.would_page);
                let eps = report.epsilon_spent.expect("dp mode still reports ε");
                assert!(eps.is_finite(), "ε must stay finite with zero compositions");
                assert!(sys.verify_model_signature(report.round, &after, &report.model_signature));
            }
        }
        assert!(saw_empty, "q=0.01 over 12 rounds should hit an empty sample");
    }

    /// `would_page` compares against the *configured* EPC budget, not a
    /// hardcoded constant.
    #[test]
    fn would_page_uses_configured_epc_budget() {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let clients = partition(&gen, 8, LabelAssignment::Fixed(2), 10, 1);
        let model = mlp(12, 6, 4, 0.0, 5);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 8,
            sample_rate: 0.5,
            client: ClientConfig {
                epochs: 1,
                batch_size: 5,
                lr: 0.1,
                sparsifier: Sparsifier::TopK(d / 10),
                clip: None,
            },
            aggregator: AggregatorKind::Advanced,
            server_lr: 1.0,
            dp: None,
            seed: 77,
        };
        let tiny_epc = olive_tee::EnclaveConfig {
            epc_bytes: 64, // far below any real round's working set
            ..Default::default()
        };
        let mut sys =
            OliveSystem::with_enclave_config(model.clone(), clients.clone(), cfg.clone(), tiny_epc);
        let report = sys.run_round(&mut NullTracer).expect("round");
        assert!(report.would_page, "a 64-byte EPC must page");
        let mut roomy = OliveSystem::new(model, clients, cfg);
        let report = roomy.run_round(&mut NullTracer).expect("round");
        assert!(!report.would_page, "a tiny round fits the default 96 MiB EPC");
    }

    #[test]
    fn dp_mode_reports_epsilon_and_noises() {
        let dp = DpConfig { sigma: 1.12, clip: 0.5, delta: 1e-5 };
        let mut sys = tiny_system(AggregatorKind::Advanced, Some(dp));
        let r1 = sys.run_round(&mut NullTracer).expect("round");
        let e1 = r1.epsilon_spent.expect("dp mode reports epsilon");
        let r2 = sys.run_round(&mut NullTracer).expect("round");
        let e2 = r2.epsilon_spent.unwrap();
        assert!(e2 > e1, "budget accumulates: {e1} -> {e2}");
    }

    #[test]
    fn rounds_progress_and_sampling_varies() {
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let a = sys.run_round(&mut NullTracer).expect("round");
        let b = sys.run_round(&mut NullTracer).expect("round");
        assert_eq!(a.round, 0);
        assert_eq!(b.round, 1);
    }

    #[test]
    fn training_improves_global_model() {
        let gen = Generator::new(SyntheticConfig::tiny(12, 4), 3);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let test = gen.sample_balanced(25, &mut rng);
        let mut sys = tiny_system(AggregatorKind::Advanced, None);
        let (loss0, _) = sys.server.model.evaluate(&test.features, &test.labels, 32);
        for _ in 0..6 {
            sys.run_round(&mut NullTracer).expect("round");
        }
        let (loss1, _) = sys.server.model.evaluate(&test.features, &test.labels, 32);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }
}
