//! # olive-core
//!
//! The paper's primary contribution: **Olive**, oblivious federated
//! learning on a (simulated) server-side TEE.
//!
//! Two halves:
//!
//! * [`aggregation`] — the server-side aggregation algorithms over
//!   sparsified gradients, each instrumented for memory-access tracing:
//!   - [`aggregation::linear`]: the general FL aggregation (Algorithm 5).
//!     Fully oblivious for dense gradients (Proposition 3.1), **leaky**
//!     for sparsified gradients (Proposition 3.2) — the vulnerability the
//!     whole paper is about;
//!   - [`aggregation::baseline`]: Algorithm 3, dummy-access-everything,
//!     cacheline-level fully oblivious (Proposition 5.1), O(nkd/c);
//!   - [`aggregation::advanced`]: Algorithm 4, zero-seeding + oblivious
//!     sort + oblivious fold + oblivious sort, fully oblivious
//!     (Proposition 5.2), O((nk+d)·log²(nk+d));
//!   - [`aggregation::grouped`]: the Section 5.3 optimization — process
//!     clients in groups of `h` so the sort working set fits cache/EPC;
//!     groups run in parallel across threads ([`parallel`]) since the
//!     group schedule is public;
//!   - [`aggregation::oram`]: the PathORAM/ZeroTrace comparator;
//!   - [`aggregation::dobliv`]: the Section 5.4 differentially-oblivious
//!     relaxation (dummy padding + oblivious shuffle + linear pass);
//! * [`olive`] — the full system of Algorithm 1 / Algorithm 6: remote
//!   attestation, encrypted gradient upload, in-enclave verification and
//!   decryption, oblivious aggregation, optional central-DP noising, and
//!   the signed global-model update.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod cell;
pub mod olive;
pub mod parallel;
pub mod regions;

pub use aggregation::{
    aggregate, aggregate_with_threads, Aggregator, AggregatorKind, ShardError, ShardFailure,
    StreamingAggregator,
};
pub use cell::{cell_index, cell_value, make_cell, DUMMY_INDEX};
pub use olive::{OliveConfig, OliveSystem, RoundError, RoundReport};
pub use parallel::default_threads;
