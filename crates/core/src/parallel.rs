//! Thread-count policy for the data-parallel enclave paths.
//!
//! The grouped aggregation (Section 5.3), the intra-sort stage parallelism
//! (`olive_oblivious::sort_kernel`), and client-side local training are
//! embarrassingly parallel over a *public* schedule, so intra-enclave
//! threading cannot change the access-pattern distribution. One knob —
//! `OLIVE_THREADS`, else `available_parallelism().min(8)` — controls every
//! such region; every parallel entry point also takes an explicit
//! `*_with_threads` override, and `1` runs the exact historical serial
//! code path.
//!
//! The implementation lives in [`olive_memsim::threads`] (so the oblivious
//! layer can share it without depending on this crate); this module
//! re-exports it at its historical path.

pub use olive_memsim::default_threads;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive_and_stable() {
        let t = default_threads();
        assert!(t >= 1);
        assert_eq!(t, default_threads(), "OnceLock caches the decision");
    }
}
