//! Thread-count policy for the data-parallel enclave paths.
//!
//! The grouped aggregation (Section 5.3) and client-side local training are
//! embarrassingly parallel over a *public* schedule, so intra-enclave
//! threading cannot change the access-pattern distribution — each worker's
//! trace is recorded independently and merged in group order (see
//! `olive_memsim::ParallelTracer`). One knob controls every such region:
//!
//! * `OLIVE_THREADS=<n>` in the environment pins the default;
//! * otherwise the default is `available_parallelism()`, capped at 8
//!   (matching SGX enclave TCS budgets, and past which the memory-bound
//!   sort shows no gain);
//! * every parallel entry point also takes an explicit thread-count
//!   parameter (`*_with_threads`) that overrides the default;
//! * `1` runs the exact historical serial code path, byte-identical traces
//!   included.

use std::sync::OnceLock;

/// Hard cap on the default worker count (explicit parameters may exceed it).
const MAX_DEFAULT_THREADS: usize = 8;

/// The process-wide default worker count for parallel oblivious regions:
/// `OLIVE_THREADS` if set to a positive integer, else
/// `available_parallelism().min(8)`. Read once and cached — changing the
/// environment mid-process has no effect; use the `*_with_threads` APIs
/// for per-call control.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("OLIVE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("OLIVE_THREADS={v:?} is not a positive integer; using auto default");
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(MAX_DEFAULT_THREADS)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive_and_stable() {
        let t = default_threads();
        assert!(t >= 1);
        assert_eq!(t, default_threads(), "OnceLock caches the decision");
    }
}
