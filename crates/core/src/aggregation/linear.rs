//! The linear algorithm (Algorithm 5): plain FL aggregation.
//!
//! For **dense** gradients the access pattern is a fixed interleave of a
//! linear scan over `G` and in-order updates of `G*` — fully oblivious
//! (Proposition 3.1). For **sparsified** gradients each cell update
//! touches `G*[index]`, a one-to-one function of the secret index sequence
//! — statistical distance 1, not oblivious (Proposition 3.2). Both are
//! implemented here; the sparse variant is the attack surface.

use olive_fl::SparseGradient;
use olive_memsim::{Op, StateError, StateReader, StateWriter, Tracer, TrackedBuf};

use crate::cell::{cell_index, cell_value};
use crate::regions::{REGION_G, REGION_G_STAR};

/// Averages (and optionally later perturbs) `G*` by a linear pass —
/// Algorithm 5 lines 7–9, fully oblivious.
pub(crate) fn average_in_place<TR: Tracer>(gstar: &mut TrackedBuf<f32>, n: usize, tr: &mut TR) {
    let inv = 1.0 / n as f32;
    for i in 0..gstar.len() {
        let v = gstar.read(i, tr);
        gstar.write(i, v * inv, tr);
    }
}

/// Dense-gradient aggregation: each client sends all `d` values in index
/// order. `dense` is row-major `(n, d)`.
pub fn aggregate_dense_linear<TR: Tracer>(
    dense: &[f32],
    d: usize,
    n: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert_eq!(dense.len(), n * d);
    let g = TrackedBuf::new(REGION_G, dense.to_vec());
    let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, d);
    for i in 0..n {
        for j in 0..d {
            let v = g.read(i * d + j, tr);
            let cur = gstar.read(j, tr);
            gstar.write(j, cur + v, tr);
        }
    }
    average_in_place(&mut gstar, n, tr);
    gstar.into_inner()
}

/// Sparse-gradient aggregation — **the leaky path**. The `G*` accesses
/// reveal every transmitted index to the trace.
///
/// Implemented as the single-chunk case of [`LinearStreamer`], so the
/// one-shot and streaming paths cannot drift.
pub fn aggregate_sparse_linear<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    tr: &mut TR,
) -> Vec<f32> {
    let mut streamer = LinearStreamer::init(d);
    streamer.ingest_cells(cells, n, tr);
    streamer.finalize(tr)
}

/// Streaming form of [`aggregate_sparse_linear`]: the dense accumulator
/// `G*` persists across chunks and each incoming cell is applied exactly
/// as the one-shot loop applies it, with the `G` offsets continuing from
/// the previous chunk. Because the unit of work is a single cell, chunk
/// boundaries change neither the output bits nor the trace — the one-shot
/// path *is* the single-chunk special case.
pub struct LinearStreamer {
    gstar: TrackedBuf<f32>,
    /// Global position in the round's logical `G` buffer (cells).
    next_cell: usize,
    n: usize,
    d: usize,
}

impl LinearStreamer {
    /// Bytes of one packed `(index, value)` cell in `G`.
    const CELL_BYTES: usize = core::mem::size_of::<u64>();

    /// Fresh streamer over dimension `d`.
    pub fn init(d: usize) -> Self {
        LinearStreamer { gstar: TrackedBuf::zeroed(REGION_G_STAR, d), next_cell: 0, n: 0, d }
    }

    /// Folds one chunk of client updates into the accumulator.
    pub fn ingest<TR: Tracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
            self.n += 1;
            for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
                self.fold_cell(i as usize, v, tr);
            }
        }
    }

    /// Cell-level fold shared by the trait path and the one-shot API:
    /// `cells` is `clients` clients' worth of concatenated `G` cells.
    pub(crate) fn ingest_cells<TR: Tracer>(&mut self, cells: &[u64], clients: usize, tr: &mut TR) {
        self.n += clients;
        for &cell in cells {
            self.fold_cell(cell_index(cell) as usize, cell_value(cell), tr);
        }
    }

    /// One cell: a traced `G` read at the global running offset, then the
    /// secret-indexed `G*` read-modify-write (the Proposition 3.2 leak).
    fn fold_cell<TR: Tracer>(&mut self, idx: usize, val: f32, tr: &mut TR) {
        tr.touch(
            REGION_G,
            (self.next_cell * Self::CELL_BYTES) as u64,
            Self::CELL_BYTES as u32,
            Op::Read,
        );
        self.next_cell += 1;
        let cur = self.gstar.read(idx, tr);
        self.gstar.write(idx, cur + val, tr);
    }

    /// Averages and returns the dense update.
    pub fn finalize<TR: Tracer>(mut self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        average_in_place(&mut self.gstar, self.n, tr);
        self.gstar.into_inner()
    }

    /// Clients folded in so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the dense accumulator.
    pub fn resident_bytes(&self) -> u64 {
        self.d as u64 * 4
    }

    /// Serializes the streamer for a sealed mid-round checkpoint: the
    /// accumulator bits, the global `G` offset, and the client count.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.d);
        w.put_usize(self.next_cell);
        w.put_usize(self.n);
        w.put_f32s(self.gstar.as_slice_untraced());
        w.into_bytes()
    }

    /// Restores a [`LinearStreamer::save_state`] snapshot into a freshly
    /// initialized streamer of the same dimension.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        if r.get_usize()? != self.d {
            return Err(StateError::Mismatch);
        }
        self.next_cell = r.get_usize()?;
        self.n = r.get_usize()?;
        let gstar = r.get_f32s()?;
        if gstar.len() != self.gstar.len() {
            return Err(StateError::Mismatch);
        }
        self.gstar.as_mut_slice_untraced().copy_from_slice(&gstar);
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{assert_not_oblivious, assert_oblivious, Granularity, NullTracer};

    #[test]
    fn dense_linear_correct() {
        // Two clients, d = 3.
        let dense = vec![1.0f32, 2.0, 3.0, 3.0, 2.0, 1.0];
        let out = aggregate_dense_linear(&dense, 3, 2, &mut NullTracer);
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn sparse_linear_correct() {
        let updates = random_updates(5, 4, 32, 3);
        let cells = concat_cells(&updates);
        let got = aggregate_sparse_linear(&cells, 32, 5, &mut NullTracer);
        assert_close(&got, &reference_average(&updates, 32), 1e-5);
    }

    /// Proposition 3.1 as a test: the linear algorithm is fully oblivious
    /// for dense gradients.
    #[test]
    fn prop_3_1_dense_is_oblivious() {
        let inputs: Vec<Vec<f32>> = vec![
            (0..24).map(|i| i as f32).collect(),
            (0..24).map(|i| -(i as f32)).collect(),
            vec![42.0; 24],
        ];
        assert_oblivious(Granularity::Element, &inputs, |input, tr| {
            aggregate_dense_linear(input, 8, 3, tr);
        });
        assert_oblivious(Granularity::Cacheline, &inputs, |input, tr| {
            aggregate_dense_linear(input, 8, 3, tr);
        });
    }

    /// Proposition 3.2 as a test: the linear algorithm is NOT oblivious
    /// for sparsified gradients — different index sets, different traces —
    /// and the leak survives at cacheline granularity.
    #[test]
    fn prop_3_2_sparse_is_not_oblivious() {
        let a = random_updates(3, 5, 256, 1);
        let b = random_updates(3, 5, 256, 2);
        let inputs = vec![concat_cells(&a), concat_cells(&b)];
        assert_not_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_sparse_linear(cells, 256, 3, tr);
        });
        assert_not_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_sparse_linear(cells, 256, 3, tr);
        });
    }

    /// The exact leak: the set of touched G* offsets equals the union of
    /// transmitted indices.
    #[test]
    fn sparse_linear_leaks_exact_indices() {
        use olive_memsim::RecordingTracer;
        let updates = random_updates(2, 6, 64, 7);
        let cells = concat_cells(&updates);
        let mut tr = RecordingTracer::with_events(Granularity::Element);
        aggregate_sparse_linear(&cells, 64, 2, &mut tr);
        let touched = tr.touched_offsets(crate::regions::REGION_G_STAR);
        let touched_idx: std::collections::BTreeSet<u32> =
            touched.iter().map(|&b| (b / 4) as u32).collect();
        let mut sent: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for u in &updates {
            sent.extend(u.indices.iter().copied());
        }
        // The averaging pass touches ALL offsets at the end; restrict the
        // check to "every sent index was touched during accumulation" by
        // verifying sent ⊆ touched (the attack parser segments by phase).
        assert!(sent.is_subset(&touched_idx));
    }
}
