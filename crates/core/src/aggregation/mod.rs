//! Server-side aggregation algorithms over sparsified gradients.
//!
//! Every function here consumes the concatenated cell buffer `G` (nk cells
//! of `(index, value)`) plus the dense dimension `d` and the participant
//! count `n`, and returns the **averaged** dense update
//! `Δ̃ = (1/n) Σᵢ Δᵢ` (Algorithm 1 line 12). All adversary-visible state
//! lives in [`TrackedBuf`]s so the supplied [`Tracer`] observes the exact
//! access sequence the paper's threat model grants the server.
//!
//! [`TrackedBuf`]: olive_memsim::TrackedBuf
//! [`Tracer`]: olive_memsim::Tracer

pub mod advanced;
pub mod baseline;
pub mod dobliv;
pub mod grouped;
pub mod linear;
pub mod oram;
pub mod sharded;
pub mod streaming;

use olive_fl::SparseGradient;
use olive_memsim::ParallelTracer;
use olive_oram::PosMapKind;

use crate::parallel::default_threads;

pub use sharded::{ShardError, ShardFailure, ShardRuntime, ShardedAggregator, SHARD_CODE_IDENTITY};
pub use streaming::{Aggregator, StreamingAggregator};

/// Which aggregation algorithm the enclave runs (Section 5's lineup).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggregatorKind {
    /// The linear algorithm (Algorithm 5): fast, **not oblivious** for
    /// sparse inputs — the vulnerable default this paper attacks.
    NonOblivious,
    /// Algorithm 3 with `c` weights per cacheline (c = 16 for f32 cells =
    /// the paper's 16× optimization; c = 1 degenerates to element-level
    /// full scans).
    Baseline {
        /// Weights per cacheline.
        cacheline_weights: usize,
    },
    /// Algorithm 4 (sort → fold → sort).
    Advanced,
    /// Section 5.3: Advanced applied to groups of `h` clients with an
    /// oblivious carry accumulation.
    Grouped {
        /// Clients per group.
        h: usize,
    },
    /// The general-purpose PathORAM comparator (ZeroTrace model).
    PathOram {
        /// Position-map strategy.
        posmap: PosMapKind,
    },
    /// Section 5.4: differentially-oblivious relaxation (dummy padding +
    /// oblivious shuffle + linear pass). `epsilon`/`delta` budget the
    /// access-histogram DP guarantee.
    DiffOblivious {
        /// DP ε for the access-pattern histogram.
        epsilon: f64,
        /// DP δ for the access-pattern histogram.
        delta: f64,
        /// Seed for padding + shuffle randomness.
        seed: u64,
    },
}

/// Aggregates sparse client updates with the chosen algorithm, reporting
/// every adversary-visible access to `tr`. Returns the averaged dense
/// update of length `d`. Parallel algorithms ([`AggregatorKind::Grouped`]
/// across groups; [`AggregatorKind::Advanced`] and
/// [`AggregatorKind::DiffOblivious`] inside their sorting networks;
/// [`AggregatorKind::Baseline`] across its per-cacheline stripe scans) use
/// the process-default thread count ([`default_threads`]).
pub fn aggregate<TR: ParallelTracer>(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
    tr: &mut TR,
) -> Vec<f32> {
    aggregate_with_threads(kind, updates, d, default_threads(), tr)
}

/// [`aggregate`] with an explicit worker-thread count for the parallel
/// algorithms; serial algorithms ignore `threads`. `threads = 1`
/// reproduces the exact serial traces of pre-parallel builds (the
/// sort-kernel trace is thread-count-invariant by construction, so for
/// Advanced/DiffOblivious every thread count does).
///
/// Since the streaming refactor this is a thin wrapper over the
/// [`Aggregator`] trait — one `ingest` of the whole round followed by
/// `finalize`. The streaming contract (chunk boundaries are invisible to
/// output and trace) makes this *definitionally* equal to any chunked
/// schedule, so figure binaries and tests built on the one-shot API keep
/// their historical behaviour bit-for-bit.
pub fn aggregate_with_threads<TR: ParallelTracer>(
    kind: AggregatorKind,
    updates: &[SparseGradient],
    d: usize,
    threads: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "no updates to aggregate");
    let mut agg = StreamingAggregator::new(kind, d, threads);
    agg.ingest(updates, tr);
    agg.finalize(tr)
}

/// Untraced dense reference sum (ground truth for tests): the exact value
/// every oblivious algorithm must reproduce.
pub fn reference_average(updates: &[SparseGradient], d: usize) -> Vec<f32> {
    let mut sum = vec![0.0f32; d];
    for u in updates {
        for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
            sum[i as usize] += v;
        }
    }
    let inv = 1.0 / updates.len() as f32;
    for s in &mut sum {
        *s *= inv;
    }
    sum
}

#[cfg(test)]
pub(crate) mod test_support {
    use olive_fl::SparseGradient;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random sparse updates: n clients, k of d coordinates each,
    /// duplicate indices across clients guaranteed possible.
    pub fn random_updates(n: usize, k: usize, d: usize, seed: u64) -> Vec<SparseGradient> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut idxs: Vec<u32> = (0..d as u32).collect();
                for t in 0..k {
                    let j = rng.gen_range(t..d);
                    idxs.swap(t, j);
                }
                let mut indices: Vec<u32> = idxs[..k].to_vec();
                indices.sort_unstable();
                let values = (0..k).map(|_| rng.gen_range(-2.0..2.0)).collect();
                SparseGradient { dense_dim: d, indices, values }
            })
            .collect()
    }

    pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol, "coordinate {i}: {x} vs {y}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use olive_memsim::NullTracer;

    /// Every aggregator agrees with the dense reference on random input —
    /// the master correctness test.
    #[test]
    fn all_aggregators_match_reference() {
        let d = 64;
        let updates = random_updates(7, 9, d, 99);
        let expected = reference_average(&updates, d);
        let kinds = [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Baseline { cacheline_weights: 1 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
            AggregatorKind::Grouped { h: 7 },
            AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
            AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-4, seed: 5 },
        ];
        for kind in kinds {
            let got = aggregate(kind, &updates, d, &mut NullTracer);
            assert_close(&got, &expected, 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut updates = random_updates(2, 3, 16, 1);
        updates[1].dense_dim = 8;
        aggregate(AggregatorKind::Advanced, &updates, 16, &mut NullTracer);
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn empty_updates_panics() {
        aggregate(AggregatorKind::Advanced, &[], 16, &mut NullTracer);
    }
}
