//! ORAM-based aggregation: the general-purpose comparator (Section 5
//! intro; the PathORAM bars of Figure 9).
//!
//! Initialize an ORAM holding the `d` aggregate slots, apply each incoming
//! cell as an oblivious read-modify-write at its index, then read all `d`
//! slots back. Asymptotically O(nk·log d) ORAM accesses — but each access
//! costs a full path read/write plus oblivious stash scans and (under the
//! SGX model) position-map work, the constant factor that Figure 9 shows
//! dwarfing the task-specific Advanced algorithm.

use olive_memsim::{Tracer, TrackedBuf};
use olive_oram::{PathOram, PathOramConfig, PosMapKind};

use crate::cell::{cell_index, cell_value};
use crate::regions::{REGION_G, REGION_G_STAR, REGION_ORAM_BASE};

use super::linear::average_in_place;

/// Builds the `d`-slot aggregation ORAM with the paper's Section 5.5
/// configuration (Z = 4, stash limit 20). Exposed so benchmarks can
/// amortize the O(d) setup out of their timed loops.
pub fn build_aggregation_oram(d: usize, posmap: PosMapKind) -> PathOram<u64> {
    PathOram::<u64>::new(
        PathOramConfig {
            capacity: d,
            stash_limit: 20, // the paper's Section 5.5 configuration
            posmap,
            region_base: REGION_ORAM_BASE,
        },
        0xA11CE,
    )
}

/// Aggregates via a PathORAM over the `d` aggregate slots.
pub fn aggregate_oram<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    posmap: PosMapKind,
    tr: &mut TR,
) -> Vec<f32> {
    let mut oram = build_aggregation_oram(d, posmap);
    aggregate_oram_into(&mut oram, cells, d, n, tr)
}

/// The accumulation + read-back phases of [`aggregate_oram`] against a
/// caller-supplied (already constructed) ORAM. Slots are reset to zero as
/// they are read back, so repeated calls against one ORAM each compute a
/// fresh aggregate — exactly what a long-lived deployment (or a bench
/// loop with setup amortized out) does.
pub fn aggregate_oram_into<TR: Tracer>(
    oram: &mut PathOram<u64>,
    cells: &[u64],
    d: usize,
    n: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert!(oram.capacity() >= d, "ORAM holds {} slots, need {d}", oram.capacity());
    let g = TrackedBuf::new(REGION_G, cells.to_vec());
    for i in 0..g.len() {
        let cell = g.read(i, tr);
        let idx = cell_index(cell);
        let val = cell_value(cell);
        // Oblivious fetch-add: values are stored as f32 bits in the u64.
        oram.update(idx, move |old| (f32::from_bits(old as u32) + val).to_bits() as u64, tr);
    }
    let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, d);
    for j in 0..d {
        // Fused read-and-clear: one path walk returns the sum and zeroes
        // the slot, keeping the ORAM reusable for the next round.
        let bits = oram.take(j as u32, tr);
        gstar.write(j, f32::from_bits(bits as u32), tr);
    }
    average_in_place(&mut gstar, n, tr);
    gstar.into_inner()
}

/// Streaming form of [`aggregate_oram`]: the `d`-slot ORAM persists
/// across chunks and each incoming cell is applied as one oblivious
/// read-modify-write, with the `G` offsets continuing from the previous
/// chunk. The unit of work is a single cell and the ORAM's path
/// randomness is a function of the access *sequence* (fixed construction
/// seed), so chunk boundaries change neither the output bits nor the
/// trace.
pub struct OramStreamer {
    /// Boxed: `PathOram` carries its access scratch inline, which would
    /// otherwise dominate the `StreamingAggregator` enum's size.
    oram: Box<PathOram<u64>>,
    /// Global position in the round's logical `G` buffer (cells).
    next_cell: usize,
    n: usize,
    d: usize,
}

impl OramStreamer {
    /// Bytes of one packed `(index, value)` cell in `G`.
    const CELL_BYTES: usize = core::mem::size_of::<u64>();

    /// Fresh streamer over dimension `d`.
    pub fn init(d: usize, posmap: PosMapKind) -> Self {
        OramStreamer { oram: Box::new(build_aggregation_oram(d, posmap)), next_cell: 0, n: 0, d }
    }

    /// Folds one chunk of client updates into the ORAM slots.
    ///
    /// Contract: every cell index must lie in `0..d` (validated upstream
    /// when updates are decoded). A violation surfaces as the ORAM's
    /// structured `OramError` rendered through the panicking accessor —
    /// the streaming [`Aggregator`](super::streaming::Aggregator) trait
    /// has no fallible ingest path.
    pub fn ingest<TR: Tracer>(&mut self, chunk: &[olive_fl::SparseGradient], tr: &mut TR) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
            self.n += 1;
            for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
                tr.touch(
                    REGION_G,
                    (self.next_cell * Self::CELL_BYTES) as u64,
                    Self::CELL_BYTES as u32,
                    olive_memsim::Op::Read,
                );
                self.next_cell += 1;
                self.oram.update(
                    i,
                    move |old| (f32::from_bits(old as u32) + v).to_bits() as u64,
                    tr,
                );
            }
        }
    }

    /// Reads back (and clears) the `d` slots, averages, and returns the
    /// dense update.
    pub fn finalize<TR: Tracer>(mut self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, self.d);
        for j in 0..self.d {
            // Fused read-and-clear: one path walk per slot instead of a
            // read access followed by a zeroing write access.
            let bits = self.oram.take(j as u32, tr);
            gstar.write(j, f32::from_bits(bits as u32), tr);
        }
        average_in_place(&mut gstar, self.n, tr);
        gstar.into_inner()
    }

    /// Clients folded in so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the full ORAM working set — tree, stash,
    /// position map (recursively), and access scratch — per the Section
    /// 5.5 memory model. Independent of the number of clients folded in.
    pub fn resident_bytes(&self) -> u64 {
        self.oram.resident_bytes()
    }

    /// The underlying ORAM's usage counters (accesses, stash high-water
    /// mark, evicted blocks) — the telemetry plane samples these per
    /// chunk.
    pub fn oram_stats(&self) -> olive_oram::OramStats {
        self.oram.stats()
    }

    /// Transient bytes finalize allocates: the dense read-back buffer.
    pub fn finalize_scratch_bytes(&self) -> u64 {
        self.d as u64 * 4
    }

    /// Serializes the streamer for a sealed mid-round checkpoint. The
    /// ORAM snapshot includes tree, stash, position map and the path
    /// RNG, so a restored streamer continues the exact random path
    /// sequence of the snapshotted one.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = olive_memsim::StateWriter::new();
        w.put_usize(self.d);
        w.put_usize(self.next_cell);
        w.put_usize(self.n);
        w.put_bytes(&self.oram.save_state());
        w.into_bytes()
    }

    /// Restores an [`OramStreamer::save_state`] snapshot into a freshly
    /// initialized streamer of the same configuration.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), olive_memsim::StateError> {
        let mut r = olive_memsim::StateReader::new(bytes);
        if r.get_usize()? != self.d {
            return Err(olive_memsim::StateError::Mismatch);
        }
        self.next_cell = r.get_usize()?;
        self.n = r.get_usize()?;
        self.oram.load_state(r.get_bytes()?)?;
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};

    #[test]
    fn matches_reference_all_posmaps() {
        let updates = random_updates(4, 5, 32, 30);
        let expected = reference_average(&updates, 32);
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            let got = aggregate_oram(&concat_cells(&updates), 32, 4, posmap, &mut NullTracer);
            assert_close(&got, &expected, 1e-4);
        }
    }

    #[test]
    fn trace_shape_is_data_independent() {
        // PathORAM is statistically oblivious: exact traces vary with the
        // (public) path randomness, but op counts are fixed by shape.
        let count = |seed: u64| {
            let updates = random_updates(3, 4, 16, seed);
            let mut tr = RecordingTracer::new(Granularity::Element);
            aggregate_oram(&concat_cells(&updates), 16, 3, PosMapKind::LinearScan, &mut tr);
            (tr.stats().reads, tr.stats().writes)
        };
        assert_eq!(count(1), count(2));
    }

    #[test]
    fn reused_oram_computes_fresh_aggregates() {
        // The read-and-clear read-back must leave the ORAM ready for the
        // next round (the amortized-setup bench depends on this).
        let updates_a = random_updates(3, 4, 16, 60);
        let updates_b = random_updates(3, 4, 16, 61);
        let mut oram = build_aggregation_oram(16, PosMapKind::LinearScan);
        let got_a =
            aggregate_oram_into(&mut oram, &concat_cells(&updates_a), 16, 3, &mut NullTracer);
        let got_b =
            aggregate_oram_into(&mut oram, &concat_cells(&updates_b), 16, 3, &mut NullTracer);
        assert_close(&got_a, &reference_average(&updates_a, 16), 1e-4);
        assert_close(&got_b, &reference_average(&updates_b, 16), 1e-4);
    }

    #[test]
    fn repeated_index_accumulates() {
        use olive_fl::SparseGradient;
        let updates: Vec<SparseGradient> = (0..3)
            .map(|_| SparseGradient { dense_dim: 8, indices: vec![1], values: vec![2.0] })
            .collect();
        let got =
            aggregate_oram(&concat_cells(&updates), 8, 3, PosMapKind::LinearScan, &mut NullTracer);
        assert!((got[1] - 2.0).abs() < 1e-6);
    }
}
