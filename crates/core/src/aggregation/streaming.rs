//! The streaming [`Aggregator`] trait: chunked, EPC-bounded ingestion.
//!
//! The one-shot API (`aggregate_with_threads`) forces the enclave to hold
//! **all** n decrypted uploads before any aggregation work starts — peak
//! memory O(nk + d), which caps a round at thousands of clients on a
//! 96 MiB EPC. This module turns every aggregation algorithm into an
//! incremental consumer:
//!
//! ```text
//! init(d, threads) ──▶ ingest(chunk₁) ──▶ … ──▶ ingest(chunkₘ) ──▶ finalize() → Δ̃
//! ```
//!
//! Each chunk of decrypted client updates is obliviously folded into the
//! algorithm's persistent state (a dense d-word accumulator for Linear /
//! Baseline, the ORAM slots, the grouped running total) and then dropped,
//! so the enclave's working set is O(chunk·k + d·threads) instead of
//! O(n·k + d). The chunk size is a **public** parameter — like the thread
//! count and the group size h — so chunking cannot introduce a
//! data-dependent access pattern.
//!
//! # The invariant: chunk boundaries are invisible
//!
//! Every implementation guarantees that streaming at *any* chunk size is
//! **bitwise output- and trace-identical** to the one-shot path (which is
//! the single-chunk special case). Three strategies deliver this:
//!
//! * **per-cell incremental** (Linear, Baseline, PathORAM): the one-shot
//!   algorithms are already left-to-right folds over the cell stream, so
//!   the streamer simply persists the accumulator and continues the
//!   logical `G` offsets across chunks;
//! * **unit-buffered** (Grouped): clients buffer until a full processing
//!   unit — a group of h (serial) or a wave of h·threads (parallel) — is
//!   available, then run through exactly the one-shot schedule; memory
//!   stays O(h·threads·k + d·threads);
//! * **staged** (Advanced, DiffOblivious): the algorithm is inherently
//!   monolithic (one sort / one shuffle over the whole round is what its
//!   security argument is about), so chunks stage into the cell buffer
//!   and the real work runs at finalize. Memory remains O(nk) — reported
//!   honestly through [`Aggregator::resident_bytes`]; this is precisely
//!   the paper's Figure 10 EPC cliff, and why production rounds use the
//!   Grouped streamer.
//!
//! The `tests/` crate asserts the invariant for every kind at chunk sizes
//! {1, 7, n} × threads {1, 2, 8}, plus a proptest over arbitrary chunk
//! partitions.

use olive_fl::SparseGradient;
use olive_memsim::{ParallelTracer, StateError};

use super::advanced::AdvancedStreamer;
use super::baseline::BaselineStreamer;
use super::dobliv::DoblivStreamer;
use super::grouped::GroupedStreamer;
use super::linear::LinearStreamer;
use super::oram::OramStreamer;
use super::AggregatorKind;

/// An aggregation algorithm consuming client updates incrementally.
///
/// Contract (asserted by the integration suite):
///
/// * `ingest` folds a chunk into persistent state; the concatenation of
///   all ingested chunks determines output and trace — the partition into
///   chunks does not;
/// * `finalize` completes the round and returns the averaged dense update
///   of length d; it panics with "no updates to aggregate" if nothing was
///   ingested (mirroring the one-shot API);
/// * the trace emitted through `tr` is a function of public quantities
///   only (shape, chunk schedule, threads) for the oblivious kinds;
/// * the byte-accounting methods describe the enclave-resident footprint
///   so the round pipeline can charge the EPC budget per chunk.
pub trait Aggregator: Sized {
    /// Folds one chunk of decrypted client updates into the aggregator
    /// state, reporting adversary-visible accesses to `tr`. Panics on a
    /// dimension mismatch ("update dimension mismatch").
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR);

    /// Completes the round: drains any buffered unit, averages by the
    /// total client count, and returns the dense update.
    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32>;

    /// Clients ingested so far.
    fn clients(&self) -> usize;

    /// Enclave bytes held *between* calls (accumulators, buffered cells,
    /// the ORAM tree). O(d) for the bounded kinds; grows with the round
    /// for the staged kinds.
    fn resident_bytes(&self) -> u64;

    /// Transient enclave bytes one `ingest` of `chunk_clients` updates
    /// with `k` cells each may allocate on top of the resident state
    /// (cell staging copies, per-wave sort scratch).
    fn ingest_scratch_bytes(&self, chunk_clients: usize, k: usize) -> u64 {
        let _ = (chunk_clients, k);
        0
    }

    /// Transient enclave bytes `finalize` may allocate (the monolithic
    /// sort/shuffle vectors of the staged kinds; the dense output).
    fn finalize_scratch_bytes(&self) -> u64 {
        0
    }

    /// Serializes the aggregator's persistent state for a sealed
    /// mid-round checkpoint. Loading the blob (`load_state`) into a
    /// freshly initialized aggregator of the same configuration
    /// reproduces the snapshotted instance exactly: ingesting the
    /// remaining chunks yields the same output bits and the same trace
    /// as an uninterrupted run. The staged kinds (Advanced,
    /// DiffOblivious) serialize their whole cell buffer — the honest
    /// O(nk) cost their security argument already implies.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state captured by [`Aggregator::save_state`]. Fails with
    /// [`StateError::Mismatch`] if the blob describes a different
    /// configuration (dimension, group size, thread budget, kind).
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError>;
}

impl Aggregator for LinearStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        LinearStreamer::ingest(self, chunk, tr);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        LinearStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        LinearStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        LinearStreamer::resident_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        LinearStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        LinearStreamer::load_state(self, bytes)
    }
}

impl Aggregator for BaselineStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        BaselineStreamer::ingest(self, chunk, tr);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        BaselineStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        BaselineStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        BaselineStreamer::resident_bytes(self)
    }

    fn ingest_scratch_bytes(&self, chunk_clients: usize, k: usize) -> u64 {
        // The chunk's staged cell copy built for the stripe scans.
        (chunk_clients * k) as u64 * 8
    }

    fn save_state(&self) -> Vec<u8> {
        BaselineStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        BaselineStreamer::load_state(self, bytes)
    }
}

impl Aggregator for AdvancedStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], _tr: &mut TR) {
        AdvancedStreamer::ingest(self, chunk);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        AdvancedStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        AdvancedStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        AdvancedStreamer::resident_bytes(self)
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        AdvancedStreamer::finalize_scratch_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        AdvancedStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        AdvancedStreamer::load_state(self, bytes)
    }
}

impl Aggregator for GroupedStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        GroupedStreamer::ingest(self, chunk, tr);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        GroupedStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        GroupedStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        GroupedStreamer::resident_bytes(self)
    }

    fn ingest_scratch_bytes(&self, _chunk_clients: usize, k: usize) -> u64 {
        self.wave_scratch_bytes(k)
    }

    fn save_state(&self) -> Vec<u8> {
        GroupedStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        GroupedStreamer::load_state(self, bytes)
    }
}

impl Aggregator for OramStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        OramStreamer::ingest(self, chunk, tr);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        OramStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        OramStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        OramStreamer::resident_bytes(self)
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        OramStreamer::finalize_scratch_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        OramStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        OramStreamer::load_state(self, bytes)
    }
}

impl Aggregator for DoblivStreamer {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], _tr: &mut TR) {
        DoblivStreamer::ingest(self, chunk);
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        DoblivStreamer::finalize(self, tr)
    }

    fn clients(&self) -> usize {
        DoblivStreamer::clients(self)
    }

    fn resident_bytes(&self) -> u64 {
        DoblivStreamer::resident_bytes(self)
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        DoblivStreamer::finalize_scratch_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        DoblivStreamer::save_state(self)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        DoblivStreamer::load_state(self, bytes)
    }
}

/// Runtime-dispatched streaming aggregator: one variant per
/// [`AggregatorKind`], so the round pipeline holds a single concrete type
/// while the trait stays generic over the tracer.
pub enum StreamingAggregator {
    /// Algorithm 5 over sparse cells (not oblivious — the attack surface).
    Linear(LinearStreamer),
    /// Algorithm 3 stripe scans.
    Baseline(BaselineStreamer),
    /// Algorithm 4 (staged; monolithic sort at finalize).
    Advanced(AdvancedStreamer),
    /// Section 5.3 grouped Advanced (the bounded-EPC oblivious streamer).
    Grouped(GroupedStreamer),
    /// PathORAM comparator.
    PathOram(OramStreamer),
    /// Section 5.4 DO relaxation (staged; monolithic shuffle at finalize).
    DiffOblivious(DoblivStreamer),
}

impl StreamingAggregator {
    /// The issue-facing `init(d, threads)`: builds the streamer for `kind`
    /// over dimension `d` with the given worker-thread budget.
    pub fn new(kind: AggregatorKind, d: usize, threads: usize) -> Self {
        match kind {
            AggregatorKind::NonOblivious => StreamingAggregator::Linear(LinearStreamer::init(d)),
            AggregatorKind::Baseline { cacheline_weights } => {
                StreamingAggregator::Baseline(BaselineStreamer::init(d, cacheline_weights, threads))
            }
            AggregatorKind::Advanced => {
                StreamingAggregator::Advanced(AdvancedStreamer::init(d, threads))
            }
            AggregatorKind::Grouped { h } => {
                StreamingAggregator::Grouped(GroupedStreamer::init(d, h, threads))
            }
            AggregatorKind::PathOram { posmap } => {
                StreamingAggregator::PathOram(OramStreamer::init(d, posmap))
            }
            AggregatorKind::DiffOblivious { epsilon, delta, seed } => {
                StreamingAggregator::DiffOblivious(DoblivStreamer::init(
                    d, epsilon, delta, seed, threads,
                ))
            }
        }
    }

    /// PathORAM usage counters (accesses, stash high-water mark, evicted
    /// blocks) when this streamer is the ORAM comparator; `None` for
    /// every other kind. The round pipeline samples this per chunk to
    /// feed the `oram_*` telemetry counters.
    pub fn oram_stats(&self) -> Option<olive_oram::OramStats> {
        match self {
            StreamingAggregator::PathOram(s) => Some(s.oram_stats()),
            _ => None,
        }
    }

    /// One byte naming the variant, prepended to serialized state so a
    /// checkpoint can never be loaded into the wrong algorithm.
    fn kind_tag(&self) -> u8 {
        match self {
            StreamingAggregator::Linear(_) => 0,
            StreamingAggregator::Baseline(_) => 1,
            StreamingAggregator::Advanced(_) => 2,
            StreamingAggregator::Grouped(_) => 3,
            StreamingAggregator::PathOram(_) => 4,
            StreamingAggregator::DiffOblivious(_) => 5,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            StreamingAggregator::Linear($s) => $body,
            StreamingAggregator::Baseline($s) => $body,
            StreamingAggregator::Advanced($s) => $body,
            StreamingAggregator::Grouped($s) => $body,
            StreamingAggregator::PathOram($s) => $body,
            StreamingAggregator::DiffOblivious($s) => $body,
        }
    };
}

impl Aggregator for StreamingAggregator {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        dispatch!(self, s => Aggregator::ingest(s, chunk, tr))
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        dispatch!(self, s => Aggregator::finalize(s, tr))
    }

    fn clients(&self) -> usize {
        dispatch!(self, s => Aggregator::clients(s))
    }

    fn resident_bytes(&self) -> u64 {
        dispatch!(self, s => Aggregator::resident_bytes(s))
    }

    fn ingest_scratch_bytes(&self, chunk_clients: usize, k: usize) -> u64 {
        dispatch!(self, s => Aggregator::ingest_scratch_bytes(s, chunk_clients, k))
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        dispatch!(self, s => Aggregator::finalize_scratch_bytes(s))
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = vec![self.kind_tag()];
        out.extend(dispatch!(self, s => Aggregator::save_state(s)));
        out
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let (&tag, rest) = bytes.split_first().ok_or(StateError::Truncated)?;
        if tag != self.kind_tag() {
            return Err(StateError::Mismatch);
        }
        dispatch!(self, s => Aggregator::load_state(s, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::test_support::*;
    use crate::aggregation::{aggregate_with_threads, reference_average};
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};

    fn all_kinds() -> Vec<AggregatorKind> {
        vec![
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Baseline { cacheline_weights: 1 },
            AggregatorKind::Advanced,
            AggregatorKind::Grouped { h: 2 },
            AggregatorKind::Grouped { h: 5 },
            AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
            AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 5 },
        ]
    }

    /// Core invariant at unit scale: streaming at chunk sizes 1, 3 and n
    /// is bitwise output- and trace-identical to the one-shot wrapper.
    #[test]
    fn chunking_is_invisible_for_every_kind() {
        let d = 48;
        let updates = random_updates(7, 5, d, 31);
        for kind in all_kinds() {
            let mut one_tr = RecordingTracer::new(Granularity::Element);
            let one = aggregate_with_threads(kind, &updates, d, 1, &mut one_tr);
            for chunk in [1usize, 3, 7] {
                let mut tr = RecordingTracer::new(Granularity::Element);
                let mut agg = StreamingAggregator::new(kind, d, 1);
                for c in updates.chunks(chunk) {
                    agg.ingest(c, &mut tr);
                }
                assert_eq!(agg.clients(), 7);
                let got = agg.finalize(&mut tr);
                let bits_eq = one.iter().zip(got.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(bits_eq, "{kind:?} chunk={chunk}: output bits drifted");
                assert_eq!(tr.digest(), one_tr.digest(), "{kind:?} chunk={chunk}: trace drifted");
            }
        }
    }

    /// Anchor the streamers to the *historical cell-level* entry points
    /// (not just to `aggregate_with_threads`, which is itself
    /// streamer-backed since the refactor): a single-chunk streaming run
    /// must reproduce each legacy implementation's bits and trace. Linear
    /// and Baseline delegate to the streamers by construction; ORAM,
    /// Advanced and DiffOblivious keep independent bodies, so this pin is
    /// what catches drift between the copies.
    #[test]
    fn single_chunk_streaming_pins_legacy_cell_level_paths() {
        use crate::aggregation::{advanced, baseline, dobliv, linear, oram};
        use crate::cell::concat_cells;
        let d = 48;
        let updates = random_updates(6, 5, d, 13);
        let cells = concat_cells(&updates);
        let n = updates.len();
        type Legacy = fn(&[u64], usize, usize, &mut RecordingTracer) -> Vec<f32>;
        let legacy: Vec<(AggregatorKind, Legacy)> = vec![
            (AggregatorKind::NonOblivious, |c, d, n, tr| {
                linear::aggregate_sparse_linear(c, d, n, tr)
            }),
            (AggregatorKind::Baseline { cacheline_weights: 16 }, |c, d, n, tr| {
                baseline::aggregate_baseline_with_threads(c, d, n, 16, 1, tr)
            }),
            (AggregatorKind::Advanced, |c, d, n, tr| {
                advanced::aggregate_advanced_with_threads(c, d, n, 1, tr)
            }),
            (
                AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
                |c, d, n, tr| oram::aggregate_oram(c, d, n, olive_oram::PosMapKind::LinearScan, tr),
            ),
            (
                AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 5 },
                |c, d, n, tr| dobliv::aggregate_dobliv_with_threads(c, d, n, 1.0, 1e-3, 5, 1, tr),
            ),
        ];
        for (kind, f) in legacy {
            let mut legacy_tr = RecordingTracer::new(Granularity::Element);
            let want = f(&cells, d, n, &mut legacy_tr);
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut agg = StreamingAggregator::new(kind, d, 1);
            agg.ingest(&updates, &mut tr);
            let got = agg.finalize(&mut tr);
            let bits_eq = want.iter().zip(got.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_eq, "{kind:?}: streamer drifted from the legacy output");
            assert_eq!(tr.digest(), legacy_tr.digest(), "{kind:?}: trace drifted from legacy");
        }
    }

    /// The streamers still compute the right answer (vs the dense
    /// reference), independently of the equality-with-one-shot pin.
    #[test]
    fn streaming_matches_reference() {
        let d = 40;
        let updates = random_updates(9, 4, d, 77);
        let expected = reference_average(&updates, d);
        for kind in all_kinds() {
            let mut agg = StreamingAggregator::new(kind, d, 2);
            for c in updates.chunks(4) {
                agg.ingest(c, &mut NullTracer);
            }
            let got = agg.finalize(&mut NullTracer);
            assert_close(&got, &expected, 1e-4);
        }
    }

    /// Bounded kinds keep their resident footprint independent of how
    /// many clients streamed through; staged kinds grow with the round.
    #[test]
    fn resident_bytes_bounded_vs_staged() {
        let d = 64;
        let updates = random_updates(16, 4, d, 9);
        let resident_after = |kind: AggregatorKind, n: usize| {
            let mut agg = StreamingAggregator::new(kind, d, 1);
            for c in updates[..n].chunks(2) {
                agg.ingest(c, &mut NullTracer);
            }
            agg.resident_bytes()
        };
        for kind in [
            AggregatorKind::NonOblivious,
            AggregatorKind::Baseline { cacheline_weights: 16 },
            AggregatorKind::Grouped { h: 2 },
            AggregatorKind::PathOram { posmap: olive_oram::PosMapKind::LinearScan },
        ] {
            assert_eq!(
                resident_after(kind, 4),
                resident_after(kind, 16),
                "{kind:?} must be n-independent"
            );
        }
        for kind in [
            AggregatorKind::Advanced,
            AggregatorKind::DiffOblivious { epsilon: 1.0, delta: 1e-3, seed: 5 },
        ] {
            assert!(
                resident_after(kind, 4) < resident_after(kind, 16),
                "{kind:?} stages the whole round"
            );
        }
    }

    /// The checkpoint contract at unit scale: for every kind, snapshot
    /// after a mid-stream chunk, load into a fresh same-config streamer,
    /// finish both — output bits AND the *remaining* trace must match.
    #[test]
    fn state_roundtrip_is_invisible_for_every_kind() {
        let d = 48;
        let updates = random_updates(7, 5, d, 55);
        for kind in all_kinds() {
            let mut a = StreamingAggregator::new(kind, d, 1);
            a.ingest(&updates[..4], &mut NullTracer);
            let blob = a.save_state();
            let mut b = StreamingAggregator::new(kind, d, 1);
            b.load_state(&blob).unwrap_or_else(|e| panic!("{kind:?}: load failed: {e}"));
            assert_eq!(b.clients(), 4, "{kind:?}: client count not restored");
            let mut tra = RecordingTracer::new(Granularity::Element);
            let mut trb = RecordingTracer::new(Granularity::Element);
            a.ingest(&updates[4..], &mut tra);
            b.ingest(&updates[4..], &mut trb);
            let va = a.finalize(&mut tra);
            let vb = b.finalize(&mut trb);
            let bits_eq = va.iter().zip(vb.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_eq, "{kind:?}: restored output bits drifted");
            assert_eq!(tra.digest(), trb.digest(), "{kind:?}: restored trace drifted");
        }
    }

    /// Cross-kind and cross-config loads are rejected, never absorbed.
    #[test]
    fn state_blob_mismatches_rejected() {
        use olive_memsim::StateError;
        let d = 48;
        let updates = random_updates(4, 5, d, 21);
        let mut a = StreamingAggregator::new(AggregatorKind::Grouped { h: 2 }, d, 1);
        a.ingest(&updates, &mut NullTracer);
        let blob = a.save_state();
        // Wrong kind.
        let mut b = StreamingAggregator::new(AggregatorKind::Advanced, d, 1);
        assert_eq!(b.load_state(&blob), Err(StateError::Mismatch));
        // Wrong group size.
        let mut c = StreamingAggregator::new(AggregatorKind::Grouped { h: 5 }, d, 1);
        assert_eq!(c.load_state(&blob), Err(StateError::Mismatch));
        // Wrong dimension.
        let mut e = StreamingAggregator::new(AggregatorKind::Grouped { h: 2 }, d * 2, 1);
        assert_eq!(e.load_state(&blob), Err(StateError::Mismatch));
        // Truncated.
        let mut f = StreamingAggregator::new(AggregatorKind::Grouped { h: 2 }, d, 1);
        assert!(f.load_state(&blob[..blob.len() - 3]).is_err());
        // Empty.
        let mut g = StreamingAggregator::new(AggregatorKind::Grouped { h: 2 }, d, 1);
        assert_eq!(g.load_state(&[]), Err(StateError::Truncated));
    }

    #[test]
    #[should_panic(expected = "no updates to aggregate")]
    fn finalize_without_ingest_panics() {
        let agg = StreamingAggregator::new(AggregatorKind::Advanced, 16, 1);
        agg.finalize(&mut NullTracer);
    }

    #[test]
    #[should_panic(expected = "update dimension mismatch")]
    fn dimension_mismatch_panics_at_ingest() {
        let mut updates = random_updates(2, 3, 16, 1);
        updates[1].dense_dim = 8;
        let mut agg = StreamingAggregator::new(AggregatorKind::Grouped { h: 2 }, 16, 1);
        agg.ingest(&updates, &mut NullTracer);
    }
}
