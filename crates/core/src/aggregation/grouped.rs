//! The grouped optimization of Advanced (Section 5.3).
//!
//! Batcher-sorting the full `nk + d` vector has poor locality: beyond the
//! L3 cache (8 MB) every long-stride exchange misses, and beyond the EPC
//! (96 MB) it page-faults with encrypted paging — the Figure 10 cliff at
//! N = 10⁴. The fix: split the n clients into groups of `h`, run Advanced
//! per group (working set `hk + d` cells), and accumulate the group sums
//! into a running total with an oblivious linear pass. Security is
//! unchanged — every step is oblivious and the group schedule is public.
//! Complexity O((n/h)·(hk+d)·log²(hk+d)); the optimal `h` balances sort
//! size against per-group overhead and is data-independent (Figure 11).

use olive_fl::SparseGradient;
use olive_memsim::{Tracer, TrackedBuf};

use crate::cell::concat_cells;
use crate::regions::REGION_G_STAR;

use super::advanced::sum_advanced;
use super::linear::average_in_place;

/// Grouped-Advanced aggregation with `h` clients per group.
pub fn aggregate_grouped<TR: Tracer>(
    updates: &[SparseGradient],
    d: usize,
    h: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert!(h >= 1, "group size must be at least 1");
    let n = updates.len();
    // The running total lives in the enclave across groups (Section 5.3
    // step 3: "record the aggregated value in the enclave, and carry over
    // the result to the next group").
    let mut total = TrackedBuf::<f32>::zeroed(REGION_G_STAR, d);
    for group in updates.chunks(h) {
        let cells = concat_cells(group);
        let partial = sum_advanced(&cells, d, tr);
        // Oblivious carry: fixed linear read-add-write sweep.
        for j in 0..d {
            let p = partial.read(j, tr);
            let t = total.read(j, tr);
            total.write(j, t + p, tr);
        }
    }
    // Step 4: average only once, after the last group.
    average_in_place(&mut total, n, tr);
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer, RecordingTracer};

    #[test]
    fn matches_reference_for_all_h() {
        let updates = random_updates(10, 5, 48, 20);
        let expected = reference_average(&updates, 48);
        for h in [1usize, 2, 3, 5, 10, 99] {
            let got = aggregate_grouped(&updates, 48, h, &mut NullTracer);
            assert_close(&got, &expected, 1e-4);
        }
    }

    #[test]
    fn uneven_last_group_handled() {
        // 10 clients, h = 4 → groups of 4, 4, 2.
        let updates = random_updates(10, 3, 32, 21);
        let got = aggregate_grouped(&updates, 32, 4, &mut NullTracer);
        assert_close(&got, &reference_average(&updates, 32), 1e-4);
    }

    #[test]
    fn oblivious_for_fixed_shape() {
        let inputs = vec![
            random_updates(6, 4, 32, 1),
            random_updates(6, 4, 32, 2),
            random_updates(6, 4, 32, 3),
        ];
        assert_oblivious(Granularity::Element, &inputs, |updates, tr| {
            aggregate_grouped(updates, 32, 2, tr);
        });
    }

    #[test]
    fn grouping_overhead_is_the_d_term() {
        // Grouping pays the d-sized zero-seed vector once per group:
        // with d ≫ k, h=1 (n groups) does far more work than h=n (one
        // group) — the "lowering h too much results in a large amount of
        // data loading" end of the Figure 11 U-curve.
        let updates = random_updates(8, 4, 256, 5);
        let trace_len = |h: usize| {
            let mut tr = RecordingTracer::new(Granularity::Element);
            aggregate_grouped(&updates, 256, h, &mut tr);
            tr.stats().total()
        };
        assert!(trace_len(8) < trace_len(1));
    }
}
