//! The grouped optimization of Advanced (Section 5.3), parallel across
//! groups.
//!
//! Batcher-sorting the full `nk + d` vector has poor locality: beyond the
//! L3 cache (8 MB) every long-stride exchange misses, and beyond the EPC
//! (96 MB) it page-faults with encrypted paging — the Figure 10 cliff at
//! N = 10⁴. The fix: split the n clients into groups of `h`, run Advanced
//! per group (working set `hk + d` cells), and accumulate the group sums
//! into a running total with an oblivious linear pass. Security is
//! unchanged — every step is oblivious and the group schedule is public.
//! Complexity O((n/h)·(hk+d)·log²(hk+d)); the optimal `h` balances sort
//! size against per-group overhead and is data-independent (Figure 11).
//!
//! # Parallelism
//!
//! Groups are independent until the carry, so the per-group sorts (the
//! dominant cost) run on `threads` worker threads. Three invariants make
//! this safe and reproducible:
//!
//! * **Obliviousness is preserved.** Work is split into waves of `threads`
//!   groups by *position*, each worker traces into its own forked tracer,
//!   and workers are joined in group order — all functions of the public
//!   input shape, never of gradient content (`ParallelTracer`). With
//!   `threads = 1` the historical serial path runs and the trace is
//!   byte-identical to pre-parallel builds.
//! * **Output is bitwise thread-count-invariant.** The carry is a *fixed
//!   left fold* over group partials in group order — exactly the serial
//!   float-addition order — never first-come accumulation, and not a
//!   binary combine tree (f32 addition is non-associative, so a tree
//!   would change low bits vs. serial). The fold is O(G·d) but is linear
//!   work next to the O((hk+d)log²) sorts it sequences.
//! * **The trace *multiset* is thread-count-invariant.** Parallel runs
//!   reorder events across groups (sorts batch per wave, carries follow)
//!   but add or drop none, so the combined adversary view touches exactly
//!   the serial set of (region, offset, op) events.
//!
//! The default thread count comes from `OLIVE_THREADS` /
//! `available_parallelism().min(8)` (see [`crate::parallel`]).

use olive_fl::SparseGradient;
use olive_memsim::{ParallelTracer, StateError, StateReader, StateWriter, Tracer, TrackedBuf};

use crate::cell::concat_cells;
use crate::parallel::default_threads;
use crate::regions::REGION_G_STAR;

use super::advanced::sum_advanced;
use super::linear::average_in_place;

/// Oblivious carry: the fixed linear read-add-write sweep that folds one
/// group's partial sums into the running total (Section 5.3 step 3).
fn carry_into<TR: Tracer>(partial: &TrackedBuf<f32>, total: &mut TrackedBuf<f32>, tr: &mut TR) {
    for j in 0..total.len() {
        let p = partial.read(j, tr);
        let t = total.read(j, tr);
        total.write(j, t + p, tr);
    }
}

/// Grouped-Advanced aggregation with `h` clients per group, using the
/// process-default thread count ([`default_threads`]).
pub fn aggregate_grouped<TR: ParallelTracer>(
    updates: &[SparseGradient],
    d: usize,
    h: usize,
    tr: &mut TR,
) -> Vec<f32> {
    aggregate_grouped_with_threads(updates, d, h, default_threads(), tr)
}

/// Grouped-Advanced aggregation with an explicit worker-thread count.
///
/// `threads = 1` (or a single group) runs the serial path and reproduces
/// the exact pre-parallel trace. Any `threads >= 2` runs groups on scoped
/// worker threads; the output is bitwise identical to serial for every
/// thread count, and the merged trace is deterministic for a fixed
/// `(shape, threads)` pair.
pub fn aggregate_grouped_with_threads<TR: ParallelTracer>(
    updates: &[SparseGradient],
    d: usize,
    h: usize,
    threads: usize,
    tr: &mut TR,
) -> Vec<f32> {
    let mut streamer = GroupedStreamer::init(d, h, threads);
    streamer.ingest(updates, tr);
    streamer.finalize(tr)
}

/// Runs one wave of up to `threads` groups on scoped worker threads,
/// joining traces and folding partials strictly in group order (the
/// parallel schedule of the one-shot path, shared verbatim by the
/// streamer).
fn run_wave<TR: ParallelTracer>(
    wave: &[SparseGradient],
    d: usize,
    h: usize,
    threads: usize,
    total: &mut TrackedBuf<f32>,
    tr: &mut TR,
) {
    let groups: Vec<&[SparseGradient]> = wave.chunks(h).collect();
    // A full wave saturates the budget with one thread per group
    // (intra = 1); a short wave (the tail, or n/h < threads) hands
    // the leftover budget to each group's intra-sort stages. Safe
    // because sort output and trace are thread-count-invariant.
    let intra = (threads / groups.len()).max(1);
    let mut slots: Vec<Option<(TrackedBuf<f32>, TR::Worker)>> =
        (0..groups.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, group) in slots.iter_mut().zip(groups) {
            let mut wtr = tr.fork_worker();
            scope.spawn(move || {
                let cells = concat_cells(group);
                let partial = sum_advanced(&cells, d, intra, &mut wtr);
                *slot = Some((partial, wtr));
            });
        }
    });
    // Join worker traces and fold partials strictly in group
    // order, regardless of which thread finished first.
    let (partials, workers): (Vec<_>, Vec<_>) =
        slots.into_iter().map(|s| s.expect("every group slot filled")).unzip();
    tr.join_workers(workers);
    for partial in &partials {
        carry_into(partial, total, tr);
    }
}

/// Streaming form of the grouped aggregation — the bounded-EPC workhorse
/// of the chunked round pipeline.
///
/// The running total persists in the enclave; incoming clients buffer
/// until a full **processing unit** is available — one group of `h`
/// clients under a serial budget, one wave of `h·threads` clients under a
/// parallel budget — which then runs through exactly the same code as the
/// one-shot path ([`run_wave`] / the serial group loop). Because the
/// processing schedule is a function of the *arrival count* only, chunk
/// boundaries change neither the output bits nor the trace: streaming at
/// any chunk size reproduces [`aggregate_grouped_with_threads`]
/// byte-for-byte. Peak memory is O(h·threads·k) buffered cells +
/// O(threads·(hk + d)) sort scratch + O(d) for the total — independent of
/// the round size n.
pub struct GroupedStreamer {
    total: TrackedBuf<f32>,
    pending: Vec<SparseGradient>,
    d: usize,
    h: usize,
    threads: usize,
    n: usize,
}

impl GroupedStreamer {
    /// Fresh streamer over dimension `d` with `h` clients per group.
    pub fn init(d: usize, h: usize, threads: usize) -> Self {
        assert!(h >= 1, "group size must be at least 1");
        assert!(threads >= 1, "thread count must be at least 1");
        // The running total lives in the enclave across groups (Section
        // 5.3 step 3: "record the aggregated value in the enclave, and
        // carry over the result to the next group").
        GroupedStreamer {
            total: TrackedBuf::zeroed(REGION_G_STAR, d),
            pending: Vec::new(),
            d,
            h,
            threads,
            n: 0,
        }
    }

    /// Buffers one chunk of client updates, draining every complete
    /// processing unit (group or wave) as it fills.
    pub fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
        }
        self.n += chunk.len();
        self.pending.extend_from_slice(chunk);
        if self.threads == 1 {
            // Serial group schedule: spend the whole thread budget
            // *inside* each group's sorts instead (the intra-sort stage
            // parallelism of `olive_oblivious::sort_kernel`). threads = 1
            // reproduces the serial trace byte-for-byte.
            while self.pending.len() >= self.h {
                let group: Vec<SparseGradient> = self.pending.drain(..self.h).collect();
                let cells = concat_cells(&group);
                let partial = sum_advanced(&cells, self.d, 1, tr);
                carry_into(&partial, &mut self.total, tr);
            }
        } else {
            // Waves of `threads` consecutive groups: bounds partial-buffer
            // memory at O(threads·d) and keeps the carry order serial. A
            // partial trailing unit stays pending — only at finalize is
            // the total count known, and the one-shot path's schedule
            // (serial if n <= h, a short wave otherwise) depends on it.
            let wave_len = self.h * self.threads;
            while self.pending.len() >= wave_len {
                let wave: Vec<SparseGradient> = self.pending.drain(..wave_len).collect();
                run_wave(&wave, self.d, self.h, self.threads, &mut self.total, tr);
            }
        }
    }

    /// Drains the final partial unit, averages, and returns the dense
    /// update.
    pub fn finalize<TR: ParallelTracer>(mut self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        if !self.pending.is_empty() {
            if self.threads == 1 || self.n <= self.h {
                // The one-shot serial schedule: every group gets the whole
                // intra-sort thread budget (what makes a single huge group
                // n <= h scale).
                let pending = std::mem::take(&mut self.pending);
                for group in pending.chunks(self.h) {
                    let cells = concat_cells(group);
                    let partial = sum_advanced(&cells, self.d, self.threads, tr);
                    carry_into(&partial, &mut self.total, tr);
                }
            } else {
                let wave = std::mem::take(&mut self.pending);
                run_wave(&wave, self.d, self.h, self.threads, &mut self.total, tr);
            }
        }
        // Step 4: average only once, after the last group.
        average_in_place(&mut self.total, self.n, tr);
        self.total.into_inner()
    }

    /// Clients accepted so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the running total plus buffered cells.
    pub fn resident_bytes(&self) -> u64 {
        let pending_cells: usize = self.pending.iter().map(|u| u.k()).sum();
        self.d as u64 * 4 + pending_cells as u64 * 8
    }

    /// Transient bytes one drained wave allocates: per in-flight group,
    /// the padded sort vector plus its dense partial.
    pub fn wave_scratch_bytes(&self, k: usize) -> u64 {
        let group_cells = olive_oblivious::sort::next_pow2(self.h * k + self.d) as u64;
        let in_flight = if self.threads == 1 { 1 } else { self.threads } as u64;
        in_flight * (group_cells * 8 + self.d as u64 * 4)
    }

    /// Serializes the streamer for a sealed mid-round checkpoint: the
    /// running total's bits plus the buffered partial unit (pending
    /// updates that have not yet filled a group/wave).
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.d);
        w.put_usize(self.h);
        w.put_usize(self.threads);
        w.put_usize(self.n);
        w.put_f32s(self.total.as_slice_untraced());
        w.put_usize(self.pending.len());
        for u in &self.pending {
            w.put_bytes(&u.encode());
        }
        w.into_bytes()
    }

    /// Restores a [`GroupedStreamer::save_state`] snapshot into a freshly
    /// initialized streamer of the same configuration.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        if r.get_usize()? != self.d || r.get_usize()? != self.h || r.get_usize()? != self.threads {
            return Err(StateError::Mismatch);
        }
        self.n = r.get_usize()?;
        let total = r.get_f32s()?;
        if total.len() != self.total.len() {
            return Err(StateError::Mismatch);
        }
        self.total.as_mut_slice_untraced().copy_from_slice(&total);
        let pending_len = r.get_usize()?;
        self.pending.clear();
        for _ in 0..pending_len {
            let u = SparseGradient::decode(r.get_bytes()?).ok_or(StateError::Corrupt)?;
            if u.dense_dim != self.d {
                return Err(StateError::Mismatch);
            }
            self.pending.push(u);
        }
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer, RecordingTracer};

    #[test]
    fn matches_reference_for_all_h() {
        let updates = random_updates(10, 5, 48, 20);
        let expected = reference_average(&updates, 48);
        for h in [1usize, 2, 3, 5, 10, 99] {
            let got = aggregate_grouped(&updates, 48, h, &mut NullTracer);
            assert_close(&got, &expected, 1e-4);
        }
    }

    #[test]
    fn uneven_last_group_handled() {
        // 10 clients, h = 4 → groups of 4, 4, 2.
        let updates = random_updates(10, 3, 32, 21);
        let got = aggregate_grouped(&updates, 32, 4, &mut NullTracer);
        assert_close(&got, &reference_average(&updates, 32), 1e-4);
    }

    #[test]
    fn oblivious_for_fixed_shape_at_every_thread_count() {
        let inputs = vec![
            random_updates(6, 4, 32, 1),
            random_updates(6, 4, 32, 2),
            random_updates(6, 4, 32, 3),
        ];
        for threads in [1usize, 2, 4] {
            assert_oblivious(Granularity::Element, &inputs, |updates, tr| {
                aggregate_grouped_with_threads(updates, 32, 2, threads, tr);
            });
        }
    }

    #[test]
    fn output_bitwise_identical_across_thread_counts() {
        // The fixed left-fold carry must make f32 rounding independent of
        // the worker count — bit-exact, not approximately equal.
        let updates = random_updates(11, 6, 64, 9);
        let serial = aggregate_grouped_with_threads(&updates, 64, 3, 1, &mut NullTracer);
        for threads in [2usize, 3, 8] {
            let par = aggregate_grouped_with_threads(&updates, 64, 3, threads, &mut NullTracer);
            let same = serial.iter().zip(par.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} changed the f32 bits");
        }
    }

    #[test]
    fn parallel_trace_multiset_equals_serial() {
        let updates = random_updates(9, 4, 40, 17);
        let events = |threads: usize| {
            let mut tr = RecordingTracer::with_events(Granularity::Element);
            aggregate_grouped_with_threads(&updates, 40, 2, threads, &mut tr);
            let mut ev: Vec<_> = tr
                .events()
                .unwrap()
                .iter()
                .map(|a| (a.region, a.offset, a.op == olive_memsim::Op::Write))
                .collect();
            ev.sort_unstable();
            ev
        };
        let serial = events(1);
        for threads in [2usize, 8] {
            assert_eq!(events(threads), serial, "threads={threads} changed the event multiset");
        }
    }

    #[test]
    fn parallel_trace_deterministic_per_thread_count() {
        // Scheduling noise (which worker finishes first) must not reach
        // the merged trace: same shape + same threads → same digest.
        let updates = random_updates(8, 4, 32, 23);
        let digest = || {
            let mut tr = RecordingTracer::new(Granularity::Element);
            aggregate_grouped_with_threads(&updates, 32, 2, 4, &mut tr);
            tr.digest()
        };
        assert_eq!(digest(), digest());
    }

    #[test]
    fn grouping_overhead_is_the_d_term() {
        // Grouping pays the d-sized zero-seed vector once per group:
        // with d ≫ k, h=1 (n groups) does far more work than h=n (one
        // group) — the "lowering h too much results in a large amount of
        // data loading" end of the Figure 11 U-curve.
        let updates = random_updates(8, 4, 256, 5);
        let trace_len = |h: usize| {
            let mut tr = RecordingTracer::new(Granularity::Element);
            aggregate_grouped(&updates, 256, h, &mut tr);
            tr.stats().total()
        };
        assert!(trace_len(8) < trace_len(1));
    }
}
