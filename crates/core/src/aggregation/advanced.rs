//! The Advanced oblivious aggregation (Algorithm 4).
//!
//! Computes the dense aggregate *directly from the cell stream* — never
//! indexing `G*` by a secret — in four oblivious steps:
//!
//! 1. **initialization**: append one zero-valued cell per index `0..d`, so
//!    every index is guaranteed present (and the output histogram of
//!    indices is fixed);
//! 2. **oblivious sort** by index (Batcher bitonic network);
//! 3. **oblivious folding**: one linear pass accumulating runs of equal
//!    indices; every position is rewritten — either with the finalized
//!    `(index, sum)` of a completed run or with the dummy `(M₀, 0)` — via
//!    `o_mov`, so run boundaries (the index histogram!) stay hidden;
//! 4. **oblivious sort** again: the `d` real survivors (one per index)
//!    sort to the front in index order; take them.
//!
//! Fully oblivious (Proposition 5.2): both sorts are fixed networks and
//! the fold is a fixed linear sweep. Complexity O((nk+d) log²(nk+d)) time,
//! O(nk+d) space — the `k·d` product of the Baseline is gone.
//!
//! Worked example (the paper's Appendix E, n=3, k=2, d=4):
//!
//! ```
//! use olive_core::aggregation::advanced::aggregate_advanced;
//! use olive_core::cell::make_cell;
//! use olive_memsim::NullTracer;
//! // user1: (1, 0.3), (3, 0.5); user2: (1, 0.8), (2, 0.9); user3: (0, 0.4), (1, 0.1)
//! let g = [
//!     make_cell(1, 0.3), make_cell(3, 0.5),
//!     make_cell(1, 0.8), make_cell(2, 0.9),
//!     make_cell(0, 0.4), make_cell(1, 0.1),
//! ];
//! let avg = aggregate_advanced(&g, 4, 3, &mut NullTracer);
//! let sums: Vec<f32> = avg.iter().map(|v| v * 3.0).collect(); // undo the 1/n averaging
//! assert!((sums[0] - 0.4).abs() < 1e-6);
//! assert!((sums[1] - 1.2).abs() < 1e-6);
//! assert!((sums[2] - 0.9).abs() < 1e-6);
//! assert!((sums[3] - 0.5).abs() < 1e-6);
//! ```

use olive_memsim::{Tracer, TrackedBuf};
use olive_oblivious::primitives::Oblivious;
use olive_oblivious::sort::next_pow2;
use olive_oblivious::sort_kernel::bitonic_sort_u64_pow2_with_threads;

use crate::cell::{cell_index, cell_value, dummy_cell, make_cell};
use crate::parallel::default_threads;
use crate::regions::{REGION_G_STAR, REGION_SCRATCH};

use super::linear::average_in_place;

/// Computes the **un-averaged** dense sums via Algorithm 4, writing them
/// into a fresh `G*` buffer which is returned for further (oblivious)
/// processing. The trace depends only on `(cells.len(), d)` — the sorts
/// run the process-default kernel (`OLIVE_SORT_KERNEL`), whose trace and
/// output are identical to the scalar reference at every `threads` value
/// (`olive_oblivious::sort_kernel`).
pub(crate) fn sum_advanced<TR: Tracer>(
    cells: &[u64],
    d: usize,
    threads: usize,
    tr: &mut TR,
) -> TrackedBuf<f32> {
    // Step 1: initialization — g ← g ∥ {(j, 0)} for j ∈ [d], then pad to a
    // power of two with dummy cells (which carry the maximal index and
    // sort behind everything real).
    let total = cells.len() + d;
    let padded = next_pow2(total);
    let mut v = Vec::with_capacity(padded);
    v.extend_from_slice(cells);
    v.extend((0..d as u32).map(|j| make_cell(j, 0.0)));
    v.resize(padded, dummy_cell());
    let mut g = TrackedBuf::new(REGION_SCRATCH, v);

    // Step 2: oblivious sort by index (the packed u64 is index-major, so
    // sorting by raw value is sorting by index).
    bitonic_sort_u64_pow2_with_threads(&mut g, threads, tr);

    // Step 3: oblivious folding (Algorithm 4 lines 6–14). The accumulator
    // lives in registers; every pass writes position i−1 exactly once.
    let first = g.read(0, tr);
    let mut acc_idx = cell_index(first);
    let mut acc_val = cell_value(first);
    for i in 1..g.len() {
        let cur = g.read(i, tr);
        let cur_idx = cell_index(cur);
        let cur_val = cell_value(cur);
        let same = cur_idx == acc_idx;
        // Same run → the prior slot becomes a dummy; run ends → the prior
        // slot receives the finalized (index, sum).
        let prior = u64::o_select(same, dummy_cell(), make_cell(acc_idx, acc_val));
        g.write(i - 1, prior, tr);
        acc_val = f32::o_select(same, acc_val + cur_val, cur_val);
        acc_idx = cur_idx;
    }
    let last = g.len() - 1;
    g.write(last, make_cell(acc_idx, acc_val), tr);

    // Step 4: oblivious sort again; the d real survivors lead.
    bitonic_sort_u64_pow2_with_threads(&mut g, threads, tr);

    // Emit G*: a fixed in-order read of the first d cells and write-out.
    let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, d);
    for j in 0..d {
        let cell = g.read(j, tr);
        debug_assert_eq!(
            cell_index(cell),
            j as u32,
            "initialization guarantees exactly one survivor per index"
        );
        gstar.write(j, cell_value(cell), tr);
    }
    gstar
}

/// Algorithm 4 end-to-end: oblivious sums followed by the oblivious
/// averaging pass. Returns the averaged dense update. The sorts use the
/// process-default thread count ([`default_threads`]).
pub fn aggregate_advanced<TR: Tracer>(cells: &[u64], d: usize, n: usize, tr: &mut TR) -> Vec<f32> {
    aggregate_advanced_with_threads(cells, d, n, default_threads(), tr)
}

/// [`aggregate_advanced`] with an explicit worker-thread count for the
/// intra-sort stage parallelism. Output and trace are identical at every
/// thread count.
pub fn aggregate_advanced_with_threads<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    threads: usize,
    tr: &mut TR,
) -> Vec<f32> {
    let mut gstar = sum_advanced(cells, d, threads, tr);
    average_in_place(&mut gstar, n, tr);
    gstar.into_inner()
}

/// Streaming form of [`aggregate_advanced_with_threads`].
///
/// Algorithm 4 is *inherently monolithic*: its obliviousness proof rests
/// on one Batcher sort over the whole `nk + d` vector, so incoming chunks
/// can only be **staged** (an untraced linear copy, exactly like the
/// one-shot path's `concat_cells`) and the sort/fold/sort runs at
/// [`AdvancedStreamer::finalize`]. Chunk boundaries therefore change
/// neither the output bits nor the trace — but the enclave working set
/// still grows with O(nk + d), which is exactly the paper's Figure 10
/// cliff and the reason the Grouped streamer exists. The EPC accounting
/// reports this honestly via [`AdvancedStreamer::resident_bytes`].
pub struct AdvancedStreamer {
    cells: Vec<u64>,
    d: usize,
    threads: usize,
    n: usize,
}

impl AdvancedStreamer {
    /// Fresh streamer over dimension `d`.
    pub fn init(d: usize, threads: usize) -> Self {
        AdvancedStreamer { cells: Vec::new(), d, threads, n: 0 }
    }

    /// Stages one chunk of client updates (cells buffered until finalize).
    pub fn ingest(&mut self, chunk: &[olive_fl::SparseGradient]) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
            self.n += 1;
            for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
                self.cells.push(make_cell(i, v));
            }
        }
    }

    /// Runs Algorithm 4 over everything staged and returns the averaged
    /// dense update.
    pub fn finalize<TR: Tracer>(self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        aggregate_advanced_with_threads(&self.cells, self.d, self.n, self.threads, tr)
    }

    /// Clients staged so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the staged cell buffer (grows with the
    /// round — the O(nk) this algorithm cannot avoid).
    pub fn resident_bytes(&self) -> u64 {
        self.cells.len() as u64 * 8
    }

    /// Transient bytes finalize will allocate: the padded sort vector plus
    /// the dense output.
    pub fn finalize_scratch_bytes(&self) -> u64 {
        next_pow2(self.cells.len() + self.d) as u64 * 8 + self.d as u64 * 4
    }

    /// Serializes the streamer for a sealed mid-round checkpoint. The
    /// staged cells are sealed honestly — the checkpoint is O(nk), the
    /// same EPC-cliff footprint this algorithm already carries.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = olive_memsim::StateWriter::new();
        w.put_usize(self.d);
        w.put_usize(self.threads);
        w.put_usize(self.n);
        w.put_u64s(&self.cells);
        w.into_bytes()
    }

    /// Restores an [`AdvancedStreamer::save_state`] snapshot into a
    /// freshly initialized streamer of the same configuration.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), olive_memsim::StateError> {
        let mut r = olive_memsim::StateReader::new(bytes);
        if r.get_usize()? != self.d || r.get_usize()? != self.threads {
            return Err(olive_memsim::StateError::Mismatch);
        }
        self.n = r.get_usize()?;
        self.cells = r.get_u64s()?;
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer};

    #[test]
    fn paper_running_example_appendix_e() {
        // n=3, k=2, d=4 — the worked example of Figure 17.
        let g = [
            make_cell(1, 0.3),
            make_cell(3, 0.5),
            make_cell(1, 0.8),
            make_cell(2, 0.9),
            make_cell(0, 0.4),
            make_cell(1, 0.1),
        ];
        let sums = sum_advanced(&g, 4, 1, &mut NullTracer).into_inner();
        assert_close(&sums, &[0.4, 1.2, 0.9, 0.5], 1e-6);
    }

    #[test]
    fn output_and_trace_invariant_across_thread_counts() {
        use olive_memsim::RecordingTracer;
        // 128 cells + d = 4000 pads the sort vector to 8192, past the
        // kernel's internal parallelism threshold — threads ∈ {2, 8} must
        // genuinely run the barrier path for this test to mean anything.
        let d = 4000;
        let updates = random_updates(8, 16, d, 77);
        let cells = concat_cells(&updates);
        let run = |threads: usize| {
            let mut tr = RecordingTracer::new(Granularity::Element);
            let out = aggregate_advanced_with_threads(&cells, d, 8, threads, &mut tr);
            (out, tr.digest())
        };
        let (ref_out, ref_digest) = run(1);
        for threads in [2usize, 8] {
            let (out, digest) = run(threads);
            let same = ref_out.iter().zip(out.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} changed the f32 bits");
            assert_eq!(digest, ref_digest, "threads={threads} changed the trace");
        }
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in 0..5 {
            let updates = random_updates(6, 8, 40, seed);
            let cells = concat_cells(&updates);
            let got = aggregate_advanced(&cells, 40, 6, &mut NullTracer);
            assert_close(&got, &reference_average(&updates, 40), 1e-4);
        }
    }

    #[test]
    fn all_clients_same_index_collapses_to_one_run() {
        use olive_fl::SparseGradient;
        let updates: Vec<SparseGradient> = (0..5)
            .map(|i| SparseGradient { dense_dim: 8, indices: vec![3], values: vec![i as f32] })
            .collect();
        let got = aggregate_advanced(&concat_cells(&updates), 8, 5, &mut NullTracer);
        assert!((got[3] - 2.0).abs() < 1e-6); // (0+1+2+3+4)/5
        assert!(got.iter().enumerate().all(|(j, &v)| j == 3 || v == 0.0));
    }

    /// Proposition 5.2: identical traces for any same-shape input, at both
    /// granularities.
    #[test]
    fn prop_5_2_fully_oblivious() {
        let inputs = vec![
            concat_cells(&random_updates(4, 6, 64, 10)),
            concat_cells(&random_updates(4, 6, 64, 11)),
            concat_cells(&random_updates(4, 6, 64, 12)),
        ];
        assert_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_advanced(cells, 64, 4, tr);
        });
        assert_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_advanced(cells, 64, 4, tr);
        });
    }

    /// The fold must hide the index histogram: heavily skewed vs uniform
    /// index multiplicities produce identical traces.
    #[test]
    fn fold_hides_index_histogram() {
        use olive_fl::SparseGradient;
        // Input A: all 8 cells hit index 0. Input B: 8 distinct indices.
        let a = SparseGradient { dense_dim: 16, indices: vec![0; 8], values: vec![1.0; 8] };
        let b = SparseGradient { dense_dim: 16, indices: (0..8).collect(), values: vec![1.0; 8] };
        // (Duplicate indices within one client do not occur in top-k, but
        // the aggregate over clients routinely repeats indices; a single
        // update with repeats models the worst-case skew compactly.)
        let inputs = vec![concat_cells(&[a]), concat_cells(&[b])];
        assert_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_advanced(cells, 16, 1, tr);
        });
    }

    #[test]
    fn trace_grows_with_shape_only() {
        use olive_memsim::RecordingTracer;
        let t = |n: usize, k: usize, d: usize| {
            let updates = random_updates(n, k, d, 3);
            let mut tr = RecordingTracer::new(Granularity::Element);
            aggregate_advanced(&concat_cells(&updates), d, n, &mut tr);
            tr.stats().total()
        };
        // The sort vector pads to a power of two, so compare across a
        // padding boundary: 16+64 → 128 cells vs 200+64 → 512 cells.
        assert!(t(1, 16, 64) < t(4, 50, 64));
        assert!(t(1, 16, 64) < t(1, 16, 256));
        // Within one padding bucket the trace is *identical* — shape, not
        // content: 16+64 and 32+64 both pad to 128 cells.
        assert_eq!(t(1, 16, 64), t(2, 16, 64));
    }
}
