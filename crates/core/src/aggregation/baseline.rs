//! The Baseline oblivious aggregation (Algorithm 3).
//!
//! For every incoming cell, sweep the *entire* dense buffer `G*` writing at
//! each position either the unchanged value or the updated sum, selected in
//! registers with `o_mov` — the timing of the real write is invisible. The
//! cacheline optimization (Section 5.1): when the adversary observes at
//! 64-byte granularity, it suffices to touch one slot per cacheline — the
//! slot congruent to the target index mod `c` (c = 16 for 4-byte weights)
//! — for a 16× speedup while remaining cacheline-level fully oblivious
//! (Proposition 5.1). Complexity O(nk·d/c), space O(nk + d).

use olive_memsim::{Tracer, TrackedBuf};
use olive_oblivious::o_select;

use crate::cell::{cell_index, cell_value};
use crate::regions::{REGION_G, REGION_G_STAR};

use super::linear::average_in_place;

/// Baseline aggregation over the concatenated cells. `cacheline_weights`
/// is `c`: 1 = element-level oblivious full scan, 16 = the paper's
/// cacheline optimization for f32 weights.
pub fn aggregate_baseline<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    cacheline_weights: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert!(cacheline_weights >= 1, "c must be at least 1");
    let c = cacheline_weights;
    let g = TrackedBuf::new(REGION_G, cells.to_vec());
    // Pad G* to a multiple of c so every stripe has the same length —
    // otherwise the stripe length would leak `index mod c`.
    let padded = d.div_ceil(c) * c;
    let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, padded);
    for i in 0..g.len() {
        let cell = g.read(i, tr);
        let idx = cell_index(cell) as usize;
        let val = cell_value(cell);
        debug_assert!(idx < d, "cell index out of range");
        let offset = idx % c;
        // One touched slot per cacheline, in address order.
        let mut j = offset;
        while j < padded {
            let cur = gstar.read(j, tr);
            let updated = o_select(j == idx, cur + val, cur);
            gstar.write(j, updated, tr);
            j += c;
        }
    }
    average_in_place(&mut gstar, n, tr);
    let mut out = gstar.into_inner();
    out.truncate(d);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{
        assert_not_oblivious, assert_oblivious, Granularity, NullTracer, RecordingTracer,
    };

    #[test]
    fn correct_for_all_c() {
        let updates = random_updates(4, 6, 50, 11);
        let cells = concat_cells(&updates);
        let expected = reference_average(&updates, 50);
        for c in [1usize, 4, 16, 64] {
            let got = aggregate_baseline(&cells, 50, 4, c, &mut NullTracer);
            assert_close(&got, &expected, 1e-5);
        }
    }

    #[test]
    fn handles_duplicate_indices_across_clients() {
        use olive_fl::SparseGradient;
        let u = |v: f32| SparseGradient { dense_dim: 8, indices: vec![2, 5], values: vec![v, -v] };
        let updates = vec![u(1.0), u(3.0)];
        let got = aggregate_baseline(&concat_cells(&updates), 8, 2, 16, &mut NullTracer);
        assert_eq!(got[2], 2.0);
        assert_eq!(got[5], -2.0);
    }

    /// Proposition 5.1: Baseline with c = 16 is cacheline-level fully
    /// oblivious; with c = 1 it is element-level fully oblivious.
    #[test]
    fn prop_5_1_obliviousness() {
        let inputs = vec![
            concat_cells(&random_updates(3, 5, 128, 1)),
            concat_cells(&random_updates(3, 5, 128, 2)),
            concat_cells(&random_updates(3, 5, 128, 3)),
        ];
        assert_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_baseline(cells, 128, 3, 16, tr);
        });
        assert_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_baseline(cells, 128, 3, 1, tr);
        });
    }

    /// The boundary of the guarantee: c = 16 is NOT element-level
    /// oblivious (the stripe offset reveals index mod 16) — exactly why
    /// the paper states Proposition 5.1 at cacheline granularity.
    #[test]
    fn c16_leaks_at_element_granularity() {
        use olive_fl::SparseGradient;
        let mk = |idx: u32| {
            vec![SparseGradient { dense_dim: 64, indices: vec![idx], values: vec![1.0] }]
        };
        let inputs = vec![concat_cells(&mk(0)), concat_cells(&mk(1))];
        assert_not_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_baseline(cells, 64, 1, 16, tr);
        });
    }

    #[test]
    fn access_count_matches_complexity() {
        // nk cells × ceil(d/c) stripe slots × (read+write) + nk G-reads +
        // averaging 2·padded.
        let updates = random_updates(2, 3, 64, 5);
        let cells = concat_cells(&updates);
        let mut tr = RecordingTracer::new(Granularity::Element);
        aggregate_baseline(&cells, 64, 2, 16, &mut tr);
        let nk = 6u64;
        let stripes = 4u64; // 64/16
        let expected = nk + nk * stripes * 2 + 2 * 64;
        assert_eq!(tr.stats().total(), expected);
    }

    #[test]
    fn non_multiple_d_padding_keeps_stripes_equal() {
        // d = 50, c = 16 → padded 64; all stripes have 4 slots.
        let updates = random_updates(2, 4, 50, 6);
        let cells = concat_cells(&updates);
        let inputs = vec![cells.clone(), concat_cells(&random_updates(2, 4, 50, 7))];
        assert_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_baseline(cells, 50, 2, 16, tr);
        });
    }
}
