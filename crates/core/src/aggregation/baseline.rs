//! The Baseline oblivious aggregation (Algorithm 3).
//!
//! For every incoming cell, sweep the *entire* dense buffer `G*` writing at
//! each position either the unchanged value or the updated sum, selected in
//! registers with `o_mov` — the timing of the real write is invisible. The
//! cacheline optimization (Section 5.1): when the adversary observes at
//! 64-byte granularity, it suffices to touch one slot per cacheline — the
//! slot congruent to the target index mod `c` (c = 16 for 4-byte weights)
//! — for a 16× speedup while remaining cacheline-level fully oblivious
//! (Proposition 5.1). Complexity O(nk·d/c), space O(nk + d).
//!
//! The per-cacheline scans are data-parallel (each cell's stripe slots are
//! disjoint), so the scan splits `G*` into contiguous ranges across
//! `OLIVE_THREADS` workers, each applying every cell to its own range in
//! cell order. Like the sort kernel, the trace is emitted canonically by
//! the caller ([`Tracer::touch_rw_stripe`] block events that expand to the
//! serial read/write sequence), decoupled from the physical data movement,
//! so output **and trace** are invariant across thread counts.

use olive_fl::SparseGradient;
use olive_memsim::{Op, StateError, StateReader, StateWriter, Tracer, TrackedBuf};
use olive_oblivious::o_select;

use crate::cell::{cell_index, cell_value, concat_cells};
use crate::parallel::default_threads;
use crate::regions::{REGION_G, REGION_G_STAR};

use super::linear::average_in_place;

/// Bytes of one packed `(index, value)` cell in `G`.
const CELL_BYTES: usize = core::mem::size_of::<u64>();

/// Bytes of one dense weight in `G*`.
const WEIGHT_BYTES: usize = core::mem::size_of::<f32>();

/// Baseline aggregation over the concatenated cells. `cacheline_weights`
/// is `c`: 1 = element-level oblivious full scan, 16 = the paper's
/// cacheline optimization for f32 weights. Uses the process-default
/// worker-thread count ([`default_threads`]).
pub fn aggregate_baseline<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    cacheline_weights: usize,
    tr: &mut TR,
) -> Vec<f32> {
    aggregate_baseline_with_threads(cells, d, n, cacheline_weights, default_threads(), tr)
}

/// [`aggregate_baseline`] with an explicit worker-thread count. Every
/// thread count produces the bitwise-identical output (each `G*` slot is
/// owned by exactly one worker, which applies cells in order) and the
/// byte-identical trace (emitted canonically before the data movement).
///
/// Implemented as the single-chunk case of [`BaselineStreamer`], so the
/// one-shot and streaming paths cannot drift.
pub fn aggregate_baseline_with_threads<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    cacheline_weights: usize,
    threads: usize,
    tr: &mut TR,
) -> Vec<f32> {
    let mut streamer = BaselineStreamer::init(d, cacheline_weights, threads);
    streamer.ingest_cells(cells, n, tr);
    streamer.finalize(tr)
}

/// Applies every cell's stripe update to the `G*` range
/// `[base, base + chunk.len())`: for each cell, visit the range's slots
/// congruent to `index mod c` in address order, adding the value at the
/// matching slot via a branchless select.
fn scan_cells(cells: &[u64], d: usize, c: usize, chunk: &mut [f32], base: usize) {
    for &cell in cells {
        let idx = cell_index(cell) as usize;
        let val = cell_value(cell);
        debug_assert!(idx < d, "cell index out of range");
        let offset = idx % c;
        // First slot >= base congruent to offset mod c.
        let mut j = base + (offset + c - base % c) % c;
        while j < base + chunk.len() {
            let cur = chunk[j - base];
            chunk[j - base] = o_select(j == idx, cur + val, cur);
            j += c;
        }
    }
}

/// Streaming form of [`aggregate_baseline_with_threads`]: the padded `G*`
/// buffer persists across chunks; each chunk's cells are traced (the
/// canonical per-cell `G` read + stripe sweep, with global `G` offsets
/// continuing across chunks) and then physically applied with the same
/// fixed worker split. The unit of work is one cell, so chunk boundaries
/// change neither the output bits nor the trace.
pub struct BaselineStreamer {
    gstar: TrackedBuf<f32>,
    d: usize,
    c: usize,
    padded: usize,
    threads: usize,
    /// Global position in the round's logical `G` buffer (cells).
    next_cell: usize,
    n: usize,
}

impl BaselineStreamer {
    /// Fresh streamer over dimension `d` with `cacheline_weights = c`.
    pub fn init(d: usize, cacheline_weights: usize, threads: usize) -> Self {
        assert!(cacheline_weights >= 1, "c must be at least 1");
        let c = cacheline_weights;
        // Pad G* to a multiple of c so every stripe has the same length —
        // otherwise the stripe length would leak `index mod c`.
        let padded = d.div_ceil(c) * c;
        BaselineStreamer {
            gstar: TrackedBuf::zeroed(REGION_G_STAR, padded),
            d,
            c,
            padded,
            threads,
            next_cell: 0,
            n: 0,
        }
    }

    /// Folds one chunk of client updates into the accumulator.
    pub fn ingest<TR: Tracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
        }
        let cells = concat_cells(chunk);
        self.ingest_cells(&cells, chunk.len(), tr);
    }

    /// Cell-level fold shared by the trait path and the one-shot API:
    /// `cells` is `clients` clients' worth of concatenated `G` cells.
    /// Emits the canonical trace (one `G` read at the *global* running
    /// offset + one full stripe sweep per cell — exactly the serial
    /// access sequence, independent of how the data movement is
    /// scheduled), then applies the cells with the fixed worker split.
    pub(crate) fn ingest_cells<TR: Tracer>(&mut self, cells: &[u64], clients: usize, tr: &mut TR) {
        self.n += clients;
        let slots = (self.padded / self.c) as u64;
        for &cell in cells {
            tr.touch(REGION_G, (self.next_cell * CELL_BYTES) as u64, CELL_BYTES as u32, Op::Read);
            self.next_cell += 1;
            let idx = cell_index(cell) as usize;
            debug_assert!(idx < self.d, "cell index out of range");
            tr.touch_rw_stripe(
                REGION_G_STAR,
                WEIGHT_BYTES as u32,
                (idx % self.c) as u64,
                self.c as u64,
                slots,
            );
        }
        let workers = if self.threads <= 1 { 1 } else { self.threads.min(self.padded) };
        let (d, c, padded) = (self.d, self.c, self.padded);
        let data = self.gstar.as_mut_slice_untraced();
        if workers == 1 {
            scan_cells(cells, d, c, data, 0);
        } else {
            // Contiguous disjoint G* ranges; each worker applies every
            // cell to its own range, preserving the serial per-slot
            // accumulation order.
            std::thread::scope(|scope| {
                let mut rest = data;
                let mut lo = 0usize;
                for w in 0..workers {
                    let hi = padded * (w + 1) / workers;
                    let (chunk_slice, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    scope.spawn(move || scan_cells(cells, d, c, chunk_slice, lo));
                    lo = hi;
                }
            });
        }
    }

    /// Averages and returns the dense update (truncated back to `d`).
    pub fn finalize<TR: Tracer>(mut self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        average_in_place(&mut self.gstar, self.n, tr);
        let mut out = self.gstar.into_inner();
        out.truncate(self.d);
        out
    }

    /// Clients folded in so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the padded dense accumulator.
    pub fn resident_bytes(&self) -> u64 {
        self.padded as u64 * WEIGHT_BYTES as u64
    }

    /// Serializes the streamer for a sealed mid-round checkpoint.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.d);
        w.put_usize(self.c);
        w.put_usize(self.threads);
        w.put_usize(self.next_cell);
        w.put_usize(self.n);
        w.put_f32s(self.gstar.as_slice_untraced());
        w.into_bytes()
    }

    /// Restores a [`BaselineStreamer::save_state`] snapshot into a
    /// freshly initialized streamer of the same configuration.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        if r.get_usize()? != self.d || r.get_usize()? != self.c || r.get_usize()? != self.threads {
            return Err(StateError::Mismatch);
        }
        self.next_cell = r.get_usize()?;
        self.n = r.get_usize()?;
        let gstar = r.get_f32s()?;
        if gstar.len() != self.padded {
            return Err(StateError::Mismatch);
        }
        self.gstar.as_mut_slice_untraced().copy_from_slice(&gstar);
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{
        assert_not_oblivious, assert_oblivious, Granularity, NullTracer, RecordingTracer,
    };

    #[test]
    fn correct_for_all_c() {
        let updates = random_updates(4, 6, 50, 11);
        let cells = concat_cells(&updates);
        let expected = reference_average(&updates, 50);
        for c in [1usize, 4, 16, 64] {
            let got = aggregate_baseline(&cells, 50, 4, c, &mut NullTracer);
            assert_close(&got, &expected, 1e-5);
        }
    }

    #[test]
    fn handles_duplicate_indices_across_clients() {
        use olive_fl::SparseGradient;
        let u = |v: f32| SparseGradient { dense_dim: 8, indices: vec![2, 5], values: vec![v, -v] };
        let updates = vec![u(1.0), u(3.0)];
        let got = aggregate_baseline(&concat_cells(&updates), 8, 2, 16, &mut NullTracer);
        assert_eq!(got[2], 2.0);
        assert_eq!(got[5], -2.0);
    }

    /// Proposition 5.1: Baseline with c = 16 is cacheline-level fully
    /// oblivious; with c = 1 it is element-level fully oblivious.
    #[test]
    fn prop_5_1_obliviousness() {
        let inputs = vec![
            concat_cells(&random_updates(3, 5, 128, 1)),
            concat_cells(&random_updates(3, 5, 128, 2)),
            concat_cells(&random_updates(3, 5, 128, 3)),
        ];
        assert_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_baseline(cells, 128, 3, 16, tr);
        });
        assert_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_baseline(cells, 128, 3, 1, tr);
        });
    }

    /// The boundary of the guarantee: c = 16 is NOT element-level
    /// oblivious (the stripe offset reveals index mod 16) — exactly why
    /// the paper states Proposition 5.1 at cacheline granularity.
    #[test]
    fn c16_leaks_at_element_granularity() {
        use olive_fl::SparseGradient;
        let mk = |idx: u32| {
            vec![SparseGradient { dense_dim: 64, indices: vec![idx], values: vec![1.0] }]
        };
        let inputs = vec![concat_cells(&mk(0)), concat_cells(&mk(1))];
        assert_not_oblivious(Granularity::Element, &inputs, |cells, tr| {
            aggregate_baseline(cells, 64, 1, 16, tr);
        });
    }

    #[test]
    fn access_count_matches_complexity() {
        // nk cells × ceil(d/c) stripe slots × (read+write) + nk G-reads +
        // averaging 2·padded.
        let updates = random_updates(2, 3, 64, 5);
        let cells = concat_cells(&updates);
        let mut tr = RecordingTracer::new(Granularity::Element);
        aggregate_baseline(&cells, 64, 2, 16, &mut tr);
        let nk = 6u64;
        let stripes = 4u64; // 64/16
        let expected = nk + nk * stripes * 2 + 2 * 64;
        assert_eq!(tr.stats().total(), expected);
    }

    #[test]
    fn non_multiple_d_padding_keeps_stripes_equal() {
        // d = 50, c = 16 → padded 64; all stripes have 4 slots.
        let updates = random_updates(2, 4, 50, 6);
        let cells = concat_cells(&updates);
        let inputs = vec![cells.clone(), concat_cells(&random_updates(2, 4, 50, 7))];
        assert_oblivious(Granularity::Cacheline, &inputs, |cells, tr| {
            aggregate_baseline(cells, 50, 2, 16, tr);
        });
    }

    /// Output and trace are invariant across thread counts — the same
    /// guarantee the grouped aggregation and the sort kernel make.
    #[test]
    fn thread_count_invariant_output_and_trace() {
        let updates = random_updates(3, 7, 100, 21);
        let cells = concat_cells(&updates);
        for c in [1usize, 16] {
            for granularity in [Granularity::Element, Granularity::Cacheline] {
                let mut ref_tr = RecordingTracer::new(granularity);
                let reference = aggregate_baseline_with_threads(&cells, 100, 3, c, 1, &mut ref_tr);
                for threads in [2usize, 8] {
                    let mut tr = RecordingTracer::new(granularity);
                    let got = aggregate_baseline_with_threads(&cells, 100, 3, c, threads, &mut tr);
                    assert_eq!(tr.digest(), ref_tr.digest(), "c={c} threads={threads}");
                    assert_eq!(reference.len(), got.len());
                    for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
                        assert_eq!(a.to_bits(), b.to_bits(), "c={c} threads={threads} slot {i}");
                    }
                }
            }
        }
    }

    /// The canonical block-event trace expands to the exact per-access
    /// sequence of the historical serial implementation (TrackedBuf reads
    /// and writes), byte for byte.
    #[test]
    fn trace_matches_historical_serial_scan() {
        let updates = random_updates(2, 5, 70, 13);
        let cells = concat_cells(&updates);
        let (d, n, c) = (70usize, 2usize, 16usize);
        for granularity in [Granularity::Element, Granularity::Cacheline] {
            // Pre-parallel reference: every access through TrackedBuf.
            let mut href = RecordingTracer::new(granularity);
            {
                let g = TrackedBuf::new(REGION_G, cells.clone());
                let padded = d.div_ceil(c) * c;
                let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, padded);
                for i in 0..g.len() {
                    let cell = g.read(i, &mut href);
                    let idx = cell_index(cell) as usize;
                    let val = cell_value(cell);
                    let mut j = idx % c;
                    while j < padded {
                        let cur = gstar.read(j, &mut href);
                        gstar.write(j, o_select(j == idx, cur + val, cur), &mut href);
                        j += c;
                    }
                }
                average_in_place(&mut gstar, n, &mut href);
            }
            for threads in [1usize, 4] {
                let mut tr = RecordingTracer::new(granularity);
                aggregate_baseline_with_threads(&cells, d, n, c, threads, &mut tr);
                assert_eq!(tr.digest(), href.digest(), "{granularity:?} threads={threads}");
                assert_eq!(tr.stats(), href.stats());
            }
        }
    }
}
