//! Differentially-oblivious aggregation (the Section 5.4 relaxation).
//!
//! Instead of hiding the access pattern perfectly, make the *histogram of
//! observed index accesses* differentially private: pad each index with a
//! random number of zero-valued dummy cells (shifted, truncated Laplace —
//! padding can only *add* accesses, the one-sided-noise constraint of the
//! padding problem), obliviously shuffle real+dummy cells together, then
//! run the fast linear pass. The adversary sees a noisy histogram instead
//! of the true one.
//!
//! The paper's conclusion — reproduced by the `ablation_do` bench — is
//! that this loses to full obliviousness in FL: the shift must be paid
//! **per index**, so the padding volume scales with `d·(k/ε)·ln(1/δ)`,
//! which for ML-scale `d` exceeds the nk + d working set of Algorithm 4.

use olive_memsim::{Tracer, TrackedBuf};
use olive_oblivious::shuffle::oblivious_shuffle_with_threads;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cell::{cell_index, cell_value, make_cell};
use crate::parallel::default_threads;
use crate::regions::{REGION_G, REGION_G_STAR};

use super::linear::average_in_place;

/// Laplace sample via inverse CDF.
fn laplace<R: Rng>(scale: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Number of dummy cells for one index: `max(0, round(shift + Lap(Δ/ε)))`
/// with `shift = (Δ/ε)·ln(1/(2δ))` so truncation occurs with probability
/// at most δ. `Δ` is the histogram sensitivity — `k`, since one client
/// moves k index counts.
pub fn dummies_per_index<R: Rng>(k: usize, epsilon: f64, delta: f64, rng: &mut R) -> usize {
    let scale = k as f64 / epsilon;
    let shift = scale * (1.0 / (2.0 * delta)).ln();
    (shift + laplace(scale, rng)).round().max(0.0) as usize
}

/// DO aggregation: pad, obliviously shuffle, linear-update, average. The
/// shuffle's sorting network uses the process-default thread count.
pub fn aggregate_dobliv<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    epsilon: f64,
    delta: f64,
    seed: u64,
    tr: &mut TR,
) -> Vec<f32> {
    aggregate_dobliv_with_threads(cells, d, n, epsilon, delta, seed, default_threads(), tr)
}

/// [`aggregate_dobliv`] with an explicit worker-thread count for the
/// shuffle's intra-sort stage parallelism. Output and trace are identical
/// at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_dobliv_with_threads<TR: Tracer>(
    cells: &[u64],
    d: usize,
    n: usize,
    epsilon: f64,
    delta: f64,
    seed: u64,
    threads: usize,
    tr: &mut TR,
) -> Vec<f32> {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
    let k = cells.len() / n.max(1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0B1_1F0D);
    // Padding: dummy cells are bit-identical in role to real zero-valued
    // cells, so after the shuffle the adversary cannot attribute any
    // individual access to a real client.
    let mut padded = cells.to_vec();
    for j in 0..d as u32 {
        let m = dummies_per_index(k, epsilon, delta, &mut rng);
        padded.extend(std::iter::repeat_n(make_cell(j, 0.0), m));
    }
    let shuffled = oblivious_shuffle_with_threads(REGION_G, padded, &mut rng, threads, tr);

    // The now-DP-protected linear pass.
    let g = TrackedBuf::new(REGION_G, shuffled);
    let mut gstar = TrackedBuf::<f32>::zeroed(REGION_G_STAR, d);
    for i in 0..g.len() {
        let cell = g.read(i, tr);
        let idx = cell_index(cell) as usize;
        let cur = gstar.read(idx, tr);
        gstar.write(idx, cur + cell_value(cell), tr);
    }
    average_in_place(&mut gstar, n, tr);
    gstar.into_inner()
}

/// Expected padding volume (cells) for given parameters — the cost model
/// quoted in Section 5.4's "noise is proportional to kd" argument.
pub fn expected_padding(d: usize, k: usize, epsilon: f64, delta: f64) -> f64 {
    d as f64 * (k as f64 / epsilon) * (1.0 / (2.0 * delta)).ln()
}

/// Streaming form of [`aggregate_dobliv`].
///
/// The DO guarantee is over the *round's* access histogram: the padded
/// dummies and the oblivious shuffle must cover all n clients' cells at
/// once, or the per-index Laplace shift would be paid once per chunk and
/// the padding volume would blow up by n/chunk. So, like the Advanced
/// streamer, chunks are **staged** (untraced linear copy, exactly what
/// the one-shot path's `concat_cells` does) and the pad/shuffle/scan runs
/// at finalize — chunk boundaries change neither the output bits nor the
/// trace, and the O(nk + padding) working set is reported honestly by
/// [`DoblivStreamer::resident_bytes`].
pub struct DoblivStreamer {
    cells: Vec<u64>,
    d: usize,
    epsilon: f64,
    delta: f64,
    seed: u64,
    threads: usize,
    n: usize,
}

impl DoblivStreamer {
    /// Fresh streamer over dimension `d` with the access-histogram DP
    /// budget `(epsilon, delta)` and the padding/shuffle `seed`.
    pub fn init(d: usize, epsilon: f64, delta: f64, seed: u64, threads: usize) -> Self {
        assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
        DoblivStreamer { cells: Vec::new(), d, epsilon, delta, seed, threads, n: 0 }
    }

    /// Stages one chunk of client updates (cells buffered until finalize).
    pub fn ingest(&mut self, chunk: &[olive_fl::SparseGradient]) {
        for u in chunk {
            assert_eq!(u.dense_dim, self.d, "update dimension mismatch");
            self.n += 1;
            for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
                self.cells.push(make_cell(i, v));
            }
        }
    }

    /// Pads, shuffles, scans and averages everything staged.
    pub fn finalize<TR: Tracer>(self, tr: &mut TR) -> Vec<f32> {
        assert!(self.n > 0, "no updates to aggregate");
        aggregate_dobliv_with_threads(
            &self.cells,
            self.d,
            self.n,
            self.epsilon,
            self.delta,
            self.seed,
            self.threads,
            tr,
        )
    }

    /// Clients staged so far.
    pub fn clients(&self) -> usize {
        self.n
    }

    /// Persistent enclave bytes: the staged cell buffer.
    pub fn resident_bytes(&self) -> u64 {
        self.cells.len() as u64 * 8
    }

    /// Transient bytes finalize will allocate: the padded + shuffled cell
    /// vectors (expected volume) plus the dense output.
    pub fn finalize_scratch_bytes(&self) -> u64 {
        let k = self.cells.len() / self.n.max(1);
        let padded =
            self.cells.len() as f64 + expected_padding(self.d, k, self.epsilon, self.delta);
        (padded * 2.0 * 8.0) as u64 + self.d as u64 * 4
    }

    /// Serializes the streamer for a sealed mid-round checkpoint. The
    /// staged cells are sealed honestly (O(nk), like Advanced); the
    /// padding/shuffle seed travels with them so finalize draws the
    /// same dummies after a restore.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = olive_memsim::StateWriter::new();
        w.put_usize(self.d);
        w.put_f64(self.epsilon);
        w.put_f64(self.delta);
        w.put_u64(self.seed);
        w.put_usize(self.threads);
        w.put_usize(self.n);
        w.put_u64s(&self.cells);
        w.into_bytes()
    }

    /// Restores a [`DoblivStreamer::save_state`] snapshot into a freshly
    /// initialized streamer of the same configuration.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), olive_memsim::StateError> {
        let mut r = olive_memsim::StateReader::new(bytes);
        if r.get_usize()? != self.d
            || r.get_f64()?.to_bits() != self.epsilon.to_bits()
            || r.get_f64()?.to_bits() != self.delta.to_bits()
            || r.get_u64()? != self.seed
            || r.get_usize()? != self.threads
        {
            return Err(olive_memsim::StateError::Mismatch);
        }
        self.n = r.get_usize()?;
        self.cells = r.get_u64s()?;
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::reference_average;
    use crate::aggregation::test_support::*;
    use crate::cell::concat_cells;
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};

    #[test]
    fn correct_despite_padding() {
        let updates = random_updates(4, 5, 24, 40);
        let got = aggregate_dobliv(&concat_cells(&updates), 24, 4, 1.0, 1e-3, 7, &mut NullTracer);
        assert_close(&got, &reference_average(&updates, 24), 1e-4);
    }

    #[test]
    fn padding_volume_scales_with_d_over_epsilon() {
        let base = expected_padding(100, 10, 1.0, 1e-4);
        assert!((expected_padding(200, 10, 1.0, 1e-4) / base - 2.0).abs() < 1e-9);
        assert!((expected_padding(100, 10, 0.5, 1e-4) / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dummies_nonnegative_and_near_shift() {
        let mut rng = SmallRng::seed_from_u64(1);
        let k = 5;
        let (eps, delta): (f64, f64) = (1.0, 1e-3);
        let shift = (k as f64 / eps) * (1.0 / (2.0 * delta)).ln();
        let samples: Vec<usize> =
            (0..2000).map(|_| dummies_per_index(k, eps, delta, &mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - shift).abs() < shift * 0.1, "mean {mean} vs shift {shift}");
    }

    #[test]
    fn histogram_is_noised() {
        // The adversary's observed per-index access counts must differ
        // from the true counts (the whole point of the padding).
        let updates = random_updates(3, 4, 16, 50);
        let cells = concat_cells(&updates);
        let mut true_hist = vec![0u64; 16];
        for &c in &cells {
            true_hist[cell_index(c) as usize] += 1;
        }
        let mut tr = RecordingTracer::with_events(Granularity::Element);
        aggregate_dobliv(&cells, 16, 3, 1.0, 1e-3, 3, &mut tr);
        // Count observed G* reads per offset during accumulation (exclude
        // the trailing averaging pass of exactly d reads + d writes).
        let events = tr.events().unwrap();
        let mut seen = vec![0u64; 16];
        let accum_end = events.len() - 2 * 16;
        for a in &events[..accum_end] {
            if a.region == crate::regions::REGION_G_STAR && a.op == olive_memsim::Op::Read {
                seen[(a.offset / 4) as usize] += 1;
            }
        }
        assert_ne!(seen, true_hist, "observed histogram must be padded");
        for j in 0..16 {
            assert!(seen[j] >= true_hist[j], "padding only adds accesses");
        }
    }
}
