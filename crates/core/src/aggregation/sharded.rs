//! Sharded multi-enclave aggregation: the `G`-region dimension split into
//! `S` contiguous stripes, one shard enclave per stripe, each under its
//! own [`olive_tee::EpcBudget`] — ROADMAP item 1, the structural answer to
//! the Figure 10 cliff (the monolithic O(nk) sort working set blowing the
//! 96 MiB EPC). TENNOR makes the same move for oblivious NN inference:
//! bound each enclave's oblivious working set by partitioning the
//! computation.
//!
//! ## Topology and invariants
//!
//! The **coordinator** enclave (the one clients attest and upload to)
//! remains the round's canonical compute site: every upload is opened,
//! every cell folded, and the adversary-visible trace emitted there,
//! exactly as in the monolithic path. Sharding adds a *memory and
//! transport* plane around that schedule:
//!
//! * every shard runs in its own enclave, mutually attested to the
//!   coordinator through a [`ShardTunnel`] (measurement pinned both ways);
//! * **ingress** broadcasts each staged chunk's cell segment to every
//!   shard over its tunnel. The segment shape is a pure function of the
//!   public chunk schedule (every upload pads to k cells), so the
//!   transport pattern is identical for all inputs — per-shard routed
//!   counts are data-dependent and therefore must never appear on the
//!   wire. Each shard scans the whole segment inside the enclave
//!   (fixed-shape routing) and keeps only its stripe's cells;
//! * **egress** seals each shard's stripe of the finalized delta through
//!   its tunnel; the shard answers with a receipt carrying the stripe
//!   hash, and the coordinator folds the shard-held stripes back together
//!   in ascending shard order — a deterministic fold that reproduces the
//!   canonical delta bit for bit;
//! * every dimension-proportional EPC charge of the canonical schedule is
//!   mirrored onto the shard budgets as its stripe-weighted share
//!   ([`ShardPlan::split_charge`], an exact telescoping split), plus the
//!   transport transients above. The coordinator's own accounting is
//!   untouched — it is what the round report and the bitwise invariants
//!   are defined over.
//!
//! Because the canonical schedule never changes, the round output,
//! signature and trace digest are bitwise identical at every shard count
//! — the repo's hard invariant — while the per-shard budgets model what
//! each enclave of the sharded deployment must hold.
//!
//! ## Faults and recovery
//!
//! A fleet of S enclaves will lose members mid-round, so every transport
//! operation here is **fallible and recovering**, driven by a
//! deterministic [`FaultPlan`] (tests, CI chaos pass, `OLIVE_FAULTS`):
//!
//! * delivery failures (frame tamper/drop, receipt corruption) are
//!   retried under a bounded [`RetryPolicy`] with a *simulated* backoff
//!   clock recorded in [`RecoveryStats`] — tunnel replay floors tolerate
//!   the sequence gaps, so a retry is always safe;
//! * a **shard kill** triggers mid-round failover: the runtime relaunches
//!   the enclave under a fresh DH epoch (fresh tunnel keys — the dead
//!   instance's AEAD nonce sequence can never be continued), re-attests
//!   it under [`SHARD_CODE_IDENTITY`], rebuilds both tunnel ends via the
//!   provisioning-time [`TunnelAnchor`], restores the shard's stripe
//!   state from its newest sealed `"shard-ckpt"` blob, and resumes the
//!   chunk stream. The checkpoint's monotonic counter floor is pinned
//!   coordinator-side (standing in for rollback-protected NV storage),
//!   so a rolled-back blob — the [`FaultKind::StaleSeal`] fault — is
//!   rejected and the genuine newest one recovered instead, and a
//!   relaunched shard can never reseal with a previously used nonce;
//! * when the retry budget is exhausted the operation fails with a
//!   structured [`ShardError`] naming the shard, the attempt count and
//!   the final failure — never a panic — leaving the round restorable.
//!
//! All of this machinery lives strictly in the side-band transport plane:
//! it emits no tracer events and never touches the canonical compute, so
//! a recovered round is bitwise identical to the fault-free one **by
//! construction** (and the fault proptests pin it).

use olive_fl::SparseGradient;
use olive_memsim::{
    FaultEvent, FaultKind, FaultPlan, ParallelTracer, RecoveryStats, RetryPolicy, ShardPlan,
    StateError, StateReader, StateWriter, EGRESS_CHUNK,
};
use olive_tee::attestation::Measurement;
use olive_tee::{
    attestation::digest, AttestationService, Enclave, EnclaveConfig, Quote, ShardTunnel, TeeError,
    TunnelAnchor, TunnelError, TunnelRole,
};
use olive_telemetry::Telemetry;

use crate::aggregation::{Aggregator, AggregatorKind, StreamingAggregator};
use crate::cell::{cell_index, concat_cells, DUMMY_INDEX};

/// Code identity every shard enclave must measure to (what the
/// coordinator pins when it verifies a shard's quote, and vice versa the
/// shards pin the coordinator's measurement).
pub const SHARD_CODE_IDENTITY: &str = "olive-shard-aggregator-v1";

/// Attestation user data binding shard quotes to the shard plane (the
/// coordinator keeps its own client-facing context: re-attesting it under
/// a different context would change the transcript its session keys are
/// bound to).
const SHARD_ATTEST_CONTEXT: &[u8] = b"olive-shard-plane-v1";

/// Tunnel message kinds.
const MSG_CELLS: u8 = 1;
const MSG_STRIPE: u8 = 2;
const MSG_RECEIPT: u8 = 3;

/// Sealing label for per-shard stripe checkpoints (the shard-plane
/// sibling of the coordinator's `"round-ckpt"` label).
const SHARD_CKPT_LABEL: &[u8] = b"shard-ckpt";

/// Version byte leading every shard checkpoint blob.
const SHARD_CKPT_VERSION: u64 = 1;

/// What finally went wrong with one shard operation after recovery was
/// exhausted (the terminal failure of the last attempt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFailure {
    /// Tunnel establishment or transport failed (attestation refused,
    /// AEAD authentication failure, replay).
    Tunnel(TunnelError),
    /// A shard checkpoint failed to unseal on restore (tampered blob, or
    /// a rollback below the pinned counter floor).
    Seal(TeeError),
    /// A tunnel frame was dropped in flight (the receiver never saw it).
    Dropped,
    /// A shard's egress receipt authenticated but named a stripe hash
    /// other than the one the coordinator sealed.
    ReceiptMismatch,
    /// A killed shard had delivered chunks but no checkpoint to restore
    /// them from (checkpointing disabled): its stripe state is gone.
    StateLost,
}

impl core::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardFailure::Tunnel(e) => write!(f, "tunnel failure: {e}"),
            ShardFailure::Seal(e) => write!(f, "checkpoint failure: {e}"),
            ShardFailure::Dropped => write!(f, "tunnel frame dropped"),
            ShardFailure::ReceiptMismatch => write!(f, "stripe receipt hash mismatch"),
            ShardFailure::StateLost => write!(f, "shard state lost (no checkpoint to restore)"),
        }
    }
}

impl std::error::Error for ShardFailure {}

/// A structured shard-plane error: which shard failed, how many attempts
/// recovery spent on it, and the terminal [`ShardFailure`]. Surfaced by
/// every fallible [`ShardRuntime`] operation instead of a panic, so the
/// round driver can abort cleanly with the round still restorable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardError {
    /// The shard the operation targeted.
    pub shard: u32,
    /// Attempts consumed (1 = failed without retry budget left to spend).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: ShardFailure,
}

impl core::fmt::Display for ShardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "shard {} failed after {} attempt(s): {}",
            self.shard, self.attempts, self.failure
        )
    }
}

impl std::error::Error for ShardError {}

/// One shard enclave plus both endpoints of its coordinator tunnel (the
/// simulation holds the whole deployment in one process, so the pair
/// lives side by side; a real deployment holds one end per machine).
struct ShardState {
    enclave: Enclave,
    coord_end: ShardTunnel,
    shard_end: ShardTunnel,
    /// Cells routed into this shard's stripe so far this round (learned
    /// inside the shard enclave by the fixed-shape scan; reported back in
    /// the egress receipt, never on the ingress wire).
    routed_cells: u64,
    /// Chunks this shard has scanned this round (coordinator-side mirror
    /// of the public chunk schedule — *not* of any private state).
    chunks_done: u64,
    /// The per-shard platform seed, kept so a relaunch rebuilds the same
    /// sealing key (checkpoints must unseal across the restart).
    seed: [u8; 32],
    /// DH epoch of the current enclave incarnation; bumped on every
    /// relaunch so each incarnation presents a fresh tunnel key share.
    dh_epoch: u32,
    /// Newest sealed stripe checkpoint, held in untrusted storage
    /// (coordinator-side in the simulation).
    ckpt_store: Option<Vec<u8>>,
    /// The previous generation's blob — what a rollback attack (the
    /// [`FaultKind::StaleSeal`] fault) serves a relaunched shard.
    ckpt_prev: Option<Vec<u8>>,
    /// Pinned monotonic floor for `"shard-ckpt"` blobs, standing in for
    /// rollback-protected NV storage: it survives the enclave's death,
    /// so a relaunched shard rejects every blob older than the newest
    /// and — after unsealing — can never reseal with a reused nonce.
    ckpt_floor: u64,
}

/// The provisioned shard plane: `S` shard enclaves, their tunnels, the
/// stripe plan that maps coordinates and charges onto them, and the
/// failover machinery (attestation handle, tunnel anchor, fault plan,
/// retry policy) that keeps the plane serving across shard deaths.
pub struct ShardRuntime {
    plan: ShardPlan,
    shards: Vec<ShardState>,
    /// Cloned platform handle, for re-attesting relaunched shards.
    service: AttestationService,
    /// The coordinator's quote (shards pin it when re-establishing).
    coord_quote: Quote,
    coord_measurement: Measurement,
    /// The coordinator's tunnel identity, captured at provisioning — lets
    /// the runtime bring up replacement tunnels mid-round without a
    /// borrow of the coordinator enclave.
    anchor: TunnelAnchor,
    shard_cfg: EnclaveConfig,
    /// Round epoch stamped into shard checkpoints (guards against a blob
    /// from an earlier round restoring into the current one).
    round_epoch: u64,
    /// Absolute index of the next ingress chunk — the coordinate fault
    /// events are addressed by (kept absolute across a coordinator
    /// restore via [`ShardRuntime::skip_to_chunk`]).
    chunk_cursor: u32,
    /// Whether shards seal a stripe checkpoint after every chunk
    /// (default on; the bench toggles it to price the overhead).
    checkpointing: bool,
    faults: FaultPlan,
    retry: RetryPolicy,
    stats: RecoveryStats,
    /// Side-band metrics handle (disarmed by default): ingress/egress/
    /// relaunch spans, fault and recovery events, per-shard EPC counters
    /// and checkpoint-blob histograms. Strictly read-only over the round —
    /// arming it never perturbs output, signature or trace.
    telemetry: Telemetry,
}

impl core::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.shards.len())
            .field("round_epoch", &self.round_epoch)
            .field("chunk_cursor", &self.chunk_cursor)
            .field("checkpointing", &self.checkpointing)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ShardRuntime {
    /// Launches and mutually attests `shards` shard enclaves against the
    /// (already client-attested) coordinator.
    ///
    /// The coordinator re-attests under its *existing* `user_data`
    /// context so its transcript — which every client session key is
    /// bound to — is unchanged; shard quotes use the shard-plane context.
    /// Both directions of every tunnel pin the peer's measurement, so a
    /// shard enclave only ever accepts cells from the verified
    /// coordinator and the coordinator only accepts receipts from
    /// verified shards.
    pub fn provision(
        service: &AttestationService,
        coordinator: &mut Enclave,
        coordinator_context: &[u8],
        seed_bytes: [u8; 32],
        epc_bytes: u64,
        d: usize,
        shards: usize,
    ) -> Result<Self, ShardError> {
        Self::provision_with_plan(
            service,
            coordinator,
            coordinator_context,
            seed_bytes,
            epc_bytes,
            ShardPlan::even(d, shards),
        )
    }

    /// [`ShardRuntime::provision`] with an explicit stripe plan (uneven
    /// boundaries included) — boundary placement is public topology and
    /// must never change the round output or trace, which the proptest
    /// suite pins through this entry point.
    pub fn provision_with_plan(
        service: &AttestationService,
        coordinator: &mut Enclave,
        coordinator_context: &[u8],
        seed_bytes: [u8; 32],
        epc_bytes: u64,
        plan: ShardPlan,
    ) -> Result<Self, ShardError> {
        let shards = plan.shards();
        let coord_quote = coordinator.attest(service, coordinator_context);
        let coord_measurement = coordinator.measurement();
        let anchor = TunnelAnchor::capture(coordinator).map_err(|e| ShardError {
            shard: 0,
            attempts: 1,
            failure: ShardFailure::Tunnel(e),
        })?;
        let shard_cfg = EnclaveConfig { code_identity: SHARD_CODE_IDENTITY.to_string(), epc_bytes };
        let mut states = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut seed = seed_bytes;
            seed[16..20].copy_from_slice(&(i as u32).to_be_bytes());
            seed[20] ^= 0x5D;
            let mut enclave = Enclave::launch(&shard_cfg, seed);
            let shard_quote = enclave.attest(service, SHARD_ATTEST_CONTEXT);
            let fail =
                |e| ShardError { shard: i as u32, attempts: 1, failure: ShardFailure::Tunnel(e) };
            let coord_end = anchor
                .establish(service.public_key(), &enclave.measurement(), &shard_quote, i as u32)
                .map_err(fail)?;
            let shard_end = ShardTunnel::establish(
                TunnelRole::Shard,
                &enclave,
                service.public_key(),
                &coord_measurement,
                &coord_quote,
                i as u32,
            )
            .map_err(fail)?;
            states.push(ShardState {
                enclave,
                coord_end,
                shard_end,
                routed_cells: 0,
                chunks_done: 0,
                seed,
                dh_epoch: 0,
                ckpt_store: None,
                ckpt_prev: None,
                ckpt_floor: 0,
            });
        }
        Ok(ShardRuntime {
            plan,
            shards: states,
            service: service.clone(),
            coord_quote,
            coord_measurement,
            anchor,
            shard_cfg,
            round_epoch: 0,
            chunk_cursor: 0,
            checkpointing: true,
            faults: FaultPlan::empty(),
            retry: RetryPolicy::default(),
            stats: RecoveryStats::default(),
            telemetry: Telemetry::off(),
        })
    }

    /// Arms side-band telemetry on the whole shard plane: the runtime
    /// itself, every shard enclave (seal/open byte counters) and both
    /// ends of every tunnel (frame counters), and emits one
    /// `shard_provisioned` event per stripe so the topology is on the
    /// stream. Re-threaded automatically across relaunches.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (i, sh) in self.shards.iter_mut().enumerate() {
            sh.enclave.set_telemetry(telemetry.clone());
            sh.coord_end.set_telemetry(telemetry.clone());
            sh.shard_end.set_telemetry(telemetry.clone());
            if telemetry.is_armed() {
                let range = self.plan.range(i);
                telemetry.event(
                    "shard_provisioned",
                    &[
                        ("shard", (i as u64).into()),
                        ("stripe_lo", (range.start as u64).into()),
                        ("stripe_hi", (range.end as u64).into()),
                    ],
                );
            }
        }
        self.telemetry = telemetry;
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The stripe plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Arms an explicit fault script for the rounds that follow
    /// (replacing whatever plan — scripted or environmental — was armed).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Recovery work done over this runtime's lifetime.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Enables/disables the per-chunk stripe checkpoint (on by default;
    /// with it off, a mid-stream shard kill is unrecoverable — the bench
    /// uses the toggle to price the checkpoint overhead).
    pub fn set_checkpointing(&mut self, on: bool) {
        self.checkpointing = on;
    }

    /// Re-aligns the absolute chunk cursor after a coordinator restore,
    /// so fault events keep firing at their scripted absolute chunk
    /// indices in the resumed half of the round.
    pub fn skip_to_chunk(&mut self, chunks_done: usize) {
        self.chunk_cursor = chunks_done as u32;
    }

    /// Opens a fresh per-round accounting epoch on every shard budget
    /// (mirrors [`Enclave::begin_round`]'s epoch on the coordinator),
    /// resets the per-round transport state, and — when no explicit
    /// fault script is armed — arms the `OLIVE_FAULTS` environment plan
    /// for the new round (the CI chaos pass's entry point).
    pub fn begin_round(&mut self) {
        self.round_epoch += 1;
        self.chunk_cursor = 0;
        for sh in &mut self.shards {
            sh.enclave.epc.begin_epoch();
            sh.routed_cells = 0;
            sh.chunks_done = 0;
            // Checkpoint blobs are per-round; the pinned floor is not.
            sh.ckpt_store = None;
            sh.ckpt_prev = None;
        }
        if self.faults.is_empty() {
            self.faults = FaultPlan::from_env();
        }
    }

    /// Mirrors a coordinator allocation of `bytes` onto the shard
    /// budgets, each charged its stripe-weighted share.
    pub fn alloc_split(&mut self, bytes: u64) {
        let armed = self.telemetry.is_armed();
        for (i, (sh, part)) in self.shards.iter_mut().zip(self.plan.split_charge(bytes)).enumerate()
        {
            if armed {
                self.telemetry.count("epc_charge_bytes", &format!("shard{i}"), part);
            }
            sh.enclave.epc.alloc(part);
        }
    }

    /// Mirrors a coordinator release of `bytes` (the split is
    /// deterministic, so alloc/free always balance exactly).
    pub fn free_split(&mut self, bytes: u64) {
        let armed = self.telemetry.is_armed();
        for (i, (sh, part)) in self.shards.iter_mut().zip(self.plan.split_charge(bytes)).enumerate()
        {
            if armed {
                self.telemetry.count("epc_free_bytes", &format!("shard{i}"), part);
            }
            sh.enclave.epc.free(part);
        }
    }

    /// Broadcasts one staged chunk's cell segment to every shard through
    /// its tunnel. The segment has the same public shape for every shard
    /// and every input of that shape; each shard scans all of it inside
    /// the enclave and keeps its stripe's cells, so per-shard counts stay
    /// enclave-private. The decrypted segment is a transient EPC charge
    /// on each shard for the duration of the scan.
    ///
    /// Every delivery runs under the fault plan and retry policy; a shard
    /// kill triggers mid-round failover (relaunch, re-attest, rekey,
    /// restore from checkpoint). Exhausted recovery returns a
    /// [`ShardError`]; the chunk cursor then stays put, so the round can
    /// be restored and the chunk re-broadcast.
    pub fn ingress_chunk(&mut self, staged: &[SparseGradient]) -> Result<(), ShardError> {
        let cells = concat_cells(staged);
        let mut payload = Vec::with_capacity(cells.len() * 8);
        for c in &cells {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        let chunk = self.chunk_cursor;
        let _span = self.telemetry.span(
            "shard_ingress",
            &[
                ("chunk", chunk.into()),
                ("shards", (self.shards.len() as u64).into()),
                ("segment_bytes", (payload.len() as u64).into()),
            ],
        );
        for i in 0..self.shards.len() {
            self.deliver_with_recovery(i, chunk, &payload)?;
        }
        self.chunk_cursor += 1;
        Ok(())
    }

    /// Distributes the finalized delta stripewise to the shards and folds
    /// the shard-held stripes back in ascending shard order — the
    /// deterministic merge. Each shard's receipt carries the hash of the
    /// stripe it holds (plus its routed-cell count); the coordinator
    /// verifies every receipt against the stripe it sealed, so the
    /// reassembled delta is bitwise the canonical one by construction.
    ///
    /// Egress-phase faults (kill/tamper/drop at [`EGRESS_CHUNK`], receipt
    /// corruption) recover exactly like ingress ones; exhaustion returns
    /// a [`ShardError`] with the round still restorable.
    pub fn egress_round(&mut self, delta: &[f32]) -> Result<Vec<f32>, ShardError> {
        assert_eq!(delta.len(), self.plan.d(), "delta dimension must match the plan");
        let _span =
            self.telemetry.span("shard_egress", &[("shards", (self.shards.len() as u64).into())]);
        let mut out = Vec::with_capacity(delta.len());
        for i in 0..self.shards.len() {
            let stripe = &delta[self.plan.range(i)];
            let mut bytes = Vec::with_capacity(stripe.len() * 4);
            for v in stripe {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            let held = self.egress_with_recovery(i, &bytes)?;
            out.extend_from_slice(&held);
            self.shards[i].routed_cells = 0;
        }
        Ok(out)
    }

    /// One shard's chunk delivery under the retry/failover loop.
    fn deliver_with_recovery(
        &mut self,
        i: usize,
        chunk: u32,
        payload: &[u8],
    ) -> Result<(), ShardError> {
        let shard = i as u32;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
                let backoff = self.retry.backoff_ms(attempts);
                self.stats.backoff_ms += backoff;
                self.note_retry("in", chunk, shard, attempts, backoff);
            }
            if self.faults.fire(FaultKind::ShardKill, chunk, shard) {
                note_fault(&self.telemetry, FaultKind::ShardKill, chunk, shard);
                self.relaunch_shard(i).map_err(|failure| ShardError {
                    shard,
                    attempts,
                    failure,
                })?;
            }
            match self.try_deliver(i, chunk, payload) {
                Ok(()) => {
                    if self.checkpointing {
                        self.checkpoint_shard(i);
                    }
                    return Ok(());
                }
                Err(failure) => {
                    if attempts >= self.retry.max_attempts {
                        return Err(ShardError { shard, attempts, failure });
                    }
                }
            }
        }
    }

    /// One delivery attempt: seal, (faultable) transport, open, scan.
    fn try_deliver(&mut self, i: usize, chunk: u32, payload: &[u8]) -> Result<(), ShardFailure> {
        let shard = i as u32;
        let range = self.plan.range(i);
        let sh = &mut self.shards[i];
        let mut msg = sh.coord_end.seal(MSG_CELLS, payload);
        if self.faults.fire(FaultKind::TunnelDrop, chunk, shard) {
            // The frame never arrives; the send sequence number is
            // burned, which the receiver's floor tolerates as a gap.
            note_fault(&self.telemetry, FaultKind::TunnelDrop, chunk, shard);
            return Err(ShardFailure::Dropped);
        }
        if self.faults.fire(FaultKind::TunnelTamper, chunk, shard) {
            note_fault(&self.telemetry, FaultKind::TunnelTamper, chunk, shard);
            msg.tamper();
        }
        let transient = payload.len() as u64;
        sh.enclave.epc.alloc(transient);
        let plain = match sh.shard_end.open(&msg) {
            Ok(p) => p,
            Err(e) => {
                sh.enclave.epc.free(transient);
                return Err(ShardFailure::Tunnel(e));
            }
        };
        let mut routed = 0u64;
        for cell_bytes in plain.chunks_exact(8) {
            let cell = u64::from_le_bytes(cell_bytes.try_into().expect("8-byte cell"));
            let idx = cell_index(cell);
            // Branch-free keep decision: every shard touches every
            // cell of the segment regardless of ownership.
            let keep = (idx != DUMMY_INDEX) & range.contains(&(idx as usize));
            routed += u64::from(keep);
        }
        sh.routed_cells += routed;
        sh.chunks_done += 1;
        sh.enclave.epc.free(transient);
        Ok(())
    }

    /// One shard's stripe egress under the retry/failover loop.
    fn egress_with_recovery(&mut self, i: usize, bytes: &[u8]) -> Result<Vec<f32>, ShardError> {
        let shard = i as u32;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
                let backoff = self.retry.backoff_ms(attempts);
                self.stats.backoff_ms += backoff;
                self.note_retry("eg", EGRESS_CHUNK, shard, attempts, backoff);
            }
            if self.faults.fire(FaultKind::ShardKill, EGRESS_CHUNK, shard) {
                note_fault(&self.telemetry, FaultKind::ShardKill, EGRESS_CHUNK, shard);
                self.relaunch_shard(i).map_err(|failure| ShardError {
                    shard,
                    attempts,
                    failure,
                })?;
            }
            match self.try_egress(i, bytes) {
                Ok(held) => return Ok(held),
                Err(failure) => {
                    if attempts >= self.retry.max_attempts {
                        return Err(ShardError { shard, attempts, failure });
                    }
                }
            }
        }
    }

    /// One egress attempt: stripe down, receipt up, hash check.
    fn try_egress(&mut self, i: usize, bytes: &[u8]) -> Result<Vec<f32>, ShardFailure> {
        let shard = i as u32;
        let sh = &mut self.shards[i];
        let mut down = sh.coord_end.seal(MSG_STRIPE, bytes);
        if self.faults.fire(FaultKind::TunnelDrop, EGRESS_CHUNK, shard) {
            note_fault(&self.telemetry, FaultKind::TunnelDrop, EGRESS_CHUNK, shard);
            return Err(ShardFailure::Dropped);
        }
        if self.faults.fire(FaultKind::TunnelTamper, EGRESS_CHUNK, shard) {
            note_fault(&self.telemetry, FaultKind::TunnelTamper, EGRESS_CHUNK, shard);
            down.tamper();
        }
        let transient = bytes.len() as u64;
        sh.enclave.epc.alloc(transient);
        let held = match sh.shard_end.open(&down) {
            Ok(p) => p,
            Err(e) => {
                sh.enclave.epc.free(transient);
                return Err(ShardFailure::Tunnel(e));
            }
        };
        let mut receipt = digest(&held).to_vec();
        receipt.extend_from_slice(&sh.routed_cells.to_be_bytes());
        // A receipt-corruption fault models a faulty shard *computing* the
        // wrong receipt: the frame authenticates, the content is wrong, and
        // the coordinator's hash compare catches it. (Frame-level tampering
        // is TunnelTamper's job and dies at the AEAD instead.)
        if self.faults.fire(FaultKind::ReceiptCorrupt, EGRESS_CHUNK, shard) {
            note_fault(&self.telemetry, FaultKind::ReceiptCorrupt, EGRESS_CHUNK, shard);
            receipt[0] ^= 0x01;
        }
        let up = sh.shard_end.seal(MSG_RECEIPT, &receipt);
        let opened = match sh.coord_end.open(&up) {
            Ok(p) => p,
            Err(e) => {
                sh.enclave.epc.free(transient);
                return Err(ShardFailure::Tunnel(e));
            }
        };
        if opened[..32] != digest(bytes)[..] {
            sh.enclave.epc.free(transient);
            return Err(ShardFailure::ReceiptMismatch);
        }
        let mut out = Vec::with_capacity(bytes.len() / 4);
        for v in held.chunks_exact(4) {
            out.push(f32::from_bits(u32::from_le_bytes(v.try_into().expect("4-byte f32"))));
        }
        sh.enclave.epc.free(transient);
        Ok(out)
    }

    /// Seals the shard's stripe state (`round_epoch`, `chunks_done`,
    /// `routed_cells`) under the `"shard-ckpt"` label inside the shard
    /// enclave and parks the blob in untrusted storage, advancing the
    /// pinned counter floor. The previous blob is kept around as the
    /// rollback-attack corpus for the [`FaultKind::StaleSeal`] fault.
    fn checkpoint_shard(&mut self, i: usize) {
        let sh = &mut self.shards[i];
        let mut w = StateWriter::new();
        w.put_u64(SHARD_CKPT_VERSION);
        w.put_u64(self.round_epoch);
        w.put_u64(sh.chunks_done);
        w.put_u64(sh.routed_cells);
        let blob = sh.enclave.seal(&w.into_bytes(), SHARD_CKPT_LABEL);
        if self.telemetry.is_armed() {
            self.telemetry.observe("ckpt_blob_bytes", &format!("shard{i}"), blob.len() as u64);
        }
        let counter = u64::from_be_bytes(blob[..8].try_into().expect("8-byte counter prefix"));
        sh.ckpt_floor = sh.ckpt_floor.max(counter);
        sh.ckpt_prev = sh.ckpt_store.take();
        sh.ckpt_store = Some(blob);
    }

    /// Mid-round shard failover: relaunch the enclave under the next DH
    /// epoch, re-attest it, rebuild both tunnel ends (fresh keys on both
    /// sides — the anchor supplies the coordinator half), and restore the
    /// stripe state from the newest checkpoint under the pinned floor.
    /// A stale blob served by the untrusted store is rejected
    /// ([`TeeError::StaleSeal`]) and the genuine newest one loaded
    /// instead — one extra (counted, backed-off) recovery step.
    fn relaunch_shard(&mut self, i: usize) -> Result<(), ShardFailure> {
        self.stats.relaunches += 1;
        let shard = i as u32;
        let sh = &mut self.shards[i];
        sh.dh_epoch += 1;
        let _span = self
            .telemetry
            .span("shard_relaunch", &[("shard", shard.into()), ("dh_epoch", sh.dh_epoch.into())]);
        let mut enclave = Enclave::launch_with_dh_epoch(&self.shard_cfg, sh.seed, sh.dh_epoch);
        let shard_quote = enclave.attest(&self.service, SHARD_ATTEST_CONTEXT);
        let coord_end = self
            .anchor
            .establish(self.service.public_key(), &enclave.measurement(), &shard_quote, shard)
            .map_err(ShardFailure::Tunnel)?;
        let shard_end = ShardTunnel::establish(
            TunnelRole::Shard,
            &enclave,
            self.service.public_key(),
            &self.coord_measurement,
            &self.coord_quote,
            shard,
        )
        .map_err(ShardFailure::Tunnel)?;
        // Restore the stripe state. The untrusted store may serve a
        // rolled-back blob (the StaleSeal fault); the pinned floor
        // catches it and recovery falls back to the genuine newest.
        let (chunks_done, routed_cells) = if let Some(newest) = sh.ckpt_store.as_ref() {
            let stale_served = sh.ckpt_prev.is_some()
                && self.faults.fire(FaultKind::StaleSeal, EGRESS_CHUNK, shard);
            if stale_served {
                note_fault(&self.telemetry, FaultKind::StaleSeal, EGRESS_CHUNK, shard);
            }
            let floor = sh.ckpt_floor;
            let epoch = self.round_epoch;
            let restored = if stale_served {
                let prev = sh.ckpt_prev.as_ref().expect("stale_served implies a prev blob");
                match restore_ckpt(&mut enclave, prev, floor, epoch) {
                    Err(ShardFailure::Seal(TeeError::StaleSeal)) => {
                        // Rollback detected: count the extra fetch of the
                        // genuine blob as one recovery retry.
                        self.stats.retries += 1;
                        self.stats.backoff_ms += self.retry.backoff_ms(2);
                        None
                    }
                    other => Some(other),
                }
            } else {
                None
            };
            match restored {
                Some(done) => done?,
                None => restore_ckpt(&mut enclave, newest, floor, epoch)?,
            }
        } else if sh.chunks_done > 0 {
            // Chunks were delivered but never checkpointed: the stripe
            // state died with the enclave.
            return Err(ShardFailure::StateLost);
        } else {
            (0, 0)
        };
        sh.enclave = enclave;
        sh.coord_end = coord_end;
        sh.shard_end = shard_end;
        sh.chunks_done = chunks_done;
        sh.routed_cells = routed_cells;
        // The fresh incarnation carries fresh handles: re-thread telemetry
        // into the relaunched enclave and both rebuilt tunnel ends.
        sh.enclave.set_telemetry(self.telemetry.clone());
        sh.coord_end.set_telemetry(self.telemetry.clone());
        sh.shard_end.set_telemetry(self.telemetry.clone());
        self.telemetry.event(
            "shard_restore",
            &[
                ("shard", shard.into()),
                ("chunks_done", chunks_done.into()),
                ("routed_cells", routed_cells.into()),
            ],
        );
        Ok(())
    }

    /// Emits one `recovery_attempt` event and bumps the `retry_attempts`
    /// counter under the retried site (`in@chunk.shard` ingress,
    /// `eg@e.shard` egress).
    fn note_retry(&self, phase: &str, chunk: u32, shard: u32, attempt: u32, backoff_ms: u64) {
        if !self.telemetry.is_armed() {
            return;
        }
        let chunk = if chunk == EGRESS_CHUNK { "e".to_string() } else { chunk.to_string() };
        let site = format!("{phase}@{chunk}.{shard}");
        self.telemetry.event(
            "recovery_attempt",
            &[
                ("site", site.as_str().into()),
                ("attempt", attempt.into()),
                ("backoff_ms", backoff_ms.into()),
            ],
        );
        self.telemetry.count("retry_attempts", &site, 1);
    }

    /// Per-shard EPC peaks (bytes) for the current accounting epoch, in
    /// shard order (a relaunched shard's peak restarts with its new
    /// incarnation).
    pub fn peaks(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.enclave.epc.peak).collect()
    }

    /// Per-shard live EPC bytes (zero after a balanced round).
    pub fn live(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.enclave.epc.live).collect()
    }

    /// True if any shard's epoch peak exceeds its own EPC limit — the
    /// sharded deployment's paging predicate.
    pub fn any_would_page(&self) -> bool {
        self.shards.iter().any(|sh| sh.enclave.epc.would_page())
    }

    /// Cells each shard routed into its stripe so far this round (test
    /// hook; enclave-private in a deployment, reported via receipts).
    pub fn routed_cells(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.routed_cells).collect()
    }

    /// Each shard's newest checkpoint counter (test hook for the
    /// seal-counter continuity regression: counters must be strictly
    /// monotone across relaunches, or a reseal would reuse a nonce).
    pub fn ckpt_counters(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.ckpt_floor).collect()
    }
}

/// Unseals and decodes one shard checkpoint inside `enclave`, enforcing
/// the pinned counter floor and the current round epoch.
fn restore_ckpt(
    enclave: &mut Enclave,
    blob: &[u8],
    floor: u64,
    round_epoch: u64,
) -> Result<(u64, u64), ShardFailure> {
    let plain =
        enclave.unseal_with_floor(blob, SHARD_CKPT_LABEL, floor).map_err(ShardFailure::Seal)?;
    let corrupt = |_: StateError| ShardFailure::Seal(TeeError::AuthFailure);
    let mut r = StateReader::new(&plain);
    let version = r.get_u64().map_err(corrupt)?;
    let epoch = r.get_u64().map_err(corrupt)?;
    if version != SHARD_CKPT_VERSION || epoch != round_epoch {
        // Genuine blob, wrong generation: a cross-round rollback.
        return Err(ShardFailure::Seal(TeeError::StaleSeal));
    }
    let chunks_done = r.get_u64().map_err(corrupt)?;
    let routed_cells = r.get_u64().map_err(corrupt)?;
    Ok((chunks_done, routed_cells))
}

/// Emits one `fault_fired` telemetry event for a consumed fault-plan
/// event, labeled with the `kind@chunk.shard` site grammar shared with
/// `OLIVE_FAULTS` scripts.
fn note_fault(telemetry: &Telemetry, kind: FaultKind, chunk: u32, shard: u32) {
    if telemetry.is_armed() {
        let site = FaultEvent { kind, chunk, shard }.render();
        telemetry.event("fault_fired", &[("site", site.as_str().into())]);
    }
}

/// A [`StreamingAggregator`] wrapped in the shard plane: same canonical
/// compute and trace, plus tunnel transport and per-shard EPC accounting
/// on every chunk — the [`Aggregator`]-seam face of sharding. The round
/// driver (`OliveSystem`) threads the same [`ShardRuntime`] machinery
/// through its own richer charge schedule; this wrapper is the
/// self-contained form for benches and equivalence tests.
///
/// Transport failures surface at the seam's edges: a [`ShardError`] from
/// ingress is latched (further transport is skipped — the round is
/// already lost) and returned by [`ShardedAggregator::finalize_with_peaks`];
/// the trait's infallible [`Aggregator::finalize`] panics on a latched
/// fault and is for fault-free use only.
pub struct ShardedAggregator {
    inner: StreamingAggregator,
    rt: ShardRuntime,
    resident: u64,
    fault: Option<ShardError>,
}

impl ShardedAggregator {
    /// Wraps a fresh aggregator of `kind` over an already provisioned
    /// shard runtime, charging the initial resident state to the shard
    /// budgets.
    pub fn new(kind: AggregatorKind, d: usize, threads: usize, mut rt: ShardRuntime) -> Self {
        assert_eq!(rt.plan().d(), d, "shard plan dimension must match the aggregator");
        let inner = StreamingAggregator::new(kind, d, threads);
        let resident = inner.resident_bytes();
        rt.begin_round();
        rt.alloc_split(resident);
        ShardedAggregator { inner, rt, resident, fault: None }
    }

    /// Arms a fault script on the underlying runtime.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.rt.set_fault_plan(plan);
    }

    /// [`Aggregator::finalize`] that also hands back the per-shard EPC
    /// peaks (and the runtime, for reuse across rounds) — or the latched
    /// / egress [`ShardError`] when the transport plane failed.
    pub fn finalize_with_peaks<TR: ParallelTracer>(
        self,
        tr: &mut TR,
    ) -> Result<(Vec<f32>, Vec<u64>, ShardRuntime), ShardError> {
        let ShardedAggregator { inner, mut rt, resident, fault } = self;
        if let Some(e) = fault {
            return Err(e);
        }
        let fin_scratch = inner.finalize_scratch_bytes();
        rt.alloc_split(fin_scratch);
        let delta = inner.finalize(tr);
        let out = rt.egress_round(&delta)?;
        rt.free_split(fin_scratch);
        rt.free_split(resident);
        let peaks = rt.peaks();
        Ok((out, peaks, rt))
    }
}

impl Aggregator for ShardedAggregator {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        if self.fault.is_none() {
            let k = chunk.iter().map(|u| u.k()).max().unwrap_or(0);
            let scratch = self.inner.ingest_scratch_bytes(chunk.len(), k);
            self.rt.alloc_split(scratch);
            if let Err(e) = self.rt.ingress_chunk(chunk) {
                self.fault = Some(e);
            }
            self.rt.free_split(scratch);
        }
        // Canonical compute continues regardless: it defines the trace
        // and output the bitwise invariants speak about, and a latched
        // fault is surfaced at finalize time.
        self.inner.ingest(chunk, tr);
        if self.fault.is_none() {
            let now = self.inner.resident_bytes();
            self.rt.free_split(self.resident);
            self.rt.alloc_split(now);
            self.resident = now;
        }
    }

    /// # Panics
    /// On a latched transport fault — this trait face is infallible and
    /// serves the fault-free equivalence suites; fallible callers use
    /// [`ShardedAggregator::finalize_with_peaks`].
    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        self.finalize_with_peaks(tr).expect("fault-free round").0
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn ingest_scratch_bytes(&self, chunk_clients: usize, k: usize) -> u64 {
        self.inner.ingest_scratch_bytes(chunk_clients, k)
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        self.inner.finalize_scratch_bytes()
    }

    // Checkpoint blobs stay shard-agnostic: the canonical aggregator
    // state is the round's whole restorable truth, so a round sealed at
    // S=4 restores at S=1 (and vice versa) — shard topology is runtime
    // configuration, not persisted state.
    fn save_state(&self) -> Vec<u8> {
        self.inner.save_state()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.inner.load_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::test_support::random_updates;
    use olive_memsim::{FaultEvent, NullTracer};

    fn runtime(d: usize, shards: usize, seed: u8) -> ShardRuntime {
        let service = AttestationService::new([seed; 32]);
        let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [seed ^ 1; 32]);
        coordinator.attest(&service, b"sharded-test");
        ShardRuntime::provision(
            &service,
            &mut coordinator,
            b"sharded-test",
            [seed ^ 2; 32],
            96 << 20,
            d,
            shards,
        )
        .expect("provisioning succeeds in the simulation")
    }

    #[test]
    fn sharded_matches_monolithic_bitwise() {
        let (d, n, k) = (96, 24, 6);
        let updates = random_updates(n, k, d, 11);
        let mut mono = StreamingAggregator::new(AggregatorKind::Advanced, d, 1);
        for chunk in updates.chunks(5) {
            mono.ingest(chunk, &mut NullTracer);
        }
        let want = mono.finalize(&mut NullTracer);
        for shards in [1usize, 2, 4, 8] {
            let mut agg =
                ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, shards, 3));
            for chunk in updates.chunks(5) {
                agg.ingest(chunk, &mut NullTracer);
            }
            let (got, peaks, rt) =
                agg.finalize_with_peaks(&mut NullTracer).expect("fault-free round");
            assert_eq!(peaks.len(), shards);
            assert!(rt.live().iter().all(|&b| b == 0), "S={shards}: budgets must balance");
            let same = want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "S={shards} changed the round output");
        }
    }

    #[test]
    fn routing_partitions_every_real_cell() {
        let (d, n, k) = (64, 10, 4);
        let updates = random_updates(n, k, d, 5);
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, runtime(d, 4, 7));
        agg.ingest(&updates, &mut NullTracer);
        let routed = agg.rt.routed_cells();
        let real: u64 = updates
            .iter()
            .flat_map(|u| u.to_cells())
            .filter(|&c| cell_index(c) != DUMMY_INDEX)
            .count() as u64;
        assert_eq!(routed.iter().sum::<u64>(), real, "stripes partition the coordinates");
    }

    #[test]
    fn shard_budgets_track_stripe_share_plus_transport() {
        let (d, n, k) = (1000, 40, 8);
        let updates = random_updates(n, k, d, 9);
        let mut agg = ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, 4, 2));
        for chunk in updates.chunks(10) {
            agg.ingest(chunk, &mut NullTracer);
        }
        let (_, peaks, _) = agg.finalize_with_peaks(&mut NullTracer).expect("fault-free round");
        // Each stripe's share of the monolithic working set is ~1/4; the
        // broadcast transient adds the full chunk segment. Peaks must be
        // far below the monolithic footprint but nonzero.
        let mono = {
            let mut m = StreamingAggregator::new(AggregatorKind::Advanced, d, 1);
            m.ingest(&updates, &mut NullTracer);
            m.resident_bytes() + m.finalize_scratch_bytes()
        };
        for (i, &p) in peaks.iter().enumerate() {
            assert!(p > 0, "shard {i} must see charges");
            assert!(p < mono, "shard {i} peak {p} must undercut the monolithic {mono}");
        }
    }

    #[test]
    fn state_blob_is_shard_agnostic() {
        let (d, n, k) = (64, 12, 4);
        let updates = random_updates(n, k, d, 13);
        let mut sharded =
            ShardedAggregator::new(AggregatorKind::Grouped { h: 3 }, d, 1, runtime(d, 4, 4));
        sharded.ingest(&updates[..6], &mut NullTracer);
        let blob = sharded.save_state();
        // A monolithic aggregator resumes from the sharded blob.
        let mut mono = StreamingAggregator::new(AggregatorKind::Grouped { h: 3 }, d, 1);
        mono.load_state(&blob).expect("shard topology must not enter the blob");
        mono.ingest(&updates[6..], &mut NullTracer);
        let want = mono.finalize(&mut NullTracer);
        sharded.ingest(&updates[6..], &mut NullTracer);
        let got = sharded.finalize(&mut NullTracer);
        let same = want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "sharded and monolithic continuations must agree bitwise");
    }

    /// A faulted round — kills, tampers, drops, receipt corruption, a
    /// stale-seal rollback on restore — recovers to the *bitwise* same
    /// output as the fault-free round, and the routed-cell partition
    /// stays exact (the shard checkpoints carry it across relaunches).
    #[test]
    fn scripted_faults_recover_bitwise() {
        let (d, n, k) = (96, 24, 6);
        let updates = random_updates(n, k, d, 17);
        let run = |plan: FaultPlan| {
            let mut agg = ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, 4, 5));
            agg.set_fault_plan(plan);
            for chunk in updates.chunks(5) {
                agg.ingest(chunk, &mut NullTracer);
            }
            let routed = agg.rt.routed_cells();
            let (out, _, rt) = agg.finalize_with_peaks(&mut NullTracer).expect("recovers");
            (out, routed, rt.recovery_stats())
        };
        let (want, routed_clean, _) = run(FaultPlan::empty());
        let plan = FaultPlan::parse(
            "kill@2.1,stale@e.1,tamper@1.0,drop@3.2,tamper@e.3,receipt@e.0,kill@e.2",
        )
        .expect("well-formed script");
        let (got, routed_faulted, stats) = run(plan);
        assert_eq!(routed_faulted, routed_clean, "checkpoints must carry routed counts");
        let same = want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "recovered round must be bitwise the fault-free one");
        assert_eq!(stats.relaunches, 2, "both kills trigger failover");
        assert!(stats.retries >= 4, "tampers/drops/receipt/stale each cost a retry");
        assert!(stats.backoff_ms > 0, "retries accrue simulated backoff");
    }

    /// Satellite regression (the shard sibling of the coordinator's PR 4
    /// test): across relaunch → unseal → reseal, the shard's checkpoint
    /// counters stay strictly monotone — the pinned floor survives the
    /// enclave's death, so no incarnation can ever reuse a sealing nonce
    /// or accept a rolled-back blob.
    #[test]
    fn shard_seal_counter_continuity_across_relaunch() {
        let (d, n, k) = (64, 16, 4);
        let updates = random_updates(n, k, d, 19);
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, runtime(d, 2, 6));
        // Two kills of shard 0, the second served a rolled-back blob.
        agg.set_fault_plan(
            FaultPlan::parse("kill@2.0,kill@3.0,stale@e.0").expect("well-formed script"),
        );
        let mut floors_seen = vec![0u64];
        for chunk in updates.chunks(4) {
            agg.ingest(chunk, &mut NullTracer);
            let f = agg.rt.ckpt_counters()[0];
            assert!(
                f > *floors_seen.last().expect("seeded"),
                "checkpoint counter must advance strictly past {floors_seen:?}"
            );
            floors_seen.push(f);
        }
        let (_, _, rt) = agg.finalize_with_peaks(&mut NullTracer).expect("recovers");
        let stats = rt.recovery_stats();
        assert_eq!(stats.relaunches, 2);
        assert!(stats.retries >= 1, "the stale blob costs one recovery retry");
    }

    /// Exhausting the retry budget yields a structured error naming the
    /// shard, the attempts, and the terminal failure — never a panic.
    #[test]
    fn recovery_exhaustion_is_a_structured_error() {
        let (d, n, k) = (64, 8, 4);
        let updates = random_updates(n, k, d, 23);
        let stacked = vec![
            FaultEvent { kind: FaultKind::TunnelTamper, chunk: 0, shard: 1 };
            RetryPolicy::MAX_ATTEMPTS as usize
        ];
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, runtime(d, 2, 8));
        agg.set_fault_plan(FaultPlan::from_events(stacked));
        agg.ingest(&updates, &mut NullTracer);
        let err = agg.finalize_with_peaks(&mut NullTracer).expect_err("budget exhausted");
        assert_eq!(
            err,
            ShardError {
                shard: 1,
                attempts: RetryPolicy::MAX_ATTEMPTS,
                failure: ShardFailure::Tunnel(TunnelError::AuthFailure),
            }
        );
        // Drops exhaust to their own terminal failure.
        let dropped = vec![
            FaultEvent { kind: FaultKind::TunnelDrop, chunk: EGRESS_CHUNK, shard: 0 };
            RetryPolicy::MAX_ATTEMPTS as usize
        ];
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, runtime(d, 2, 9));
        agg.set_fault_plan(FaultPlan::from_events(dropped));
        agg.ingest(&updates, &mut NullTracer);
        let err = agg.finalize_with_peaks(&mut NullTracer).expect_err("egress exhausted");
        assert_eq!(err.failure, ShardFailure::Dropped);
        assert_eq!(err.shard, 0);
    }

    /// A mid-stream kill with checkpointing disabled is honest about the
    /// loss: structured `StateLost`, not silently wrong routed counts.
    #[test]
    fn kill_without_checkpoints_reports_state_lost() {
        let (d, n, k) = (64, 8, 4);
        let updates = random_updates(n, k, d, 29);
        let mut rt = runtime(d, 2, 10);
        rt.set_checkpointing(false);
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, rt);
        agg.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            kind: FaultKind::ShardKill,
            chunk: 1,
            shard: 0,
        }]));
        for chunk in updates.chunks(4) {
            agg.ingest(chunk, &mut NullTracer);
        }
        let err = agg.finalize_with_peaks(&mut NullTracer).expect_err("unrecoverable");
        assert_eq!(err.failure, ShardFailure::StateLost);
        // A kill before any chunk needs no checkpoint: fully recoverable.
        let mut rt = runtime(d, 2, 11);
        rt.set_checkpointing(false);
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, rt);
        agg.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            kind: FaultKind::ShardKill,
            chunk: 0,
            shard: 0,
        }]));
        for chunk in updates.chunks(4) {
            agg.ingest(chunk, &mut NullTracer);
        }
        assert!(agg.finalize_with_peaks(&mut NullTracer).is_ok());
    }
}
