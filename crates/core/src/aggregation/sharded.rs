//! Sharded multi-enclave aggregation: the `G`-region dimension split into
//! `S` contiguous stripes, one shard enclave per stripe, each under its
//! own [`olive_tee::EpcBudget`] — ROADMAP item 1, the structural answer to
//! the Figure 10 cliff (the monolithic O(nk) sort working set blowing the
//! 96 MiB EPC). TENNOR makes the same move for oblivious NN inference:
//! bound each enclave's oblivious working set by partitioning the
//! computation.
//!
//! ## Topology and invariants
//!
//! The **coordinator** enclave (the one clients attest and upload to)
//! remains the round's canonical compute site: every upload is opened,
//! every cell folded, and the adversary-visible trace emitted there,
//! exactly as in the monolithic path. Sharding adds a *memory and
//! transport* plane around that schedule:
//!
//! * every shard runs in its own enclave, mutually attested to the
//!   coordinator through a [`ShardTunnel`] (measurement pinned both ways);
//! * **ingress** broadcasts each staged chunk's cell segment to every
//!   shard over its tunnel. The segment shape is a pure function of the
//!   public chunk schedule (every upload pads to k cells), so the
//!   transport pattern is identical for all inputs — per-shard routed
//!   counts are data-dependent and therefore must never appear on the
//!   wire. Each shard scans the whole segment inside the enclave
//!   (fixed-shape routing) and keeps only its stripe's cells;
//! * **egress** seals each shard's stripe of the finalized delta through
//!   its tunnel; the shard answers with a receipt carrying the stripe
//!   hash, and the coordinator folds the shard-held stripes back together
//!   in ascending shard order — a deterministic fold that reproduces the
//!   canonical delta bit for bit;
//! * every dimension-proportional EPC charge of the canonical schedule is
//!   mirrored onto the shard budgets as its stripe-weighted share
//!   ([`ShardPlan::split_charge`], an exact telescoping split), plus the
//!   transport transients above. The coordinator's own accounting is
//!   untouched — it is what the round report and the bitwise invariants
//!   are defined over.
//!
//! Because the canonical schedule never changes, the round output,
//! signature and trace digest are bitwise identical at every shard count
//! — the repo's hard invariant — while the per-shard budgets model what
//! each enclave of the sharded deployment must hold.

use olive_fl::SparseGradient;
use olive_memsim::{ParallelTracer, ShardPlan, StateError};
use olive_tee::{
    attestation::digest, AttestationService, Enclave, EnclaveConfig, ShardTunnel, TunnelRole,
};

use crate::aggregation::{Aggregator, AggregatorKind, StreamingAggregator};
use crate::cell::{cell_index, concat_cells, DUMMY_INDEX};

/// Code identity every shard enclave must measure to (what the
/// coordinator pins when it verifies a shard's quote, and vice versa the
/// shards pin the coordinator's measurement).
pub const SHARD_CODE_IDENTITY: &str = "olive-shard-aggregator-v1";

/// Attestation user data binding shard quotes to the shard plane (the
/// coordinator keeps its own client-facing context: re-attesting it under
/// a different context would change the transcript its session keys are
/// bound to).
const SHARD_ATTEST_CONTEXT: &[u8] = b"olive-shard-plane-v1";

/// Tunnel message kinds.
const MSG_CELLS: u8 = 1;
const MSG_STRIPE: u8 = 2;
const MSG_RECEIPT: u8 = 3;

/// One shard enclave plus both endpoints of its coordinator tunnel (the
/// simulation holds the whole deployment in one process, so the pair
/// lives side by side; a real deployment holds one end per machine).
struct ShardState {
    enclave: Enclave,
    coord_end: ShardTunnel,
    shard_end: ShardTunnel,
    /// Cells routed into this shard's stripe so far this round (learned
    /// inside the shard enclave by the fixed-shape scan; reported back in
    /// the egress receipt, never on the ingress wire).
    routed_cells: u64,
}

/// The provisioned shard plane: `S` shard enclaves, their tunnels, and
/// the stripe plan that maps coordinates and charges onto them.
pub struct ShardRuntime {
    plan: ShardPlan,
    shards: Vec<ShardState>,
}

impl ShardRuntime {
    /// Launches and mutually attests `shards` shard enclaves against the
    /// (already client-attested) coordinator.
    ///
    /// The coordinator re-attests under its *existing* `user_data`
    /// context so its transcript — which every client session key is
    /// bound to — is unchanged; shard quotes use the shard-plane context.
    /// Both directions of every tunnel pin the peer's measurement, so a
    /// shard enclave only ever accepts cells from the verified
    /// coordinator and the coordinator only accepts receipts from
    /// verified shards.
    pub fn provision(
        service: &AttestationService,
        coordinator: &mut Enclave,
        coordinator_context: &[u8],
        seed_bytes: [u8; 32],
        epc_bytes: u64,
        d: usize,
        shards: usize,
    ) -> Self {
        Self::provision_with_plan(
            service,
            coordinator,
            coordinator_context,
            seed_bytes,
            epc_bytes,
            ShardPlan::even(d, shards),
        )
    }

    /// [`ShardRuntime::provision`] with an explicit stripe plan (uneven
    /// boundaries included) — boundary placement is public topology and
    /// must never change the round output or trace, which the proptest
    /// suite pins through this entry point.
    pub fn provision_with_plan(
        service: &AttestationService,
        coordinator: &mut Enclave,
        coordinator_context: &[u8],
        seed_bytes: [u8; 32],
        epc_bytes: u64,
        plan: ShardPlan,
    ) -> Self {
        let shards = plan.shards();
        let coord_quote = coordinator.attest(service, coordinator_context);
        let coord_measurement = coordinator.measurement();
        let shard_cfg = EnclaveConfig { code_identity: SHARD_CODE_IDENTITY.to_string(), epc_bytes };
        let states = (0..shards)
            .map(|i| {
                let mut seed = seed_bytes;
                seed[16..20].copy_from_slice(&(i as u32).to_be_bytes());
                seed[20] ^= 0x5D;
                let mut enclave = Enclave::launch(&shard_cfg, seed);
                let shard_quote = enclave.attest(service, SHARD_ATTEST_CONTEXT);
                let coord_end = ShardTunnel::establish(
                    TunnelRole::Coordinator,
                    coordinator,
                    service.public_key(),
                    &enclave.measurement(),
                    &shard_quote,
                    i as u32,
                )
                .expect("shard quote is genuine in the simulation");
                let shard_end = ShardTunnel::establish(
                    TunnelRole::Shard,
                    &enclave,
                    service.public_key(),
                    &coord_measurement,
                    &coord_quote,
                    i as u32,
                )
                .expect("coordinator quote is genuine in the simulation");
                ShardState { enclave, coord_end, shard_end, routed_cells: 0 }
            })
            .collect();
        ShardRuntime { plan, shards: states }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The stripe plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Opens a fresh per-round accounting epoch on every shard budget
    /// (mirrors [`Enclave::begin_round`]'s epoch on the coordinator).
    pub fn begin_round(&mut self) {
        for sh in &mut self.shards {
            sh.enclave.epc.begin_epoch();
            sh.routed_cells = 0;
        }
    }

    /// Mirrors a coordinator allocation of `bytes` onto the shard
    /// budgets, each charged its stripe-weighted share.
    pub fn alloc_split(&mut self, bytes: u64) {
        for (sh, part) in self.shards.iter_mut().zip(self.plan.split_charge(bytes)) {
            sh.enclave.epc.alloc(part);
        }
    }

    /// Mirrors a coordinator release of `bytes` (the split is
    /// deterministic, so alloc/free always balance exactly).
    pub fn free_split(&mut self, bytes: u64) {
        for (sh, part) in self.shards.iter_mut().zip(self.plan.split_charge(bytes)) {
            sh.enclave.epc.free(part);
        }
    }

    /// Broadcasts one staged chunk's cell segment to every shard through
    /// its tunnel. The segment has the same public shape for every shard
    /// and every input of that shape; each shard scans all of it inside
    /// the enclave and keeps its stripe's cells, so per-shard counts stay
    /// enclave-private. The decrypted segment is a transient EPC charge
    /// on each shard for the duration of the scan.
    pub fn ingress_chunk(&mut self, staged: &[SparseGradient]) {
        let cells = concat_cells(staged);
        let mut payload = Vec::with_capacity(cells.len() * 8);
        for c in &cells {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        for (i, sh) in self.shards.iter_mut().enumerate() {
            let msg = sh.coord_end.seal(MSG_CELLS, &payload);
            let transient = payload.len() as u64;
            sh.enclave.epc.alloc(transient);
            let plain = sh.shard_end.open(&msg).expect("own tunnel frames authenticate");
            let range = self.plan.range(i);
            let mut routed = 0u64;
            for cell_bytes in plain.chunks_exact(8) {
                let cell = u64::from_le_bytes(cell_bytes.try_into().expect("8-byte cell"));
                let idx = cell_index(cell);
                // Branch-free keep decision: every shard touches every
                // cell of the segment regardless of ownership.
                let keep = (idx != DUMMY_INDEX) & range.contains(&(idx as usize));
                routed += u64::from(keep);
            }
            sh.routed_cells += routed;
            sh.enclave.epc.free(transient);
        }
    }

    /// Distributes the finalized delta stripewise to the shards and folds
    /// the shard-held stripes back in ascending shard order — the
    /// deterministic merge. Each shard's receipt carries the hash of the
    /// stripe it holds (plus its routed-cell count); the coordinator
    /// verifies every receipt against the stripe it sealed, so the
    /// reassembled delta is bitwise the canonical one by construction.
    ///
    /// # Panics
    /// If a receipt's stripe hash disagrees with what the coordinator
    /// sent — transport corruption, impossible in the in-process
    /// simulation short of a bug.
    pub fn egress_round(&mut self, delta: &[f32]) -> Vec<f32> {
        assert_eq!(delta.len(), self.plan.d(), "delta dimension must match the plan");
        let mut out = Vec::with_capacity(delta.len());
        for (i, sh) in self.shards.iter_mut().enumerate() {
            let stripe = &delta[self.plan.range(i)];
            let mut bytes = Vec::with_capacity(stripe.len() * 4);
            for v in stripe {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            let down = sh.coord_end.seal(MSG_STRIPE, &bytes);
            let transient = bytes.len() as u64;
            sh.enclave.epc.alloc(transient);
            let held = sh.shard_end.open(&down).expect("own tunnel frames authenticate");
            let mut receipt = digest(&held).to_vec();
            receipt.extend_from_slice(&sh.routed_cells.to_be_bytes());
            let up = sh.shard_end.seal(MSG_RECEIPT, &receipt);
            let opened = sh.coord_end.open(&up).expect("own tunnel frames authenticate");
            assert_eq!(
                opened[..32],
                digest(&bytes)[..],
                "shard {i} receipt hash must match the sealed stripe"
            );
            for v in held.chunks_exact(4) {
                out.push(f32::from_bits(u32::from_le_bytes(v.try_into().expect("4-byte f32"))));
            }
            sh.enclave.epc.free(transient);
            sh.routed_cells = 0;
        }
        out
    }

    /// Per-shard EPC peaks (bytes) for the current accounting epoch, in
    /// shard order.
    pub fn peaks(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.enclave.epc.peak).collect()
    }

    /// Per-shard live EPC bytes (zero after a balanced round).
    pub fn live(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.enclave.epc.live).collect()
    }

    /// True if any shard's epoch peak exceeds its own EPC limit — the
    /// sharded deployment's paging predicate.
    pub fn any_would_page(&self) -> bool {
        self.shards.iter().any(|sh| sh.enclave.epc.would_page())
    }

    /// Cells each shard routed into its stripe so far this round (test
    /// hook; enclave-private in a deployment, reported via receipts).
    pub fn routed_cells(&self) -> Vec<u64> {
        self.shards.iter().map(|sh| sh.routed_cells).collect()
    }
}

/// A [`StreamingAggregator`] wrapped in the shard plane: same canonical
/// compute and trace, plus tunnel transport and per-shard EPC accounting
/// on every chunk — the [`Aggregator`]-seam face of sharding. The round
/// driver (`OliveSystem`) threads the same [`ShardRuntime`] machinery
/// through its own richer charge schedule; this wrapper is the
/// self-contained form for benches and equivalence tests.
pub struct ShardedAggregator {
    inner: StreamingAggregator,
    rt: ShardRuntime,
    resident: u64,
}

impl ShardedAggregator {
    /// Wraps a fresh aggregator of `kind` over an already provisioned
    /// shard runtime, charging the initial resident state to the shard
    /// budgets.
    pub fn new(kind: AggregatorKind, d: usize, threads: usize, mut rt: ShardRuntime) -> Self {
        assert_eq!(rt.plan().d(), d, "shard plan dimension must match the aggregator");
        let inner = StreamingAggregator::new(kind, d, threads);
        let resident = inner.resident_bytes();
        rt.begin_round();
        rt.alloc_split(resident);
        ShardedAggregator { inner, rt, resident }
    }

    /// [`Aggregator::finalize`] that also hands back the per-shard EPC
    /// peaks (and the runtime, for reuse across rounds).
    pub fn finalize_with_peaks<TR: ParallelTracer>(
        self,
        tr: &mut TR,
    ) -> (Vec<f32>, Vec<u64>, ShardRuntime) {
        let ShardedAggregator { inner, mut rt, resident } = self;
        let fin_scratch = inner.finalize_scratch_bytes();
        rt.alloc_split(fin_scratch);
        let delta = inner.finalize(tr);
        let out = rt.egress_round(&delta);
        rt.free_split(fin_scratch);
        rt.free_split(resident);
        let peaks = rt.peaks();
        (out, peaks, rt)
    }
}

impl Aggregator for ShardedAggregator {
    fn ingest<TR: ParallelTracer>(&mut self, chunk: &[SparseGradient], tr: &mut TR) {
        let k = chunk.iter().map(|u| u.k()).max().unwrap_or(0);
        let scratch = self.inner.ingest_scratch_bytes(chunk.len(), k);
        self.rt.alloc_split(scratch);
        self.rt.ingress_chunk(chunk);
        self.inner.ingest(chunk, tr);
        self.rt.free_split(scratch);
        let now = self.inner.resident_bytes();
        self.rt.free_split(self.resident);
        self.rt.alloc_split(now);
        self.resident = now;
    }

    fn finalize<TR: ParallelTracer>(self, tr: &mut TR) -> Vec<f32> {
        self.finalize_with_peaks(tr).0
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn ingest_scratch_bytes(&self, chunk_clients: usize, k: usize) -> u64 {
        self.inner.ingest_scratch_bytes(chunk_clients, k)
    }

    fn finalize_scratch_bytes(&self) -> u64 {
        self.inner.finalize_scratch_bytes()
    }

    // Checkpoint blobs stay shard-agnostic: the canonical aggregator
    // state is the round's whole restorable truth, so a round sealed at
    // S=4 restores at S=1 (and vice versa) — shard topology is runtime
    // configuration, not persisted state.
    fn save_state(&self) -> Vec<u8> {
        self.inner.save_state()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.inner.load_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::test_support::random_updates;
    use olive_memsim::NullTracer;

    fn runtime(d: usize, shards: usize, seed: u8) -> ShardRuntime {
        let service = AttestationService::new([seed; 32]);
        let mut coordinator = Enclave::launch(&EnclaveConfig::default(), [seed ^ 1; 32]);
        coordinator.attest(&service, b"sharded-test");
        ShardRuntime::provision(
            &service,
            &mut coordinator,
            b"sharded-test",
            [seed ^ 2; 32],
            96 << 20,
            d,
            shards,
        )
    }

    #[test]
    fn sharded_matches_monolithic_bitwise() {
        let (d, n, k) = (96, 24, 6);
        let updates = random_updates(n, k, d, 11);
        let mut mono = StreamingAggregator::new(AggregatorKind::Advanced, d, 1);
        for chunk in updates.chunks(5) {
            mono.ingest(chunk, &mut NullTracer);
        }
        let want = mono.finalize(&mut NullTracer);
        for shards in [1usize, 2, 4, 8] {
            let mut agg =
                ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, shards, 3));
            for chunk in updates.chunks(5) {
                agg.ingest(chunk, &mut NullTracer);
            }
            let (got, peaks, rt) = agg.finalize_with_peaks(&mut NullTracer);
            assert_eq!(peaks.len(), shards);
            assert!(rt.live().iter().all(|&b| b == 0), "S={shards}: budgets must balance");
            let same = want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "S={shards} changed the round output");
        }
    }

    #[test]
    fn routing_partitions_every_real_cell() {
        let (d, n, k) = (64, 10, 4);
        let updates = random_updates(n, k, d, 5);
        let mut agg = ShardedAggregator::new(AggregatorKind::NonOblivious, d, 1, runtime(d, 4, 7));
        agg.ingest(&updates, &mut NullTracer);
        let routed = agg.rt.routed_cells();
        let real: u64 = updates
            .iter()
            .flat_map(|u| u.to_cells())
            .filter(|&c| cell_index(c) != DUMMY_INDEX)
            .count() as u64;
        assert_eq!(routed.iter().sum::<u64>(), real, "stripes partition the coordinates");
    }

    #[test]
    fn shard_budgets_track_stripe_share_plus_transport() {
        let (d, n, k) = (1000, 40, 8);
        let updates = random_updates(n, k, d, 9);
        let mut agg = ShardedAggregator::new(AggregatorKind::Advanced, d, 1, runtime(d, 4, 2));
        for chunk in updates.chunks(10) {
            agg.ingest(chunk, &mut NullTracer);
        }
        let (_, peaks, _) = agg.finalize_with_peaks(&mut NullTracer);
        // Each stripe's share of the monolithic working set is ~1/4; the
        // broadcast transient adds the full chunk segment. Peaks must be
        // far below the monolithic footprint but nonzero.
        let mono = {
            let mut m = StreamingAggregator::new(AggregatorKind::Advanced, d, 1);
            m.ingest(&updates, &mut NullTracer);
            m.resident_bytes() + m.finalize_scratch_bytes()
        };
        for (i, &p) in peaks.iter().enumerate() {
            assert!(p > 0, "shard {i} must see charges");
            assert!(p < mono, "shard {i} peak {p} must undercut the monolithic {mono}");
        }
    }

    #[test]
    fn state_blob_is_shard_agnostic() {
        let (d, n, k) = (64, 12, 4);
        let updates = random_updates(n, k, d, 13);
        let mut sharded =
            ShardedAggregator::new(AggregatorKind::Grouped { h: 3 }, d, 1, runtime(d, 4, 4));
        sharded.ingest(&updates[..6], &mut NullTracer);
        let blob = sharded.save_state();
        // A monolithic aggregator resumes from the sharded blob.
        let mut mono = StreamingAggregator::new(AggregatorKind::Grouped { h: 3 }, d, 1);
        mono.load_state(&blob).expect("shard topology must not enter the blob");
        mono.ingest(&updates[6..], &mut NullTracer);
        let want = mono.finalize(&mut NullTracer);
        sharded.ingest(&updates[6..], &mut NullTracer);
        let got = sharded.finalize(&mut NullTracer);
        let same = want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "sharded and monolithic continuations must agree bitwise");
    }
}
