//! Region-id conventions for the adversary-visible buffers.
//!
//! The attack's trace parser relies on these being stable: the observer
//! knows which buffer is which (base addresses are public), so region ids
//! are part of the adversary's view.

/// The concatenated client-gradient buffer `G = G₁ ∥ … ∥ Gₙ`.
pub const REGION_G: u32 = 1;

/// The dense aggregated-gradient buffer `G*`.
pub const REGION_G_STAR: u32 = 2;

/// The Advanced algorithm's sort/fold working vector.
pub const REGION_SCRATCH: u32 = 3;

/// Base region for the PathORAM comparator (tree/stash/posmap stack up
/// from here).
pub const REGION_ORAM_BASE: u32 = 16;
