//! The 8-byte gradient cell: `(index: u32) ∥ (value: f32)` packed in a u64.
//!
//! This is the unit of Section 5.5's memory-size arithmetic ("each cell of
//! gradient is 8 bytes — 32-bit unsigned integer for index and 32-bit
//! floating point for value") and the element type the oblivious sort
//! moves with single-word `o_swap`s. Packing the index into the high half
//! makes "sort by index" equal "sort by the raw u64" (value bits only
//! break ties between equal indices, which aggregation is insensitive to).

/// The dummy index `M₀` written by oblivious folding (Algorithm 4 line 12):
/// a "very large integer" that sorts behind every real index.
pub const DUMMY_INDEX: u32 = u32::MAX;

/// Packs `(index, value)` into a cell.
#[inline(always)]
pub fn make_cell(index: u32, value: f32) -> u64 {
    ((index as u64) << 32) | value.to_bits() as u64
}

/// The index half.
#[inline(always)]
pub fn cell_index(cell: u64) -> u32 {
    (cell >> 32) as u32
}

/// The value half.
#[inline(always)]
pub fn cell_value(cell: u64) -> f32 {
    f32::from_bits(cell as u32)
}

/// A dummy cell (`M₀`, 0.0).
#[inline(always)]
pub fn dummy_cell() -> u64 {
    make_cell(DUMMY_INDEX, 0.0)
}

/// Flattens sparse updates into the concatenated cell buffer `G`
/// (Algorithm 3/4 input: `g = g₁ ∥ … ∥ gₙ`, nk cells).
pub fn concat_cells(updates: &[olive_fl::SparseGradient]) -> Vec<u64> {
    let total: usize = updates.iter().map(|u| u.k()).sum();
    let mut out = Vec::with_capacity(total);
    for u in updates {
        for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
            out.push(make_cell(i, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let c = make_cell(12345, -2.5);
        assert_eq!(cell_index(c), 12345);
        assert_eq!(cell_value(c), -2.5);
    }

    #[test]
    fn index_major_ordering() {
        // Sorting raw u64 cells orders by index first.
        let lo = make_cell(3, 1.0e30);
        let hi = make_cell(4, -1.0e-30);
        assert!(lo < hi);
        assert!(make_cell(5, 0.0) < dummy_cell());
    }

    #[test]
    fn dummy_sorts_last() {
        let mut cells = [dummy_cell(), make_cell(0, 1.0), make_cell(u32::MAX - 1, 1.0)];
        cells.sort_unstable();
        assert_eq!(cell_index(cells[2]), DUMMY_INDEX);
    }

    #[test]
    fn concat_preserves_order() {
        use olive_fl::SparseGradient;
        let a = SparseGradient { dense_dim: 8, indices: vec![1, 3], values: vec![0.5, 1.5] };
        let b = SparseGradient { dense_dim: 8, indices: vec![0], values: vec![-1.0] };
        let cells = concat_cells(&[a, b]);
        assert_eq!(cells.len(), 3);
        assert_eq!(cell_index(cells[0]), 1);
        assert_eq!(cell_value(cells[2]), -1.0);
    }
}
