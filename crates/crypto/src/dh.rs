//! Simulation-grade Diffie–Hellman and Schnorr-style signatures.
//!
//! **These are NOT secure primitives.** The group is the multiplicative group
//! of Z_p with the 61-bit Mersenne prime p = 2^61 − 1, small enough that a
//! laptop breaks it. They exist to exercise the *protocol shape* of remote
//! attestation (Section 2.2 of the paper): the enclave proves its identity
//! with a platform-signed quote and completes an authenticated key exchange,
//! exactly as the Intel EPID + IAS flow does. Production deployments would
//! use X25519 and Ed25519; that substitution is recorded in `DESIGN.md` §1.
//!
//! Exponents are sampled and all group arithmetic is done in `u128`, so no
//! bignum dependency is required.

use crate::sha256::sha256;

/// The group modulus: the Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;
/// Group generator. 2^61−1 is prime so Z_p* is cyclic of order p−1; 3
/// generates a large subgroup which is all we need for the simulation.
pub const G: u64 = 3;
/// The exponent modulus (group order), p − 1.
pub const Q: u64 = P - 1;

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Modular exponentiation `base^exp mod P`.
pub fn pow_mod(base: u64, mut exp: u64) -> u64 {
    let mut base = base % P;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// A Diffie–Hellman key pair in the simulation group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DhKeyPair {
    /// Secret exponent in `[1, Q)`.
    pub secret: u64,
    /// `G^secret mod P`.
    pub public: u64,
}

impl DhKeyPair {
    /// Derives a key pair deterministically from 32 bytes of entropy.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let h = sha256(seed);
        let mut x = u64::from_be_bytes(h[..8].try_into().unwrap()) % (Q - 1) + 1;
        if x == 0 {
            x = 1;
        }
        DhKeyPair { secret: x, public: pow_mod(G, x) }
    }

    /// Computes the shared group element with a peer's public value.
    pub fn shared_secret(&self, peer_public: u64) -> [u8; 32] {
        let s = pow_mod(peer_public, self.secret);
        // Hash the group element so the output looks like uniform key
        // material regardless of group structure.
        sha256(&s.to_be_bytes())
    }
}

/// A Schnorr-style signature in the simulation group.
///
/// `sign`: pick nonce k, r = G^k, e = H(r ∥ pk ∥ m) mod Q, s = k + e·x mod Q.
/// `verify`: G^s == r · pk^e.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Commitment `r = G^k`.
    pub r: u64,
    /// Response `s = k + e·x mod Q`.
    pub s: u64,
}

fn challenge(r: u64, public: u64, msg: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(16 + msg.len());
    buf.extend_from_slice(&r.to_be_bytes());
    buf.extend_from_slice(&public.to_be_bytes());
    buf.extend_from_slice(msg);
    let h = sha256(&buf);
    u64::from_be_bytes(h[..8].try_into().unwrap()) % Q
}

/// Signs `msg` with secret key `keypair.secret`, deriving the nonce
/// deterministically from the key and message (RFC 6979 style, so no RNG is
/// needed and nonce reuse across distinct messages is impossible).
pub fn sign(keypair: &DhKeyPair, msg: &[u8]) -> Signature {
    let mut nonce_input = Vec::with_capacity(8 + msg.len());
    nonce_input.extend_from_slice(&keypair.secret.to_be_bytes());
    nonce_input.extend_from_slice(msg);
    let nh = sha256(&nonce_input);
    let k = u64::from_be_bytes(nh[..8].try_into().unwrap()) % (Q - 1) + 1;
    let r = pow_mod(G, k);
    let e = challenge(r, keypair.public, msg);
    // s = k + e*x mod Q, with 128-bit intermediates.
    let s = ((k as u128 + (e as u128 * keypair.secret as u128) % Q as u128) % Q as u128) as u64;
    Signature { r, s }
}

/// Verifies a signature against a public key.
pub fn verify(public: u64, msg: &[u8], sig: &Signature) -> bool {
    if sig.r == 0 || sig.r >= P || public == 0 || public >= P {
        return false;
    }
    let e = challenge(sig.r, public, msg);
    let lhs = pow_mod(G, sig.s);
    let rhs = mul_mod(sig.r, pow_mod(public, e));
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne_61() {
        assert_eq!(P, 2305843009213693951);
    }

    #[test]
    fn dh_agreement() {
        let a = DhKeyPair::from_seed(&[1u8; 32]);
        let b = DhKeyPair::from_seed(&[2u8; 32]);
        assert_ne!(a.public, b.public);
        assert_eq!(a.shared_secret(b.public), b.shared_secret(a.public));
    }

    #[test]
    fn dh_distinct_peers_distinct_secrets() {
        let a = DhKeyPair::from_seed(&[1u8; 32]);
        let b = DhKeyPair::from_seed(&[2u8; 32]);
        let c = DhKeyPair::from_seed(&[3u8; 32]);
        assert_ne!(a.shared_secret(b.public), a.shared_secret(c.public));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let sig = sign(&kp, b"enclave measurement report");
        assert!(verify(kp.public, b"enclave measurement report", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let sig = sign(&kp, b"report A");
        assert!(!verify(kp.public, b"report B", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let other = DhKeyPair::from_seed(&[8u8; 32]);
        let sig = sign(&kp, b"report");
        assert!(!verify(other.public, b"report", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let mut sig = sign(&kp, b"report");
        sig.s ^= 1;
        assert!(!verify(kp.public, b"report", &sig));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        for a in [2u64, 3, 5, 12345678901] {
            assert_eq!(pow_mod(a, P - 1), 1, "a = {a}");
        }
    }

    #[test]
    fn signatures_deterministic() {
        let kp = DhKeyPair::from_seed(&[9u8; 32]);
        assert_eq!(sign(&kp, b"m"), sign(&kp, b"m"));
        assert_ne!(sign(&kp, b"m"), sign(&kp, b"n"));
    }
}
