//! Constant-time helpers.
//!
//! Branching on secret data inside an enclave is exactly the class of leak
//! the paper defends against (Section 2.3), so even the host-side crypto
//! avoids early-exit comparisons.

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately on length mismatch (lengths are public), and
/// otherwise examines every byte regardless of where the first difference
/// occurs.
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map 0 → true without a data-dependent branch on the accumulated bits.
    usize::from(diff) == 0
}

/// Constant-time conditional byte-slice select: copies `on_true` into `out`
/// when `flag` is true, `on_false` otherwise, always touching every byte of
/// all three slices.
pub fn ct_select(flag: bool, on_true: &[u8], on_false: &[u8], out: &mut [u8]) {
    debug_assert_eq!(on_true.len(), on_false.len());
    debug_assert_eq!(on_true.len(), out.len());
    let mask = (flag as u8).wrapping_neg(); // 0xFF or 0x00
    for i in 0..out.len() {
        out[i] = (on_true[i] & mask) | (on_false[i] & !mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"abc", b"abcd"));
    }

    #[test]
    fn select_both_ways() {
        let mut out = [0u8; 4];
        ct_select(true, &[1, 2, 3, 4], &[5, 6, 7, 8], &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        ct_select(false, &[1, 2, 3, 4], &[5, 6, 7, 8], &mut out);
        assert_eq!(out, [5, 6, 7, 8]);
    }
}
