//! # olive-crypto
//!
//! Self-contained cryptographic substrate for the Olive reproduction.
//!
//! The paper (Section 2.2, Algorithm 1) requires: AES-GCM authenticated
//! encryption of gradients on the secure channel established by remote
//! attestation, a hash for enclave measurements, and a key-exchange +
//! signature mechanism standing in for Intel EPID / the Intel Attestation
//! Service. No external crypto crates are in the allowed dependency set, so
//! everything here is implemented from scratch:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (tested against NIST vectors),
//! * [`hmac`] — RFC 2104 HMAC-SHA256 (tested against RFC 4231 vectors),
//! * [`hkdf`] — RFC 5869 HKDF-SHA256 (tested against RFC 5869 vectors),
//! * [`aes`] — FIPS 197 AES-128/192/256 block cipher,
//! * [`gcm`] — NIST SP 800-38D AES-GCM AEAD (tested against NIST vectors),
//! * [`ct`] — constant-time byte comparison,
//! * [`dh`] — **simulation-grade** finite-field Diffie–Hellman and a
//!   Schnorr-style signature used to model EPID quotes. The group is a
//!   61-bit Mersenne prime field: adequate to exercise the attestation
//!   protocol shape, *cryptographically worthless*. Production code would use
//!   X25519/Ed25519; see `DESIGN.md` §1 for the substitution rationale.
//!
//! The primitives used on the *data path* (SHA-256, AES-GCM) are real,
//! full-strength implementations; only the asymmetric pieces are simulation
//! stand-ins.
//!
//! Since PR 4 the symmetric primitives run on a runtime-dispatched
//! [`engine`]: hardware ISA extensions (AES-NI/VAES, PCLMULQDQ, SHA-NI),
//! a bitsliced constant-time software fallback, or the original
//! lookup-table code kept as the differential reference
//! (`OLIVE_CRYPTO=hw|ct|table`). Unsafe code is denied crate-wide and
//! allowed only in the intrinsics-backed `engine::hw` module.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod dh;
pub mod engine;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod sha256;

pub use aes::Aes;
pub use engine::{available_backends, crypto_backend, CryptoBackend, CryptoEngine};
pub use gcm::{open, seal, AesGcm, GcmError, NONCE_LEN, TAG_LEN};
pub use hkdf::{hkdf_expand, hkdf_extract, Hkdf};
pub use hmac::HmacSha256;
pub use sha256::{sha256, Sha256};

/// Errors produced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD tag verification failed (ciphertext corrupt or wrong key).
    BadTag,
    /// An input had an unsupported length (e.g. AES key that is not
    /// 16/24/32 bytes).
    BadLength,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
            CryptoError::BadLength => write!(f, "unsupported input length"),
        }
    }
}

impl std::error::Error for CryptoError {}
