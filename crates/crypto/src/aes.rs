//! FIPS 197 AES block cipher (128/192/256-bit keys).
//!
//! Only the forward and inverse ciphers on single 16-byte blocks live here;
//! the GCM mode in [`crate::gcm`] builds CTR encryption and GHASH on top.
//!
//! The S-box and inverse S-box are derived at compile time from the GF(2^8)
//! field definition rather than transcribed, which removes a whole class of
//! copy-paste errors; the FIPS 197 appendix vectors in the tests pin the
//! result.

use crate::CryptoError;

const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
const fn gmul(a: u8, b: u8) -> u8 {
    let mut res = 0u8;
    let mut a = a;
    let mut b = b;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            res ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    res
}

/// Multiplicative inverse in GF(2^8): a^254 (0 maps to 0).
const fn ginv(a: u8) -> u8 {
    // a^254 via square-and-multiply; exponent 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

const fn sbox_entry(a: u8) -> u8 {
    let x = ginv(a);
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = sbox_entry(i as u8);
        i += 1;
    }
    t
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[sbox[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// The AES substitution box, generated at compile time.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse substitution box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Maximum number of round keys (AES-256: 14 rounds + initial).
pub(crate) const MAX_ROUND_KEYS: usize = 15;

/// FIPS 197 key expansion, shared by every backend: the schedule differs
/// only in how `SubWord` is computed (S-box lookup here, bitsliced
/// circuit in `engine::ct`, `AESENCLAST` in `engine::hw`), so the
/// Nk/rounds bookkeeping and RCON wiring live exactly once. Returns the
/// round keys and the round count for a 16/24/32-byte `key`.
pub(crate) fn expand_key(
    key: &[u8],
    sub_word: fn([u8; 4]) -> [u8; 4],
) -> Result<([[u8; 16]; MAX_ROUND_KEYS], usize), CryptoError> {
    let (nk, rounds) = match key.len() {
        16 => (4usize, 10usize),
        24 => (6, 12),
        32 => (8, 14),
        _ => return Err(CryptoError::BadLength),
    };
    let nwords = 4 * (rounds + 1);
    let mut w = [[0u8; 4]; 4 * MAX_ROUND_KEYS];
    for i in 0..nk {
        w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in nk..nwords {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            temp = sub_word(temp);
            temp[0] ^= RCON[i / nk];
        } else if nk > 6 && i % nk == 4 {
            temp = sub_word(temp);
        }
        for j in 0..4 {
            w[i][j] = w[i - nk][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; MAX_ROUND_KEYS];
    for r in 0..=rounds {
        for c in 0..4 {
            round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    Ok((round_keys, rounds))
}

/// `SubWord` via the lookup table (the table backend's primitive).
fn sub_word_table(w: [u8; 4]) -> [u8; 4] {
    w.map(|b| SBOX[b as usize])
}

/// An expanded AES key. Supports 128-, 192- and 256-bit keys.
///
/// The `Debug` impl intentionally omits key material.
#[derive(Clone)]
pub struct Aes {
    round_keys: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
}

impl core::fmt::Debug for Aes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Aes").field("rounds", &self.rounds).finish_non_exhaustive()
    }
}

impl Aes {
    /// Expands `key` (16, 24 or 32 bytes). Returns
    /// [`CryptoError::BadLength`] for any other length.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let (round_keys, rounds) = expand_key(key, sub_word_table)?;
        Ok(Aes { round_keys, rounds })
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Returns the ciphertext of `block` without mutating the input.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut b = block;
        self.encrypt_block(&mut b);
        b
    }
}

// The state is column-major: state[row][col] = block[4*col + row].

fn add_round_key(block: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        block[i] ^= rk[i];
    }
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(block: &mut [u8; 16]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * col + row] = orig[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; 16]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * ((col + row) % 4) + row] = orig[4 * col + row];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [block[4 * col], block[4 * col + 1], block[4 * col + 2], block[4 * col + 3]];
        block[4 * col] = gmul(c[0], 2) ^ gmul(c[1], 3) ^ c[2] ^ c[3];
        block[4 * col + 1] = c[0] ^ gmul(c[1], 2) ^ gmul(c[2], 3) ^ c[3];
        block[4 * col + 2] = c[0] ^ c[1] ^ gmul(c[2], 2) ^ gmul(c[3], 3);
        block[4 * col + 3] = gmul(c[0], 3) ^ c[1] ^ c[2] ^ gmul(c[3], 2);
    }
}

fn inv_mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [block[4 * col], block[4 * col + 1], block[4 * col + 2], block[4 * col + 3]];
        block[4 * col] = gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9);
        block[4 * col + 1] = gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13);
        block[4 * col + 2] = gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11);
        block[4 * col + 3] = gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_known_entries() {
        // FIPS 197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    // FIPS 197 Appendix C example vectors.
    #[test]
    fn fips197_aes128() {
        let aes = Aes::new(&from_hex("000102030405060708090a0b0c0d0e0f")).unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192() {
        let aes = Aes::new(&from_hex("000102030405060708090a0b0c0d0e0f1011121314151617")).unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256() {
        let aes =
            Aes::new(&from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"))
                .unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn aes128_nist_kat() {
        // NIST SP 800-38A F.1.1 ECB-AES128 first block.
        let aes = Aes::new(&from_hex("2b7e151628aed2a6abf7158809cf4f3c")).unwrap();
        let mut block: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn bad_key_length() {
        assert_eq!(Aes::new(&[0u8; 15]).unwrap_err(), CryptoError::BadLength);
        assert_eq!(Aes::new(&[0u8; 33]).unwrap_err(), CryptoError::BadLength);
    }

    #[test]
    fn roundtrip_random_blocks() {
        let aes = Aes::new(&[7u8; 32]).unwrap();
        let mut state = 0x12345678u64;
        for _ in 0..100 {
            let mut block = [0u8; 16];
            for b in &mut block {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 32) as u8;
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }
}
