//! NIST SP 800-38D AES-GCM authenticated encryption.
//!
//! This is the AEAD used on the client→enclave secure channel (Algorithm 1
//! lines 8, 11, 22 of the paper: gradients are encrypted under the per-user
//! shared key established by remote attestation, and the enclave verifies
//! and decrypts them inside the trust boundary).

use crate::aes::Aes;
use crate::ct::ct_eq;
use crate::CryptoError;

/// GCM nonce length in bytes (the 96-bit fast path).
pub const NONCE_LEN: usize = 12;
/// GCM authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// The GHASH reduction constant R = 11100001 || 0^120.
const R: u128 = 0xE100_0000_0000_0000_0000_0000_0000_0000;

/// Multiplication in GF(2^128) as specified in SP 800-38D §6.3.
///
/// Blocks are interpreted big-endian with bit 0 the most significant bit of
/// the first byte.
fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(buf)
}

/// GHASH over `aad` and `ciphertext` with hash subkey `h`.
fn ghash(h: u128, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ciphertext.chunks(16) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    gf_mul(y ^ lens, h)
}

/// An AES-GCM key.
///
/// ```
/// use olive_crypto::gcm::AesGcm;
/// let key = AesGcm::new(&[0x42; 16]).unwrap();
/// let nonce = [7u8; 12];
/// let ct = key.seal(&nonce, b"round-3 gradients", b"user-17");
/// let pt = key.open(&nonce, &ct, b"user-17").unwrap();
/// assert_eq!(pt, b"round-3 gradients");
/// assert!(key.open(&nonce, &ct, b"user-18").is_err()); // AAD mismatch
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    /// Hash subkey H = E_K(0^128).
    h: u128,
}

impl AesGcm {
    /// Creates a GCM instance from a 16/24/32-byte AES key.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let aes = Aes::new(key)?;
        let h = u128::from_be_bytes(aes.encrypt([0u8; 16]));
        Ok(AesGcm { aes, h })
    }

    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes(j0[12..16].try_into().unwrap());
        for chunk in data.chunks_mut(16) {
            counter = counter.wrapping_add(1);
            let mut block = *j0;
            block[12..16].copy_from_slice(&counter.to_be_bytes());
            self.aes.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash(self.h, aad, ciphertext);
        let e = u128::from_be_bytes(self.aes.encrypt(*j0));
        (s ^ e).to_be_bytes()
    }

    /// Encrypts `plaintext`, authenticating `aad` as well. Returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor(&j0, &mut out);
        let tag = self.tag(&j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag` produced by [`Self::seal`].
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        ciphertext_and_tag: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        self.ctr_xor(&j0, &mut out);
        Ok(out)
    }
}

/// One-shot seal with a fresh instance (convenience for the TEE layer).
pub fn seal(key: &[u8], nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    AesGcm::new(key).expect("key length checked by caller").seal(nonce, plaintext, aad)
}

/// One-shot open with a fresh instance.
pub fn open(
    key: &[u8],
    nonce: &[u8; NONCE_LEN],
    ciphertext_and_tag: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    AesGcm::new(key)?.open(nonce, ciphertext_and_tag, aad)
}

/// Error alias kept for API clarity at call sites.
pub type GcmError = CryptoError;

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // NIST GCM spec (Appendix B) test cases 1-4 for AES-128 and case 13/14
    // for AES-256.
    #[test]
    fn nist_case_1_empty() {
        let g = AesGcm::new(&[0u8; 16]).unwrap();
        let nonce = [0u8; 12];
        let out = g.seal(&nonce, b"", b"");
        assert_eq!(hex(&out), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_case_2_single_block() {
        let g = AesGcm::new(&[0u8; 16]).unwrap();
        let nonce = [0u8; 12];
        let out = g.seal(&nonce, &from_hex("00000000000000000000000000000000"), b"");
        assert_eq!(hex(&out), "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn nist_case_3_four_blocks() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, b"");
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985\
             4d5c2af327cd64a62cf35abd2ba6fab4"
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091\
             5bc94fbc3221a5db94fae95ae7121a47"
        );
        let back = g.open(&nonce, &out, &aad).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn nist_aes256_with_aad() {
        // GCM spec test case 16.
        let key = from_hex("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&out),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662\
             76fc6ece0f4e1768cddf8853bb2d551b"
        );
    }

    #[test]
    fn tamper_detection() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        let nonce = [2u8; 12];
        let mut ct = g.seal(&nonce, b"secret gradient payload", b"meta");
        // Flip one bit anywhere: tag must fail.
        for idx in [0usize, 5, ct.len() - 1] {
            ct[idx] ^= 0x01;
            assert_eq!(g.open(&nonce, &ct, b"meta").unwrap_err(), CryptoError::BadTag);
            ct[idx] ^= 0x01;
        }
        assert!(g.open(&nonce, &ct, b"meta").is_ok());
    }

    #[test]
    fn wrong_nonce_fails() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        let ct = g.seal(&[2u8; 12], b"payload", b"");
        assert!(g.open(&[3u8; 12], &ct, b"").is_err());
    }

    #[test]
    fn too_short_ciphertext() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        assert_eq!(g.open(&[0u8; 12], &[0u8; 7], b"").unwrap_err(), CryptoError::BadLength);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let g = AesGcm::new(&[9u8; 32]).unwrap();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 255, 1024] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let nonce = [len as u8; 12];
            let ct = g.seal(&nonce, &pt, b"aad");
            assert_eq!(g.open(&nonce, &ct, b"aad").unwrap(), pt, "len {len}");
        }
    }
}
