//! NIST SP 800-38D AES-GCM authenticated encryption.
//!
//! This is the AEAD used on the client→enclave secure channel (Algorithm 1
//! lines 8, 11, 22 of the paper: gradients are encrypted under the per-user
//! shared key established by remote attestation, and the enclave verifies
//! and decrypts them inside the trust boundary).
//!
//! The GCM composition (J0, CTR layout, GHASH over AAD ∥ ciphertext ∥
//! lengths, tag masking) lives here once; the block cipher and the field
//! multiplication dispatch to the backend selected by
//! [`crate::engine::crypto_backend`] — hardware (AES-NI + PCLMULQDQ),
//! bitsliced constant-time software, or the original lookup tables kept as
//! the differential reference. All three produce bitwise-identical output.

use crate::aes::Aes;
use crate::ct::ct_eq;
use crate::engine::ct::{gf_mul_ct, CtAes};
#[cfg(target_arch = "x86_64")]
use crate::engine::hw::{HwAes, HwGhash};
use crate::engine::{crypto_backend, CryptoBackend};
use crate::CryptoError;

/// GCM nonce length in bytes (the 96-bit fast path).
pub const NONCE_LEN: usize = 12;
/// GCM authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// The GHASH reduction constant R = 11100001 || 0^120.
const R: u128 = 0xE100_0000_0000_0000_0000_0000_0000_0000;

/// Multiplication in GF(2^128) as specified in SP 800-38D §6.3 — the
/// table backend's field multiply and the differential reference the
/// `ct`/`hw` multiplies are tested against. **Not constant-time** (both
/// branches key on secret bits).
///
/// Blocks are interpreted big-endian with bit 0 the most significant bit of
/// the first byte.
pub(crate) fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(buf)
}

/// GHASH over `aad` and `ciphertext` with hash subkey `h` and the field
/// multiply `mul` of the active backend.
fn ghash(h: u128, aad: &[u8], ciphertext: &[u8], mul: fn(u128, u128) -> u128) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ciphertext.chunks(16) {
        y = mul(y ^ block_to_u128(chunk), h);
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    mul(y ^ lens, h)
}

/// The backend-specific cipher state behind one GCM key.
#[derive(Clone)]
enum GcmImpl {
    Table(Aes),
    Ct(CtAes),
    #[cfg(target_arch = "x86_64")]
    Hw(HwAes, HwGhash),
}

/// An AES-GCM key on the process-default crypto backend (override with
/// [`AesGcm::with_backend`]; every backend produces identical bytes).
///
/// ```
/// use olive_crypto::gcm::AesGcm;
/// let key = AesGcm::new(&[0x42; 16]).unwrap();
/// let nonce = [7u8; 12];
/// let ct = key.seal(&nonce, b"round-3 gradients", b"user-17");
/// let pt = key.open(&nonce, &ct, b"user-17").unwrap();
/// assert_eq!(pt, b"round-3 gradients");
/// assert!(key.open(&nonce, &ct, b"user-18").is_err()); // AAD mismatch
/// ```
#[derive(Clone)]
pub struct AesGcm {
    imp: GcmImpl,
    /// Hash subkey H = E_K(0^128).
    h: u128,
}

impl core::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The hash subkey H (and the backends' round keys / H powers) is
        // key material: H alone enables tag forgery, so Debug prints the
        // backend only.
        let backend = match &self.imp {
            GcmImpl::Table(_) => CryptoBackend::Table,
            GcmImpl::Ct(_) => CryptoBackend::Ct,
            #[cfg(target_arch = "x86_64")]
            GcmImpl::Hw(..) => CryptoBackend::Hw,
        };
        f.debug_struct("AesGcm").field("backend", &backend).finish_non_exhaustive()
    }
}

impl AesGcm {
    /// Creates a GCM instance from a 16/24/32-byte AES key on the
    /// process-default backend ([`crypto_backend`]).
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        Self::with_backend(crypto_backend(), key)
    }

    /// Creates a GCM instance pinned to `backend` (differential tests
    /// compare backends in one process, bypassing the env cache).
    ///
    /// # Panics
    ///
    /// If `backend` is not available on this CPU (callers gate on
    /// [`CryptoBackend::is_available`]).
    pub fn with_backend(backend: CryptoBackend, key: &[u8]) -> Result<Self, CryptoError> {
        let mut imp = match backend {
            CryptoBackend::Table => GcmImpl::Table(Aes::new(key)?),
            CryptoBackend::Ct => GcmImpl::Ct(CtAes::new(key)?),
            #[cfg(target_arch = "x86_64")]
            CryptoBackend::Hw => {
                let aes = HwAes::new(key)?;
                GcmImpl::Hw(aes, HwGhash::new(0))
            }
            #[cfg(not(target_arch = "x86_64"))]
            CryptoBackend::Hw => panic!("hw crypto backend requires x86-64"),
        };
        let mut hb = [0u8; 16];
        imp_encrypt_block(&imp, &mut hb);
        let h = u128::from_be_bytes(hb);
        #[cfg(target_arch = "x86_64")]
        if let GcmImpl::Hw(_, gh) = &mut imp {
            *gh = HwGhash::new(h);
        }
        Ok(AesGcm { imp, h })
    }

    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        match &self.imp {
            GcmImpl::Table(aes) => {
                let mut counter = u32::from_be_bytes(j0[12..16].try_into().unwrap());
                for chunk in data.chunks_mut(16) {
                    counter = counter.wrapping_add(1);
                    let mut block = *j0;
                    block[12..16].copy_from_slice(&counter.to_be_bytes());
                    aes.encrypt_block(&mut block);
                    for (b, k) in chunk.iter_mut().zip(block.iter()) {
                        *b ^= k;
                    }
                }
            }
            GcmImpl::Ct(aes) => aes.ctr_xor(j0, data),
            #[cfg(target_arch = "x86_64")]
            GcmImpl::Hw(aes, _) => aes.ctr_xor(j0, data),
        }
    }

    /// Test hook: the raw CTR keystream XOR (differential suites compare
    /// backends at exact chunk boundaries).
    #[cfg(test)]
    pub(crate) fn ctr_xor_for_tests(&self, j0: &[u8; 16], data: &mut [u8]) {
        self.ctr_xor(j0, data)
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = match &self.imp {
            GcmImpl::Table(_) => ghash(self.h, aad, ciphertext, gf_mul),
            GcmImpl::Ct(_) => ghash(self.h, aad, ciphertext, gf_mul_ct),
            #[cfg(target_arch = "x86_64")]
            GcmImpl::Hw(_, gh) => gh.ghash(aad, ciphertext),
        };
        let mut e = *j0;
        imp_encrypt_block(&self.imp, &mut e);
        (s ^ u128::from_be_bytes(e)).to_be_bytes()
    }

    /// Encrypts `plaintext`, authenticating `aad` as well. Returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor(&j0, &mut out);
        let tag = self.tag(&j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag` produced by [`Self::seal`].
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        ciphertext_and_tag: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        self.ctr_xor(&j0, &mut out);
        Ok(out)
    }
}

/// Single-block encryption on whichever backend `imp` wraps.
fn imp_encrypt_block(imp: &GcmImpl, block: &mut [u8; 16]) {
    match imp {
        GcmImpl::Table(aes) => aes.encrypt_block(block),
        GcmImpl::Ct(aes) => aes.encrypt_block(block),
        #[cfg(target_arch = "x86_64")]
        GcmImpl::Hw(aes, _) => aes.encrypt_block(block),
    }
}

/// One-shot seal with a fresh instance (convenience for the TEE layer).
pub fn seal(key: &[u8], nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    AesGcm::new(key).expect("key length checked by caller").seal(nonce, plaintext, aad)
}

/// One-shot open with a fresh instance.
pub fn open(
    key: &[u8],
    nonce: &[u8; NONCE_LEN],
    ciphertext_and_tag: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    AesGcm::new(key)?.open(nonce, ciphertext_and_tag, aad)
}

/// Error alias kept for API clarity at call sites.
pub type GcmError = CryptoError;

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // NIST GCM spec (Appendix B) test cases 1-4 for AES-128 and case 13/14
    // for AES-256.
    #[test]
    fn nist_case_1_empty() {
        let g = AesGcm::new(&[0u8; 16]).unwrap();
        let nonce = [0u8; 12];
        let out = g.seal(&nonce, b"", b"");
        assert_eq!(hex(&out), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_case_2_single_block() {
        let g = AesGcm::new(&[0u8; 16]).unwrap();
        let nonce = [0u8; 12];
        let out = g.seal(&nonce, &from_hex("00000000000000000000000000000000"), b"");
        assert_eq!(hex(&out), "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn nist_case_3_four_blocks() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, b"");
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985\
             4d5c2af327cd64a62cf35abd2ba6fab4"
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091\
             5bc94fbc3221a5db94fae95ae7121a47"
        );
        let back = g.open(&nonce, &out, &aad).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn nist_aes256_with_aad() {
        // GCM spec test case 16.
        let key = from_hex("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let g = AesGcm::new(&key).unwrap();
        let out = g.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&out),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662\
             76fc6ece0f4e1768cddf8853bb2d551b"
        );
    }

    #[test]
    fn tamper_detection() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        let nonce = [2u8; 12];
        let mut ct = g.seal(&nonce, b"secret gradient payload", b"meta");
        // Flip one bit anywhere: tag must fail.
        for idx in [0usize, 5, ct.len() - 1] {
            ct[idx] ^= 0x01;
            assert_eq!(g.open(&nonce, &ct, b"meta").unwrap_err(), CryptoError::BadTag);
            ct[idx] ^= 0x01;
        }
        assert!(g.open(&nonce, &ct, b"meta").is_ok());
    }

    #[test]
    fn wrong_nonce_fails() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        let ct = g.seal(&[2u8; 12], b"payload", b"");
        assert!(g.open(&[3u8; 12], &ct, b"").is_err());
    }

    #[test]
    fn too_short_ciphertext() {
        let g = AesGcm::new(&[1u8; 16]).unwrap();
        assert_eq!(g.open(&[0u8; 12], &[0u8; 7], b"").unwrap_err(), CryptoError::BadLength);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let g = AesGcm::new(&[9u8; 32]).unwrap();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 255, 1024] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let nonce = [len as u8; 12];
            let ct = g.seal(&nonce, &pt, b"aad");
            assert_eq!(g.open(&nonce, &ct, b"aad").unwrap(), pt, "len {len}");
        }
    }
}
