//! FIPS 180-4 SHA-256.
//!
//! Used for enclave measurements (Section 2.2 of the paper: the remote
//! attestation report carries a hash of the initial enclave state), for
//! HMAC/HKDF, and for Fiat–Shamir challenges in the simulated EPID signature.
//!
//! The padding/buffering frame lives here once; the compression function
//! dispatches per the backend selected by [`crate::engine::crypto_backend`]
//! — SHA-NI when the `hw` backend is active and the CPU supports it, the
//! software compressor otherwise (which is already constant-time: pure
//! arithmetic, constants indexed by public loop counters only, so the `ct`
//! and `table` backends share it). Both produce identical digests.

use crate::engine::{crypto_backend, CryptoBackend};

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size of SHA-256 in bytes (relevant for HMAC).
pub const BLOCK_LEN: usize = 64;

pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Which compression function a hasher runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShaImpl {
    Soft,
    #[cfg(target_arch = "x86_64")]
    ShaNi,
}

impl ShaImpl {
    fn for_backend(backend: CryptoBackend) -> ShaImpl {
        match backend {
            #[cfg(target_arch = "x86_64")]
            CryptoBackend::Hw if crate::engine::hw::sha_available() => ShaImpl::ShaNi,
            _ => ShaImpl::Soft,
        }
    }
}

/// Incremental SHA-256 hasher on the process-default crypto backend
/// (override with [`Sha256::with_backend`]; every backend produces
/// identical digests).
///
/// ```
/// use olive_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    imp: ShaImpl,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher on the process-default backend.
    pub fn new() -> Self {
        Self::with_backend(crypto_backend())
    }

    /// Creates a fresh hasher pinned to `backend` (SHA-NI for `hw` when
    /// the CPU has it, the software compressor otherwise).
    pub fn with_backend(backend: CryptoBackend) -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            imp: ShaImpl::for_backend(backend),
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress_blocks(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the buffer; don't fall through to the
                // remainder logic, which would reset `buf_len`.
                return;
            }
        }
        let whole = data.len() - data.len() % BLOCK_LEN;
        if whole > 0 {
            self.compress_blocks(&data[..whole]);
        }
        let rem = &data[whole..];
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Runs the compression function over whole blocks on the selected
    /// implementation (`blocks.len()` is a multiple of [`BLOCK_LEN`]).
    fn compress_blocks(&mut self, blocks: &[u8]) {
        match self.imp {
            ShaImpl::Soft => compress_soft(&mut self.state, blocks),
            #[cfg(target_arch = "x86_64")]
            ShaImpl::ShaNi => crate::engine::hw::sha256_compress_ni(&mut self.state, blocks),
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update_padding();
        let mut last = [0u8; BLOCK_LEN];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress_blocks(&last);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        // Append 0x80 then zero-fill; if fewer than 8 bytes remain for the
        // length, compress and start a fresh block.
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > BLOCK_LEN - 8 {
            for b in &mut self.buf[self.buf_len..] {
                *b = 0;
            }
            let block = self.buf;
            self.compress_blocks(&block);
            self.buf = [0; BLOCK_LEN];
            self.buf_len = 0;
        } else {
            for b in &mut self.buf[self.buf_len..BLOCK_LEN - 8] {
                *b = 0;
            }
        }
        // `finalize` writes the length into the tail of the final block.
        self.buf_len = self.buf_len.min(BLOCK_LEN - 8);
    }
}

/// The software compression function over whole 64-byte blocks —
/// constant-time by construction (pure arithmetic; `K` is indexed by the
/// public loop counter only), shared by the `ct` and `table` backends and
/// the differential reference for SHA-NI.
pub(crate) fn compress_soft(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert!(blocks.len().is_multiple_of(BLOCK_LEN));
    for block in blocks.chunks_exact(BLOCK_LEN) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // NIST FIPS 180-4 example vectors plus RFC 6234 test cases.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55, 56, 63, 64 exercise both padding branches.
        for len in [55usize, 56, 57, 63, 64, 119, 120] {
            let data = vec![0xabu8; len];
            let one = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }
}
