//! RFC 2104 HMAC instantiated with SHA-256.

use crate::engine::{crypto_backend, CryptoBackend};
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256 on the process-default crypto backend
/// (override with [`HmacSha256::with_backend`]).
///
/// Used by [`crate::hkdf`] for session-key derivation after remote
/// attestation, and by the simulated attestation service to authenticate
/// quotes (the symmetric stand-in for EPID group signatures, see
/// `DESIGN.md` §1).
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        Self::with_backend(crypto_backend(), key)
    }

    /// Creates an HMAC context pinned to `backend` (both hash passes and
    /// the long-key digest run on it).
    pub fn with_backend(backend: CryptoBackend, key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let mut h = Sha256::with_backend(backend);
            h.update(key);
            k[..DIGEST_LEN].copy_from_slice(&h.finalize());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::with_backend(backend);
        inner.update(&ipad);
        let mut outer = Sha256::with_backend(backend);
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the MAC.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot HMAC.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time verification of a MAC over `data`.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, data);
        crate::ct::ct_eq(&expected, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let mac = HmacSha256::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_3() {
        let mac = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(hex(&mac), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let mac = HmacSha256::mac(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let mac = HmacSha256::mac(
            &[0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm.",
        );
        assert_eq!(hex(&mac), "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"key", b"msg");
        assert!(HmacSha256::verify(b"key", b"msg", &tag));
        assert!(!HmacSha256::verify(b"key", b"msg2", &tag));
        assert!(!HmacSha256::verify(b"key2", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"key", b"msg", &bad));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = HmacSha256::new(b"secret");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"secret", b"hello world"));
    }
}
