//! The `hw` crypto backend: AES-NI/VAES counter mode, carry-less
//! PCLMULQDQ GHASH, and SHA-NI SHA-256 via `core::arch::x86_64`
//! intrinsics.
//!
//! Every primitive here runs in data-independent time by construction —
//! the AES rounds, the carry-less multiply and the SHA-256 message
//! schedule are single instructions whose latency does not depend on
//! operand values, and there is no secret-indexed memory access anywhere
//! in this module (asserted by the `ct_lint` test). The key schedule uses
//! `AESENCLAST` against a zero round key to compute `SubWord` (with all
//! four state columns equal, `ShiftRows` is the identity on column words),
//! which keeps even key expansion free of S-box lookups and works
//! uniformly for 128/192/256-bit keys.
//!
//! Counter-mode throughput comes from instruction-level parallelism: the
//! AES-NI path keeps eight independent blocks in flight per round-key
//! broadcast, and when VAES + AVX-512 are available a 16-block path runs
//! four blocks per `VAESENC`. GHASH multiplies in GF(2^128) with four
//! `PCLMULQDQ`s plus a reflected reduction (SP 800-38D stores blocks
//! bit-reflected; the product of the stored representations is the
//! bit-reversal of the true product, fixed by one 256-bit left shift —
//! the standard trick that avoids per-block bit reversal).

use core::arch::x86_64::*;

use crate::aes::MAX_ROUND_KEYS;
use crate::CryptoError;

/// True when the AES-GCM fast path (AES-NI + PCLMULQDQ + the SSE levels
/// the kernels use) can run on this CPU.
pub(crate) fn aes_available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
        && std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
}

/// True when the VAES 16-block counter-mode path can run (the AES-NI path
/// remains the fallback for short inputs and older CPUs).
pub(crate) fn vaes_available() -> bool {
    std::arch::is_x86_feature_detected!("vaes") && std::arch::is_x86_feature_detected!("avx512f")
}

/// True when SHA-NI SHA-256 can run on this CPU.
pub(crate) fn sha_available() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
}

// ---------------------------------------------------------------------------
// AES key schedule and block encryption
// ---------------------------------------------------------------------------

/// An expanded AES key for the hardware backend (128/192/256-bit).
/// Forward cipher only — GCM needs nothing else.
#[derive(Clone)]
pub(crate) struct HwAes {
    round_keys: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
    vaes: bool,
}

impl core::fmt::Debug for HwAes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HwAes").field("rounds", &self.rounds).finish_non_exhaustive()
    }
}

/// `SubWord` via `AESENCLAST` with a zero round key: with all four state
/// columns equal, `ShiftRows` permutes equal bytes (identity on the column
/// word), leaving exactly `SubBytes` — no table lookup touches the key.
#[target_feature(enable = "aes")]
fn sub_word_ni(w: [u8; 4]) -> [u8; 4] {
    let x = _mm_set1_epi32(i32::from_le_bytes(w));
    let y = _mm_aesenclast_si128(x, _mm_setzero_si128());
    (_mm_cvtsi128_si32(y) as u32).to_le_bytes()
}

/// Safe wrapper with the shared key-expansion signature.
fn sub_word_hw(w: [u8; 4]) -> [u8; 4] {
    // SAFETY: HwAes::new asserts aes_available() before expanding.
    unsafe { sub_word_ni(w) }
}

impl HwAes {
    /// FIPS 197 key expansion (the generic Nk loop; `SubWord` in hardware).
    ///
    /// The caller must have checked [`aes_available`].
    pub(crate) fn new(key: &[u8]) -> Result<Self, CryptoError> {
        assert!(aes_available(), "hw backend constructed without AES-NI");
        let (round_keys, rounds) = crate::aes::expand_key(key, sub_word_hw)?;
        Ok(HwAes { round_keys, rounds, vaes: vaes_available() })
    }

    /// Encrypts a single 16-byte block in place.
    pub(crate) fn encrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: aes_available() was checked at construction.
        unsafe { encrypt_block_ni(&self.round_keys, self.rounds, block) }
    }

    /// CTR keystream XOR, bitwise identical to the table backend's counter
    /// mode (32-bit big-endian counter increment in the last word of `j0`).
    pub(crate) fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        // SAFETY: feature availability was checked at construction
        // (vaes_available() for the wide path, aes_available() otherwise).
        unsafe {
            if self.vaes && data.len() >= 16 * VAES_BLOCKS {
                ctr_xor_vaes(&self.round_keys, self.rounds, j0, data)
            } else {
                ctr_xor_ni(&self.round_keys, self.rounds, j0, data)
            }
        }
    }
}

#[inline(always)]
unsafe fn load_rk(rk: &[u8; 16]) -> __m128i {
    // SAFETY: 16 readable bytes; loadu has no alignment requirement.
    unsafe { _mm_loadu_si128(rk.as_ptr() as *const __m128i) }
}

#[target_feature(enable = "aes")]
fn encrypt_block_ni(rks: &[[u8; 16]; MAX_ROUND_KEYS], rounds: usize, block: &mut [u8; 16]) {
    // SAFETY: in-bounds unaligned loads/stores over 16-byte arrays.
    unsafe {
        let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
        b = _mm_xor_si128(b, load_rk(&rks[0]));
        for rk in &rks[1..rounds] {
            b = _mm_aesenc_si128(b, load_rk(rk));
        }
        b = _mm_aesenclast_si128(b, load_rk(&rks[rounds]));
        _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, b);
    }
}

/// Blocks kept in flight by the AES-NI counter path (covers the ~4-cycle
/// AESENC latency at 1/cycle throughput with headroom).
const NI_BLOCKS: usize = 8;

/// Fills `bufs` with the next `n` counter blocks and advances the counter.
#[inline(always)]
fn next_counter_blocks<const N: usize>(j0: &[u8; 16], counter: &mut u32, bufs: &mut [[u8; 16]; N]) {
    for (i, buf) in bufs.iter_mut().enumerate() {
        *buf = *j0;
        buf[12..16].copy_from_slice(&counter.wrapping_add(i as u32 + 1).to_be_bytes());
    }
    *counter = counter.wrapping_add(N as u32);
}

#[target_feature(enable = "aes")]
fn ctr_xor_ni(rks: &[[u8; 16]; MAX_ROUND_KEYS], rounds: usize, j0: &[u8; 16], data: &mut [u8]) {
    let mut counter = u32::from_be_bytes(j0[12..16].try_into().unwrap());
    for chunk in data.chunks_mut(16 * NI_BLOCKS) {
        let mut bufs = [[0u8; 16]; NI_BLOCKS];
        let nblocks = chunk.len().div_ceil(16) as u32;
        next_counter_blocks(j0, &mut counter, &mut bufs);
        counter = counter.wrapping_add(nblocks).wrapping_sub(NI_BLOCKS as u32);
        // SAFETY: in-bounds unaligned loads/stores over the local buffers.
        unsafe {
            let mut b: [__m128i; NI_BLOCKS] =
                core::array::from_fn(|i| _mm_loadu_si128(bufs[i].as_ptr() as *const __m128i));
            let rk0 = load_rk(&rks[0]);
            for x in &mut b {
                *x = _mm_xor_si128(*x, rk0);
            }
            for rk in &rks[1..rounds] {
                let rk = load_rk(rk);
                for x in &mut b {
                    *x = _mm_aesenc_si128(*x, rk);
                }
            }
            let rkl = load_rk(&rks[rounds]);
            for (i, x) in b.iter_mut().enumerate() {
                *x = _mm_aesenclast_si128(*x, rkl);
                _mm_storeu_si128(bufs[i].as_mut_ptr() as *mut __m128i, *x);
            }
        }
        let ks = bufs.as_flattened();
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

/// Blocks per iteration of the VAES path: four 512-bit registers of four
/// blocks each.
const VAES_BLOCKS: usize = 16;

#[target_feature(enable = "aes", enable = "vaes", enable = "avx512f")]
fn ctr_xor_vaes(rks: &[[u8; 16]; MAX_ROUND_KEYS], rounds: usize, j0: &[u8; 16], data: &mut [u8]) {
    let mut counter = u32::from_be_bytes(j0[12..16].try_into().unwrap());
    for chunk in data.chunks_mut(16 * VAES_BLOCKS) {
        let mut bufs = [[0u8; 16]; VAES_BLOCKS];
        let nblocks = chunk.len().div_ceil(16) as u32;
        next_counter_blocks(j0, &mut counter, &mut bufs);
        counter = counter.wrapping_add(nblocks).wrapping_sub(VAES_BLOCKS as u32);
        // SAFETY: in-bounds unaligned loads/stores over the local buffers;
        // feature gates checked by the caller's dispatch.
        unsafe {
            let flat = bufs.as_flattened_mut();
            let mut b: [__m512i; 4] = core::array::from_fn(|i| {
                _mm512_loadu_si512(flat.as_ptr().add(64 * i) as *const __m512i)
            });
            let rk0 = _mm512_broadcast_i32x4(load_rk(&rks[0]));
            for x in &mut b {
                *x = _mm512_xor_si512(*x, rk0);
            }
            for rk in &rks[1..rounds] {
                let rk = _mm512_broadcast_i32x4(load_rk(rk));
                for x in &mut b {
                    *x = _mm512_aesenc_epi128(*x, rk);
                }
            }
            let rkl = _mm512_broadcast_i32x4(load_rk(&rks[rounds]));
            for (i, x) in b.iter_mut().enumerate() {
                *x = _mm512_aesenclast_epi128(*x, rkl);
                _mm512_storeu_si512(flat.as_mut_ptr().add(64 * i) as *mut __m512i, *x);
            }
        }
        let ks = bufs.as_flattened();
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

// ---------------------------------------------------------------------------
// Carry-less GHASH
// ---------------------------------------------------------------------------

/// GF(2^128) multiplication of two blocks in the SP 800-38D bit-reflected
/// representation (the `u128` from `from_be_bytes`, bit 127 = coefficient
/// of x^0), bitwise identical to the table backend's `gf_mul`.
///
/// Carry-less multiply of the *stored* bit patterns gives the bit-reversal
/// of the true 255-bit product; shifting the 256-bit result left by one
/// realigns it so the high/low halves are the reflected low/high halves of
/// the true product, and the reduction by x^128 ≡ x^7 + x^2 + x + 1 runs
/// reflected (right shifts, with the seven fall-off bits folded once more
/// from the top).
pub(crate) fn gf_mul_hw(x: u128, y: u128) -> u128 {
    // SAFETY: construction sites check aes_available(), which includes
    // pclmulqdq.
    unsafe { reduce_clmul(clmul256(x, y)) }
}

/// 256-bit carry-less product of the stored bit patterns (no reduction),
/// as `(high, low)` halves. XOR-linear, so several products can be summed
/// before one shared reduction (the aggregated GHASH below).
#[target_feature(enable = "pclmulqdq")]
fn clmul256(x: u128, y: u128) -> (u128, u128) {
    // SAFETY: value-only SIMD ops (no memory access); transmutes between
    // __m128i and u128 are bit-pattern reinterpretations of 16-byte values
    // with matching little-endian lane order on x86.
    let (p_lo, p_hi, mid) = unsafe {
        let a: __m128i = core::mem::transmute(x);
        let b: __m128i = core::mem::transmute(y);
        let lo: u128 = core::mem::transmute(_mm_clmulepi64_si128(a, b, 0x00));
        let hi: u128 = core::mem::transmute(_mm_clmulepi64_si128(a, b, 0x11));
        let m0: u128 = core::mem::transmute(_mm_clmulepi64_si128(a, b, 0x01));
        let m1: u128 = core::mem::transmute(_mm_clmulepi64_si128(a, b, 0x10));
        (lo, hi, m0 ^ m1)
    };
    (p_hi ^ (mid >> 64), p_lo ^ (mid << 64))
}

/// Reduces a 256-bit carry-less product of stored representations to the
/// 128-bit GHASH representation: the <<1 reflection fix, then the
/// reduction by x^128 ≡ x^7 + x^2 + x + 1 run reflected.
#[inline]
fn reduce_clmul((r_hi, r_lo): (u128, u128)) -> u128 {
    let q_lo = r_lo << 1;
    let q_hi = (r_hi << 1) | (r_lo >> 127);
    // Reflected reduction: q_lo holds rev(C_hi), q_hi holds rev(C_lo).
    // C mod m = C_lo ^ C_hi·(x^7+x^2+x+1); multiplying by x^s is >>s here,
    // and the bits that fall off the low end are the degree-128.. overflow,
    // re-folded via their reflected image at the top of the word.
    let ro = (q_lo << 127) ^ (q_lo << 126) ^ (q_lo << 121);
    q_hi ^ q_lo ^ (q_lo >> 1) ^ (q_lo >> 2) ^ (q_lo >> 7) ^ ro ^ (ro >> 1) ^ (ro >> 2) ^ (ro >> 7)
}

/// Blocks folded per reduction by the aggregated GHASH.
const GHASH_AGG: usize = 4;

/// GHASH state with precomputed key powers H, H², H³, H⁴: four blocks
/// cost sixteen `PCLMULQDQ`s and **one** reduction via
/// Y ← (Y ⊕ b₀)·H⁴ ⊕ b₁·H³ ⊕ b₂·H² ⊕ b₃·H (the Horner unrolling; the
/// carry-less product is XOR-linear so the partial products sum before
/// reducing).
#[derive(Clone)]
pub(crate) struct HwGhash {
    /// `h_pow[i]` = H^(i+1).
    h_pow: [u128; GHASH_AGG],
}

impl core::fmt::Debug for HwGhash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // H and its powers are key material (tag forgery); never printed.
        f.debug_struct("HwGhash").finish_non_exhaustive()
    }
}

impl HwGhash {
    pub(crate) fn new(h: u128) -> Self {
        let mut h_pow = [h; GHASH_AGG];
        for i in 1..GHASH_AGG {
            h_pow[i] = gf_mul_hw(h_pow[i - 1], h);
        }
        HwGhash { h_pow }
    }

    /// Absorbs one 16-byte-block stream into `y` (partial last block
    /// zero-padded, as in SP 800-38D).
    pub(crate) fn absorb(&self, y: u128, data: &[u8]) -> u128 {
        // SAFETY: construction sites check aes_available(), which includes
        // pclmulqdq and ssse3.
        unsafe { absorb_simd(&self.h_pow, y, data) }
    }

    /// Full GHASH over `aad` and `ciphertext` (both zero-padded to block
    /// boundaries, then the 64|64-bit length block).
    pub(crate) fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> u128 {
        let y = self.absorb(0, aad);
        let y = self.absorb(y, ciphertext);
        let lens = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        gf_mul_hw(y ^ lens, self.h_pow[0])
    }
}

// The hot GHASH loop stays entirely in XMM registers — round-tripping
// every block through `u128` general-purpose arithmetic costs more in
// register-domain crossings than the carry-less multiplies themselves.
// The helpers below are the scalar derivation above transcribed op for op
// (the `__m128i` is viewed as a `u128`, lane 0 = low 64 bits).

/// `v >> s` for a 128-bit value in one register (1 ≤ s < 64; the shift
/// counts are instruction immediates, hence a macro rather than a fn).
macro_rules! srl128 {
    ($v:expr, $s:literal) => {{
        let v = $v;
        _mm_or_si128(_mm_srli_epi64(v, $s), _mm_slli_epi64(_mm_srli_si128(v, 8), 64 - $s))
    }};
}

#[target_feature(enable = "pclmulqdq", enable = "ssse3")]
fn absorb_simd(h_pow: &[u128; GHASH_AGG], y0: u128, data: &[u8]) -> u128 {
    // SAFETY: value-only SIMD ops plus in-bounds unaligned 16-byte loads;
    // __m128i ↔ u128 transmutes reinterpret 16-byte values with matching
    // little-endian lane order.
    unsafe {
        // from_be_bytes as a shuffle: reverse the 16 loaded bytes.
        let rev = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let hp: [__m128i; GHASH_AGG] = core::array::from_fn(|i| core::mem::transmute(h_pow[i]));
        let mut y: __m128i = core::mem::transmute(y0);

        let mut chunks = data.chunks_exact(16 * GHASH_AGG);
        for chunk in &mut chunks {
            let mut acc_hi = _mm_setzero_si128();
            let mut acc_lo = _mm_setzero_si128();
            for i in 0..GHASH_AGG {
                let mut b = _mm_shuffle_epi8(
                    _mm_loadu_si128(chunk.as_ptr().add(16 * i) as *const __m128i),
                    rev,
                );
                if i == 0 {
                    b = _mm_xor_si128(b, y);
                }
                let h = hp[GHASH_AGG - 1 - i];
                // 256-bit carry-less product, accumulated unreduced.
                let lo = _mm_clmulepi64_si128(b, h, 0x00);
                let hi = _mm_clmulepi64_si128(b, h, 0x11);
                let mid = _mm_xor_si128(
                    _mm_clmulepi64_si128(b, h, 0x01),
                    _mm_clmulepi64_si128(b, h, 0x10),
                );
                acc_lo = _mm_xor_si128(acc_lo, _mm_xor_si128(lo, _mm_slli_si128(mid, 8)));
                acc_hi = _mm_xor_si128(acc_hi, _mm_xor_si128(hi, _mm_srli_si128(mid, 8)));
            }
            y = reduce_simd(acc_hi, acc_lo);
        }
        let mut y_scalar: u128 = core::mem::transmute(y);
        for block in chunks.remainder().chunks(16) {
            let mut buf = [0u8; 16];
            buf[..block.len()].copy_from_slice(block);
            y_scalar = gf_mul_hw(y_scalar ^ u128::from_be_bytes(buf), h_pow[0]);
        }
        y_scalar
    }
}

/// [`reduce_clmul`] transcribed to SSE: the <<1 reflection fix across the
/// 256-bit value, then the reflected fold by x^7 + x^2 + x + 1.
#[inline(always)]
unsafe fn reduce_simd(r_hi: __m128i, r_lo: __m128i) -> __m128i {
    // SAFETY: value-only SSE2 ops.
    unsafe {
        // q = r << 1 over 256 bits: per-lane shifts with bit-63 carries
        // across lanes and from r_lo's top bit into r_hi.
        let lo_c = _mm_srli_epi64(r_lo, 63);
        let q_lo = _mm_or_si128(_mm_slli_epi64(r_lo, 1), _mm_slli_si128(lo_c, 8));
        let hi_c = _mm_srli_epi64(r_hi, 63);
        let q_hi = _mm_or_si128(
            _mm_or_si128(_mm_slli_epi64(r_hi, 1), _mm_slli_si128(hi_c, 8)),
            _mm_srli_si128(lo_c, 8),
        );
        // ro = (q_lo << 127) ^ (q_lo << 126) ^ (q_lo << 121): shifts ≥ 64
        // land entirely in the high lane.
        let t = _mm_slli_si128(q_lo, 8);
        let ro = _mm_xor_si128(
            _mm_xor_si128(_mm_slli_epi64(t, 63), _mm_slli_epi64(t, 62)),
            _mm_slli_epi64(t, 57),
        );
        let fold_lo = _mm_xor_si128(
            _mm_xor_si128(q_lo, srl128!(q_lo, 1)),
            _mm_xor_si128(srl128!(q_lo, 2), srl128!(q_lo, 7)),
        );
        let fold_ro = _mm_xor_si128(
            _mm_xor_si128(ro, srl128!(ro, 1)),
            _mm_xor_si128(srl128!(ro, 2), srl128!(ro, 7)),
        );
        _mm_xor_si128(q_hi, _mm_xor_si128(fold_lo, fold_ro))
    }
}

// ---------------------------------------------------------------------------
// SHA-NI SHA-256
// ---------------------------------------------------------------------------

/// SHA-256 compression over whole 64-byte blocks with the SHA-NI
/// extension, bit-identical to the software compressor.
///
/// The caller must have checked [`sha_available`].
pub(crate) fn sha256_compress_ni(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert!(blocks.len().is_multiple_of(64));
    // SAFETY: caller contract (dispatch checks sha_available()).
    unsafe { compress_blocks_shani(state, blocks) }
}

#[target_feature(enable = "sha", enable = "ssse3", enable = "sse4.1")]
fn compress_blocks_shani(state: &mut [u32; 8], blocks: &[u8]) {
    // SAFETY: every load/store below is an in-bounds unaligned access; the
    // SHA/SSE ops are value-only.
    unsafe {
        let shuf = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
        // Pack the state into the SHA-NI register layout: ABEF / CDGH.
        let abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let efgh = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let cdab = _mm_shuffle_epi32(abcd, 0xB1);
        let efgh = _mm_shuffle_epi32(efgh, 0x1B);
        let mut s0 = _mm_alignr_epi8(cdab, efgh, 8); // ABEF
        let mut s1 = _mm_blend_epi16(efgh, cdab, 0xF0); // CDGH

        for block in blocks.chunks_exact(64) {
            let save0 = s0;
            let save1 = s1;
            let mut msg: [__m128i; 4] = core::array::from_fn(|i| {
                _mm_shuffle_epi8(
                    _mm_loadu_si128(block.as_ptr().add(16 * i) as *const __m128i),
                    shuf,
                )
            });
            for g in 0..16 {
                let k = _mm_loadu_si128(crate::sha256::K.as_ptr().add(4 * g) as *const __m128i);
                let wk = _mm_add_epi32(msg[g % 4], k);
                s1 = _mm_sha256rnds2_epu32(s1, s0, wk);
                s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(wk, 0x0E));
                if g < 12 {
                    // w[16+4g..20+4g] = σ1-extend(σ0-extend(w0..4) + w9..13).
                    let tmp = _mm_add_epi32(
                        _mm_sha256msg1_epu32(msg[g % 4], msg[(g + 1) % 4]),
                        _mm_alignr_epi8(msg[(g + 3) % 4], msg[(g + 2) % 4], 4),
                    );
                    msg[g % 4] = _mm_sha256msg2_epu32(tmp, msg[(g + 3) % 4]);
                }
            }
            s0 = _mm_add_epi32(s0, save0);
            s1 = _mm_add_epi32(s1, save1);
        }

        // Unpack ABEF / CDGH back to a..h.
        let feba = _mm_shuffle_epi32(s0, 0x1B);
        let dchg = _mm_shuffle_epi32(s1, 0xB1);
        let abcd = _mm_blend_epi16(feba, dchg, 0xF0);
        let efgh = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, efgh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes;

    fn lcg_bytes(n: usize, seed: &mut u64) -> Vec<u8> {
        (0..n)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (*seed >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn hw_cipher_matches_table_cipher() {
        if !aes_available() {
            eprintln!("skipping: no AES-NI on this CPU");
            return;
        }
        let mut seed = 42u64;
        for key_len in [16usize, 24, 32] {
            let key = lcg_bytes(key_len, &mut seed);
            let table = Aes::new(&key).unwrap();
            let hw = HwAes::new(&key).unwrap();
            for _ in 0..8 {
                let block: [u8; 16] = lcg_bytes(16, &mut seed).try_into().unwrap();
                let expected = table.encrypt(block);
                let mut got = block;
                hw.encrypt_block(&mut got);
                assert_eq!(got, expected, "key_len {key_len}");
            }
        }
    }

    #[test]
    fn hw_ctr_matches_table_ctr_at_odd_lengths() {
        if !aes_available() {
            eprintln!("skipping: no AES-NI on this CPU");
            return;
        }
        let mut seed = 7u64;
        let key = lcg_bytes(32, &mut seed);
        let table = crate::gcm::AesGcm::with_backend(crate::engine::CryptoBackend::Table, &key)
            .expect("table always available");
        let hw = HwAes::new(&key).unwrap();
        let j0: [u8; 16] = {
            let mut j = [0u8; 16];
            j[..12].copy_from_slice(&lcg_bytes(12, &mut seed));
            j[15] = 1;
            j
        };
        // Lengths straddling the NI (128 B) and VAES (256 B) chunk sizes.
        for len in [0usize, 1, 15, 16, 17, 127, 128, 129, 255, 256, 257, 1000, 4096] {
            let data = lcg_bytes(len, &mut seed);
            let mut expected = data.clone();
            table.ctr_xor_for_tests(&j0, &mut expected);
            let mut got = data;
            hw.ctr_xor(&j0, &mut got);
            assert_eq!(got, expected, "len {len}");
        }
    }

    #[test]
    fn gf_mul_hw_matches_reference() {
        if !aes_available() {
            eprintln!("skipping: no PCLMULQDQ on this CPU");
            return;
        }
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (1, u128::MAX),
            (u128::MAX, u128::MAX),
            (1 << 127, 3),
            (0x0388_dace_60b6_a392_f328_c2b9_71b2_fe78, 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e),
        ];
        for (a, b) in cases {
            assert_eq!(gf_mul_hw(a, b), crate::gcm::gf_mul(a, b), "{a:#x} * {b:#x}");
        }
        let mut state = 3u128;
        for _ in 0..200 {
            state = state.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E3779B97F4A7C15);
            let a = state;
            state = state.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E3779B97F4A7C15);
            let b = state;
            assert_eq!(gf_mul_hw(a, b), crate::gcm::gf_mul(a, b));
        }
    }

    #[test]
    fn aggregated_ghash_matches_per_block_reference() {
        if !aes_available() {
            eprintln!("skipping: no PCLMULQDQ on this CPU");
            return;
        }
        let mut seed = 5u64;
        let h = u128::from_be_bytes(lcg_bytes(16, &mut seed).try_into().unwrap());
        let gh = HwGhash::new(h);
        // Lengths straddling the 64-byte aggregation boundary and partial
        // final blocks.
        for (aad_len, ct_len) in
            [(0usize, 0usize), (0, 16), (20, 63), (16, 64), (5, 65), (64, 128), (13, 257), (0, 640)]
        {
            let aad = lcg_bytes(aad_len, &mut seed);
            let ct = lcg_bytes(ct_len, &mut seed);
            // Per-block reference on the table backend's gf_mul.
            let mut y = 0u128;
            for chunk in aad.chunks(16).chain(ct.chunks(16)) {
                let mut buf = [0u8; 16];
                buf[..chunk.len()].copy_from_slice(chunk);
                y = crate::gcm::gf_mul(y ^ u128::from_be_bytes(buf), h);
            }
            let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
            let expected = crate::gcm::gf_mul(y ^ lens, h);
            assert_eq!(gh.ghash(&aad, &ct), expected, "aad {aad_len} ct {ct_len}");
        }
    }

    #[test]
    fn shani_compress_matches_software() {
        if !sha_available() {
            eprintln!("skipping: no SHA-NI on this CPU");
            return;
        }
        let mut seed = 99u64;
        for nblocks in [1usize, 2, 3, 7] {
            let data = lcg_bytes(64 * nblocks, &mut seed);
            let mut hw_state = crate::sha256::H0;
            sha256_compress_ni(&mut hw_state, &data);
            let mut sw_state = crate::sha256::H0;
            crate::sha256::compress_soft(&mut sw_state, &data);
            assert_eq!(hw_state, sw_state, "nblocks {nblocks}");
        }
    }
}
