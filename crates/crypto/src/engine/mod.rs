//! Runtime-dispatched crypto engine: one backend decision for every
//! primitive on the trusted path.
//!
//! The enclave's threat model is data-dependent memory access (Section
//! 2.3 of the paper), and the original table-based AES/GHASH is exactly
//! that — S-box and field-multiply lookups indexed by secret bytes. This
//! module selects between three backends at process start, mirroring the
//! sort kernel's ISA dispatch (`OLIVE_SORT_KERNEL`):
//!
//! | backend | AES-CTR | GHASH | SHA-256 | constant time | needs |
//! |---------|---------|-------|---------|---------------|-------|
//! | `hw`    | AES-NI, VAES×16 when available | PCLMULQDQ | SHA-NI | yes (ISA) | x86-64 + aes+pclmulqdq(+sha) |
//! | `ct`    | bitsliced ×4 | branchless shift/xor | software | yes (construction) | nothing |
//! | `table` | S-box lookups | bit loop with branches | software | **no** | nothing |
//!
//! `OLIVE_CRYPTO=hw|ct|table` pins the backend; unset picks `hw` when the
//! CPU supports it and `ct` otherwise (the portable default — `table`
//! survives only as the differential reference). All three produce
//! bitwise-identical ciphertexts, tags and digests, asserted by the
//! vector and proptest suites in `tests/engine_vectors.rs`.
//!
//! The decision is read once and cached ([`crypto_backend`]); everything
//! that builds an [`AesGcm`], [`Sha256`] or [`HmacSha256`] without an
//! explicit backend inherits it, so one knob governs the whole
//! deployment. [`CryptoEngine`] packages the decision as a value that the
//! TEE layer threads through enclave sealing, attestation and the client
//! secure channel.
//!
//! [`AesGcm`]: crate::gcm::AesGcm
//! [`Sha256`]: crate::sha256::Sha256
//! [`HmacSha256`]: crate::hmac::HmacSha256

use std::sync::OnceLock;

use crate::gcm::AesGcm;
use crate::hmac::HmacSha256;
use crate::sha256::{Sha256, DIGEST_LEN};
use crate::CryptoError;

pub(crate) mod ct;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod hw;

/// Which implementation family services the symmetric primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoBackend {
    /// x86-64 ISA extensions: AES-NI/VAES, PCLMULQDQ, SHA-NI.
    Hw,
    /// Bitsliced constant-time software (portable default).
    Ct,
    /// The original lookup-table code — **not** cache-timing-safe; kept as
    /// the differential reference behind `OLIVE_CRYPTO=table`.
    Table,
}

impl CryptoBackend {
    /// True when this backend can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            CryptoBackend::Hw => hw::aes_available(),
            #[cfg(not(target_arch = "x86_64"))]
            CryptoBackend::Hw => false,
            CryptoBackend::Ct | CryptoBackend::Table => true,
        }
    }

    /// The knob spelling (`hw`/`ct`/`table`).
    pub fn name(self) -> &'static str {
        match self {
            CryptoBackend::Hw => "hw",
            CryptoBackend::Ct => "ct",
            CryptoBackend::Table => "table",
        }
    }
}

impl core::fmt::Display for CryptoBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every backend the current CPU can run, fastest first (what the
/// differential suites iterate over).
pub fn available_backends() -> Vec<CryptoBackend> {
    [CryptoBackend::Hw, CryptoBackend::Ct, CryptoBackend::Table]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Process-wide backend selection: `OLIVE_CRYPTO=hw|ct|table` pins it
/// (falling back with a warning if the CPU lacks the requested ISA),
/// anything else (or unset) auto-detects `hw`, then `ct`. Read once and
/// cached; code that needs several backends in one process uses the
/// `*_with_backend` constructors instead.
pub fn crypto_backend() -> CryptoBackend {
    static BACKEND: OnceLock<CryptoBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let requested = match std::env::var("OLIVE_CRYPTO").as_deref() {
            Ok("hw") => Some(CryptoBackend::Hw),
            Ok("ct") => Some(CryptoBackend::Ct),
            Ok("table") => Some(CryptoBackend::Table),
            Ok(other) => {
                eprintln!("OLIVE_CRYPTO={other:?} is not \"hw\", \"ct\" or \"table\"; using auto");
                None
            }
            Err(_) => None,
        };
        match requested {
            Some(b) if b.is_available() => b,
            Some(b) => {
                eprintln!("OLIVE_CRYPTO={} unavailable on this CPU; using ct", b.name());
                CryptoBackend::Ct
            }
            None if CryptoBackend::Hw.is_available() => CryptoBackend::Hw,
            None => CryptoBackend::Ct,
        }
    })
}

/// A crypto backend decision packaged as a value.
///
/// The TEE layer holds one per enclave / client session so the whole
/// trusted path — sealing, attestation hashing, session-key derivation,
/// upload encryption — runs on the same implementation family, and tests
/// can pin a specific backend end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CryptoEngine {
    backend: CryptoBackend,
}

impl Default for CryptoEngine {
    fn default() -> Self {
        Self::auto()
    }
}

impl CryptoEngine {
    /// The process-default engine ([`crypto_backend`]).
    pub fn auto() -> Self {
        CryptoEngine { backend: crypto_backend() }
    }

    /// An engine pinned to `backend`, or `None` when the CPU can't run it.
    pub fn with_backend(backend: CryptoBackend) -> Option<Self> {
        backend.is_available().then_some(CryptoEngine { backend })
    }

    /// The backend this engine dispatches to.
    pub fn backend(self) -> CryptoBackend {
        self.backend
    }

    /// An AES-GCM key (16/24/32 bytes) on this engine's backend.
    pub fn aes_gcm(self, key: &[u8]) -> Result<AesGcm, CryptoError> {
        AesGcm::with_backend(self.backend, key)
    }

    /// A fresh SHA-256 hasher on this engine's backend.
    pub fn sha256(self) -> Sha256 {
        Sha256::with_backend(self.backend)
    }

    /// One-shot SHA-256.
    pub fn digest(self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.sha256();
        h.update(data);
        h.finalize()
    }

    /// An HMAC-SHA256 context keyed with `key` on this engine's backend.
    pub fn hmac(self, key: &[u8]) -> HmacSha256 {
        HmacSha256::with_backend(self.backend, key)
    }

    /// One-shot HMAC-SHA256.
    pub fn mac(self, key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.hmac(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time MAC verification.
    pub fn verify_mac(self, key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&self.mac(key, data), tag)
    }

    /// HKDF-SHA256: Expand(Extract(salt, ikm), info, len).
    pub fn hkdf(self, salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
        crate::hkdf::derive_with_backend(self.backend, salt, ikm, info, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_and_ct_always_available() {
        assert!(CryptoBackend::Table.is_available());
        assert!(CryptoBackend::Ct.is_available());
        assert!(available_backends().contains(&CryptoBackend::Ct));
    }

    #[test]
    fn env_knob_pins_backend() {
        // The cached process-wide selection honors OLIVE_CRYPTO when the
        // suite was launched with it (the CI differential passes).
        match std::env::var("OLIVE_CRYPTO").as_deref() {
            Ok("table") => assert_eq!(crypto_backend(), CryptoBackend::Table),
            Ok("ct") => assert_eq!(crypto_backend(), CryptoBackend::Ct),
            Ok("hw") if CryptoBackend::Hw.is_available() => {
                assert_eq!(crypto_backend(), CryptoBackend::Hw)
            }
            _ => assert!(crypto_backend().is_available()),
        }
    }

    #[test]
    fn engine_with_unavailable_backend_is_none() {
        #[cfg(not(target_arch = "x86_64"))]
        assert!(CryptoEngine::with_backend(CryptoBackend::Hw).is_none());
        assert!(CryptoEngine::with_backend(CryptoBackend::Table).is_some());
    }
}
