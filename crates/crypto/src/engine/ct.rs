//! The `ct` crypto backend: bitsliced constant-time software AES and a
//! branchless shift/xor GHASH.
//!
//! The table backend ([`crate::aes`]) indexes `SBOX` with secret bytes —
//! a classic cache-timing side channel, and exactly the class of
//! data-dependent memory access Olive's threat model grants the adversary
//! (Section 2.3). This backend removes every secret-indexed lookup and
//! secret-conditioned branch:
//!
//! * **SubBytes is bitsliced.** 64 state bytes (four AES blocks) are
//!   transposed into 8 × `u64` words — word `b`, bit `i` holds bit `b` of
//!   byte lane `i` — and the S-box is *computed* on all 64 lanes at once:
//!   the GF(2^8) inversion `x^254` via a fixed square-and-multiply chain of
//!   word-wide AND/XOR network multiplications, then the FIPS 197 affine
//!   map as word rotations. No table, no branch, identical instruction
//!   stream for every input.
//! * **ShiftRows / MixColumns / AddRoundKey** are fixed permutations and
//!   XOR/`xtime` arithmetic — data-independent by construction.
//! * **GHASH** is the SP 800-38D shift-and-xor loop with the two
//!   secret-dependent branches of the table backend's `gf_mul` replaced by
//!   mask arithmetic.
//!
//! Throughput is ~tens of MiB/s — comparable to the table backend, far
//! below [`super::hw`] — but it runs on every architecture and leaks
//! nothing through the cache, making it the portable default wherever
//! AES-NI is absent.

use crate::aes::MAX_ROUND_KEYS;
use crate::CryptoError;

/// Number of AES blocks processed per bitsliced batch (64 byte lanes).
pub(crate) const BATCH_BLOCKS: usize = 4;

// ---------------------------------------------------------------------------
// Bitslicing: 64 byte lanes <-> 8 bit-plane words
// ---------------------------------------------------------------------------

/// 8×8 bit-matrix transpose of a `u64` viewed as 8 rows of 8 bits
/// (row `r` = bits `8r..8r+8`): bit `8r + c` ↔ bit `8c + r`. The classic
/// three-round masked-swap network (an involution).
#[inline(always)]
fn transpose8x8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Bitslices 64 bytes into 8 bit-plane words: bit `i` of `w[b]` = bit `b`
/// of `bytes[i]`.
#[inline]
fn bitslice(bytes: &[u8; 64]) -> [u64; 8] {
    let mut t = [0u64; 8];
    for (j, tj) in t.iter_mut().enumerate() {
        *tj = transpose8x8(u64::from_le_bytes(bytes[8 * j..8 * j + 8].try_into().unwrap()));
    }
    let mut w = [0u64; 8];
    for (b, wb) in w.iter_mut().enumerate() {
        for (j, tj) in t.iter().enumerate() {
            *wb |= ((tj >> (8 * b)) & 0xFF) << (8 * j);
        }
    }
    w
}

/// Inverse of [`bitslice`].
#[inline]
fn unbitslice(w: &[u64; 8], bytes: &mut [u8; 64]) {
    for j in 0..8 {
        let mut tj = 0u64;
        for (b, wb) in w.iter().enumerate() {
            tj |= ((wb >> (8 * j)) & 0xFF) << (8 * b);
        }
        bytes[8 * j..8 * j + 8].copy_from_slice(&transpose8x8(tj).to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Bitsliced GF(2^8) arithmetic and the computed S-box
// ---------------------------------------------------------------------------

/// Word-wide GF(2^8) multiplication of 64 independent lanes: schoolbook
/// polynomial product (AND/XOR network) followed by reduction modulo the
/// AES polynomial x^8 + x^4 + x^3 + x + 1. Squaring falls out of `a == b`
/// (cross terms cancel under XOR).
#[inline]
fn bs_mul(a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
    let mut t = [0u64; 15];
    for i in 0..8 {
        for j in 0..8 {
            t[i + j] ^= a[i] & b[j];
        }
    }
    // x^8 ≡ x^4 + x^3 + x + 1: fold degrees 14..8 downward (high to low so
    // folded contributions to still-high degrees are folded in turn).
    for deg in (8..15).rev() {
        let v = t[deg];
        t[deg - 8] ^= v;
        t[deg - 7] ^= v;
        t[deg - 5] ^= v;
        t[deg - 4] ^= v;
    }
    t[..8].try_into().unwrap()
}

#[inline]
fn bs_square(a: &[u64; 8]) -> [u64; 8] {
    bs_mul(a, a)
}

/// The AES S-box on 64 lanes at once: GF(2^8) inversion as x^254 through
/// the chain x² · x³ · … (254 = 240 + 12 + 2), then the affine map
/// s = x ⊕ rotl1(x) ⊕ rotl2(x) ⊕ rotl3(x) ⊕ rotl4(x) ⊕ 0x63 as bit-plane
/// rotations (0 inverts to 0 under x^254, matching FIPS 197).
#[inline]
fn bs_sbox(q: &mut [u64; 8]) {
    let x = *q;
    let x2 = bs_square(&x);
    let x3 = bs_mul(&x2, &x);
    let x12 = bs_square(&bs_square(&x3));
    let x15 = bs_mul(&x12, &x3);
    let x240 = bs_square(&bs_square(&bs_square(&bs_square(&x15))));
    let x252 = bs_mul(&x240, &x12);
    let inv = bs_mul(&x252, &x2); // x^254

    // Affine: bit b of s = inv_b ^ inv_{b-1} ^ inv_{b-2} ^ inv_{b-3} ^
    // inv_{b-4} (mod 8) ^ bit b of 0x63 (folded in as an all-ones mask —
    // the constant is public, but this module stays branch-free even on
    // public bits so the ct_lint scan can be strict).
    for b in 0..8 {
        let mut s = inv[b];
        for r in 1..5 {
            s ^= inv[(b + 8 - r) % 8];
        }
        q[b] = s ^ 0u64.wrapping_sub((0x63 >> b) & 1);
    }
}

/// SubBytes over 64 bytes (four blocks) via the bitsliced S-box.
#[inline]
fn sub_bytes64(bytes: &mut [u8; 64]) {
    let mut w = bitslice(bytes);
    bs_sbox(&mut w);
    unbitslice(&w, bytes);
}

// ---------------------------------------------------------------------------
// The non-S-box round functions (data-independent by construction)
// ---------------------------------------------------------------------------

#[inline(always)]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

#[inline(always)]
fn shift_rows(block: &mut [u8; 16]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * col + row] = orig[4 * ((col + row) % 4) + row];
        }
    }
}

#[inline(always)]
fn mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [block[4 * col], block[4 * col + 1], block[4 * col + 2], block[4 * col + 3]];
        let x = [xtime(c[0]), xtime(c[1]), xtime(c[2]), xtime(c[3])];
        block[4 * col] = x[0] ^ x[1] ^ c[1] ^ c[2] ^ c[3];
        block[4 * col + 1] = c[0] ^ x[1] ^ x[2] ^ c[2] ^ c[3];
        block[4 * col + 2] = c[0] ^ c[1] ^ x[2] ^ x[3] ^ c[3];
        block[4 * col + 3] = x[0] ^ c[0] ^ c[1] ^ c[2] ^ x[3];
    }
}

#[inline(always)]
fn add_round_key(block: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        block[i] ^= rk[i];
    }
}

// ---------------------------------------------------------------------------
// The cipher
// ---------------------------------------------------------------------------

/// An expanded AES key for the constant-time backend (128/192/256-bit).
/// Forward cipher only — GCM needs nothing else.
#[derive(Clone)]
pub(crate) struct CtAes {
    round_keys: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
}

impl CtAes {
    /// FIPS 197 key expansion ([`crate::aes::expand_key`]) with SubWord
    /// computed through the bitsliced S-box — the schedule touches key
    /// material, so it must be as lookup-free as the data path.
    pub(crate) fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let (round_keys, rounds) = crate::aes::expand_key(key, sub_word)?;
        Ok(CtAes { round_keys, rounds })
    }

    /// Encrypts four blocks in place, SubBytes amortized across the 64
    /// shared bitsliced lanes.
    fn encrypt4(&self, batch: &mut [u8; 64]) {
        for b in 0..BATCH_BLOCKS {
            let block: &mut [u8; 16] = (&mut batch[16 * b..16 * b + 16]).try_into().unwrap();
            add_round_key(block, &self.round_keys[0]);
        }
        for r in 1..self.rounds {
            sub_bytes64(batch);
            for b in 0..BATCH_BLOCKS {
                let block: &mut [u8; 16] = (&mut batch[16 * b..16 * b + 16]).try_into().unwrap();
                shift_rows(block);
                mix_columns(block);
                add_round_key(block, &self.round_keys[r]);
            }
        }
        sub_bytes64(batch);
        for b in 0..BATCH_BLOCKS {
            let block: &mut [u8; 16] = (&mut batch[16 * b..16 * b + 16]).try_into().unwrap();
            shift_rows(block);
            add_round_key(block, &self.round_keys[self.rounds]);
        }
    }

    /// Encrypts a single 16-byte block in place (batch of four with three
    /// dummy lanes — single blocks are off the bulk path).
    pub(crate) fn encrypt_block(&self, block: &mut [u8; 16]) {
        let mut batch = [0u8; 64];
        batch[..16].copy_from_slice(block);
        self.encrypt4(&mut batch);
        block.copy_from_slice(&batch[..16]);
    }

    /// CTR keystream XOR, bitwise identical to the table backend's
    /// [`crate::gcm`] counter mode (32-bit big-endian counter increment in
    /// the last word of `j0`).
    pub(crate) fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes(j0[12..16].try_into().unwrap());
        for chunk in data.chunks_mut(16 * BATCH_BLOCKS) {
            let mut batch = [0u8; 64];
            for b in 0..BATCH_BLOCKS {
                let block: &mut [u8; 16] = (&mut batch[16 * b..16 * b + 16]).try_into().unwrap();
                *block = *j0;
                block[12..16].copy_from_slice(&counter.wrapping_add(b as u32 + 1).to_be_bytes());
            }
            self.encrypt4(&mut batch);
            counter = counter.wrapping_add(chunk.len().div_ceil(16) as u32);
            for (d, k) in chunk.iter_mut().zip(batch.iter()) {
                *d ^= k;
            }
        }
    }
}

impl core::fmt::Debug for CtAes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CtAes").field("rounds", &self.rounds).finish_non_exhaustive()
    }
}

/// SubWord for the key schedule: four real lanes, sixty dummy lanes.
fn sub_word(w: [u8; 4]) -> [u8; 4] {
    let mut buf = [0u8; 64];
    buf[..4].copy_from_slice(&w);
    sub_bytes64(&mut buf);
    [buf[0], buf[1], buf[2], buf[3]]
}

// ---------------------------------------------------------------------------
// Branchless GHASH
// ---------------------------------------------------------------------------

/// The GHASH reduction constant R = 11100001 || 0^120.
const R: u128 = 0xE100_0000_0000_0000_0000_0000_0000_0000;

/// GF(2^128) multiplication as in SP 800-38D §6.3, with the table
/// backend's two secret-conditioned branches replaced by mask arithmetic —
/// same result bit for bit, no data-dependent control flow.
pub(crate) fn gf_mul_ct(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        let bit = (y >> (127 - i)) & 1;
        z ^= v & bit.wrapping_neg();
        let lsb = v & 1;
        v = (v >> 1) ^ (R & lsb.wrapping_neg());
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes, SBOX};

    #[test]
    fn bitslice_round_trips_and_matches_naive() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let w = bitslice(&bytes);
        // Naive reference: bit i of w[b] = bit b of bytes[i].
        for (b, wb) in w.iter().enumerate() {
            let mut expect = 0u64;
            for (i, &byte) in bytes.iter().enumerate() {
                expect |= (((byte >> b) & 1) as u64) << i;
            }
            assert_eq!(*wb, expect, "plane {b}");
        }
        let mut back = [0u8; 64];
        unbitslice(&w, &mut back);
        assert_eq!(back, bytes);
    }

    #[test]
    fn bitsliced_sbox_matches_table() {
        // All 256 byte values across four batches of 64 lanes.
        for chunk in 0..4 {
            let mut bytes = [0u8; 64];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = (chunk * 64 + i) as u8;
            }
            let orig = bytes;
            sub_bytes64(&mut bytes);
            for (i, &o) in orig.iter().enumerate() {
                assert_eq!(bytes[i], SBOX[o as usize], "sbox({o:#x})");
            }
        }
    }

    #[test]
    fn ct_cipher_matches_table_cipher() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 24) as u8
        };
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|_| next()).collect();
            let table = Aes::new(&key).unwrap();
            let ct = CtAes::new(&key).unwrap();
            for _ in 0..8 {
                let mut block = [0u8; 16];
                for b in &mut block {
                    *b = next();
                }
                let expected = table.encrypt(block);
                let mut got = block;
                ct.encrypt_block(&mut got);
                assert_eq!(got, expected, "key_len {key_len}");
            }
        }
    }

    #[test]
    fn gf_mul_ct_matches_reference() {
        // The table backend's gf_mul is the differential reference.
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u128::MAX, u128::MAX),
            (0x0388_dace_60b6_a392_f328_c2b9_71b2_fe78, 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e),
            (1 << 127, 3),
        ];
        for (a, b) in cases {
            assert_eq!(gf_mul_ct(a, b), crate::gcm::gf_mul(a, b));
            assert_eq!(gf_mul_ct(b, a), crate::gcm::gf_mul(a, b), "commutativity");
        }
        let mut state = 7u128;
        for _ in 0..50 {
            state = state.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E3779B97F4A7C15);
            let a = state;
            state = state.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E3779B97F4A7C15);
            let b = state;
            assert_eq!(gf_mul_ct(a, b), crate::gcm::gf_mul(a, b));
        }
    }
}
