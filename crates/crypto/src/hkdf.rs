//! RFC 5869 HKDF with SHA-256.
//!
//! After remote attestation completes a Diffie–Hellman exchange, the enclave
//! and each client derive their AES-GCM session key with
//! `HKDF(salt = RA transcript hash, ikm = DH shared secret)`.

use crate::engine::{crypto_backend, CryptoBackend};
use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    extract_with_backend(crypto_backend(), salt, ikm)
}

/// HKDF-Expand: derives `len` bytes of output key material (`len <= 255*32`).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    expand_with_backend(crypto_backend(), prk, info, len)
}

/// Convenience wrapper combining extract and expand.
pub struct Hkdf;

impl Hkdf {
    /// `derive(salt, ikm, info, len)` = Expand(Extract(salt, ikm), info, len).
    pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
        derive_with_backend(crypto_backend(), salt, ikm, info, len)
    }
}

fn extract_with_backend(backend: CryptoBackend, salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::with_backend(backend, salt);
    h.update(ikm);
    h.finalize()
}

fn expand_with_backend(
    backend: CryptoBackend,
    prk: &[u8; DIGEST_LEN],
    info: &[u8],
    len: usize,
) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF-Expand output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut h = HmacSha256::with_backend(backend, prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        t = block.to_vec();
        let take = (len - okm.len()).min(DIGEST_LEN);
        okm.extend_from_slice(&block[..take]);
        counter += 1;
    }
    okm
}

/// HKDF pinned to a specific crypto backend (the engine's entry point;
/// `HmacSha256` carries the backend through both stages).
pub(crate) fn derive_with_backend(
    backend: CryptoBackend,
    salt: &[u8],
    ikm: &[u8],
    info: &[u8],
    len: usize,
) -> Vec<u8> {
    let prk = extract_with_backend(backend, salt, ikm);
    expand_with_backend(backend, &prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 5869 Appendix A, test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt = from_hex("000102030405060708090a0b0c");
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Appendix A, test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let okm = Hkdf::derive(&salt, &ikm, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    // RFC 5869 Appendix A, test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let okm = Hkdf::derive(b"", &[0x0b; 22], b"", 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    #[should_panic(expected = "output too long")]
    fn expand_length_cap() {
        hkdf_expand(&[0u8; 32], b"", 255 * 32 + 1);
    }

    #[test]
    fn distinct_info_distinct_keys() {
        let a = Hkdf::derive(b"salt", b"shared-secret", b"client-17", 32);
        let b = Hkdf::derive(b"salt", b"shared-secret", b"client-18", 32);
        assert_ne!(a, b);
    }
}
