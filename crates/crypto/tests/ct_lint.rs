//! Grep-style lint over the constant-time backend sources: the `ct` and
//! `hw` engine modules must contain **no secret-indexed table lookups**
//! (`SBOX[b as usize]`-style) and no secret-conditioned control flow of
//! the kinds the table backend uses.
//!
//! Source scanning is a blunt instrument, so the rules are written to be
//! mechanically checkable: the backend modules simply never use the
//! patterns, rather than using them "safely". Implementation code is
//! scanned up to its `#[cfg(test)]` module (tests are free to index the
//! S-box — they verify against it).

use std::path::Path;

/// Implementation slice of a source file: everything before its unit-test
/// module, with comments stripped (docs may *name* the banned patterns;
/// only code is held to them).
fn implementation_of(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/engine").join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let implementation = src.split("#[cfg(test)]").next().expect("split yields at least one piece");
    implementation
        .lines()
        .map(|line| line.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_clean(name: &str, src: &str) {
    // Secret-indexed lookup tables: the table backend's S-box (and any
    // lookalike) plus the general `table[byte as usize]` indexing shape.
    // The constant-time modules index only with loop counters, which are
    // already `usize` and never need a cast inside the brackets.
    for forbidden in ["SBOX", "LUT", "as usize]", "lookup"] {
        assert!(
            !src.contains(forbidden),
            "{name}: found {forbidden:?} — secret-indexed table lookups are banned in the \
             constant-time backends"
        );
    }
    // Secret-conditioned branching: the shift/xor GHASH and the bitsliced
    // S-box must select with masks, never `if bit == 1`. Public-structure
    // conditionals in these modules are length/feature checks, which are
    // written as matches/guards on lengths — `if` on a masked bit value is
    // the telltale pattern of the table code.
    for forbidden in ["& 1 == 1", "& 1 != 0", "== 1 {"] {
        assert!(
            !src.contains(forbidden),
            "{name}: found {forbidden:?} — secret-bit branches are banned in the constant-time \
             backends (use mask arithmetic)"
        );
    }
}

#[test]
fn ct_backend_has_no_secret_indexed_lookups_or_branches() {
    let src = implementation_of("ct.rs");
    assert_clean("engine/ct.rs", &src);
    // Sanity: the scan actually covered the implementation.
    assert!(src.contains("bs_sbox"), "scan target drifted — bitsliced S-box not found");
}

#[test]
fn hw_backend_has_no_secret_indexed_lookups_or_branches() {
    let src = implementation_of("hw.rs");
    assert_clean("engine/hw.rs", &src);
    assert!(src.contains("_mm_aesenc_si128"), "scan target drifted — AES-NI rounds not found");
}

/// The table backend is *supposed* to contain the forbidden patterns —
/// if it stops matching, the lint above has lost its teeth.
#[test]
fn table_backend_still_triggers_the_lint() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/aes.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let implementation = src.split("#[cfg(test)]").next().unwrap();
    assert!(
        implementation.contains("SBOX") && implementation.contains("as usize]"),
        "table backend no longer matches the lint patterns; update ct_lint.rs"
    );
}
