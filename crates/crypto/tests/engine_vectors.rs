//! Backend equivalence for the crypto engine: every available backend
//! (`hw`, `ct`, `table`) must produce bitwise-identical AES-GCM
//! ciphertexts/tags and SHA-256/HMAC digests — pinned by NIST/RFC test
//! vectors on each backend, then by a proptest differential suite over
//! random keys, nonces, AAD and lengths (empty and non-block-aligned
//! included).

use olive_crypto::gcm::AesGcm;
use olive_crypto::hmac::HmacSha256;
use olive_crypto::sha256::Sha256;
use olive_crypto::{available_backends, CryptoEngine, CryptoError};
use proptest::collection::vec;
use proptest::prelude::*;

fn from_hex(s: &str) -> Vec<u8> {
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

/// NIST GCM spec (Appendix B) cases 1–4 (AES-128) plus case 16 (AES-256),
/// run on **every** backend the CPU offers.
#[test]
fn nist_gcm_vectors_on_all_backends() {
    struct Case {
        key: &'static str,
        nonce: &'static str,
        pt: &'static str,
        aad: &'static str,
        out: &'static str,
    }
    let cases = [
        Case {
            key: "00000000000000000000000000000000",
            nonce: "000000000000000000000000",
            pt: "",
            aad: "",
            out: "58e2fccefa7e3061367f1d57a4e7455a",
        },
        Case {
            key: "00000000000000000000000000000000",
            nonce: "000000000000000000000000",
            pt: "00000000000000000000000000000000",
            aad: "",
            out: "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf",
        },
        Case {
            key: "feffe9928665731c6d6a8f9467308308",
            nonce: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            aad: "",
            out: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                  21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985\
                  4d5c2af327cd64a62cf35abd2ba6fab4",
        },
        Case {
            key: "feffe9928665731c6d6a8f9467308308",
            nonce: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            out: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                  21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091\
                  5bc94fbc3221a5db94fae95ae7121a47",
        },
        Case {
            key: "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
            nonce: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            out: "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                  8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662\
                  76fc6ece0f4e1768cddf8853bb2d551b",
        },
    ];
    let backends = available_backends();
    assert!(backends.len() >= 2, "ct and table must always be available");
    for (i, case) in cases.iter().enumerate() {
        let nonce: [u8; 12] = from_hex(case.nonce).try_into().unwrap();
        let pt = from_hex(case.pt);
        let aad = from_hex(case.aad);
        let expected = case.out.replace(' ', "");
        for &backend in &backends {
            let g = AesGcm::with_backend(backend, &from_hex(case.key)).unwrap();
            let out = g.seal(&nonce, &pt, &aad);
            assert_eq!(hex(&out), expected, "case {i} backend {backend}");
            assert_eq!(g.open(&nonce, &out, &aad).unwrap(), pt, "case {i} backend {backend}");
        }
    }
}

/// FIPS 180-4 / RFC 6234 SHA-256 vectors on every backend.
#[test]
fn sha256_vectors_on_all_backends() {
    let cases: [(&[u8], &str); 3] = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for backend in available_backends() {
        for (msg, digest) in cases {
            let mut h = Sha256::with_backend(backend);
            h.update(msg);
            assert_eq!(hex(&h.finalize()), digest, "backend {backend}");
        }
        // The million-'a' vector exercises the bulk multi-block path.
        let mut h = Sha256::with_backend(backend);
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
            "backend {backend}"
        );
    }
}

/// RFC 4231 HMAC-SHA256 vectors on every backend (cases 1, 2 and the
/// longer-than-block-size key of case 6).
#[test]
fn hmac_vectors_on_all_backends() {
    for backend in available_backends() {
        let mac = |key: &[u8], data: &[u8]| {
            let mut h = HmacSha256::with_backend(backend, key);
            h.update(data);
            h.finalize()
        };
        assert_eq!(
            hex(&mac(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            "backend {backend}"
        );
        assert_eq!(
            hex(&mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            "backend {backend}"
        );
        assert_eq!(
            hex(&mac(&[0xaa; 131], b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            "backend {backend}"
        );
    }
}

/// The engine handle routes every primitive to its backend and the
/// results agree across engines.
#[test]
fn engine_handles_agree() {
    let engines: Vec<CryptoEngine> = available_backends()
        .into_iter()
        .map(|b| CryptoEngine::with_backend(b).expect("listed backends are available"))
        .collect();
    let reference = engines.last().expect("at least ct+table");
    for e in &engines {
        assert_eq!(e.digest(b"payload"), reference.digest(b"payload"));
        assert_eq!(e.mac(b"key", b"data"), reference.mac(b"key", b"data"));
        assert!(e.verify_mac(b"key", b"data", &reference.mac(b"key", b"data")));
        assert_eq!(
            e.hkdf(b"salt", b"ikm", b"info", 42),
            reference.hkdf(b"salt", b"ikm", b"info", 42)
        );
        let g = e.aes_gcm(&[9u8; 32]).unwrap();
        let r = reference.aes_gcm(&[9u8; 32]).unwrap();
        assert_eq!(g.seal(&[1; 12], b"x", b"a"), r.seal(&[1; 12], b"x", b"a"));
        assert_eq!(e.aes_gcm(&[0u8; 15]).unwrap_err(), CryptoError::BadLength);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential core: `hw == ct == table`, bitwise, on random
    /// keys/nonces/AAD/plaintexts — including empty and non-block-aligned
    /// lengths, key sizes 128/192/256, and payloads crossing the hw
    /// backend's 128-byte (AES-NI), 256-byte (VAES) and 64-byte (GHASH
    /// aggregation) chunk boundaries.
    #[test]
    fn gcm_backends_agree_bitwise(
        key in vec(any::<u8>(), 32),
        key_len in 0usize..3,
        nonce in vec(any::<u8>(), 12),
        aad in vec(any::<u8>(), 0..48),
        pt in vec(any::<u8>(), 0..600),
    ) {
        let key = &key[..[16, 24, 32][key_len]];
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let backends = available_backends();
        let sealed: Vec<Vec<u8>> = backends
            .iter()
            .map(|&b| AesGcm::with_backend(b, key).unwrap().seal(&nonce, &pt, &aad))
            .collect();
        for (b, s) in backends.iter().zip(&sealed) {
            prop_assert_eq!(s, &sealed[0], "backend {} disagrees", b);
        }
        // Cross-backend open: what one seals, every other opens.
        for &b in &backends {
            let g = AesGcm::with_backend(b, key).unwrap();
            prop_assert_eq!(g.open(&nonce, &sealed[0], &aad).unwrap(), pt.clone());
            prop_assert!(g.open(&nonce, &sealed[0], b"wrong-aad").is_err());
        }
    }

    /// SHA-256 and HMAC backends agree bitwise on arbitrary inputs and
    /// arbitrary incremental splits (exercising the buffered/bulk paths).
    #[test]
    fn hash_backends_agree_bitwise(
        data in vec(any::<u8>(), 0..800),
        split in 0usize..800,
        key in vec(any::<u8>(), 0..100),
    ) {
        let split = split.min(data.len());
        let backends = available_backends();
        let digests: Vec<[u8; 32]> = backends
            .iter()
            .map(|&b| {
                let mut h = Sha256::with_backend(b);
                h.update(&data[..split]);
                h.update(&data[split..]);
                h.finalize()
            })
            .collect();
        for d in &digests {
            prop_assert_eq!(d, &digests[0]);
        }
        let macs: Vec<[u8; 32]> = backends
            .iter()
            .map(|&b| {
                let mut h = HmacSha256::with_backend(b, &key);
                h.update(&data);
                h.finalize()
            })
            .collect();
        for m in &macs {
            prop_assert_eq!(m, &macs[0]);
        }
    }
}
