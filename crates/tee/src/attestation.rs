//! Simulated remote attestation (Section 2.2 of the paper).
//!
//! Real flow: the enclave produces a report containing its measurement
//! (MRENCLAVE) and user data; the quoting enclave signs it with an EPID
//! group key; the client forwards the quote to the Intel Attestation
//! Service which verifies the signature. Here a single
//! [`AttestationService`] plays both the quoting enclave and IAS: it signs
//! reports with a platform key whose public half clients pin.

use olive_crypto::dh::{self, DhKeyPair, Signature};
use olive_crypto::CryptoEngine;

/// SHA-256 measurement of the enclave's initial state (code + config),
/// the simulation's MRENCLAVE.
pub type Measurement = [u8; 32];

/// The body an enclave asks the platform to attest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Hash of the enclave's code identity.
    pub measurement: Measurement,
    /// The enclave's ephemeral DH public value, bound into the quote so the
    /// subsequent key exchange is authenticated.
    pub enclave_dh_public: u64,
    /// Free-form data (e.g. protocol version, round bounds).
    pub user_data: Vec<u8>,
}

impl Report {
    /// Canonical byte serialization signed by the platform.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 8 + 4 + self.user_data.len());
        out.extend_from_slice(&self.measurement);
        out.extend_from_slice(&self.enclave_dh_public.to_be_bytes());
        out.extend_from_slice(&(self.user_data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.user_data);
        out
    }

    /// Transcript hash used as the HKDF salt for session keys, binding the
    /// derived keys to this exact attestation.
    pub fn transcript_hash(&self) -> [u8; 32] {
        let mut h = CryptoEngine::auto().sha256();
        h.update(b"olive-ra-transcript-v1");
        h.update(&self.to_bytes());
        h.finalize()
    }
}

/// A platform-signed report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// The attested report.
    pub report: Report,
    /// Platform signature over the canonical report bytes.
    pub signature: Signature,
}

/// Attestation failure modes a client distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttestationError {
    /// The platform signature did not verify: the quote is forged or
    /// corrupted.
    BadSignature,
    /// The signature verified but the measurement is not the enclave the
    /// client expected — per Algorithm 1, the client must refuse to join
    /// the FL task.
    WrongMeasurement,
}

impl core::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttestationError::BadSignature => write!(f, "quote signature invalid"),
            AttestationError::WrongMeasurement => write!(f, "enclave measurement mismatch"),
        }
    }
}

impl std::error::Error for AttestationError {}

/// The simulated EPID/IAS: holds the platform signing key. `Clone` lets
/// the shard runtime keep its own handle for mid-round re-attestation of
/// a relaunched shard enclave (one platform, many quote requests).
#[derive(Clone)]
pub struct AttestationService {
    platform_key: DhKeyPair,
}

impl AttestationService {
    /// Creates a service with a key pair derived from `seed`.
    pub fn new(seed: [u8; 32]) -> Self {
        let mut tagged = seed;
        tagged[0] ^= 0xA5; // domain-separate from any enclave key seeds
        AttestationService { platform_key: DhKeyPair::from_seed(&tagged) }
    }

    /// The public verification key clients pin.
    pub fn public_key(&self) -> u64 {
        self.platform_key.public
    }

    /// Signs an enclave report, producing a quote (the EPID+IAS round trip
    /// collapsed into one call).
    pub fn quote(&self, report: Report) -> Quote {
        let signature = dh::sign(&self.platform_key, &report.to_bytes());
        Quote { report, signature }
    }
}

/// Client-side quote verification: checks the platform signature and the
/// expected measurement.
pub fn verify_quote(
    platform_public: u64,
    expected_measurement: &Measurement,
    quote: &Quote,
) -> Result<(), AttestationError> {
    if !dh::verify(platform_public, &quote.report.to_bytes(), &quote.signature) {
        return Err(AttestationError::BadSignature);
    }
    if &quote.report.measurement != expected_measurement {
        return Err(AttestationError::WrongMeasurement);
    }
    Ok(())
}

/// Computes the measurement of an enclave code identity string + config
/// bytes (what the `Enclave` constructor hashes).
pub fn measure(code_identity: &str, config_bytes: &[u8]) -> Measurement {
    let mut h = CryptoEngine::auto().sha256();
    h.update(b"olive-enclave-measurement-v1");
    h.update(code_identity.as_bytes());
    h.update(&(config_bytes.len() as u64).to_be_bytes());
    h.update(config_bytes);
    h.finalize()
}

/// Convenience: hash arbitrary bytes (re-exported for enclave sealing).
pub fn digest(data: &[u8]) -> [u8; 32] {
    CryptoEngine::auto().digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(dh_public: u64) -> Report {
        Report {
            measurement: measure("olive-aggregator", b"v1"),
            enclave_dh_public: dh_public,
            user_data: b"rounds=10".to_vec(),
        }
    }

    #[test]
    fn quote_verifies() {
        let service = AttestationService::new([1u8; 32]);
        let q = service.quote(sample_report(12345));
        let m = measure("olive-aggregator", b"v1");
        assert!(verify_quote(service.public_key(), &m, &q).is_ok());
    }

    #[test]
    fn forged_quote_rejected() {
        let service = AttestationService::new([1u8; 32]);
        let rogue = AttestationService::new([2u8; 32]);
        let q = rogue.quote(sample_report(12345));
        let m = measure("olive-aggregator", b"v1");
        assert_eq!(
            verify_quote(service.public_key(), &m, &q).unwrap_err(),
            AttestationError::BadSignature
        );
    }

    #[test]
    fn tampered_report_rejected() {
        let service = AttestationService::new([1u8; 32]);
        let mut q = service.quote(sample_report(12345));
        q.report.enclave_dh_public ^= 1; // MITM swaps the DH share
        let m = measure("olive-aggregator", b"v1");
        assert_eq!(
            verify_quote(service.public_key(), &m, &q).unwrap_err(),
            AttestationError::BadSignature
        );
    }

    #[test]
    fn wrong_measurement_rejected() {
        // A *valid* quote for malicious code must still be refused.
        let service = AttestationService::new([1u8; 32]);
        let mut report = sample_report(12345);
        report.measurement = measure("evil-aggregator", b"v1");
        let q = service.quote(report);
        let expected = measure("olive-aggregator", b"v1");
        assert_eq!(
            verify_quote(service.public_key(), &expected, &q).unwrap_err(),
            AttestationError::WrongMeasurement
        );
    }

    #[test]
    fn measurement_sensitive_to_identity_and_config() {
        let a = measure("olive-aggregator", b"v1");
        let b = measure("olive-aggregator", b"v2");
        let c = measure("other", b"v1");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, measure("olive-aggregator", b"v1"));
    }

    #[test]
    fn transcript_hash_binds_dh_share() {
        let r1 = sample_report(1);
        let r2 = sample_report(2);
        assert_ne!(r1.transcript_hash(), r2.transcript_hash());
    }
}
