//! The simulated enclave: lifecycle, key store, sealing, EPC accounting.

use std::collections::HashMap;

use olive_crypto::dh::DhKeyPair;
use olive_crypto::gcm::{AesGcm, NONCE_LEN};
use olive_crypto::hkdf::Hkdf;

use crate::attestation::{measure, AttestationService, Measurement, Quote, Report};
use crate::channel::SealedMessage;
use crate::UserId;

/// Errors surfaced by enclave operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeeError {
    /// Decryption/verification of a client upload failed.
    AuthFailure,
    /// The sender has no registered session key (no RA handshake).
    UnknownUser,
    /// The upload named a user not selected for this round
    /// (Algorithm 1 line 9's check).
    NotSampled,
    /// The requested scratch allocation exceeds the configured EPC budget.
    EpcExceeded,
    /// A replayed or out-of-order nonce was detected.
    Replay,
}

impl core::fmt::Display for TeeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TeeError::AuthFailure => "client payload failed authentication",
            TeeError::UnknownUser => "no session key for user (remote attestation missing)",
            TeeError::NotSampled => "user not in this round's sample",
            TeeError::EpcExceeded => "enclave working set exceeds EPC budget",
            TeeError::Replay => "nonce replay detected",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for TeeError {}

/// Static enclave configuration, part of the measurement.
#[derive(Clone, Debug)]
pub struct EnclaveConfig {
    /// Human-readable code identity (stands in for the signed binary).
    pub code_identity: String,
    /// Usable EPC bytes (the paper's machine: 96 MB).
    pub epc_bytes: u64,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            code_identity: "olive-oblivious-aggregator-v1".to_string(),
            epc_bytes: 96 << 20,
        }
    }
}

/// Tracks the enclave's scratch working set against the EPC limit.
///
/// The aggregation algorithms report their buffer sizes here; Section 5.3's
/// grouping optimization exists precisely to keep this under `limit`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpcBudget {
    /// Configured usable EPC bytes.
    pub limit: u64,
    /// Current live scratch bytes.
    pub live: u64,
    /// High-water mark.
    pub peak: u64,
}

impl EpcBudget {
    /// Records an allocation. Never fails — exceeding EPC is *legal* (the
    /// OS pages), just slow; callers compare `peak` to `limit` to predict
    /// paging, and [`EpcBudget::would_page`] answers it directly.
    pub fn alloc(&mut self, bytes: u64) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Records a release.
    pub fn free(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// True if the recorded peak exceeds the EPC limit, i.e. the kernel
    /// would have had to page encrypted memory (the Figure 10 cliff).
    pub fn would_page(&self) -> bool {
        self.peak > self.limit
    }
}

/// The simulated enclave.
///
/// Holds the RA key store (`user → AES-GCM session key`, Algorithm 1
/// line 1), the per-round sample set used for upload verification
/// (line 9), replay protection, sealing keys, and EPC accounting.
pub struct Enclave {
    measurement: Measurement,
    dh: DhKeyPair,
    /// user id → session key bytes (32).
    keystore: HashMap<UserId, [u8; 32]>,
    /// user id → last accepted nonce counter (replay protection).
    last_nonce: HashMap<UserId, u64>,
    /// Users sampled for the current round (Algorithm 1 line 5).
    round_sample: Vec<UserId>,
    /// Monotone sealing key derived from the measurement + platform secret.
    sealing_key: [u8; 32],
    /// EPC accounting.
    pub epc: EpcBudget,
    transcript_salt: [u8; 32],
}

impl Enclave {
    /// Creates and "launches" an enclave: computes its measurement and an
    /// ephemeral DH key pair from `seed`.
    pub fn launch(config: &EnclaveConfig, seed: [u8; 32]) -> Self {
        let measurement = measure(&config.code_identity, &config.epc_bytes.to_be_bytes());
        let mut dh_seed = seed;
        dh_seed[31] ^= 0x3C;
        let dh = DhKeyPair::from_seed(&dh_seed);
        let sealing_key: [u8; 32] = Hkdf::derive(&measurement, &seed, b"olive-sealing-v1", 32)
            .try_into()
            .expect("hkdf returns requested length");
        Enclave {
            measurement,
            dh,
            keystore: HashMap::new(),
            last_nonce: HashMap::new(),
            round_sample: Vec::new(),
            sealing_key,
            epc: EpcBudget { limit: config.epc_bytes, ..Default::default() },
            transcript_salt: [0u8; 32],
        }
    }

    /// The enclave's measurement (what clients must pin).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Produces the attestation report and obtains a platform quote.
    pub fn attest(&mut self, service: &AttestationService, user_data: &[u8]) -> Quote {
        let report = Report {
            measurement: self.measurement,
            enclave_dh_public: self.dh.public,
            user_data: user_data.to_vec(),
        };
        self.transcript_salt = report.transcript_hash();
        service.quote(report)
    }

    /// Completes the RA key exchange for one client: derives and stores the
    /// session key from the client's DH public value (enclave side of
    /// Algorithm 1 line 1).
    pub fn register_client(&mut self, user: UserId, client_dh_public: u64) {
        let shared = self.dh.shared_secret(client_dh_public);
        let key: [u8; 32] = Hkdf::derive(&self.transcript_salt, &shared, &session_info(user), 32)
            .try_into()
            .expect("hkdf returns requested length");
        self.keystore.insert(user, key);
    }

    /// Number of registered clients.
    pub fn registered_clients(&self) -> usize {
        self.keystore.len()
    }

    /// Sets the sampled user set for the current round (the enclave
    /// memorizes `Q_t`; Algorithm 1 line 5).
    pub fn begin_round(&mut self, sampled: Vec<UserId>) {
        self.round_sample = sampled;
    }

    /// The current round's sample (read-only).
    pub fn round_sample(&self) -> &[UserId] {
        &self.round_sample
    }

    /// Verifies and decrypts one client upload (Algorithm 1 lines 8–11):
    /// checks the user is sampled, fetches the session key, authenticates,
    /// rejects replays, and returns the plaintext gradient encoding.
    pub fn open_upload(&mut self, msg: &SealedMessage) -> Result<Vec<u8>, TeeError> {
        if !self.round_sample.contains(&msg.user) {
            return Err(TeeError::NotSampled);
        }
        let key = self.keystore.get(&msg.user).ok_or(TeeError::UnknownUser)?;
        let last = self.last_nonce.get(&msg.user).copied().unwrap_or(0);
        if msg.nonce_counter <= last {
            return Err(TeeError::Replay);
        }
        let gcm = AesGcm::new(key).expect("32-byte key");
        let nonce = nonce_bytes(msg.nonce_counter);
        let plain =
            gcm.open(&nonce, &msg.ciphertext, &msg.aad()).map_err(|_| TeeError::AuthFailure)?;
        self.last_nonce.insert(msg.user, msg.nonce_counter);
        Ok(plain)
    }

    /// Encrypts enclave state for untrusted storage (sealing).
    pub fn seal(&self, plaintext: &[u8], label: &[u8]) -> Vec<u8> {
        let gcm = AesGcm::new(&self.sealing_key).expect("32-byte key");
        // Sealing nonce: fixed per label; sealing the same label twice in
        // this simulation overwrites, which matches monotonic state.
        let mut nonce = [0u8; NONCE_LEN];
        let lh = crate::attestation::digest(label);
        nonce.copy_from_slice(&lh[..NONCE_LEN]);
        gcm.seal(&nonce, plaintext, label)
    }

    /// Decrypts sealed state.
    pub fn unseal(&self, sealed: &[u8], label: &[u8]) -> Result<Vec<u8>, TeeError> {
        let gcm = AesGcm::new(&self.sealing_key).expect("32-byte key");
        let mut nonce = [0u8; NONCE_LEN];
        let lh = crate::attestation::digest(label);
        nonce.copy_from_slice(&lh[..NONCE_LEN]);
        gcm.open(&nonce, sealed, label).map_err(|_| TeeError::AuthFailure)
    }

    /// Signs bytes with a key only the enclave holds, so clients can verify
    /// the aggregated model was produced inside the enclave (the
    /// malicious-server defense discussed in Section 5.6).
    pub fn sign_output(&self, payload: &[u8]) -> [u8; 32] {
        olive_crypto::hmac::HmacSha256::mac(&self.sealing_key, payload)
    }

    /// Verifies an output signature (in the simulation the "public" verify
    /// key equals the sealing MAC key; a deployment would use the Schnorr
    /// pair — see Section 5.6 discussion).
    pub fn verify_output(&self, payload: &[u8], tag: &[u8; 32]) -> bool {
        olive_crypto::hmac::HmacSha256::verify(&self.sealing_key, payload, tag)
    }
}

/// Session-key derivation info string, shared by enclave and client.
pub(crate) fn session_info(user: UserId) -> Vec<u8> {
    let mut v = b"olive-session-key-v1:".to_vec();
    v.extend_from_slice(&user.to_be_bytes());
    v
}

/// Deterministic 96-bit nonce from a counter (client keeps it monotone).
pub(crate) fn nonce_bytes(counter: u64) -> [u8; NONCE_LEN] {
    let mut n = [0u8; NONCE_LEN];
    n[4..].copy_from_slice(&counter.to_be_bytes());
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epc_budget_accounting() {
        let mut b = EpcBudget { limit: 100, ..Default::default() };
        b.alloc(60);
        b.alloc(30);
        assert_eq!(b.peak, 90);
        assert!(!b.would_page());
        b.free(30);
        b.alloc(50);
        assert_eq!(b.peak, 110);
        assert!(b.would_page());
    }

    #[test]
    fn launch_is_deterministic_in_config() {
        let cfg = EnclaveConfig::default();
        let a = Enclave::launch(&cfg, [1; 32]);
        let b = Enclave::launch(&cfg, [2; 32]);
        assert_eq!(a.measurement(), b.measurement(), "measurement is code identity only");
        let cfg2 = EnclaveConfig { code_identity: "different".into(), ..Default::default() };
        let c = Enclave::launch(&cfg2, [1; 32]);
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let e = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let sealed = e.seal(b"keystore state", b"keystore");
        assert_eq!(e.unseal(&sealed, b"keystore").unwrap(), b"keystore state");
        assert_eq!(e.unseal(&sealed, b"other-label").unwrap_err(), TeeError::AuthFailure);
    }

    #[test]
    fn sealed_data_bound_to_enclave_identity() {
        let e1 = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let e2 = Enclave::launch(&EnclaveConfig::default(), [4; 32]);
        let sealed = e1.seal(b"state", b"l");
        assert!(e2.unseal(&sealed, b"l").is_err(), "different platform seed, different key");
    }

    #[test]
    fn output_signature_roundtrip() {
        let e = Enclave::launch(&EnclaveConfig::default(), [5; 32]);
        let tag = e.sign_output(b"aggregated model v3");
        assert!(e.verify_output(b"aggregated model v3", &tag));
        assert!(!e.verify_output(b"tampered model", &tag));
    }
}
