//! The simulated enclave: lifecycle, key store, sealing, EPC accounting.
//!
//! All symmetric crypto on the trusted path goes through one
//! [`CryptoEngine`] chosen at launch (AES-NI/SHA-NI, bitsliced
//! constant-time, or the table reference — `OLIVE_CRYPTO`), so the whole
//! deployment runs on a single dispatch decision.

use std::collections::{HashMap, HashSet};

use olive_crypto::dh::DhKeyPair;
use olive_crypto::gcm::NONCE_LEN;
use olive_crypto::CryptoEngine;
use olive_telemetry::Telemetry;

use crate::attestation::{measure, AttestationService, Measurement, Quote, Report};
use crate::channel::{SealedMessage, AAD_CAPACITY};
use crate::UserId;

/// Errors surfaced by enclave operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeeError {
    /// Decryption/verification of a client upload failed.
    AuthFailure,
    /// The sender has no registered session key (no RA handshake).
    UnknownUser,
    /// The upload named a user not selected for this round
    /// (Algorithm 1 line 9's check).
    NotSampled,
    /// The requested scratch allocation exceeds the configured EPC budget.
    EpcExceeded,
    /// A replayed or out-of-order nonce was detected.
    Replay,
    /// The upload names a round other than the one in progress (a stale or
    /// premature message; its AAD would still authenticate, so this is an
    /// explicit freshness check, not a crypto failure).
    WrongRound,
    /// A session operation was attempted before [`Enclave::attest`]: the
    /// transcript salt that binds session keys to the attestation
    /// evidence does not exist yet, so keys derived now would lose
    /// channel binding.
    NotAttested,
    /// A sealed blob authenticated correctly but its monotonic counter is
    /// below the caller's pinned floor — a rollback to stale state.
    StaleSeal,
}

impl core::fmt::Display for TeeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TeeError::AuthFailure => "client payload failed authentication",
            TeeError::UnknownUser => "no session key for user (remote attestation missing)",
            TeeError::NotSampled => "user not in this round's sample",
            TeeError::EpcExceeded => "enclave working set exceeds EPC budget",
            TeeError::Replay => "nonce replay detected",
            TeeError::WrongRound => "upload names a round other than the one in progress",
            TeeError::NotAttested => "enclave has not attested (no transcript to bind keys to)",
            TeeError::StaleSeal => "sealed blob is older than the pinned rollback floor",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for TeeError {}

/// Static enclave configuration, part of the measurement.
#[derive(Clone, Debug)]
pub struct EnclaveConfig {
    /// Human-readable code identity (stands in for the signed binary).
    pub code_identity: String,
    /// Usable EPC bytes (the paper's machine: 96 MB).
    pub epc_bytes: u64,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            code_identity: "olive-oblivious-aggregator-v1".to_string(),
            epc_bytes: 96 << 20,
        }
    }
}

/// Tracks the enclave's scratch working set against the EPC limit.
///
/// The aggregation algorithms report their buffer sizes here; Section 5.3's
/// grouping optimization exists precisely to keep this under `limit`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpcBudget {
    /// Configured usable EPC bytes.
    pub limit: u64,
    /// Current live scratch bytes.
    pub live: u64,
    /// High-water mark.
    pub peak: u64,
}

impl EpcBudget {
    /// Records an allocation. Never fails — exceeding EPC is *legal* (the
    /// OS pages), just slow; callers compare `peak` to `limit` to predict
    /// paging, and [`EpcBudget::would_page`] answers it directly.
    pub fn alloc(&mut self, bytes: u64) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Records a release.
    pub fn free(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// [`EpcBudget::alloc`] that also feeds the side-band telemetry
    /// plane: adds `bytes` to the `epc_charge_bytes` counter under
    /// `budget` (e.g. `"coordinator"`). The accounting itself is
    /// unchanged — telemetry reads, never perturbs.
    pub fn alloc_counted(&mut self, bytes: u64, telemetry: &Telemetry, budget: &str) {
        telemetry.count("epc_charge_bytes", budget, bytes);
        self.alloc(bytes);
    }

    /// [`EpcBudget::free`] mirrored onto the `epc_free_bytes` counter.
    pub fn free_counted(&mut self, bytes: u64, telemetry: &Telemetry, budget: &str) {
        telemetry.count("epc_free_bytes", budget, bytes);
        self.free(bytes);
    }

    /// True if the recorded peak exceeds the EPC limit, i.e. the kernel
    /// would have had to page encrypted memory (the Figure 10 cliff).
    pub fn would_page(&self) -> bool {
        self.peak > self.limit
    }

    /// Starts a new accounting epoch: rewinds the peak to the live set,
    /// so `peak`/[`EpcBudget::would_page`] answer "since this point"
    /// (per round, via [`Enclave::begin_round`]) instead of lifetime.
    pub fn begin_epoch(&mut self) {
        self.peak = self.live;
    }
}

/// The simulated enclave.
///
/// Holds the RA key store (`user → AES-GCM session key`, Algorithm 1
/// line 1), the per-round sample set used for upload verification
/// (line 9), replay protection, sealing keys, and EPC accounting.
pub struct Enclave {
    measurement: Measurement,
    dh: DhKeyPair,
    /// user id → session key bytes (32).
    keystore: HashMap<UserId, [u8; 32]>,
    /// user id → last accepted nonce counter (replay protection).
    last_nonce: HashMap<UserId, u64>,
    /// Users sampled for the current round (Algorithm 1 line 5).
    round_sample: Vec<UserId>,
    /// Hashed view of `round_sample` for O(1) membership checks — at
    /// production scale (10⁵–10⁶ sampled users) a linear `contains` per
    /// upload would make verification quadratic in the round size.
    round_sample_set: HashSet<UserId>,
    /// The round currently in progress (uploads must name it).
    current_round: u64,
    /// Monotone sealing key derived from the measurement + platform secret.
    sealing_key: [u8; 32],
    /// Per-label monotonic sealing counters: GCM nonces must never repeat
    /// under one key, so each (label, counter) pair seals at most once.
    seal_counters: HashMap<Vec<u8>, u64>,
    /// EPC accounting.
    pub epc: EpcBudget,
    /// The crypto backend servicing every seal/open/MAC in this enclave.
    engine: CryptoEngine,
    transcript_salt: [u8; 32],
    /// Set by [`Enclave::attest`]; registration is refused before it so a
    /// session key can never silently bind to the all-zeros salt.
    attested: bool,
    /// Side-band telemetry handle (disarmed by default): seal/open byte
    /// counters keyed by the crypto backend. Reads, never perturbs.
    telemetry: Telemetry,
}

impl Enclave {
    /// Creates and "launches" an enclave: computes its measurement and an
    /// ephemeral DH key pair from `seed`.
    pub fn launch(config: &EnclaveConfig, seed: [u8; 32]) -> Self {
        Self::launch_with_dh_epoch(config, seed, 0)
    }

    /// [`Enclave::launch`] with a DH-key epoch, the mid-round shard
    /// *relaunch* flow: a restarted enclave must present a **fresh**
    /// ephemeral DH share (so new tunnel keys never repeat the dead
    /// instance's AEAD nonce sequence) while keeping the same sealing
    /// key (seed + measurement only), so it can still unseal the state
    /// its previous incarnation checkpointed. Epoch 0 is identical to
    /// [`Enclave::launch`].
    pub fn launch_with_dh_epoch(config: &EnclaveConfig, seed: [u8; 32], dh_epoch: u32) -> Self {
        let engine = CryptoEngine::auto();
        let measurement = measure(&config.code_identity, &config.epc_bytes.to_be_bytes());
        let mut dh_seed = seed;
        dh_seed[31] ^= 0x3C;
        for (b, e) in dh_seed[24..28].iter_mut().zip(dh_epoch.to_be_bytes()) {
            *b ^= e;
        }
        let dh = DhKeyPair::from_seed(&dh_seed);
        let sealing_key: [u8; 32] = engine
            .hkdf(&measurement, &seed, b"olive-sealing-v1", 32)
            .try_into()
            .expect("hkdf returns requested length");
        Enclave {
            measurement,
            dh,
            keystore: HashMap::new(),
            last_nonce: HashMap::new(),
            round_sample: Vec::new(),
            round_sample_set: HashSet::new(),
            current_round: 0,
            sealing_key,
            seal_counters: HashMap::new(),
            epc: EpcBudget { limit: config.epc_bytes, ..Default::default() },
            engine,
            transcript_salt: [0u8; 32],
            attested: false,
            telemetry: Telemetry::off(),
        }
    }

    /// Arms (or swaps) this enclave's side-band telemetry handle. The
    /// default is the disarmed no-op handle; the owning system threads
    /// its own handle through after launch (and after every relaunch,
    /// which constructs a fresh disarmed enclave).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The enclave's measurement (what clients must pin).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The crypto engine this enclave dispatches to (what a deployment
    /// reports next to its measurement).
    pub fn crypto_engine(&self) -> CryptoEngine {
        self.engine
    }

    /// The attestation transcript hash this enclave's session keys are
    /// bound to, or `None` before [`Enclave::attest`] — the same guard
    /// [`Enclave::register_client`] applies, for the enclave-to-enclave
    /// tunnel layer.
    pub(crate) fn attested_transcript(&self) -> Option<[u8; 32]> {
        self.attested.then_some(self.transcript_salt)
    }

    /// The enclave's DH key pair, for tunnel key agreement and
    /// [`crate::TunnelAnchor`] snapshots (the client-session path goes
    /// through [`Enclave::register_client`] instead).
    pub(crate) fn dh_keypair(&self) -> DhKeyPair {
        self.dh
    }

    /// Produces the attestation report and obtains a platform quote.
    pub fn attest(&mut self, service: &AttestationService, user_data: &[u8]) -> Quote {
        let report = Report {
            measurement: self.measurement,
            enclave_dh_public: self.dh.public,
            user_data: user_data.to_vec(),
        };
        self.transcript_salt = report.transcript_hash();
        self.attested = true;
        service.quote(report)
    }

    /// Completes the RA key exchange for one client: derives and stores the
    /// session key from the client's DH public value (enclave side of
    /// Algorithm 1 line 1).
    ///
    /// Fails with [`TeeError::NotAttested`] before [`Enclave::attest`]:
    /// the session key mixes in the attestation transcript hash, and
    /// deriving it from the launch-time all-zeros salt would silently
    /// drop the channel's binding to the attestation evidence.
    pub fn register_client(&mut self, user: UserId, client_dh_public: u64) -> Result<(), TeeError> {
        if !self.attested {
            return Err(TeeError::NotAttested);
        }
        let shared = self.dh.shared_secret(client_dh_public);
        let key: [u8; 32] = self
            .engine
            .hkdf(&self.transcript_salt, &shared, &session_info(user), 32)
            .try_into()
            .expect("hkdf returns requested length");
        self.keystore.insert(user, key);
        Ok(())
    }

    /// Number of registered clients.
    pub fn registered_clients(&self) -> usize {
        self.keystore.len()
    }

    /// Sets the round counter and sampled user set for the round now in
    /// progress (the enclave memorizes `t` and `Q_t`; Algorithm 1 line 5).
    /// Also opens a fresh EPC accounting epoch, so `epc.peak` and
    /// [`EpcBudget::would_page`] answer "did *this* round page" rather
    /// than aggregating over the enclave's lifetime.
    pub fn begin_round(&mut self, round: u64, sampled: Vec<UserId>) {
        self.current_round = round;
        self.round_sample_set = sampled.iter().copied().collect();
        self.round_sample = sampled;
        self.epc.begin_epoch();
    }

    /// Overwrites the replay floors from a checkpoint's snapshot (the
    /// crash-restore path). The snapshot covers exactly the uploads whose
    /// chunks were *folded* before the checkpoint: uploads the crashed
    /// enclave had opened but not folded (the double-buffered next chunk)
    /// get no entry, so their legitimate re-sends are accepted again,
    /// while folded uploads still hit [`TeeError::Replay`].
    pub fn restore_replay_floors(&mut self, floors: &[(UserId, u64)]) {
        self.last_nonce = floors.iter().copied().collect();
    }

    /// Snapshot of the per-user replay floors, sorted by user id — the
    /// deterministic order a sealed checkpoint needs so that identical
    /// enclave state serializes to identical bytes.
    pub fn replay_floors(&self) -> Vec<(UserId, u64)> {
        let mut floors: Vec<(UserId, u64)> =
            self.last_nonce.iter().map(|(&u, &c)| (u, c)).collect();
        floors.sort_unstable_by_key(|&(u, _)| u);
        floors
    }

    /// The current round's sample (read-only).
    pub fn round_sample(&self) -> &[UserId] {
        &self.round_sample
    }

    /// The round counter set by the last [`Enclave::begin_round`].
    pub fn current_round(&self) -> u64 {
        self.current_round
    }

    /// Verifies and decrypts one client upload (Algorithm 1 lines 8–11):
    /// checks the round and that the user is sampled, fetches the session
    /// key, authenticates, rejects replays, and returns the plaintext
    /// gradient encoding.
    pub fn open_upload(&mut self, msg: &SealedMessage) -> Result<Vec<u8>, TeeError> {
        let mut aad = Vec::with_capacity(AAD_CAPACITY);
        self.open_upload_inner(msg, &mut aad)
    }

    /// [`Enclave::open_upload`] over a whole chunk of uploads, the unit the
    /// streaming round pipeline ingests. Returns one `Result` per message
    /// in order — a replayed, stale or tampered upload is reported in its
    /// slot without poisoning the rest of the chunk. The per-round setup
    /// (the AAD scratch buffer, the borrow of the crypto engine and the
    /// session/replay tables) is paid once per batch instead of per
    /// message.
    pub fn open_upload_batch(&mut self, msgs: &[SealedMessage]) -> Vec<Result<Vec<u8>, TeeError>> {
        let mut aad = Vec::with_capacity(AAD_CAPACITY);
        msgs.iter().map(|msg| self.open_upload_inner(msg, &mut aad)).collect()
    }

    /// Shared verification path; `aad` is a reusable scratch buffer.
    fn open_upload_inner(
        &mut self,
        msg: &SealedMessage,
        aad: &mut Vec<u8>,
    ) -> Result<Vec<u8>, TeeError> {
        if msg.round != self.current_round {
            return Err(TeeError::WrongRound);
        }
        if !self.round_sample_set.contains(&msg.user) {
            return Err(TeeError::NotSampled);
        }
        let key = self.keystore.get(&msg.user).ok_or(TeeError::UnknownUser)?;
        let last = self.last_nonce.get(&msg.user).copied().unwrap_or(0);
        if msg.nonce_counter <= last {
            return Err(TeeError::Replay);
        }
        let gcm = self.engine.aes_gcm(key).expect("32-byte key");
        let nonce = nonce_bytes(msg.nonce_counter);
        aad.clear();
        msg.write_aad(aad);
        let plain = gcm.open(&nonce, &msg.ciphertext, aad).map_err(|_| TeeError::AuthFailure)?;
        self.last_nonce.insert(msg.user, msg.nonce_counter);
        self.telemetry.count("opened_bytes", self.engine.backend().name(), plain.len() as u64);
        Ok(plain)
    }

    /// Encrypts enclave state for untrusted storage (sealing).
    ///
    /// The nonce is derived from a **per-label monotonic counter** —
    /// sealing the same label twice with different plaintexts must not
    /// reuse a GCM nonce under the (fixed) sealing key, or the keystream
    /// XOR of the two plaintexts leaks. The nonce is the full 96-bit
    /// prefix of `H(label ∥ counter)`, so distinct `(label, counter)`
    /// pairs collide with probability 2⁻⁹⁶ even across labels. The counter
    /// is prepended to the sealed blob so [`Enclave::unseal`] can
    /// reconstruct the nonce; it is covered by the AEAD's nonce binding (a
    /// tampered counter changes the nonce and fails the tag).
    ///
    /// Counters live in enclave memory: a relaunched enclave with the same
    /// platform seed restarts them, as a real SGX enclave's would without
    /// hardware monotonic counters. [`Enclave::unseal`] raises the floor
    /// past every counter it sees, so the supported restart flow — unseal
    /// persisted state, then reseal — never reuses a nonce; a deployment
    /// would pin the floor in rollback-protected storage.
    pub fn seal(&mut self, plaintext: &[u8], label: &[u8]) -> Vec<u8> {
        let counter = self.seal_counters.entry(label.to_vec()).or_insert(0);
        *counter += 1;
        let nonce = seal_nonce(label, *counter);
        let gcm = self.engine.aes_gcm(&self.sealing_key).expect("32-byte key");
        let mut out = Vec::with_capacity(8 + plaintext.len() + 16);
        out.extend_from_slice(&counter.to_be_bytes());
        out.extend_from_slice(&gcm.seal(&nonce, plaintext, label));
        self.telemetry.count("sealed_bytes", self.engine.backend().name(), plaintext.len() as u64);
        out
    }

    /// Decrypts sealed state. On success the label's seal counter floor is
    /// raised past the blob's counter, so a relaunched enclave that
    /// restores its state before sealing again cannot reuse a nonce.
    pub fn unseal(&mut self, sealed: &[u8], label: &[u8]) -> Result<Vec<u8>, TeeError> {
        if sealed.len() < 8 {
            return Err(TeeError::AuthFailure);
        }
        let (counter_bytes, ciphertext) = sealed.split_at(8);
        let counter = u64::from_be_bytes(counter_bytes.try_into().expect("8-byte prefix"));
        let nonce = seal_nonce(label, counter);
        let gcm = self.engine.aes_gcm(&self.sealing_key).expect("32-byte key");
        let plain = gcm.open(&nonce, ciphertext, label).map_err(|_| TeeError::AuthFailure)?;
        let floor = self.seal_counters.entry(label.to_vec()).or_insert(0);
        *floor = (*floor).max(counter);
        self.telemetry.count("unsealed_bytes", self.engine.backend().name(), plain.len() as u64);
        Ok(plain)
    }

    /// [`Enclave::unseal`] plus rollback protection: the caller supplies
    /// the counter floor it pinned in rollback-protected platform storage
    /// (which, unlike enclave memory, survives a crash), and a blob whose
    /// counter is *below* that floor is rejected as [`TeeError::StaleSeal`]
    /// even though it authenticates — it is genuine enclave state, just
    /// not the newest, and replaying it would rewind replay floors past
    /// uploads that were already folded. Authentication runs first so
    /// tampering still reports [`TeeError::AuthFailure`].
    pub fn unseal_with_floor(
        &mut self,
        sealed: &[u8],
        label: &[u8],
        floor: u64,
    ) -> Result<Vec<u8>, TeeError> {
        let plain = self.unseal(sealed, label)?;
        let counter = u64::from_be_bytes(sealed[..8].try_into().expect("checked by unseal"));
        if counter < floor {
            return Err(TeeError::StaleSeal);
        }
        Ok(plain)
    }

    /// Signs bytes with a key only the enclave holds, so clients can verify
    /// the aggregated model was produced inside the enclave (the
    /// malicious-server defense discussed in Section 5.6).
    pub fn sign_output(&self, payload: &[u8]) -> [u8; 32] {
        self.engine.mac(&self.sealing_key, payload)
    }

    /// Verifies an output signature (in the simulation the "public" verify
    /// key equals the sealing MAC key; a deployment would use the Schnorr
    /// pair — see Section 5.6 discussion).
    pub fn verify_output(&self, payload: &[u8], tag: &[u8; 32]) -> bool {
        self.engine.verify_mac(&self.sealing_key, payload, tag)
    }
}

/// Sealing nonce: the 96-bit prefix of `H("olive-seal-nonce-v1" ∥
/// len(label) ∥ label ∥ counter)` — the full nonce width separates both
/// labels and counters, so distinct `(label, counter)` pairs collide with
/// probability 2⁻⁹⁶ (length-prefixing keeps `(label ∥ counter)` encodings
/// injective).
fn seal_nonce(label: &[u8], counter: u64) -> [u8; NONCE_LEN] {
    let mut input = b"olive-seal-nonce-v1".to_vec();
    input.extend_from_slice(&(label.len() as u64).to_be_bytes());
    input.extend_from_slice(label);
    input.extend_from_slice(&counter.to_be_bytes());
    let lh = crate::attestation::digest(&input);
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&lh[..NONCE_LEN]);
    nonce
}

/// Session-key derivation info string, shared by enclave and client.
pub(crate) fn session_info(user: UserId) -> Vec<u8> {
    let mut v = b"olive-session-key-v1:".to_vec();
    v.extend_from_slice(&user.to_be_bytes());
    v
}

/// Deterministic 96-bit nonce from a counter (client keeps it monotone).
pub(crate) fn nonce_bytes(counter: u64) -> [u8; NONCE_LEN] {
    let mut n = [0u8; NONCE_LEN];
    n[4..].copy_from_slice(&counter.to_be_bytes());
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epc_budget_accounting() {
        let mut b = EpcBudget { limit: 100, ..Default::default() };
        b.alloc(60);
        b.alloc(30);
        assert_eq!(b.peak, 90);
        assert!(!b.would_page());
        b.free(30);
        b.alloc(50);
        assert_eq!(b.peak, 110);
        assert!(b.would_page());
    }

    #[test]
    fn launch_is_deterministic_in_config() {
        let cfg = EnclaveConfig::default();
        let a = Enclave::launch(&cfg, [1; 32]);
        let b = Enclave::launch(&cfg, [2; 32]);
        // The measurement binds the whole static config — code identity
        // AND the EPC size (`measure(code_identity, epc_bytes)`) — but
        // never the platform seed, which only keys sealing/DH.
        assert_eq!(a.measurement(), b.measurement(), "platform seed must not enter measurement");
        let cfg2 = EnclaveConfig { code_identity: "different".into(), ..Default::default() };
        let c = Enclave::launch(&cfg2, [1; 32]);
        assert_ne!(a.measurement(), c.measurement(), "code identity is measured");
        let cfg3 = EnclaveConfig { epc_bytes: 128 << 20, ..Default::default() };
        let d = Enclave::launch(&cfg3, [1; 32]);
        assert_ne!(a.measurement(), d.measurement(), "EPC size is measured too");
    }

    #[test]
    fn register_before_attest_is_refused() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [6; 32]);
        assert_eq!(e.register_client(7, 12345).unwrap_err(), TeeError::NotAttested);
        assert_eq!(e.registered_clients(), 0, "refused registration must not store a key");
        let service = AttestationService::new([6; 32]);
        e.attest(&service, b"ctx");
        e.register_client(7, 12345).expect("registration valid after attestation");
        assert_eq!(e.registered_clients(), 1);
    }

    #[test]
    fn epc_epoch_resets_peak_per_round() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [6; 32]);
        e.epc.alloc(500);
        e.epc.free(500);
        assert_eq!(e.epc.peak, 500);
        e.begin_round(1, vec![]);
        assert_eq!(e.epc.peak, 0, "begin_round opens a fresh accounting epoch");
        e.epc.alloc(90);
        e.epc.free(90);
        e.begin_round(2, vec![]);
        e.epc.alloc(40);
        assert_eq!(e.epc.peak, 40, "round 2's peak is not shadowed by round 1's");
        e.epc.free(40);
    }

    /// Rollback protection: an *older* authentic blob must be rejected
    /// when the caller pins the newest counter as the floor.
    #[test]
    fn rolled_back_seal_rejected_against_pinned_floor() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let gen1 = e.seal(b"generation-1", b"model");
        let gen2 = e.seal(b"generation-2", b"model");
        let pinned = u64::from_be_bytes(gen2[..8].try_into().unwrap());
        // A relaunched enclave (fresh counters) + the pinned floor: the
        // newest blob loads, the rolled-back one is stale, and tampering
        // is still an auth failure, not staleness.
        let mut e2 = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        assert_eq!(e2.unseal_with_floor(&gen2, b"model", pinned).unwrap(), b"generation-2");
        assert_eq!(
            e2.unseal_with_floor(&gen1, b"model", pinned).unwrap_err(),
            TeeError::StaleSeal,
            "rollback to generation-1 must fail"
        );
        let mut tampered = gen2.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(
            e2.unseal_with_floor(&tampered, b"model", pinned).unwrap_err(),
            TeeError::AuthFailure
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let sealed = e.seal(b"keystore state", b"keystore");
        assert_eq!(e.unseal(&sealed, b"keystore").unwrap(), b"keystore state");
        assert_eq!(e.unseal(&sealed, b"other-label").unwrap_err(), TeeError::AuthFailure);
    }

    #[test]
    fn sealed_data_bound_to_enclave_identity() {
        let mut e1 = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let mut e2 = Enclave::launch(&EnclaveConfig::default(), [4; 32]);
        let sealed = e1.seal(b"state", b"l");
        assert!(e2.unseal(&sealed, b"l").is_err(), "different platform seed, different key");
    }

    /// The supported restart flow — relaunch, unseal persisted state,
    /// reseal — must advance the counter past everything unsealed, never
    /// reusing a nonce of the previous lifetime.
    #[test]
    fn unseal_restores_counter_monotonicity_across_relaunch() {
        let mut e1 = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let _gen1 = e1.seal(b"generation-1", b"model");
        let gen2 = e1.seal(b"generation-2", b"model");
        // Same platform seed → same sealing key, fresh in-memory counters.
        let mut e2 = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        assert_eq!(e2.unseal(&gen2, b"model").unwrap(), b"generation-2");
        let gen3 = e2.seal(b"generation-3", b"model");
        assert_eq!(&gen3[..8], &3u64.to_be_bytes(), "floor raised past unsealed counter 2");
        assert_eq!(e2.unseal(&gen3, b"model").unwrap(), b"generation-3");
    }

    /// Regression for the sealing-nonce reuse hazard: two seals of one
    /// label must use distinct nonces — observable as distinct counter
    /// prefixes and, crucially, ciphertexts whose keystreams don't cancel.
    #[test]
    fn reseal_same_label_uses_fresh_nonce() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let s1 = e.seal(b"generation-1 state", b"model");
        let s2 = e.seal(b"generation-2 state", b"model");
        // Distinct monotonic counters → distinct nonces.
        assert_eq!(&s1[..8], &1u64.to_be_bytes());
        assert_eq!(&s2[..8], &2u64.to_be_bytes());
        assert_ne!(s1[8..], s2[8..], "same-label seals must not share ciphertext bytes");
        // With a reused nonce, xor of ciphertexts == xor of plaintexts for
        // the common prefix; with fresh nonces it must not be.
        let xor_ct: Vec<u8> = s1[8..26].iter().zip(&s2[8..26]).map(|(a, b)| a ^ b).collect();
        let xor_pt: Vec<u8> =
            b"generation-1 state".iter().zip(b"generation-2 state").map(|(a, b)| a ^ b).collect();
        assert_ne!(xor_ct, xor_pt, "keystream reuse detected");
        // Both generations remain unsealable.
        assert_eq!(e.unseal(&s1, b"model").unwrap(), b"generation-1 state");
        assert_eq!(e.unseal(&s2, b"model").unwrap(), b"generation-2 state");
    }

    /// A tampered counter prefix changes the reconstructed nonce and must
    /// fail authentication.
    #[test]
    fn tampered_seal_counter_rejected() {
        let mut e = Enclave::launch(&EnclaveConfig::default(), [3; 32]);
        let mut sealed = e.seal(b"state", b"l");
        sealed[7] ^= 1;
        assert_eq!(e.unseal(&sealed, b"l").unwrap_err(), TeeError::AuthFailure);
        assert_eq!(e.unseal(&sealed[..4], b"l").unwrap_err(), TeeError::AuthFailure);
    }

    /// The relaunch contract: a new DH epoch rotates the ephemeral key
    /// (fresh tunnel keys for the restarted shard) without touching the
    /// sealing key (its checkpoints must still unseal) or the
    /// measurement (it must still attest as the same code).
    #[test]
    fn dh_epoch_rotates_tunnel_keys_but_not_sealing() {
        let cfg = EnclaveConfig::default();
        let mut e0 = Enclave::launch(&cfg, [3; 32]);
        let e1 = Enclave::launch_with_dh_epoch(&cfg, [3; 32], 1);
        let e2 = Enclave::launch_with_dh_epoch(&cfg, [3; 32], 2);
        assert_eq!(
            Enclave::launch_with_dh_epoch(&cfg, [3; 32], 0).dh.public,
            e0.dh.public,
            "epoch 0 is plain launch"
        );
        assert_ne!(e0.dh.public, e1.dh.public, "each epoch presents a fresh DH share");
        assert_ne!(e1.dh.public, e2.dh.public);
        assert_eq!(e0.measurement(), e1.measurement(), "epoch never enters the measurement");
        let sealed = e0.seal(b"stripe checkpoint", b"shard-ckpt");
        let mut relaunched = Enclave::launch_with_dh_epoch(&cfg, [3; 32], 7);
        assert_eq!(
            relaunched.unseal(&sealed, b"shard-ckpt").unwrap(),
            b"stripe checkpoint",
            "sealing key survives the epoch bump"
        );
    }

    #[test]
    fn output_signature_roundtrip() {
        let e = Enclave::launch(&EnclaveConfig::default(), [5; 32]);
        let tag = e.sign_output(b"aggregated model v3");
        assert!(e.verify_output(b"aggregated model v3", &tag));
        assert!(!e.verify_output(b"tampered model", &tag));
    }
}
