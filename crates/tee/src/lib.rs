//! # olive-tee
//!
//! A software-simulated Intel-SGX-style Trusted Execution Environment.
//!
//! The paper places a TEE on the FL server (Section 3.2): clients verify
//! the enclave via remote attestation, establish per-user AES-GCM session
//! keys, and upload encrypted sparsified gradients that only the enclave
//! can decrypt. This crate reproduces that machinery in software, with the
//! explicit substitutions documented in `DESIGN.md` §1:
//!
//! * enclave **measurement** — SHA-256 over the enclave's code identity,
//!   standing in for MRENCLAVE;
//! * **remote attestation** — a [`attestation::AttestationService`] holding
//!   a platform key signs enclave reports (Schnorr-style simulation-grade
//!   signature), standing in for Intel EPID + IAS;
//! * **secure channel** — real Diffie–Hellman → HKDF → AES-GCM key
//!   schedule, so the gradient payload path uses genuine authenticated
//!   encryption end-to-end;
//! * **EPC accounting** — an [`enclave::EpcBudget`] records the enclave's
//!   working-set high-water mark against the 96 MB usable EPC, which is
//!   the quantity Section 5.3's grouping optimization manages.
//!
//! What this simulation deliberately does *not* provide is hardware
//! isolation: the host process can of course inspect the enclave struct.
//! The point is to reproduce the *protocol and algorithmic* behaviour —
//! most importantly, the memory-access side channel that `olive-memsim`
//! exposes to the simulated adversary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod channel;
pub mod enclave;
pub mod shard;

pub use attestation::{AttestationError, AttestationService, Quote, Report};
pub use channel::{ClientSession, SealedMessage};
pub use enclave::{Enclave, EnclaveConfig, EpcBudget, TeeError};
pub use shard::{ShardId, ShardTunnel, TunnelAnchor, TunnelError, TunnelMessage, TunnelRole};

/// User identifier type used across the FL protocol.
pub type UserId = u32;
