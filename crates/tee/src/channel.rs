//! The client side of the RA-established secure channel.
//!
//! Mirrors Algorithm 1: during provisioning each client verifies the
//! enclave quote and derives a session key; each round it encrypts its
//! sparsified gradient encoding under that key with a monotone nonce.

use olive_crypto::dh::DhKeyPair;
use olive_crypto::CryptoEngine;
use olive_telemetry::Telemetry;

use crate::attestation::{verify_quote, AttestationError, Measurement, Quote};
use crate::enclave::{nonce_bytes, session_info};
use crate::UserId;

/// An encrypted client→enclave upload.
#[derive(Clone, Debug)]
pub struct SealedMessage {
    /// Sender.
    pub user: UserId,
    /// FL round this payload belongs to (authenticated, not secret).
    pub round: u64,
    /// Monotone per-user nonce counter.
    pub nonce_counter: u64,
    /// AES-GCM ciphertext ∥ tag.
    pub ciphertext: Vec<u8>,
}

/// Exact byte length of an upload's AAD (domain tag + user + round) —
/// lets batch verification preallocate one scratch buffer per chunk.
pub const AAD_CAPACITY: usize = 16 + 4 + 8;

impl SealedMessage {
    /// Associated data binding sender identity and round into the AEAD.
    pub fn aad(&self) -> Vec<u8> {
        let mut aad = Vec::with_capacity(AAD_CAPACITY);
        self.write_aad(&mut aad);
        aad
    }

    /// Appends the AAD to `out` (the allocation-free form the batched
    /// verification path reuses one buffer for).
    pub fn write_aad(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"olive-upload-v1:");
        out.extend_from_slice(&self.user.to_be_bytes());
        out.extend_from_slice(&self.round.to_be_bytes());
    }
}

/// A client's attested session with the enclave.
pub struct ClientSession {
    user: UserId,
    key: [u8; 32],
    dh: DhKeyPair,
    nonce_counter: u64,
    /// The crypto backend sealing this client's uploads (one dispatch
    /// decision shared with the enclave side via [`CryptoEngine::auto`]).
    engine: CryptoEngine,
    /// Side-band metrics handle (disarmed by default): sealed upload
    /// payload bytes feed `upload_sealed_bytes` keyed by backend.
    telemetry: Telemetry,
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Key material is intentionally redacted.
        f.debug_struct("ClientSession")
            .field("user", &self.user)
            .field("nonce_counter", &self.nonce_counter)
            .finish_non_exhaustive()
    }
}

impl ClientSession {
    /// Verifies the enclave `quote` against the pinned `platform_public`
    /// key and `expected_measurement`, then completes the DH exchange.
    ///
    /// On success the caller must deliver [`ClientSession::dh_public`] to
    /// the enclave (`Enclave::register_client`) to finish provisioning.
    pub fn establish(
        user: UserId,
        platform_public: u64,
        expected_measurement: &Measurement,
        quote: &Quote,
        seed: [u8; 32],
    ) -> Result<Self, AttestationError> {
        verify_quote(platform_public, expected_measurement, quote)?;
        let engine = CryptoEngine::auto();
        let mut dh_seed = seed;
        dh_seed[30] ^= user as u8;
        dh_seed[29] ^= (user >> 8) as u8;
        let dh = DhKeyPair::from_seed(&dh_seed);
        let shared = dh.shared_secret(quote.report.enclave_dh_public);
        let key: [u8; 32] = engine
            .hkdf(&quote.report.transcript_hash(), &shared, &session_info(user), 32)
            .try_into()
            .expect("hkdf returns requested length");
        Ok(ClientSession { user, key, dh, nonce_counter: 0, engine, telemetry: Telemetry::off() })
    }

    /// Arms side-band telemetry on this session (sessions come up with a
    /// disarmed handle).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The client's DH share the enclave needs to derive the same key.
    pub fn dh_public(&self) -> u64 {
        self.dh.public
    }

    /// The user id this session belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Encrypts one round's gradient encoding.
    pub fn seal_upload(&mut self, round: u64, payload: &[u8]) -> SealedMessage {
        self.telemetry.count(
            "upload_sealed_bytes",
            self.engine.backend().name(),
            payload.len() as u64,
        );
        self.nonce_counter += 1;
        let mut msg = SealedMessage {
            user: self.user,
            round,
            nonce_counter: self.nonce_counter,
            ciphertext: Vec::new(),
        };
        let gcm = self.engine.aes_gcm(&self.key).expect("32-byte key");
        msg.ciphertext = gcm.seal(&nonce_bytes(self.nonce_counter), payload, &msg.aad());
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationService;
    use crate::enclave::{Enclave, EnclaveConfig, TeeError};

    fn setup() -> (AttestationService, Enclave, Quote) {
        let service = AttestationService::new([9u8; 32]);
        let mut enclave = Enclave::launch(&EnclaveConfig::default(), [7u8; 32]);
        let quote = enclave.attest(&service, b"test");
        (service, enclave, quote)
    }

    #[test]
    fn end_to_end_handshake_and_upload() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.register_client(17, client.dh_public()).unwrap();
        enclave.begin_round(0, vec![17, 18]);

        let msg = client.seal_upload(0, b"sparse-gradient-bytes");
        assert_eq!(enclave.open_upload(&msg).unwrap(), b"sparse-gradient-bytes");
    }

    #[test]
    fn unsampled_user_rejected() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.register_client(17, client.dh_public()).unwrap();
        enclave.begin_round(0, vec![18]);
        let msg = client.seal_upload(0, b"x");
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::NotSampled);
    }

    #[test]
    fn unregistered_user_rejected() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.begin_round(0, vec![17]);
        let msg = client.seal_upload(0, b"x");
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::UnknownUser);
    }

    #[test]
    fn replay_rejected() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.register_client(17, client.dh_public()).unwrap();
        enclave.begin_round(0, vec![17]);
        let msg = client.seal_upload(0, b"x");
        assert!(enclave.open_upload(&msg).is_ok());
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::Replay);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.register_client(17, client.dh_public()).unwrap();
        enclave.begin_round(0, vec![17]);
        let mut msg = client.seal_upload(0, b"x");
        msg.ciphertext[0] ^= 1;
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::AuthFailure);
    }

    #[test]
    fn stale_round_rejected() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut client =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        enclave.register_client(17, client.dh_public()).unwrap();
        enclave.begin_round(3, vec![17]);
        // A payload sealed for round 2 authenticates (its AAD is
        // self-consistent) but must be rejected as stale.
        let msg = client.seal_upload(2, b"x");
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::WrongRound);
        let fresh = client.seal_upload(3, b"y");
        assert_eq!(enclave.open_upload(&fresh).unwrap(), b"y");
    }

    /// The batched open path: one bad upload (replayed, stale, unknown,
    /// tampered) must surface in its own slot without poisoning the rest
    /// of the chunk.
    #[test]
    fn open_upload_batch_isolates_per_message_failures() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut clients: Vec<ClientSession> = (0..4u32)
            .map(|u| {
                let c =
                    ClientSession::establish(u, service.public_key(), &m, &quote, [u as u8; 32])
                        .unwrap();
                enclave.register_client(u, c.dh_public()).unwrap();
                c
            })
            .collect();
        enclave.begin_round(1, vec![0, 1, 2, 3]);

        let good0 = clients[0].seal_upload(1, b"g0");
        let replayed = good0.clone();
        let stale = clients[1].seal_upload(0, b"stale");
        let mut tampered = clients[2].seal_upload(1, b"t");
        tampered.ciphertext[0] ^= 1;
        let good3 = clients[3].seal_upload(1, b"g3");
        let mut unsampled = clients[1].seal_upload(1, b"u");
        unsampled.user = 99;

        let batch = [good0, replayed, stale, tampered, good3, unsampled];
        let results = enclave.open_upload_batch(&batch);
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].as_deref().unwrap(), b"g0");
        assert_eq!(results[1].as_ref().unwrap_err(), &TeeError::Replay);
        assert_eq!(results[2].as_ref().unwrap_err(), &TeeError::WrongRound);
        assert_eq!(results[3].as_ref().unwrap_err(), &TeeError::AuthFailure);
        assert_eq!(results[4].as_deref().unwrap(), b"g3", "later slots unaffected");
        assert_eq!(results[5].as_ref().unwrap_err(), &TeeError::NotSampled);
    }

    /// Batched and serial opening are the same verification pipeline:
    /// identical accept/reject decisions and plaintexts on a fresh clone
    /// of the message stream.
    #[test]
    fn open_upload_batch_matches_serial_semantics() {
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut c =
            ClientSession::establish(7, service.public_key(), &m, &quote, [1u8; 32]).unwrap();
        enclave.register_client(7, c.dh_public()).unwrap();
        enclave.begin_round(0, vec![7]);
        let msgs: Vec<SealedMessage> = (0..3).map(|i| c.seal_upload(0, &[i as u8])).collect();
        // Serial reference on a second enclave with the same platform seed
        // and attestation transcript (hence the same session keys).
        let mut enclave2 = Enclave::launch(&EnclaveConfig::default(), [7u8; 32]);
        let _ = enclave2.attest(&service, b"test");
        enclave2.register_client(7, c.dh_public()).unwrap();
        enclave2.begin_round(0, vec![7]);
        let batch = enclave.open_upload_batch(&msgs);
        for (msg, got) in msgs.iter().zip(batch) {
            assert_eq!(enclave2.open_upload(msg), got);
        }
    }

    #[test]
    fn cross_user_key_isolation() {
        // User 18's key cannot decrypt user 17's upload even if the server
        // relabels the message.
        let (service, mut enclave, quote) = setup();
        let m = enclave.measurement();
        let mut c17 =
            ClientSession::establish(17, service.public_key(), &m, &quote, [5u8; 32]).unwrap();
        let c18 =
            ClientSession::establish(18, service.public_key(), &m, &quote, [6u8; 32]).unwrap();
        enclave.register_client(17, c17.dh_public()).unwrap();
        enclave.register_client(18, c18.dh_public()).unwrap();
        enclave.begin_round(0, vec![17, 18]);
        let mut msg = c17.seal_upload(0, b"secret");
        msg.user = 18; // server tries to attribute the payload to user 18
        assert_eq!(enclave.open_upload(&msg).unwrap_err(), TeeError::AuthFailure);
    }

    #[test]
    fn client_refuses_wrong_enclave() {
        let (service, mut enclave, _quote) = setup();
        // A different (e.g. malicious) enclave attests successfully but has
        // the wrong measurement.
        let evil_cfg = EnclaveConfig {
            code_identity: "olive-aggregator-with-backdoor".into(),
            ..Default::default()
        };
        let mut evil = Enclave::launch(&evil_cfg, [8u8; 32]);
        let evil_quote = evil.attest(&service, b"test");
        let expected = enclave.measurement();
        let err =
            ClientSession::establish(1, service.public_key(), &expected, &evil_quote, [5; 32])
                .unwrap_err();
        assert_eq!(err, AttestationError::WrongMeasurement);
        let _ = &mut enclave;
    }
}
