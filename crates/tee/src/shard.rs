//! Mutually attested enclave-to-enclave tunnels for sharded aggregation.
//!
//! The sharded round topology splits the aggregation plane across `S`
//! shard enclaves, each owning one contiguous stripe of the `G` region
//! under its own EPC budget. The coordinator enclave (the one clients
//! attest) forwards staged upload cells to the shards and collects each
//! shard's stripe of the round output — so the coordinator↔shard link
//! must be as trustworthy as the client↔enclave link: each endpoint
//! verifies the *other's* platform quote before any key material is
//! derived (the TNG ingress/egress shape: two peer gateways, a secure
//! channel established by remote attestation in both directions, then a
//! duplex encrypted stream).
//!
//! Key schedule (mirrors [`crate::ClientSession::establish`], extended to
//! mutual attestation):
//!
//! ```text
//! salt = SHA-256("olive-shard-tunnel-salt-v1" ∥ T_coord ∥ T_shard)
//! ikm  = DH(coordinator enclave key, shard enclave key)
//! key  = HKDF(salt, ikm, "olive-shard-tunnel-v1:" ∥ shard_id, 32)
//! ```
//!
//! where `T_coord`/`T_shard` are the two attestation transcript hashes —
//! so the key is bound to both quotes, and a MITM that swapped either
//! side's DH share would have failed quote verification first. One key
//! serves both directions safely because every nonce is prefixed with a
//! direction tag (coordinator→shard vs shard→coordinator), and each
//! direction keeps its own monotone sequence counter with a receiver-side
//! replay floor.

use olive_crypto::dh::DhKeyPair;
use olive_crypto::gcm::NONCE_LEN;
use olive_crypto::CryptoEngine;
use olive_telemetry::Telemetry;

use crate::attestation::{verify_quote, AttestationError, Measurement, Quote};
use crate::enclave::Enclave;

/// A shard identifier (index of the `G`-region stripe the shard owns).
pub type ShardId = u32;

/// Errors surfaced by tunnel establishment and transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunnelError {
    /// The peer's quote failed verification (forged signature or a
    /// measurement other than the pinned one) — the tunnel must not come
    /// up at all.
    Attestation(AttestationError),
    /// The local enclave has not attested yet: there is no transcript to
    /// bind the tunnel key to.
    NotAttested,
    /// A message failed AEAD verification (tampered, or sealed for a
    /// different shard/kind/sequence/direction).
    AuthFailure,
    /// A message's sequence number is at or below the replay floor.
    Replay,
}

impl core::fmt::Display for TunnelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TunnelError::Attestation(e) => write!(f, "peer attestation failed: {e}"),
            TunnelError::NotAttested => write!(f, "local enclave has not attested"),
            TunnelError::AuthFailure => write!(f, "tunnel message failed authentication"),
            TunnelError::Replay => write!(f, "tunnel message replayed or out of order"),
        }
    }
}

impl std::error::Error for TunnelError {}

/// Which end of the tunnel this endpoint is. The role fixes the nonce
/// direction tags: a coordinator seals with tag 1 and opens tag 2; a
/// shard seals with tag 2 and opens tag 1. Reflecting a message back at
/// its sender therefore fails authentication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunnelRole {
    /// The round driver's enclave (TNG ingress: traffic enters here).
    Coordinator,
    /// A shard enclave (TNG egress: traffic exits to the stripe owner).
    Shard,
}

impl TunnelRole {
    fn send_tag(self) -> u8 {
        match self {
            TunnelRole::Coordinator => 1,
            TunnelRole::Shard => 2,
        }
    }

    fn recv_tag(self) -> u8 {
        match self {
            TunnelRole::Coordinator => 2,
            TunnelRole::Shard => 1,
        }
    }
}

/// An encrypted tunnel frame. Header fields are authenticated (AAD), not
/// secret — the untrusted host routes on them.
#[derive(Clone, Debug)]
pub struct TunnelMessage {
    /// Stripe the frame belongs to (part of the key *and* the AAD).
    pub shard_id: ShardId,
    /// Application message kind (cells, stripe, receipt, …).
    pub kind: u8,
    /// Monotone per-direction sequence number.
    pub seq: u64,
    /// AES-GCM ciphertext ∥ tag.
    pub ciphertext: Vec<u8>,
}

impl TunnelMessage {
    /// Flips one ciphertext bit — the fault-injection model of in-flight
    /// frame corruption by the untrusted host. The receiver's AEAD open
    /// must fail; the sender retries with a fresh sequence number.
    pub fn tamper(&mut self) {
        if let Some(b) = self.ciphertext.first_mut() {
            *b ^= 1;
        }
    }
}

fn tunnel_info(shard_id: ShardId) -> Vec<u8> {
    let mut v = b"olive-shard-tunnel-v1:".to_vec();
    v.extend_from_slice(&shard_id.to_be_bytes());
    v
}

fn tunnel_nonce(direction: u8, seq: u64) -> [u8; NONCE_LEN] {
    let mut n = [0u8; NONCE_LEN];
    n[0] = direction;
    n[4..].copy_from_slice(&seq.to_be_bytes());
    n
}

fn tunnel_aad(shard_id: ShardId, kind: u8, seq: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(19 + 4 + 1 + 8);
    aad.extend_from_slice(b"olive-shard-msg-v1:");
    aad.extend_from_slice(&shard_id.to_be_bytes());
    aad.push(kind);
    aad.extend_from_slice(&seq.to_be_bytes());
    aad
}

/// One endpoint of a mutually attested coordinator↔shard channel.
///
/// Both endpoints are built by [`ShardTunnel::establish`] from their own
/// (attested) enclave plus the peer's quote; the derived keys agree iff
/// both quotes are genuine and carry the DH shares the enclaves actually
/// hold.
pub struct ShardTunnel {
    shard_id: ShardId,
    role: TunnelRole,
    key: [u8; 32],
    engine: CryptoEngine,
    /// Last sequence number sealed in this endpoint's send direction.
    send_seq: u64,
    /// Replay floor for the receive direction: opened frames must carry a
    /// strictly larger sequence number.
    recv_floor: u64,
    /// Side-band metrics handle (disarmed by default): sealed frames feed
    /// the `tunnel_frames` counter keyed by stripe and direction.
    telemetry: Telemetry,
}

impl core::fmt::Debug for ShardTunnel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Key material is intentionally redacted.
        f.debug_struct("ShardTunnel")
            .field("shard_id", &self.shard_id)
            .field("role", &self.role)
            .field("send_seq", &self.send_seq)
            .field("recv_floor", &self.recv_floor)
            .finish_non_exhaustive()
    }
}

impl ShardTunnel {
    /// Brings up this endpoint: verifies the peer's quote against the
    /// pinned platform key and expected peer measurement (refusing the
    /// tunnel outright on any mismatch), then derives the tunnel key from
    /// both attestation transcripts and the enclave-to-enclave DH secret.
    ///
    /// `own` must already have attested ([`Enclave::attest`]) — its
    /// transcript is half of the HKDF salt.
    pub fn establish(
        role: TunnelRole,
        own: &Enclave,
        platform_public: u64,
        expected_peer_measurement: &Measurement,
        peer_quote: &Quote,
        shard_id: ShardId,
    ) -> Result<Self, TunnelError> {
        derive(
            role,
            own.attested_transcript(),
            &own.dh_keypair(),
            own.crypto_engine(),
            platform_public,
            expected_peer_measurement,
            peer_quote,
            shard_id,
        )
    }

    /// The stripe this tunnel serves.
    pub fn shard_id(&self) -> ShardId {
        self.shard_id
    }

    /// Arms side-band telemetry on this endpoint. Tunnels come up with a
    /// disarmed handle; the shard runtime re-threads its own after
    /// `establish` (and after every failover re-establishment).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Seals one frame in this endpoint's send direction.
    pub fn seal(&mut self, kind: u8, payload: &[u8]) -> TunnelMessage {
        if self.telemetry.is_armed() {
            let dir = match self.role {
                TunnelRole::Coordinator => "c2s",
                TunnelRole::Shard => "s2c",
            };
            self.telemetry.count("tunnel_frames", &format!("s{}:{dir}", self.shard_id), 1);
        }
        self.send_seq += 1;
        let seq = self.send_seq;
        let nonce = tunnel_nonce(self.role.send_tag(), seq);
        let aad = tunnel_aad(self.shard_id, kind, seq);
        let gcm = self.engine.aes_gcm(&self.key).expect("32-byte key");
        TunnelMessage {
            shard_id: self.shard_id,
            kind,
            seq,
            ciphertext: gcm.seal(&nonce, payload, &aad),
        }
    }

    /// Opens one frame from the peer: checks the replay floor, then the
    /// AEAD tag under the peer's direction tag and the frame's AAD. On
    /// success the floor advances past the frame's sequence number.
    pub fn open(&mut self, msg: &TunnelMessage) -> Result<Vec<u8>, TunnelError> {
        if msg.shard_id != self.shard_id {
            return Err(TunnelError::AuthFailure);
        }
        if msg.seq <= self.recv_floor {
            return Err(TunnelError::Replay);
        }
        let nonce = tunnel_nonce(self.role.recv_tag(), msg.seq);
        let aad = tunnel_aad(msg.shard_id, msg.kind, msg.seq);
        let gcm = self.engine.aes_gcm(&self.key).expect("32-byte key");
        let plain =
            gcm.open(&nonce, &msg.ciphertext, &aad).map_err(|_| TunnelError::AuthFailure)?;
        self.recv_floor = msg.seq;
        Ok(plain)
    }
}

/// Shared key-derivation path for [`ShardTunnel::establish`] and
/// [`TunnelAnchor::establish`]: verify the peer's quote *first* (a forged
/// peer must never learn whether we are attested), then require a local
/// transcript, then derive the tunnel key from both transcripts and the
/// DH secret.
#[allow(clippy::too_many_arguments)]
fn derive(
    role: TunnelRole,
    own_transcript: Option<[u8; 32]>,
    dh: &DhKeyPair,
    engine: CryptoEngine,
    platform_public: u64,
    expected_peer_measurement: &Measurement,
    peer_quote: &Quote,
    shard_id: ShardId,
) -> Result<ShardTunnel, TunnelError> {
    verify_quote(platform_public, expected_peer_measurement, peer_quote)
        .map_err(TunnelError::Attestation)?;
    let own_transcript = own_transcript.ok_or(TunnelError::NotAttested)?;
    let peer_transcript = peer_quote.report.transcript_hash();
    // Canonical transcript order: coordinator first, shard second —
    // both endpoints compute the same salt.
    let (coord_t, shard_t) = match role {
        TunnelRole::Coordinator => (own_transcript, peer_transcript),
        TunnelRole::Shard => (peer_transcript, own_transcript),
    };
    let mut salt_input = b"olive-shard-tunnel-salt-v1".to_vec();
    salt_input.extend_from_slice(&coord_t);
    salt_input.extend_from_slice(&shard_t);
    let salt = engine.digest(&salt_input);
    let ikm = dh.shared_secret(peer_quote.report.enclave_dh_public);
    let key: [u8; 32] = engine
        .hkdf(&salt, &ikm, &tunnel_info(shard_id), 32)
        .try_into()
        .expect("hkdf returns requested length");
    Ok(ShardTunnel {
        shard_id,
        role,
        key,
        engine,
        send_seq: 0,
        recv_floor: 0,
        telemetry: Telemetry::off(),
    })
}

/// A snapshot of the coordinator enclave's tunnel-establishment identity —
/// its attestation transcript, DH key pair, and crypto engine — taken at
/// provisioning time.
///
/// Mid-round shard failover needs the coordinator end of a *fresh* tunnel
/// to a relaunched shard, but at that point the shard runtime does not
/// hold a borrow of the coordinator [`Enclave`] (the round driver owns
/// it, and is in the middle of ingesting a chunk through it). The anchor
/// carries exactly the three launch-time-stable values key derivation
/// needs, so [`TunnelAnchor::establish`] can bring up the replacement
/// tunnel autonomously. The relaunched shard presents a fresh DH share
/// (new [`Enclave::launch_with_dh_epoch`] epoch) and a fresh quote, so
/// the derived key differs from every key of the dead instance even
/// though the coordinator's half of the handshake is fixed.
pub struct TunnelAnchor {
    transcript: [u8; 32],
    dh: DhKeyPair,
    engine: CryptoEngine,
}

impl core::fmt::Debug for TunnelAnchor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Key material is intentionally redacted.
        f.debug_struct("TunnelAnchor").finish_non_exhaustive()
    }
}

impl TunnelAnchor {
    /// Captures the coordinator's tunnel identity. Fails with
    /// [`TunnelError::NotAttested`] before [`Enclave::attest`] — an
    /// unattested coordinator has no transcript to bind tunnel keys to.
    pub fn capture(own: &Enclave) -> Result<Self, TunnelError> {
        let transcript = own.attested_transcript().ok_or(TunnelError::NotAttested)?;
        Ok(TunnelAnchor { transcript, dh: own.dh_keypair(), engine: own.crypto_engine() })
    }

    /// Brings up the coordinator end of a tunnel to a (re)launched shard,
    /// exactly as [`ShardTunnel::establish`] would with the live enclave:
    /// the peer quote is verified against the pinned platform key and
    /// shard measurement before any key material is derived.
    pub fn establish(
        &self,
        platform_public: u64,
        expected_peer_measurement: &Measurement,
        peer_quote: &Quote,
        shard_id: ShardId,
    ) -> Result<ShardTunnel, TunnelError> {
        derive(
            TunnelRole::Coordinator,
            Some(self.transcript),
            &self.dh,
            self.engine,
            platform_public,
            expected_peer_measurement,
            peer_quote,
            shard_id,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationService;
    use crate::enclave::EnclaveConfig;

    fn shard_cfg() -> EnclaveConfig {
        EnclaveConfig { code_identity: "olive-shard-aggregator-v1".into(), ..Default::default() }
    }

    /// Service + attested coordinator and shard enclaves + both quotes.
    fn setup() -> (AttestationService, Enclave, Quote, Enclave, Quote) {
        let service = AttestationService::new([9u8; 32]);
        let mut coord = Enclave::launch(&EnclaveConfig::default(), [7u8; 32]);
        let coord_quote = coord.attest(&service, b"tunnel-test");
        let mut shard = Enclave::launch(&shard_cfg(), [8u8; 32]);
        let shard_quote = shard.attest(&service, b"tunnel-test");
        (service, coord, coord_quote, shard, shard_quote)
    }

    fn pair(id: ShardId) -> (ShardTunnel, ShardTunnel) {
        let (service, coord, coord_quote, shard, shard_quote) = setup();
        let c = ShardTunnel::establish(
            TunnelRole::Coordinator,
            &coord,
            service.public_key(),
            &shard.measurement(),
            &shard_quote,
            id,
        )
        .expect("genuine shard quote");
        let s = ShardTunnel::establish(
            TunnelRole::Shard,
            &shard,
            service.public_key(),
            &coord.measurement(),
            &coord_quote,
            id,
        )
        .expect("genuine coordinator quote");
        (c, s)
    }

    #[test]
    fn duplex_roundtrip() {
        let (mut c, mut s) = pair(3);
        let down = c.seal(1, b"cells for stripe 3");
        assert_eq!(s.open(&down).unwrap(), b"cells for stripe 3");
        let up = s.seal(2, b"receipt");
        assert_eq!(c.open(&up).unwrap(), b"receipt");
    }

    #[test]
    fn wrong_peer_measurement_refused() {
        let (service, coord, _cq, _shard, _sq) = setup();
        // An imposter shard with valid platform attestation but different
        // code: its quote verifies, its measurement does not.
        let mut evil = Enclave::launch(
            &EnclaveConfig {
                code_identity: "olive-shard-with-backdoor".into(),
                ..Default::default()
            },
            [13u8; 32],
        );
        let evil_quote = evil.attest(&service, b"tunnel-test");
        let genuine_measurement = Enclave::launch(&shard_cfg(), [1u8; 32]).measurement();
        let err = ShardTunnel::establish(
            TunnelRole::Coordinator,
            &coord,
            service.public_key(),
            &genuine_measurement,
            &evil_quote,
            0,
        )
        .unwrap_err();
        assert_eq!(err, TunnelError::Attestation(AttestationError::WrongMeasurement));
    }

    #[test]
    fn forged_quote_refused() {
        let (service, coord, _cq, shard, mut shard_quote) = setup();
        shard_quote.report.enclave_dh_public ^= 1; // MITM swaps the DH share
        let err = ShardTunnel::establish(
            TunnelRole::Coordinator,
            &coord,
            service.public_key(),
            &shard.measurement(),
            &shard_quote,
            0,
        )
        .unwrap_err();
        assert_eq!(err, TunnelError::Attestation(AttestationError::BadSignature));
    }

    #[test]
    fn unattested_local_enclave_refused() {
        let (service, _coord, _cq, shard, shard_quote) = setup();
        let cold = Enclave::launch(&EnclaveConfig::default(), [2u8; 32]);
        let err = ShardTunnel::establish(
            TunnelRole::Coordinator,
            &cold,
            service.public_key(),
            &shard.measurement(),
            &shard_quote,
            0,
        )
        .unwrap_err();
        assert_eq!(err, TunnelError::NotAttested);
    }

    #[test]
    fn replay_rejected() {
        let (mut c, mut s) = pair(0);
        let m = c.seal(1, b"x");
        assert!(s.open(&m).is_ok());
        assert_eq!(s.open(&m).unwrap_err(), TunnelError::Replay);
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut c, mut s) = pair(0);
        let mut m = c.seal(1, b"x");
        m.ciphertext[0] ^= 1;
        assert_eq!(s.open(&m).unwrap_err(), TunnelError::AuthFailure);
        // Relabeling the kind breaks the AAD too.
        let mut m2 = c.seal(1, b"y");
        m2.kind = 2;
        assert_eq!(s.open(&m2).unwrap_err(), TunnelError::AuthFailure);
    }

    #[test]
    fn reflected_frame_rejected() {
        // A frame bounced back at its sender must not decrypt: the nonce
        // direction tag separates the two halves of the duplex channel
        // even though they share one key.
        let (mut c, _s) = pair(0);
        let m = c.seal(1, b"downlink");
        assert_eq!(c.open(&m).unwrap_err(), TunnelError::AuthFailure);
    }

    #[test]
    fn cross_shard_key_separation() {
        // Stripe ids enter the HKDF info: a frame sealed on the stripe-0
        // tunnel must not open on stripe 1, even between the same two
        // enclaves (and independently of the AAD check, which is why the
        // message's own shard_id is rewritten here).
        let (service, coord, coord_quote, shard, shard_quote) = setup();
        let mk = |id: ShardId, role: TunnelRole| match role {
            TunnelRole::Coordinator => ShardTunnel::establish(
                role,
                &coord,
                service.public_key(),
                &shard.measurement(),
                &shard_quote,
                id,
            )
            .unwrap(),
            TunnelRole::Shard => ShardTunnel::establish(
                role,
                &shard,
                service.public_key(),
                &coord.measurement(),
                &coord_quote,
                id,
            )
            .unwrap(),
        };
        let mut c0 = mk(0, TunnelRole::Coordinator);
        let mut s1 = mk(1, TunnelRole::Shard);
        let mut m = c0.seal(1, b"stripe 0 cells");
        m.shard_id = 1;
        assert_eq!(s1.open(&m).unwrap_err(), TunnelError::AuthFailure);
    }

    #[test]
    fn anchor_rebuilds_coordinator_end_and_relaunch_rekeys() {
        let (service, coord, coord_quote, shard, shard_quote) = setup();
        let anchor = TunnelAnchor::capture(&coord).expect("attested coordinator");
        let mut c = anchor
            .establish(service.public_key(), &shard.measurement(), &shard_quote, 0)
            .expect("genuine shard quote");
        let mut s = ShardTunnel::establish(
            TunnelRole::Shard,
            &shard,
            service.public_key(),
            &coord.measurement(),
            &coord_quote,
            0,
        )
        .expect("genuine coordinator quote");
        let m = c.seal(1, b"via anchor");
        assert_eq!(s.open(&m).unwrap(), b"via anchor", "anchor end interoperates");
        // The failover flow: the shard relaunches under a fresh DH epoch
        // and re-attests; the anchor brings up the replacement tunnel.
        let mut shard2 = Enclave::launch_with_dh_epoch(&shard_cfg(), [8u8; 32], 1);
        let shard2_quote = shard2.attest(&service, b"tunnel-test");
        let mut c2 = anchor
            .establish(service.public_key(), &shard2.measurement(), &shard2_quote, 0)
            .expect("relaunched shard re-attests");
        let mut s2 = ShardTunnel::establish(
            TunnelRole::Shard,
            &shard2,
            service.public_key(),
            &coord.measurement(),
            &coord_quote,
            0,
        )
        .unwrap();
        let m2 = c2.seal(1, b"fresh keys");
        assert_eq!(s2.open(&m2).unwrap(), b"fresh keys");
        // The dead instance's key is gone: its frames do not open on the
        // rekeyed tunnel (fresh DH share → fresh HKDF output).
        let stale = c.seal(1, b"stale");
        assert_eq!(s2.open(&stale).unwrap_err(), TunnelError::AuthFailure);
        // And an unattested coordinator has nothing to anchor.
        let cold = Enclave::launch(&EnclaveConfig::default(), [2u8; 32]);
        assert_eq!(TunnelAnchor::capture(&cold).unwrap_err(), TunnelError::NotAttested);
    }

    #[test]
    fn tamper_hook_breaks_authentication() {
        let (mut c, mut s) = pair(1);
        let mut m = c.seal(1, b"payload");
        m.tamper();
        assert_eq!(s.open(&m).unwrap_err(), TunnelError::AuthFailure);
        // Floor did not advance: the sender's retry (fresh seq) opens.
        let retry = c.seal(1, b"payload");
        assert_eq!(s.open(&retry).unwrap(), b"payload");
    }

    #[test]
    fn sequence_numbers_advance_per_direction() {
        let (mut c, mut s) = pair(2);
        let a = c.seal(1, b"a");
        let b = c.seal(1, b"b");
        assert_eq!((a.seq, b.seq), (1, 2));
        // Out-of-order delivery of the *newest* frame advances the floor
        // past the older one: strict monotonicity, like upload nonces.
        assert!(s.open(&b).is_ok());
        assert_eq!(s.open(&a).unwrap_err(), TunnelError::Replay);
        // The uplink direction counts independently.
        let up = s.seal(2, b"r");
        assert_eq!(up.seq, 1);
        assert!(c.open(&up).is_ok());
    }
}
