//! Non-IID federated partitioning (the paper's Section 4.2 client model).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::synthetic::{Dataset, Generator};

/// How label subsets are assigned to clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelAssignment {
    /// Every client holds exactly `k` labels; the attacker knows `k`
    /// (the Figure 4 setting).
    Fixed(usize),
    /// Client `i` holds a uniform random number of labels in `1..=max`
    /// (the harder Figure 5 setting, label-set size unknown).
    Random(usize),
}

/// One client's local shard.
#[derive(Clone, Debug)]
pub struct ClientData {
    /// The client / user id.
    pub user: u32,
    /// The sensitive label subset — the attack target.
    pub label_set: Vec<usize>,
    /// The client's local training data (drawn only from `label_set`).
    pub dataset: Dataset,
}

/// Partitions a synthetic distribution into `n_clients` non-IID shards.
///
/// Each client receives a label subset per `assignment` and
/// `samples_per_client` training points spread evenly over its labels.
/// Deterministic in `seed`.
pub fn partition(
    generator: &Generator,
    n_clients: usize,
    assignment: LabelAssignment,
    samples_per_client: usize,
    seed: u64,
) -> Vec<ClientData> {
    let num_classes = generator.config().num_classes;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEDE_7A7E);
    let mut clients = Vec::with_capacity(n_clients);
    for user in 0..n_clients {
        let k = match assignment {
            LabelAssignment::Fixed(k) => k,
            LabelAssignment::Random(max) => rng.gen_range(1..=max.max(1)),
        };
        let k = k.min(num_classes);
        // Sample k distinct labels (partial Fisher–Yates).
        let mut labels: Vec<usize> = (0..num_classes).collect();
        for t in 0..k {
            let j = rng.gen_range(t..labels.len());
            labels.swap(t, j);
        }
        let mut label_set: Vec<usize> = labels[..k].to_vec();
        label_set.sort_unstable();

        let mut dataset = Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            feature_dim: generator.config().feature_dim,
            num_classes,
        };
        let base = samples_per_client / k;
        let extra = samples_per_client % k;
        for (i, &label) in label_set.iter().enumerate() {
            let n = base + usize::from(i < extra);
            if n > 0 {
                let part = generator.sample_class(label, n, &mut rng);
                dataset.concat(&part);
            }
        }
        clients.push(ClientData { user: user as u32, label_set, dataset });
    }
    clients
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn generator() -> Generator {
        Generator::new(SyntheticConfig::tiny(16, 6), 11)
    }

    #[test]
    fn fixed_assignment_sizes() {
        let clients = partition(&generator(), 10, LabelAssignment::Fixed(2), 12, 0);
        assert_eq!(clients.len(), 10);
        for c in &clients {
            assert_eq!(c.label_set.len(), 2);
            assert_eq!(c.dataset.len(), 12);
            // Data only from the client's label set.
            assert!(c.dataset.labels.iter().all(|l| c.label_set.contains(l)));
            // Distinct labels.
            assert_ne!(c.label_set[0], c.label_set[1]);
        }
    }

    #[test]
    fn random_assignment_sizes_in_range() {
        let clients = partition(&generator(), 50, LabelAssignment::Random(4), 8, 1);
        let mut seen_sizes = std::collections::HashSet::new();
        for c in &clients {
            assert!((1..=4).contains(&c.label_set.len()));
            seen_sizes.insert(c.label_set.len());
        }
        assert!(seen_sizes.len() > 1, "random sizes should vary");
    }

    #[test]
    fn sample_split_is_even() {
        let clients = partition(&generator(), 4, LabelAssignment::Fixed(3), 10, 2);
        for c in &clients {
            // 10 samples over 3 labels → 4/3/3.
            let mut counts: Vec<usize> = c
                .label_set
                .iter()
                .map(|&l| c.dataset.labels.iter().filter(|&&x| x == l).count())
                .collect();
            counts.sort_unstable();
            assert_eq!(counts, vec![3, 3, 4]);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = partition(&generator(), 5, LabelAssignment::Fixed(2), 6, 7);
        let b = partition(&generator(), 5, LabelAssignment::Fixed(2), 6, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.label_set, y.label_set);
            assert_eq!(x.dataset.features, y.dataset.features);
        }
        let c = partition(&generator(), 5, LabelAssignment::Fixed(2), 6, 8);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.label_set != y.label_set));
    }

    #[test]
    fn label_sets_vary_across_clients() {
        let clients = partition(&generator(), 30, LabelAssignment::Fixed(2), 4, 3);
        let distinct: std::collections::HashSet<Vec<usize>> =
            clients.iter().map(|c| c.label_set.clone()).collect();
        assert!(distinct.len() > 5, "non-IID assignment should differ across clients");
    }

    #[test]
    fn oversized_fixed_assignment_clamped() {
        let clients = partition(&generator(), 2, LabelAssignment::Fixed(99), 6, 4);
        for c in &clients {
            assert_eq!(c.label_set.len(), 6, "clamped to num_classes");
        }
    }
}
