//! Label-structured synthetic data generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset with flat row-major features.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `(n, feature_dim)` row-major feature matrix.
    pub features: Vec<f32>,
    /// One label per row.
    pub labels: Vec<usize>,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Number of classes in the generating distribution.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The feature row of sample `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// Returns the subset with the given label (the attacker's `X_l`).
    pub fn filter_label(&self, label: usize) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..self.len() {
            if self.labels[i] == label {
                features.extend_from_slice(self.row(i));
                labels.push(label);
            }
        }
        Dataset { features, labels, feature_dim: self.feature_dim, num_classes: self.num_classes }
    }

    /// Random subsample of `per_label` rows per label (Figure 8's ablation
    /// on attacker dataset size). Keeps class balance by construction.
    pub fn subsample_per_label<R: Rng>(&self, per_label: usize, rng: &mut R) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for l in 0..self.num_classes {
            let idxs: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i] == l).collect();
            let take = per_label.min(idxs.len());
            // Partial Fisher–Yates for an unbiased sample without replacement.
            let mut pool = idxs;
            for t in 0..take {
                let j = rng.gen_range(t..pool.len());
                pool.swap(t, j);
                features.extend_from_slice(self.row(pool[t]));
                labels.push(l);
            }
        }
        Dataset { features, labels, feature_dim: self.feature_dim, num_classes: self.num_classes }
    }

    /// Concatenates two datasets with identical schema.
    pub fn concat(&mut self, other: &Dataset) {
        assert_eq!(self.feature_dim, other.feature_dim);
        assert_eq!(self.num_classes, other.num_classes);
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }
}

/// Parameters of the synthetic generator.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Feature dimension (e.g. 784 for the MNIST equivalent).
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Fraction of coordinates where a class prototype is "active"
    /// (distinct from the background); sparse activation is what gives each
    /// class a characteristic gradient footprint.
    pub active_fraction: f64,
    /// Observation noise standard deviation.
    pub noise_std: f64,
    /// If true, features are binarized (the Purchase100 tabular style).
    pub binary: bool,
}

impl SyntheticConfig {
    /// MNIST-equivalent: 784 dims, 10 classes.
    pub fn mnist_like() -> Self {
        SyntheticConfig {
            feature_dim: 28 * 28,
            num_classes: 10,
            active_fraction: 0.15,
            noise_std: 0.25,
            binary: false,
        }
    }

    /// CIFAR10-equivalent: 3072 dims, 10 classes, noisier.
    pub fn cifar10_like() -> Self {
        SyntheticConfig {
            feature_dim: 3 * 32 * 32,
            num_classes: 10,
            active_fraction: 0.10,
            noise_std: 0.45,
            binary: false,
        }
    }

    /// CIFAR100-equivalent: 3072 dims, 100 classes.
    pub fn cifar100_like() -> Self {
        SyntheticConfig {
            feature_dim: 3 * 32 * 32,
            num_classes: 100,
            active_fraction: 0.08,
            noise_std: 0.45,
            binary: false,
        }
    }

    /// Purchase100-equivalent: 600 binary dims, 100 classes.
    pub fn purchase100_like() -> Self {
        SyntheticConfig {
            feature_dim: 600,
            num_classes: 100,
            active_fraction: 0.2,
            noise_std: 0.0,
            binary: true,
        }
    }

    /// A tiny config for fast tests: `dim` features, `classes` classes.
    pub fn tiny(dim: usize, classes: usize) -> Self {
        SyntheticConfig {
            feature_dim: dim,
            num_classes: classes,
            active_fraction: 0.3,
            noise_std: 0.2,
            binary: false,
        }
    }
}

/// Standard normal sample via Box–Muller (rand 0.8 without rand_distr).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Class-prototype generator: holds the per-class structure so train and
/// test sets (and the attacker's pool) come from one distribution.
pub struct Generator {
    config: SyntheticConfig,
    /// `(num_classes, feature_dim)` prototypes.
    prototypes: Vec<f32>,
}

impl Generator {
    /// Builds class prototypes deterministically from `seed`.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_DA7A);
        let mut prototypes = vec![0.0f32; config.num_classes * config.feature_dim];
        for c in 0..config.num_classes {
            let row = &mut prototypes[c * config.feature_dim..(c + 1) * config.feature_dim];
            for v in row.iter_mut() {
                if rng.gen::<f64>() < config.active_fraction {
                    // Active coordinate: a strong class-specific signal.
                    *v = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                }
            }
        }
        Generator { config, prototypes }
    }

    /// The generator's config.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Samples `n` points of class `label`.
    pub fn sample_class<R: Rng>(&self, label: usize, n: usize, rng: &mut R) -> Dataset {
        assert!(label < self.config.num_classes);
        let d = self.config.feature_dim;
        let proto = &self.prototypes[label * d..(label + 1) * d];
        let mut features = Vec::with_capacity(n * d);
        for _ in 0..n {
            for &p in proto {
                let raw = p as f64 + self.config.noise_std * gaussian(rng);
                let v = if self.config.binary {
                    // Bernoulli on the signal: active coords mostly 1.
                    if rng.gen::<f64>() < 0.5 + 0.45 * p as f64 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    raw as f32
                };
                features.push(v);
            }
        }
        Dataset {
            features,
            labels: vec![label; n],
            feature_dim: d,
            num_classes: self.config.num_classes,
        }
    }

    /// Samples a balanced dataset of `per_class` points per class (the
    /// global test pool the semi-honest server holds for validation).
    pub fn sample_balanced<R: Rng>(&self, per_class: usize, rng: &mut R) -> Dataset {
        let mut out = Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            feature_dim: self.config.feature_dim,
            num_classes: self.config.num_classes,
        };
        for c in 0..self.config.num_classes {
            let part = self.sample_class(c, per_class, rng);
            out.concat(&part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let gen = Generator::new(SyntheticConfig::tiny(20, 4), 42);
        let mut rng = SmallRng::seed_from_u64(1);
        let ds = gen.sample_balanced(5, &mut rng);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.features.len(), 20 * 20);
        let gen2 = Generator::new(SyntheticConfig::tiny(20, 4), 42);
        let mut rng2 = SmallRng::seed_from_u64(1);
        let ds2 = gen2.sample_balanced(5, &mut rng2);
        assert_eq!(ds.features, ds2.features, "same seeds, same data");
    }

    #[test]
    fn classes_are_separated() {
        // Mean intra-class distance must be well below inter-class distance,
        // otherwise no model (and no attack) could work.
        let gen = Generator::new(SyntheticConfig::tiny(50, 3), 7);
        let mut rng = SmallRng::seed_from_u64(2);
        let a1 = gen.sample_class(0, 1, &mut rng);
        let a2 = gen.sample_class(0, 1, &mut rng);
        let b = gen.sample_class(1, 1, &mut rng);
        let dist = |x: &[f32], y: &[f32]| -> f32 {
            x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt()
        };
        let intra = dist(a1.row(0), a2.row(0));
        let inter = dist(a1.row(0), b.row(0));
        assert!(inter > intra * 1.5, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn filter_label_selects_only_that_label() {
        let gen = Generator::new(SyntheticConfig::tiny(10, 3), 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let ds = gen.sample_balanced(4, &mut rng);
        let only1 = ds.filter_label(1);
        assert_eq!(only1.len(), 4);
        assert!(only1.labels.iter().all(|&l| l == 1));
    }

    #[test]
    fn subsample_respects_per_label_budget() {
        let gen = Generator::new(SyntheticConfig::tiny(10, 5), 1);
        let mut rng = SmallRng::seed_from_u64(4);
        let ds = gen.sample_balanced(10, &mut rng);
        let small = ds.subsample_per_label(3, &mut rng);
        assert_eq!(small.len(), 15);
        for l in 0..5 {
            assert_eq!(small.labels.iter().filter(|&&x| x == l).count(), 3);
        }
    }

    #[test]
    fn purchase_like_is_binary() {
        let gen = Generator::new(SyntheticConfig::purchase100_like(), 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let ds = gen.sample_class(3, 10, &mut rng);
        assert!(ds.features.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
