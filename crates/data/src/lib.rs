//! # olive-data
//!
//! Synthetic datasets and federated (non-IID) partitioning.
//!
//! The paper evaluates on MNIST, CIFAR-10/100 and Purchase100 (Table 1).
//! This environment has no network access to those datasets, so per the
//! substitution policy (`DESIGN.md` §1) we generate *label-structured
//! synthetic equivalents*: each class has a random prototype in feature
//! space and samples are prototype + noise. What the attack of Section 4
//! exploits is exactly the property this construction preserves — gradients
//! of a model trained on a client's label subset concentrate their top-k
//! magnitudes on label-correlated coordinates.
//!
//! [`federated::partition`] reproduces the paper's client data model
//! (Section 4.2): each of N clients holds samples from a small label
//! subset, either a fixed-size subset (the attacker knows the size) or a
//! random-size one (harder setting), and the attacker holds a label-indexed
//! test pool covering the global distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod federated;
pub mod synthetic;

pub use catalog::{DatasetKind, DatasetSpec};
pub use federated::{partition, ClientData, LabelAssignment};
pub use synthetic::{Dataset, SyntheticConfig};
