//! The dataset catalog mirroring the paper's Table 1.

use crate::synthetic::{Generator, SyntheticConfig};

/// The four evaluation datasets (synthetic equivalents).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatasetKind {
    /// 28×28 grayscale, 10 classes (70,000 records / 10,000 test).
    Mnist,
    /// 32×32×3, 10 classes (60,000 records / 10,000 test).
    Cifar10,
    /// 600 binary features, 100 classes (144,000 / 24,000 test).
    Purchase100,
    /// 32×32×3, 100 classes (60,000 / 10,000 test).
    Cifar100,
}

/// Static description of a Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Display name.
    pub name: &'static str,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Number of labels |L|.
    pub num_classes: usize,
    /// Paper's total record count (for the Table 1 printout).
    pub paper_records: usize,
    /// Paper's test-set size.
    pub paper_test_records: usize,
}

impl DatasetKind {
    /// The Table 1 row for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Mnist => DatasetSpec {
                kind: *self,
                name: "MNIST",
                feature_dim: 28 * 28,
                num_classes: 10,
                paper_records: 70_000,
                paper_test_records: 10_000,
            },
            DatasetKind::Cifar10 => DatasetSpec {
                kind: *self,
                name: "CIFAR10",
                feature_dim: 3 * 32 * 32,
                num_classes: 10,
                paper_records: 60_000,
                paper_test_records: 10_000,
            },
            DatasetKind::Purchase100 => DatasetSpec {
                kind: *self,
                name: "Purchase100",
                feature_dim: 600,
                num_classes: 100,
                paper_records: 144_000,
                paper_test_records: 24_000,
            },
            DatasetKind::Cifar100 => DatasetSpec {
                kind: *self,
                name: "CIFAR100",
                feature_dim: 3 * 32 * 32,
                num_classes: 100,
                paper_records: 60_000,
                paper_test_records: 10_000,
            },
        }
    }

    /// The synthetic generator config equivalent to this dataset.
    pub fn synthetic_config(&self) -> SyntheticConfig {
        match self {
            DatasetKind::Mnist => SyntheticConfig::mnist_like(),
            DatasetKind::Cifar10 => SyntheticConfig::cifar10_like(),
            DatasetKind::Purchase100 => SyntheticConfig::purchase100_like(),
            DatasetKind::Cifar100 => SyntheticConfig::cifar100_like(),
        }
    }

    /// Builds the deterministic generator for this dataset.
    pub fn generator(&self, seed: u64) -> Generator {
        Generator::new(self.synthetic_config(), seed)
    }

    /// All datasets in Table 1 order.
    pub fn all() -> [DatasetKind; 4] {
        [DatasetKind::Mnist, DatasetKind::Cifar10, DatasetKind::Purchase100, DatasetKind::Cifar100]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table1() {
        let m = DatasetKind::Mnist.spec();
        assert_eq!((m.feature_dim, m.num_classes, m.paper_records), (784, 10, 70_000));
        let p = DatasetKind::Purchase100.spec();
        assert_eq!((p.feature_dim, p.num_classes, p.paper_test_records), (600, 100, 24_000));
    }

    #[test]
    fn configs_match_specs() {
        for kind in DatasetKind::all() {
            let spec = kind.spec();
            let cfg = kind.synthetic_config();
            assert_eq!(cfg.feature_dim, spec.feature_dim, "{}", spec.name);
            assert_eq!(cfg.num_classes, spec.num_classes, "{}", spec.name);
        }
    }

    #[test]
    fn generator_produces_expected_schema() {
        use rand::SeedableRng;
        let gen = DatasetKind::Mnist.generator(1);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let ds = gen.sample_balanced(1, &mut rng);
        assert_eq!(ds.feature_dim, 784);
        assert_eq!(ds.num_classes, 10);
        assert_eq!(ds.len(), 10);
    }
}
