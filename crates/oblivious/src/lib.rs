//! # olive-oblivious
//!
//! Register-level oblivious primitives and oblivious algorithms, the
//! building blocks of the paper's defense (Section 2.3, Appendix A).
//!
//! The threat model allows the adversary to observe *memory* access
//! patterns and code addresses, but not CPU registers. Conditional logic
//! must therefore avoid both data-dependent memory addressing and
//! data-dependent branches. The paper (following Ohrimenko et al. and
//! ZeroTrace) builds everything from the x86 `CMOV` instruction; this crate
//! provides:
//!
//! * [`primitives`] — `o_select` / `o_swap` (the paper's `o_mov`, Listing 1,
//!   and `o_swap`, Listing 2), implemented with inline `cmov` assembly on
//!   x86-64 and branch-free mask arithmetic elsewhere, over all the cell
//!   types the aggregation algorithms use;
//! * [`sort`] — Batcher's bitonic sorting network (the paper's oblivious
//!   sort, used twice by Algorithm 4), operating on [`TrackedBuf`]s so the
//!   comparator schedule is visible to the trace checker;
//! * [`sort_kernel`] — the batched, SIMD-friendly implementation of the
//!   same network (precomputed keys, block-granular trace events,
//!   branchless min/max sweeps, per-stage thread parallelism);
//!   `OLIVE_SORT_KERNEL=scalar` falls back to the reference in [`sort`];
//! * [`scan`] — oblivious linear-scan read/write of a secret index
//!   (ZeroTrace's trusted-storage emulation, used by the ORAM stash and
//!   position map);
//! * [`meta_scan`] — branchless accumulator scans over packed PathORAM
//!   `(key << 32) | leaf` meta words (the ORAM batched kernel's
//!   equivalent of the sort kernel's sweeps, with the same runtime
//!   AVX2/AVX-512 dispatch);
//! * [`shuffle`] — oblivious random shuffle via random-key sorting (used by
//!   the differentially-oblivious ablation, Section 5.4).
//!
//! [`TrackedBuf`]: olive_memsim::TrackedBuf

#![warn(missing_docs)]

pub mod meta_scan;
pub mod primitives;
pub mod scan;
pub mod shuffle;
pub mod sort;
pub mod sort_kernel;

pub use primitives::{o_select, o_select_u64, o_swap, Oblivious};
pub use scan::{o_scan_read, o_scan_update, o_scan_write};
pub use shuffle::{oblivious_shuffle, oblivious_shuffle_with_threads};
pub use sort::{bitonic_sort_by_key, bitonic_sort_pow2, next_pow2};
pub use sort_kernel::{
    bitonic_sort_keyed_pow2, bitonic_sort_keyed_pow2_with, bitonic_sort_u64_pow2,
    bitonic_sort_u64_pow2_with, bitonic_sort_u64_pow2_with_threads, sort_kernel, InlinePayload,
    SortKernel,
};
