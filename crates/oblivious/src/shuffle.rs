//! Oblivious random shuffle by random-key bitonic sorting.
//!
//! Sorting by fresh uniform keys yields a uniformly random permutation
//! while generating the fixed bitonic comparator trace — the access pattern
//! reveals nothing about the realized permutation. Used by the
//! differentially-oblivious aggregation ablation (Section 5.4), which
//! pads with dummies and then obliviously shuffles before linear access.
//!
//! The tag and payload are packed key-major into one `u128`
//! (`tag << 64 | payload`) so the batched sort kernel compare-exchanges
//! whole words; `OLIVE_SORT_KERNEL=scalar` runs the reference network over
//! the same packed words with a bitwise-identical result (the kernels
//! share one swap rule, including on tag ties).

use olive_memsim::{default_threads, Tracer, TrackedBuf};
use rand::Rng;

use crate::sort::next_pow2;
use crate::sort_kernel::{bitonic_sort_tagged_pow2_with, sort_kernel, InlinePayload, SortKernel};

/// Uniformly shuffles `data` with an oblivious (bitonic) permutation
/// network using the process-default kernel and thread count; the memory
/// trace depends only on `data.len()`.
pub fn oblivious_shuffle<T, R, TR>(region: u32, data: Vec<T>, rng: &mut R, tr: &mut TR) -> Vec<T>
where
    T: InlinePayload,
    R: Rng,
    TR: Tracer,
{
    oblivious_shuffle_with_threads(region, data, rng, default_threads(), tr)
}

/// [`oblivious_shuffle`] with an explicit worker-thread count for the
/// intra-sort stage parallelism.
pub fn oblivious_shuffle_with_threads<T, R, TR>(
    region: u32,
    data: Vec<T>,
    rng: &mut R,
    threads: usize,
    tr: &mut TR,
) -> Vec<T>
where
    T: InlinePayload,
    R: Rng,
    TR: Tracer,
{
    oblivious_shuffle_with(region, data, rng, sort_kernel(), threads, tr)
}

/// [`oblivious_shuffle`] with every knob explicit (differential tests
/// compare kernels in one process, bypassing the env cache).
pub fn oblivious_shuffle_with<T, R, TR>(
    region: u32,
    data: Vec<T>,
    rng: &mut R,
    kernel: SortKernel,
    threads: usize,
    tr: &mut TR,
) -> Vec<T>
where
    T: InlinePayload,
    R: Rng,
    TR: Tracer,
{
    let n = data.len();
    if n <= 1 {
        return data;
    }
    // Tag every element with a random key; tag padding with u64::MAX so it
    // sorts to the back and truncates away. Key collisions among real
    // elements merely make the tie order deterministic, a negligible bias
    // at 63 bits.
    let mut tagged: Vec<u128> = data
        .into_iter()
        .map(|v| (((rng.gen::<u64>() >> 1) as u128) << 64) | v.to_word() as u128)
        .collect();
    let pad = ((u64::MAX as u128) << 64) | (tagged[0] & u64::MAX as u128);
    tagged.resize(next_pow2(n), pad);
    let mut buf = TrackedBuf::new(region, tagged);
    bitonic_sort_tagged_pow2_with(&mut buf, kernel, threads, tr);
    let mut out = buf.into_inner();
    out.truncate(n);
    out.into_iter().map(|w| T::from_word(w as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer};
    use rand::SeedableRng;

    type Rng = rand::rngs::SmallRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(1);
        let data: Vec<u64> = (0..100).collect();
        let mut out = oblivious_shuffle(0, data.clone(), &mut rng, &mut NullTracer);
        assert_ne!(out, data, "astronomically unlikely to be identity");
        out.sort_unstable();
        assert_eq!(out, data);
    }

    #[test]
    fn shuffle_trivial_lengths() {
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(oblivious_shuffle::<u64, _, _>(0, vec![], &mut rng, &mut NullTracer), vec![]);
        assert_eq!(oblivious_shuffle(0, vec![5u64], &mut rng, &mut NullTracer), vec![5]);
    }

    #[test]
    fn shuffle_trace_independent_of_data_and_randomness() {
        // Both the data values AND the sampled permutation must be invisible
        // in the trace; only the length may matter.
        let inputs: Vec<(u64, Vec<u64>)> =
            vec![(1, (0..60).collect()), (2, (0..60).rev().collect()), (3, vec![7; 60])];
        assert_oblivious(Granularity::Element, &inputs, |(seed, data), tr| {
            let mut rng = Rng::seed_from_u64(*seed);
            oblivious_shuffle(0, data.clone(), &mut rng, tr);
        });
    }

    #[test]
    fn kernels_agree_bitwise_at_every_thread_count() {
        // 5000 elements pad to 8192, past the kernel's parallelism
        // threshold, so threads ∈ {2, 8} exercise the barrier path.
        let data: Vec<u64> = (0..5000).map(|i| i * 31).collect();
        let run = |kernel, threads| {
            let mut rng = Rng::seed_from_u64(77);
            oblivious_shuffle_with(0, data.clone(), &mut rng, kernel, threads, &mut NullTracer)
        };
        let reference = run(SortKernel::Scalar, 1);
        for threads in [1usize, 2, 8] {
            assert_eq!(run(SortKernel::Batched, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn shuffle_distribution_roughly_uniform() {
        // Chi-square-ish sanity check: position of element 0 across many
        // shuffles of a length-4 vector should hit each slot.
        let mut counts = [0u32; 4];
        for seed in 0..400 {
            let mut rng = Rng::seed_from_u64(seed);
            let out = oblivious_shuffle(0, vec![0u64, 1, 2, 3], &mut rng, &mut NullTracer);
            let pos = out.iter().position(|&v| v == 0).unwrap();
            counts[pos] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((60..=140).contains(&c), "slot {i} count {c} far from uniform 100");
        }
    }
}
