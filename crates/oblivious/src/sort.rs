//! Batcher's bitonic sorting network (the paper's oblivious sort, ref.\[8\]).
//!
//! A sorting network performs the same sequence of compare-exchanges
//! whatever the data; each compare-exchange reads both cells, conditionally
//! swaps in registers via [`o_swap`], and writes both cells back. The
//! resulting memory trace is a pure function of the input *length* — the
//! property Algorithm 4's proof (Proposition 5.2) relies on.
//!
//! Complexity: O(n log² n) comparators, exactly as cited in Section 5.2.

use olive_memsim::{Tracer, TrackedBuf};

use crate::primitives::{o_swap, Oblivious};

/// Smallest power of two ≥ `n` (with `next_pow2(0) == 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Sorts `buf` (length must be a power of two) ascending by `key`.
///
/// Every compare-exchange touches memory identically regardless of input
/// data: read i, read j, write i, write j.
pub fn bitonic_sort_pow2<T, K, TR>(buf: &mut TrackedBuf<T>, key: K, tr: &mut TR)
where
    T: Oblivious,
    K: Fn(&T) -> u64,
    TR: Tracer,
{
    let n = buf.len();
    assert!(n.is_power_of_two(), "bitonic_sort_pow2 requires power-of-two length, got {n}");
    if n <= 1 {
        return;
    }
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let (mut a, mut b) = buf.read_pair(i, l, tr);
                    let out_of_order = (key(&a) > key(&b)) == ascending;
                    o_swap(out_of_order, &mut a, &mut b);
                    buf.write_pair(i, a, l, b, tr);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sorts an arbitrary-length vector ascending by `key`, padding to the next
/// power of two with `pad` (which must sort to the back, i.e. have maximal
/// key) and truncating afterwards.
///
/// The trace depends only on `data.len()` — padding is a fixed function of
/// the length.
pub fn bitonic_sort_by_key<T, K, TR>(
    region: u32,
    data: Vec<T>,
    pad: T,
    key: K,
    tr: &mut TR,
) -> Vec<T>
where
    T: Oblivious,
    K: Fn(&T) -> u64,
    TR: Tracer,
{
    let n = data.len();
    debug_assert!(
        n == 0 || key(&pad) == u64::MAX || n.is_power_of_two(),
        "padding cells should carry a maximal key so they sort behind real data"
    );
    let padded = next_pow2(n);
    let mut v = data;
    v.resize(padded, pad);
    let mut buf = TrackedBuf::new(region, v);
    bitonic_sort_pow2(&mut buf, key, tr);
    let mut out = buf.into_inner();
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer, RecordingTracer};

    fn sort_u64s(v: Vec<u64>) -> Vec<u64> {
        bitonic_sort_by_key(0, v, u64::MAX, |x| *x, &mut NullTracer)
    }

    #[test]
    fn sorts_small_cases() {
        assert_eq!(sort_u64s(vec![]), vec![]);
        assert_eq!(sort_u64s(vec![5]), vec![5]);
        assert_eq!(sort_u64s(vec![2, 1]), vec![1, 2]);
        assert_eq!(sort_u64s(vec![3, 1, 2, 0]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sorts_with_duplicates() {
        assert_eq!(sort_u64s(vec![2, 2, 1, 1, 3, 3, 0, 0]), vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn arbitrary_length_with_padding() {
        let data = vec![9u64, 3, 7, 1, 8, 2, 6];
        let out = bitonic_sort_by_key(0, data, u64::MAX, |x| *x, &mut NullTracer);
        assert_eq!(out, vec![1, 2, 3, 6, 7, 8, 9]);
    }

    #[test]
    fn sorts_pairs_by_index() {
        let data: Vec<(u32, f32)> = vec![(5, 0.5), (1, 0.1), (3, 0.3), (1, 0.11)];
        let out = bitonic_sort_by_key(0, data, (u32::MAX, 0.0), |c| c.0 as u64, &mut NullTracer);
        let idxs: Vec<u32> = out.iter().map(|c| c.0).collect();
        assert_eq!(idxs, vec![1, 1, 3, 5]);
    }

    #[test]
    fn trace_depends_only_on_length() {
        // Definition 2.1 with δ=0: identical traces for any same-length input.
        let inputs: Vec<Vec<u64>> = vec![
            (0..64).collect(),
            (0..64).rev().collect(),
            vec![42; 64],
            (0..64).map(|i| i * 7919 % 64).collect(),
        ];
        assert_oblivious(Granularity::Element, &inputs, |input, tr| {
            let mut buf = TrackedBuf::new(1, input.clone());
            bitonic_sort_pow2(&mut buf, |x| *x, tr);
        });
        assert_oblivious(Granularity::Cacheline, &inputs, |input, tr| {
            let mut buf = TrackedBuf::new(1, input.clone());
            bitonic_sort_pow2(&mut buf, |x| *x, tr);
        });
    }

    #[test]
    fn comparator_count_matches_batcher() {
        // Batcher's network has n/2 * log(n) * (log(n)+1) / 2 comparators;
        // each performs 2 reads + 2 writes.
        let n = 64u64;
        let logn = 6u64;
        let comparators = n / 2 * logn * (logn + 1) / 2;
        let mut tr = RecordingTracer::new(Granularity::Element);
        let mut buf = TrackedBuf::new(0, (0..n).collect::<Vec<u64>>());
        bitonic_sort_pow2(&mut buf, |x| *x, &mut tr);
        assert_eq!(tr.stats().reads, comparators * 2);
        assert_eq!(tr.stats().writes, comparators * 2);
    }

    #[test]
    fn random_inputs_match_std_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for len in [1usize, 2, 5, 31, 32, 100, 255, 1000] {
            let data: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
            let mut expected = data.clone();
            expected.sort_unstable();
            let out = bitonic_sort_by_key(0, data, u64::MAX, |x| *x, &mut NullTracer);
            assert_eq!(out, expected, "len {len}");
        }
    }
}
