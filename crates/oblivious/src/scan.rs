//! Oblivious access to a secret position via full linear scan.
//!
//! When an algorithm must read or write `buf[secret]` without revealing
//! `secret`, the only fully oblivious option inside an enclave (no trusted
//! memory beyond registers — the ZeroTrace setting, Section 2.3) is to
//! touch *every* cell and keep the interesting one in a register via
//! `o_select`. Cost is Θ(n) per access; this is what makes general-purpose
//! ORAM expensive and motivates the paper's task-specific Algorithm 4.

use olive_memsim::{Tracer, TrackedBuf};

use crate::primitives::Oblivious;

/// Obliviously reads `buf[secret_idx]`: scans the whole buffer, returning
/// the selected cell. The trace is a full linear read sweep regardless of
/// `secret_idx`.
pub fn o_scan_read<T, TR>(buf: &TrackedBuf<T>, secret_idx: usize, tr: &mut TR) -> T
where
    T: Oblivious,
    TR: Tracer,
{
    assert!(!buf.is_empty(), "cannot scan an empty buffer");
    let mut out = buf.read(0, tr);
    for i in 1..buf.len() {
        let v = buf.read(i, tr);
        out = T::o_select(i == secret_idx, v, out);
    }
    out
}

/// Obliviously writes `value` into `buf[secret_idx]`: reads and rewrites
/// every cell, substituting at the secret position in registers.
pub fn o_scan_write<T, TR>(buf: &mut TrackedBuf<T>, secret_idx: usize, value: T, tr: &mut TR)
where
    T: Oblivious,
    TR: Tracer,
{
    for i in 0..buf.len() {
        let old = buf.read(i, tr);
        let new = T::o_select(i == secret_idx, value, old);
        buf.write(i, new, tr);
    }
}

/// Obliviously applies `f` to every cell, writing back `f(i, cell)` — a
/// fixed read-modify-write sweep. `f` must itself be branch-free with
/// respect to secrets; this helper only guarantees the *memory* pattern.
pub fn o_scan_update<T, F, TR>(buf: &mut TrackedBuf<T>, mut f: F, tr: &mut TR)
where
    T: Oblivious,
    F: FnMut(usize, T) -> T,
    TR: Tracer,
{
    for i in 0..buf.len() {
        let old = buf.read(i, tr);
        let new = f(i, old);
        buf.write(i, new, tr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer};

    #[test]
    fn scan_read_returns_correct_cell() {
        let buf = TrackedBuf::new(0, vec![10u64, 20, 30, 40]);
        for i in 0..4 {
            assert_eq!(o_scan_read(&buf, i, &mut NullTracer), (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn scan_read_out_of_range_returns_first() {
        // By construction an out-of-range secret index never matches, so the
        // initial cell survives; documents (and pins) the behaviour.
        let buf = TrackedBuf::new(0, vec![10u64, 20]);
        assert_eq!(o_scan_read(&buf, 99, &mut NullTracer), 10);
    }

    #[test]
    fn scan_write_updates_only_target() {
        let mut buf = TrackedBuf::new(0, vec![0u64; 5]);
        o_scan_write(&mut buf, 3, 77, &mut NullTracer);
        assert_eq!(buf.as_slice_untraced(), &[0, 0, 0, 77, 0]);
    }

    #[test]
    fn scan_trace_independent_of_secret_index() {
        // The whole point: which index is accessed must be invisible.
        let secret_indices = vec![0usize, 1, 7, 15];
        assert_oblivious(Granularity::Element, &secret_indices, |&idx, tr| {
            let buf = TrackedBuf::new(0, (0..16u64).collect::<Vec<_>>());
            o_scan_read(&buf, idx, tr);
        });
        assert_oblivious(Granularity::Element, &secret_indices, |&idx, tr| {
            let mut buf = TrackedBuf::new(0, (0..16u64).collect::<Vec<_>>());
            o_scan_write(&mut buf, idx, 99, tr);
        });
    }

    #[test]
    fn scan_update_applies_everywhere() {
        let mut buf = TrackedBuf::new(0, vec![1u64, 2, 3]);
        o_scan_update(&mut buf, |i, v| v + i as u64, &mut NullTracer);
        assert_eq!(buf.as_slice_untraced(), &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn scan_read_empty_panics() {
        let buf = TrackedBuf::<u64>::new(0, vec![]);
        o_scan_read(&buf, 0, &mut NullTracer);
    }
}
