//! Batched, SIMD-friendly bitonic sort kernels with intra-sort
//! parallelism.
//!
//! The scalar network in [`crate::sort`] dispatches four traced accesses
//! and two `key` evaluations per comparator — correct and readable, but
//! ~10× slower than `std::sort_unstable` because the per-comparator
//! bookkeeping defeats vectorization. This module rebuilds the hot path
//! around three observations:
//!
//! 1. **The trace is a closed-form function of `n`.** A sorting network
//!    touches the same addresses whatever the data (Proposition 5.2), so
//!    the kernel does not need to *derive* the trace from its loads and
//!    stores: it emits the canonical comparator schedule as block events
//!    ([`Tracer::touch_cex_span`], one event per fixed-size block of
//!    comparators) and performs the data movement separately. Recording
//!    tracers expand each block deterministically into the exact
//!    per-access sequence of the scalar network, so digests agree at
//!    every granularity — and, because the emission is independent of the
//!    physical execution, they agree at **every thread count** too.
//! 2. **Keys can be computed once.** Instead of re-evaluating the `key`
//!    closure twice per comparator per stage, the keyed kernel packs
//!    `(key, inline cell)` into one `u128` word up front and
//!    compare-exchanges whole words. Payloads ride *inside* the sorted
//!    word — an index-permutation epilogue would be a data-dependent
//!    gather (an access-pattern leak in a real enclave), so only types
//!    whose payload fits beside the key ([`InlinePayload`]) take this
//!    path; everything else keeps the scalar reference network.
//! 3. **Comparators within a stage are independent.** Each bitonic stage
//!    `(k, j)` compare-exchanges `n/2` disjoint element pairs, so the
//!    inner loop is a branchless min/max (or mask-select) sweep over
//!    contiguous runs that the compiler autovectorizes (AVX2/AVX-512
//!    monomorphizations are selected at runtime), and the comparator
//!    range splits across worker threads with one barrier per stage.
//!    Thread count never affects the output (stage results are unique
//!    regardless of intra-stage execution order) nor the trace (emitted
//!    canonically by the caller) — a strictly stronger invariant than the
//!    per-worker trace forking the grouped aggregation needs.
//!
//! `OLIVE_SORT_KERNEL=scalar` forces every entry point here back onto the
//! scalar reference network for differential testing; the CI tier-1 job
//! runs the whole suite that way.

use std::sync::{Barrier, OnceLock};

use olive_memsim::{default_threads, Tracer, TrackedBuf};

use crate::primitives::Oblivious;
use crate::sort::bitonic_sort_pow2;

/// Comparators summarized by one block trace event (fixed, so the event
/// schedule — like the network itself — is a pure function of `n`).
const TRACE_BLOCK: u64 = 4096;

/// Below this length the per-stage barrier costs more than the stages;
/// the batched kernel runs its stages on the calling thread.
const MIN_PARALLEL_N: usize = 1 << 12;

/// Which implementation of the bitonic network runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortKernel {
    /// The readable per-comparator reference network of [`crate::sort`].
    Scalar,
    /// The batched stage kernel of this module (default).
    Batched,
}

/// Process-wide kernel selection: `OLIVE_SORT_KERNEL=scalar` pins the
/// reference network, anything else (or unset) selects the batched
/// kernel. Read once and cached; tests that need both in one process use
/// the `*_with` entry points instead.
pub fn sort_kernel() -> SortKernel {
    static KERNEL: OnceLock<SortKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| match std::env::var("OLIVE_SORT_KERNEL").as_deref() {
        Ok("scalar") => SortKernel::Scalar,
        Ok("batched") | Err(_) => SortKernel::Batched,
        Ok(other) => {
            eprintln!(
                "OLIVE_SORT_KERNEL={other:?} is not \"scalar\" or \"batched\"; using batched"
            );
            SortKernel::Batched
        }
    })
}

/// Payloads the batched keyed kernel can carry inline beside their 64-bit
/// sort key (packed `(key << 64) | payload` and compare-exchanged as one
/// `u128`). The round-trip must be lossless; the payload bits never
/// influence comparisons.
pub trait InlinePayload: Copy {
    /// Packs the payload into the low 64 bits of the sort word.
    fn to_word(self) -> u64;
    /// Recovers the payload from [`InlinePayload::to_word`]'s output.
    fn from_word(w: u64) -> Self;
}

impl InlinePayload for u64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        w
    }
}

impl InlinePayload for u32 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl InlinePayload for i64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

impl InlinePayload for f32 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        f32::from_bits(w as u32)
    }
}

impl InlinePayload for f64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

impl InlinePayload for (u32, u32) {
    #[inline(always)]
    fn to_word(self) -> u64 {
        ((self.0 as u64) << 32) | self.1 as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        ((w >> 32) as u32, w as u32)
    }
}

impl InlinePayload for (u32, f32) {
    #[inline(always)]
    fn to_word(self) -> u64 {
        ((self.0 as u64) << 32) | self.1.to_bits() as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        ((w >> 32) as u32, f32::from_bits(w as u32))
    }
}

// ---------------------------------------------------------------------------
// Canonical trace emission
// ---------------------------------------------------------------------------

/// Emits the full comparator schedule of an `n`-element bitonic network as
/// block events: stages in `(k, j)` order, comparators in ascending order
/// within each stage, [`TRACE_BLOCK`] comparators per event. Expansion
/// reproduces the scalar network's access sequence exactly (see
/// [`Tracer::touch_cex_span`]).
fn emit_network_trace<TR: Tracer>(region: u32, elem_bytes: u32, n: usize, tr: &mut TR) {
    if n <= 1 {
        return;
    }
    let half = (n / 2) as u64;
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            let mut t = 0u64;
            while t < half {
                let count = (half - t).min(TRACE_BLOCK);
                tr.touch_cex_span(region, elem_bytes, j as u64, t, count);
                t += count;
            }
            j /= 2;
        }
        k *= 2;
    }
}

// ---------------------------------------------------------------------------
// Stage kernels (branchless compare-exchange sweeps)
// ---------------------------------------------------------------------------

/// Instruction sets the stage kernels are monomorphized for. Detected once
/// per process; the portable build is what every tier targets by default,
/// the wider ones let LLVM use 256-/512-bit compare+select on the same
/// source loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Isa {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn isa() -> Isa {
    static LEVEL: OnceLock<Isa> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Portable
    })
}

/// One physical pass of the batched network. The schedule fuses the three
/// shortest-stride stages of every `k`-round into a single in-register
/// window pass: strides 4, 2 and 1 have runs too short for wide sweeps
/// (measured ~1.2–3.2 ns/comparator vs ~0.4 for strides ≥ 8), and fusing
/// them also replaces three memory sweeps with one.
///
/// Fusion never changes results: a `Tail { k, w }` pass applies stages
/// `j = w/2, …, 1` window-by-window, and each such stage only pairs
/// elements *within* one aligned `w`-sized window, so the window-local
/// stage order equals the global stage order bitwise. The trace is
/// likewise unaffected — it is emitted canonically per stage, independent
/// of the physical pass structure.
#[derive(Clone, Copy, Debug)]
enum Pass {
    /// One `(k, j)` stage with `j >= 8`, swept over contiguous runs.
    /// Work units are comparators (`n / 2` of them).
    Stage {
        /// Bitonic round (direction period).
        k: usize,
        /// Partner distance.
        j: usize,
    },
    /// The fused `j = w/2 … 1` tail of round `k`, `w = min(8, k)`.
    /// Work units are `w`-element windows (`n / w` of them).
    Tail {
        /// Bitonic round (direction period).
        k: usize,
        /// Window size (power of two, `<= k`, so the direction bit is
        /// constant per window).
        w: usize,
    },
}

/// The physical pass schedule for an `n`-element sort (a pure function of
/// `n`, like everything else about the network).
fn pass_schedule(n: usize) -> Vec<Pass> {
    let mut passes = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 8 {
            passes.push(Pass::Stage { k, j });
            j /= 2;
        }
        passes.push(Pass::Tail { k, w: k.min(8) });
        k *= 2;
    }
    passes
}

/// Work units of one pass (the index space split across workers).
fn pass_units(pass: Pass, n: usize) -> usize {
    match pass {
        Pass::Stage { .. } => n / 2,
        Pass::Tail { w, .. } => n / w,
    }
}

/// Ascending compare-exchange sweep: `(lo[t], hi[t]) ← (min, max)`.
///
/// Identical to the scalar rule `swap iff (a > b) == ascending`: for
/// ascending comparators a swap happens exactly when `a > b`, and
/// swapping equal full words is the identity, so min/max is bitwise
/// equivalent.
#[inline(always)]
fn cex_sweep_u64(lo: &mut [u64], hi: &mut [u64], asc: bool) {
    debug_assert_eq!(lo.len(), hi.len());
    if asc {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x.min(y);
            *b = x.max(y);
        }
    } else {
        // Descending comparators swap when `a <= b` (the scalar rule with
        // `ascending = false`), which also lands on (max, min).
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x.max(y);
            *b = x.min(y);
        }
    }
}

/// Keyed compare-exchange sweep over packed `(key << 64) | payload` words:
/// comparisons see **keys only**, so key ties behave exactly like the
/// scalar network evaluating `key()` (ascending: never swap; descending:
/// always swap) and outputs stay bitwise identical to the reference.
#[inline(always)]
fn cex_sweep_u128(lo: &mut [u128], hi: &mut [u128], asc: bool) {
    debug_assert_eq!(lo.len(), hi.len());
    if asc {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            let swap = (x >> 64) as u64 > (y >> 64) as u64;
            let mask = (swap as u128).wrapping_neg();
            let diff = (x ^ y) & mask;
            *a = x ^ diff;
            *b = y ^ diff;
        }
    } else {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            let swap = (x >> 64) as u64 <= (y >> 64) as u64;
            let mask = (swap as u128).wrapping_neg();
            let diff = (x ^ y) & mask;
            *a = x ^ diff;
            *b = y ^ diff;
        }
    }
}

/// Single compare-exchange inside a register-held window, full-`u64`
/// comparison (same min/max equivalence as [`cex_sweep_u64`]).
#[inline(always)]
fn cex_win_u64<const ASC: bool>(w: &mut [u64], a: usize, b: usize) {
    let (x, y) = (w[a], w[b]);
    let (lo, hi) = (x.min(y), x.max(y));
    if ASC {
        w[a] = lo;
        w[b] = hi;
    } else {
        w[a] = hi;
        w[b] = lo;
    }
}

/// Single compare-exchange inside a register-held window, keyed on the
/// high 64 bits (same tie rule as [`cex_sweep_u128`]).
#[inline(always)]
fn cex_win_u128<const ASC: bool>(w: &mut [u128], a: usize, b: usize) {
    let (x, y) = (w[a], w[b]);
    let gt = (x >> 64) as u64 > (y >> 64) as u64;
    let swap = if ASC { gt } else { !gt };
    let mask = (swap as u128).wrapping_neg();
    let diff = (x ^ y) & mask;
    w[a] = x ^ diff;
    w[b] = y ^ diff;
}

macro_rules! pass_runner {
    ($name:ident, $portable:ident, $avx2:ident, $avx512:ident, $word:ty, $sweep:ident,
     $cex_win:ident, $apply:ident, $tail:ident) => {
        /// Applies the fused `j = W/2 … 1` stages to one register-held
        /// window (loops fully unroll: `W` is const).
        #[inline(always)]
        fn $apply<const ASC: bool, const W: usize>(w: &mut [$word; W]) {
            let mut j = W / 2;
            while j > 0 {
                let mut base = 0;
                while base < W {
                    let mut t = 0;
                    while t < j {
                        $cex_win::<ASC>(w, base + t, base + t + j);
                        t += 1;
                    }
                    base += 2 * j;
                }
                j /= 2;
            }
        }

        /// Runs windows `[u0, u1)` of a fused tail pass.
        ///
        /// # Safety
        ///
        /// Windows `[u0 * W, u1 * W)` must be in bounds and exclusively
        /// owned by this caller.
        #[inline(always)]
        unsafe fn $tail<const W: usize>(base: *mut $word, k: usize, u0: usize, u1: usize) {
            for u in u0..u1 {
                let elem = u * W;
                // SAFETY: window `[elem, elem + W)` is in bounds and
                // disjoint from every other window.
                let win = unsafe { &mut *(base.add(elem) as *mut [$word; W]) };
                // Direction is constant per window: `W <= k`, window base
                // aligned to `W`.
                if (elem & k) == 0 {
                    $apply::<true, W>(win);
                } else {
                    $apply::<false, W>(win);
                }
            }
        }

        /// Runs work units `[u0, u1)` of `pass` over `base[0..n]`.
        ///
        /// # Safety
        ///
        /// `pass` must come from [`pass_schedule`] for the allocation's
        /// length `n`, `u1 <= pass_units(pass, n)`, and the caller must
        /// guarantee exclusive access to every element the unit range
        /// names — distinct unit ranges of one pass touch disjoint
        /// elements, so any partition of the unit space across threads is
        /// safe *within* a pass.
        #[inline(always)]
        unsafe fn $name(base: *mut $word, pass: Pass, u0: usize, u1: usize) {
            match pass {
                Pass::Stage { k, j } => {
                    let mut t = u0;
                    while t < u1 {
                        let off = t & (j - 1);
                        let blk = t - off;
                        let i0 = (blk << 1) | off;
                        let len = (j - off).min(u1 - t);
                        // SAFETY: `[i0, i0 + len)` and `[i0 + j, i0 + j +
                        // len)` are disjoint (len <= j) in-bounds runs
                        // owned by this caller per the contract above.
                        let lo = unsafe { core::slice::from_raw_parts_mut(base.add(i0), len) };
                        let hi = unsafe { core::slice::from_raw_parts_mut(base.add(i0 + j), len) };
                        // The direction bit `i & k` is constant across the
                        // run: `i0` varies only in its low log2(j) bits
                        // and `2j <= k`.
                        $sweep(lo, hi, (i0 & k) == 0);
                        t += len;
                    }
                }
                // SAFETY: forwarded contract.
                Pass::Tail { k, w } => match w {
                    2 => unsafe { $tail::<2>(base, k, u0, u1) },
                    4 => unsafe { $tail::<4>(base, k, u0, u1) },
                    _ => unsafe { $tail::<8>(base, k, u0, u1) },
                },
            }
        }

        /// Portable monomorphization of the pass runner.
        ///
        /// # Safety
        ///
        /// Same contract as the inline body.
        unsafe fn $portable(base: *mut $word, pass: Pass, u0: usize, u1: usize) {
            unsafe { $name(base, pass, u0, u1) }
        }

        /// AVX2 monomorphization (256-bit compare+select).
        ///
        /// # Safety
        ///
        /// Same contract as the inline body; caller must have verified
        /// AVX2 support.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(base: *mut $word, pass: Pass, u0: usize, u1: usize) {
            unsafe { $name(base, pass, u0, u1) }
        }

        /// AVX-512 monomorphization (`vpminuq`/`vpmaxuq` and friends).
        ///
        /// # Safety
        ///
        /// Same contract as the inline body; caller must have verified
        /// AVX-512F support.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512(base: *mut $word, pass: Pass, u0: usize, u1: usize) {
            unsafe { $name(base, pass, u0, u1) }
        }
    };
}

pass_runner!(
    pass_u64,
    pass_u64_portable,
    pass_u64_avx2,
    pass_u64_avx512,
    u64,
    cex_sweep_u64,
    cex_win_u64,
    apply_tail_u64,
    tail_u64
);
pass_runner!(
    pass_u128,
    pass_u128_portable,
    pass_u128_avx2,
    pass_u128_avx512,
    u128,
    cex_sweep_u128,
    cex_win_u128,
    apply_tail_u128,
    tail_u128
);

macro_rules! isa_dispatch {
    ($portable:ident, $avx2:ident, $avx512:ident, $base:expr, $pass:expr, $u0:expr, $u1:expr) => {
        match isa() {
            // SAFETY: range/aliasing contract upheld by the stage driver;
            // the wider monomorphizations run only after feature detection.
            Isa::Portable => unsafe { $portable($base, $pass, $u0, $u1) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { $avx2($base, $pass, $u0, $u1) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe { $avx512($base, $pass, $u0, $u1) },
        }
    };
}

#[inline]
fn run_pass_u64(base: *mut u64, pass: Pass, u0: usize, u1: usize) {
    isa_dispatch!(pass_u64_portable, pass_u64_avx2, pass_u64_avx512, base, pass, u0, u1)
}

#[inline]
fn run_pass_u128(base: *mut u128, pass: Pass, u0: usize, u1: usize) {
    isa_dispatch!(pass_u128_portable, pass_u128_avx2, pass_u128_avx512, base, pass, u0, u1)
}

// ---------------------------------------------------------------------------
// Stage driver (serial or barrier-synchronized workers)
// ---------------------------------------------------------------------------

/// A raw base pointer that workers share. Soundness comes from the stage
/// driver's partitioning (disjoint comparator ranges → disjoint elements
/// within a stage) plus the per-stage barrier.
struct SendPtr<W>(*mut W);
unsafe impl<W> Send for SendPtr<W> {}
unsafe impl<W> Sync for SendPtr<W> {}

/// Runs every pass of the physical schedule over `v`, splitting each
/// pass's work-unit range across `threads` workers with a barrier between
/// passes. `run` executes one unit range of one pass.
///
/// The output is identical for every thread count: pass results do not
/// depend on intra-pass execution order (units of a pass touch disjoint
/// elements), and the barrier orders passes.
fn sort_stages<W: Send>(v: &mut [W], threads: usize, run: fn(*mut W, Pass, usize, usize)) {
    let n = v.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    let passes = pass_schedule(n);
    let workers = if threads <= 1 || n < MIN_PARALLEL_N { 1 } else { threads.min(n / 2) };
    if workers == 1 {
        for &pass in &passes {
            run(v.as_mut_ptr(), pass, 0, pass_units(pass, n));
        }
        return;
    }
    let barrier = Barrier::new(workers);
    let ptr = SendPtr(v.as_mut_ptr());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (barrier, ptr, passes) = (&barrier, &ptr, &passes);
            scope.spawn(move || {
                for &pass in passes {
                    let units = pass_units(pass, n);
                    let u0 = units * w / workers;
                    let u1 = units * (w + 1) / workers;
                    if u1 > u0 {
                        run(ptr.0, pass, u0, u1);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Sorts packed `u64` cells ascending by their **raw value** (the
/// aggregation hot path: cells are index-major, so raw order is index
/// order) with the process-default kernel and thread count.
pub fn bitonic_sort_u64_pow2<TR: Tracer>(buf: &mut TrackedBuf<u64>, tr: &mut TR) {
    bitonic_sort_u64_pow2_with(buf, sort_kernel(), default_threads(), tr)
}

/// [`bitonic_sort_u64_pow2`] with an explicit worker-thread count.
pub fn bitonic_sort_u64_pow2_with_threads<TR: Tracer>(
    buf: &mut TrackedBuf<u64>,
    threads: usize,
    tr: &mut TR,
) {
    bitonic_sort_u64_pow2_with(buf, sort_kernel(), threads, tr)
}

/// [`bitonic_sort_u64_pow2`] with every knob explicit (differential
/// tests compare kernels in one process, bypassing the env cache).
///
/// Both kernels produce bitwise-identical outputs and digest-identical
/// traces at every thread count and granularity.
pub fn bitonic_sort_u64_pow2_with<TR: Tracer>(
    buf: &mut TrackedBuf<u64>,
    kernel: SortKernel,
    threads: usize,
    tr: &mut TR,
) {
    match kernel {
        SortKernel::Scalar => bitonic_sort_pow2(buf, |c| *c, tr),
        SortKernel::Batched => {
            let n = buf.len();
            assert!(n.is_power_of_two(), "bitonic sort requires power-of-two length, got {n}");
            if n <= 1 {
                return;
            }
            emit_network_trace(buf.region(), core::mem::size_of::<u64>() as u32, n, tr);
            sort_stages(buf.as_mut_slice_untraced(), threads, run_pass_u64);
        }
    }
}

/// Sorts `buf` ascending by `key` with the batched keyed kernel: the key
/// is evaluated **once per element**, packed key-major beside the inline
/// payload, and the packed words are compare-exchanged by key only —
/// bitwise-identical output and trace to the scalar
/// [`bitonic_sort_pow2`] with the same `key`.
pub fn bitonic_sort_keyed_pow2<T, K, TR>(buf: &mut TrackedBuf<T>, key: K, tr: &mut TR)
where
    T: Oblivious + InlinePayload,
    K: Fn(&T) -> u64,
    TR: Tracer,
{
    bitonic_sort_keyed_pow2_with(buf, key, sort_kernel(), default_threads(), tr)
}

/// [`bitonic_sort_keyed_pow2`] with every knob explicit.
pub fn bitonic_sort_keyed_pow2_with<T, K, TR>(
    buf: &mut TrackedBuf<T>,
    key: K,
    kernel: SortKernel,
    threads: usize,
    tr: &mut TR,
) where
    T: Oblivious + InlinePayload,
    K: Fn(&T) -> u64,
    TR: Tracer,
{
    match kernel {
        SortKernel::Scalar => bitonic_sort_pow2(buf, key, tr),
        SortKernel::Batched => {
            let n = buf.len();
            assert!(n.is_power_of_two(), "bitonic sort requires power-of-two length, got {n}");
            if n <= 1 {
                return;
            }
            emit_network_trace(buf.region(), core::mem::size_of::<T>() as u32, n, tr);
            let data = buf.as_mut_slice_untraced();
            let mut packed: Vec<u128> =
                data.iter().map(|x| ((key(x) as u128) << 64) | x.to_word() as u128).collect();
            sort_stages(&mut packed, threads, run_pass_u128);
            for (dst, w) in data.iter_mut().zip(packed) {
                *dst = T::from_word(w as u64);
            }
        }
    }
}

/// Sorts pre-packed `(tag << 64) | payload` words ascending by their
/// **high 64 bits** (the oblivious-shuffle layout). Key ties follow the
/// scalar swap rule, so the result is bitwise identical to
/// [`bitonic_sort_pow2`] with `key = |c| (c >> 64) as u64`.
pub fn bitonic_sort_tagged_pow2_with<TR: Tracer>(
    buf: &mut TrackedBuf<u128>,
    kernel: SortKernel,
    threads: usize,
    tr: &mut TR,
) {
    match kernel {
        SortKernel::Scalar => bitonic_sort_pow2(buf, |c| (c >> 64) as u64, tr),
        SortKernel::Batched => {
            let n = buf.len();
            assert!(n.is_power_of_two(), "bitonic sort requires power-of-two length, got {n}");
            if n <= 1 {
                return;
            }
            emit_network_trace(buf.region(), core::mem::size_of::<u128>() as u32, n, tr);
            sort_stages(buf.as_mut_slice_untraced(), threads, run_pass_u128);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_words(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn batched_u64_sorts() {
        for n in [1usize, 2, 4, 16, 128, 1024] {
            let data = random_words(n, n as u64);
            let mut expected = data.clone();
            expected.sort_unstable();
            let mut buf = TrackedBuf::new(0, data);
            bitonic_sort_u64_pow2_with(&mut buf, SortKernel::Batched, 1, &mut NullTracer);
            assert_eq!(buf.into_inner(), expected, "n={n}");
        }
    }

    #[test]
    fn batched_matches_scalar_bitwise_u64() {
        for (n, threads) in [(64usize, 1usize), (256, 2), (8192, 8)] {
            let data = random_words(n, 7);
            let mut scalar = TrackedBuf::new(0, data.clone());
            bitonic_sort_u64_pow2_with(&mut scalar, SortKernel::Scalar, 1, &mut NullTracer);
            let mut batched = TrackedBuf::new(0, data);
            bitonic_sort_u64_pow2_with(&mut batched, SortKernel::Batched, threads, &mut NullTracer);
            assert_eq!(scalar.into_inner(), batched.into_inner(), "n={n} threads={threads}");
        }
    }

    #[test]
    fn batched_digest_equals_scalar_digest() {
        let data = random_words(256, 9);
        for granularity in [Granularity::Element, Granularity::Cacheline] {
            let mut str_ = RecordingTracer::new(granularity);
            let mut sbuf = TrackedBuf::new(5, data.clone());
            bitonic_sort_u64_pow2_with(&mut sbuf, SortKernel::Scalar, 1, &mut str_);
            for threads in [1usize, 2, 8] {
                let mut btr = RecordingTracer::new(granularity);
                let mut bbuf = TrackedBuf::new(5, data.clone());
                bitonic_sort_u64_pow2_with(&mut bbuf, SortKernel::Batched, threads, &mut btr);
                assert_eq!(btr.digest(), str_.digest(), "{granularity:?} threads={threads}");
            }
        }
    }

    #[test]
    fn keyed_kernel_matches_scalar_on_pairs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data: Vec<(u32, f32)> =
            (0..512).map(|_| (rng.gen_range(0..64), rng.gen_range(-1.0..1.0))).collect();
        let mut scalar = TrackedBuf::new(0, data.clone());
        bitonic_sort_pow2(&mut scalar, |c| c.0 as u64, &mut NullTracer);
        for threads in [1usize, 4] {
            let mut batched = TrackedBuf::new(0, data.clone());
            bitonic_sort_keyed_pow2_with(
                &mut batched,
                |c| c.0 as u64,
                SortKernel::Batched,
                threads,
                &mut NullTracer,
            );
            // Bitwise equality including tie order: key ties must follow
            // the scalar swap rule, not payload order.
            assert_eq!(scalar.as_slice_untraced(), batched.into_inner());
        }
    }

    #[test]
    fn tagged_kernel_matches_scalar_u128() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Force plenty of tag collisions so the tie rule is exercised.
        let data: Vec<u128> =
            (0..256).map(|i| ((rng.gen_range(0..32u64) as u128) << 64) | i as u128).collect();
        let mut scalar = TrackedBuf::new(0, data.clone());
        bitonic_sort_tagged_pow2_with(&mut scalar, SortKernel::Scalar, 1, &mut NullTracer);
        let mut batched = TrackedBuf::new(0, data);
        bitonic_sort_tagged_pow2_with(&mut batched, SortKernel::Batched, 2, &mut NullTracer);
        assert_eq!(scalar.as_slice_untraced(), batched.into_inner());
    }

    #[test]
    fn inline_payload_round_trips() {
        assert_eq!(u64::from_word(0xdead_beefu64.to_word()), 0xdead_beef);
        assert_eq!(<(u32, f32)>::from_word((7u32, -1.5f32).to_word()), (7, -1.5));
        assert_eq!(<(u32, u32)>::from_word((1u32, 2u32).to_word()), (1, 2));
        assert_eq!(f64::from_word((-0.0f64).to_word()).to_bits(), (-0.0f64).to_bits());
        assert_eq!(i64::from_word((-5i64).to_word()), -5);
        assert_eq!(u32::from_word(9u32.to_word()), 9);
        assert_eq!(f32::from_word(2.5f32.to_word()), 2.5);
    }

    #[test]
    fn kernel_env_default_is_batched() {
        // The cached process-wide selection: unless the suite was launched
        // with OLIVE_SORT_KERNEL=scalar (the CI differential pass), the
        // batched kernel is the default.
        match std::env::var("OLIVE_SORT_KERNEL").as_deref() {
            Ok("scalar") => assert_eq!(sort_kernel(), SortKernel::Scalar),
            _ => assert_eq!(sort_kernel(), SortKernel::Batched),
        }
    }
}
