//! Branchless, SIMD-friendly scans over packed PathORAM meta words.
//!
//! The ORAM stash stores one `(key << 32) | leaf` u64 beside every value
//! slot, and every stash decision — is this the key? is this slot free?
//! how deep can this block evict along the current path? — reads only
//! that word. These kernels scan a contiguous mirror of the meta words
//! with the same mask-select accumulator idiom as [`crate::sort_kernel`]:
//! no data-dependent control flow inside the loops, so LLVM
//! autovectorizes them, and the AVX2/AVX-512 monomorphizations (selected
//! once at runtime, like the sort kernel's) let it use 256-/512-bit
//! compares on the same source.
//!
//! The scans are *host-side* helpers for the batched ORAM kernel: the
//! modeled enclave trace is emitted canonically by the caller
//! (block-granular stash sweeps whose expansion equals the scalar
//! reference's per-slot sequence), so these functions take plain slices,
//! not [`TrackedBuf`]s.
//!
//! [`TrackedBuf`]: olive_memsim::TrackedBuf

use std::sync::OnceLock;

/// Instruction sets the scans are monomorphized for (detected once per
/// process, exactly like the sort kernel's dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Isa {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn isa() -> Isa {
    static LEVEL: OnceLock<Isa> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Portable
    })
}

// ---------------------------------------------------------------------------
// Scan bodies (branchless mask-select sweeps)
// ---------------------------------------------------------------------------

/// Finds the (unique, if present) slot whose meta key — the high 32 bits
/// — equals `key`. Accumulator form (`Σ hit·i`, `Σ hit`), so the loop has
/// no data-dependent control flow and vectorizes cleanly. The caller
/// guarantees at most one match (the PathORAM one-block-per-key
/// invariant).
#[inline(always)]
fn key_scan_body(meta: &[u64], key: u32) -> (bool, usize) {
    let mut acc = 0u64;
    let mut cnt = 0u64;
    for (i, &m) in meta.iter().enumerate() {
        let hit = (((m >> 32) as u32) == key) as u64;
        acc += hit * i as u64;
        cnt += hit;
    }
    (cnt != 0, acc as usize)
}

/// Collects the indices of every slot whose key equals `invalid_key`
/// (i.e. every free slot), ascending, into `out` (at least `meta.len()`
/// long). Returns the count. Branchless stream compaction: write
/// unconditionally, advance by the predicate.
#[inline(always)]
fn collect_free_body(meta: &[u64], invalid_key: u32, out: &mut [u32]) -> usize {
    debug_assert!(out.len() >= meta.len());
    let mut cnt = 0usize;
    for (i, &m) in meta.iter().enumerate() {
        out[cnt] = i as u32;
        cnt += (((m >> 32) as u32) == invalid_key) as usize;
    }
    cnt
}

/// Deepest eviction level of every block for the path to `leaf` in a
/// tree of `levels + 1` levels: `levels − bitlen(block_leaf ⊕ leaf)` for
/// valid blocks, −1 for free slots. A block may evict into the level-`d`
/// bucket on the path iff `d <= depth` (heap-path sharing is exactly a
/// shared leaf-label prefix).
#[inline(always)]
fn eviction_depths_body(meta: &[u64], invalid_key: u32, leaf: u32, levels: u32, depth: &mut [i32]) {
    debug_assert_eq!(meta.len(), depth.len());
    let lvls = levels as i32;
    for (d, &m) in depth.iter_mut().zip(meta.iter()) {
        let x = (m as u32) ^ leaf;
        let bitlen = 32 - x.leading_zeros() as i32;
        let valid = (((m >> 32) as u32) != invalid_key) as i32;
        // valid → levels − bitlen, free → −1, without a branch.
        *d = (lvls - bitlen) * valid + (valid - 1);
    }
}

/// Picks the first (ascending slot order) up-to-`out.len() − 1` slots
/// whose depth admits `level`, matching the scalar eviction's "each
/// bucket slot takes the first eligible block" order. The last `out`
/// entry is a sentinel so the write stays unconditional after the bucket
/// fills. Returns how many were picked.
#[inline(always)]
fn pick_eligible_body(depth: &[i32], level: i32, out: &mut [u32]) -> usize {
    let cap = out.len() - 1;
    let mut cnt = 0usize;
    for (i, &d) in depth.iter().enumerate() {
        out[cnt.min(cap)] = i as u32;
        let room = (cnt < cap) as usize;
        let elig = (d >= level) as usize;
        cnt += room & elig;
    }
    cnt.min(cap)
}

// ---------------------------------------------------------------------------
// ISA monomorphizations + dispatch
// ---------------------------------------------------------------------------

macro_rules! kernel_monos {
    ($body:ident, $portable:ident, $avx2:ident, $avx512:ident,
     fn($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        /// Portable monomorphization of the scan body.
        fn $portable($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }

        /// AVX2 monomorphization (256-bit compares + mask selects).
        ///
        /// # Safety
        ///
        /// Caller must have verified AVX2 support.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }

        /// AVX-512 monomorphization (`vplzcntd`, wide mask compares).
        ///
        /// # Safety
        ///
        /// Caller must have verified AVX-512F support.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }
    };
}

kernel_monos!(
    key_scan_body,
    key_scan_portable,
    key_scan_avx2,
    key_scan_avx512,
    fn(meta: &[u64], key: u32) -> (bool, usize)
);
kernel_monos!(
    collect_free_body,
    collect_free_portable,
    collect_free_avx2,
    collect_free_avx512,
    fn(meta: &[u64], invalid_key: u32, out: &mut [u32]) -> usize
);
kernel_monos!(
    eviction_depths_body,
    eviction_depths_portable,
    eviction_depths_avx2,
    eviction_depths_avx512,
    fn(meta: &[u64], invalid_key: u32, leaf: u32, levels: u32, depth: &mut [i32]) -> ()
);
kernel_monos!(
    pick_eligible_body,
    pick_eligible_portable,
    pick_eligible_avx2,
    pick_eligible_avx512,
    fn(depth: &[i32], level: i32, out: &mut [u32]) -> usize
);

macro_rules! isa_dispatch {
    ($portable:ident, $avx2:ident, $avx512:ident, ($($arg:expr),*)) => {
        match isa() {
            Isa::Portable => $portable($($arg),*),
            // SAFETY: the wider monomorphizations run only after feature
            // detection; the bodies themselves are safe code.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { $avx2($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe { $avx512($($arg),*) },
        }
    };
}

/// [`key_scan_body`] at the detected ISA width.
#[inline]
pub fn key_scan(meta: &[u64], key: u32) -> (bool, usize) {
    isa_dispatch!(key_scan_portable, key_scan_avx2, key_scan_avx512, (meta, key))
}

/// [`collect_free_body`] at the detected ISA width.
#[inline]
pub fn collect_free(meta: &[u64], invalid_key: u32, out: &mut [u32]) -> usize {
    isa_dispatch!(
        collect_free_portable,
        collect_free_avx2,
        collect_free_avx512,
        (meta, invalid_key, out)
    )
}

/// [`eviction_depths_body`] at the detected ISA width.
#[inline]
pub fn eviction_depths(meta: &[u64], invalid_key: u32, leaf: u32, levels: u32, depth: &mut [i32]) {
    isa_dispatch!(
        eviction_depths_portable,
        eviction_depths_avx2,
        eviction_depths_avx512,
        (meta, invalid_key, leaf, levels, depth)
    )
}

/// [`pick_eligible_body`] at the detected ISA width.
#[inline]
pub fn pick_eligible(depth: &[i32], level: i32, out: &mut [u32]) -> usize {
    isa_dispatch!(
        pick_eligible_portable,
        pick_eligible_avx2,
        pick_eligible_avx512,
        (depth, level, out)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const INVALID: u32 = u32::MAX;

    fn pack(key: u32, leaf: u32) -> u64 {
        ((key as u64) << 32) | leaf as u64
    }

    #[test]
    fn key_scan_finds_unique_slot() {
        let meta = vec![pack(INVALID, 0), pack(3, 5), pack(INVALID, 0), pack(9, 1), pack(7, 2)];
        assert_eq!(key_scan(&meta, 9), (true, 3));
        assert_eq!(key_scan(&meta, 3), (true, 1));
        assert_eq!(key_scan(&meta, 11), (false, 0));
        assert_eq!(key_scan(&[], 0), (false, 0));
    }

    #[test]
    fn collect_free_is_ascending_and_complete() {
        let meta = vec![pack(1, 0), pack(INVALID, 0), pack(2, 0), pack(INVALID, 0)];
        let mut out = vec![0u32; meta.len()];
        let cnt = collect_free(&meta, INVALID, &mut out);
        assert_eq!((cnt, &out[..cnt]), (2, &[1u32, 3][..]));
        let full = vec![pack(0, 0); 3];
        assert_eq!(collect_free(&full, INVALID, &mut out), 0);
        let empty = vec![pack(INVALID, 0); 4];
        let cnt = collect_free(&empty, INVALID, &mut out);
        assert_eq!(&out[..cnt], &[0u32, 1, 2, 3][..]);
    }

    #[test]
    fn depths_match_path_node_sharing() {
        // leaves = 8, levels = 3: the computed depth must equal the
        // deepest level where the heap paths to `l` and `x` coincide.
        let (leaves, levels) = (8u32, 3u32);
        let path_node = |leaf: u32, level: u32| (leaves + leaf) >> (levels - level);
        for leaf in 0..leaves {
            for bl in 0..leaves {
                let meta = vec![pack(1, bl), pack(INVALID, bl)];
                let mut depth = vec![0i32; 2];
                eviction_depths(&meta, INVALID, leaf, levels, &mut depth);
                let deepest =
                    (0..=levels).rev().find(|&lv| path_node(bl, lv) == path_node(leaf, lv));
                assert_eq!(depth[0], deepest.unwrap() as i32, "leaf {leaf} block {bl}");
                assert_eq!(depth[1], -1, "free slots never evict");
            }
        }
    }

    #[test]
    fn pick_eligible_takes_first_in_slot_order() {
        let depth = vec![2, -1, 3, 0, 3, 3, 1, 3, 3];
        let mut out = [0u32; 5]; // bucket of 4 + sentinel
        let cnt = pick_eligible(&depth, 3, &mut out);
        assert_eq!((cnt, &out[..cnt]), (4, &[2u32, 4, 5, 7][..]), "first four with depth >= 3");
        let cnt = pick_eligible(&depth, 1, &mut out);
        assert_eq!((cnt, &out[..cnt]), (4, &[0u32, 2, 4, 5][..]));
        let cnt = pick_eligible(&depth, 4, &mut out);
        assert_eq!(cnt, 0);
    }
}
