//! The `o_mov` / `o_swap` primitives (paper Appendix A, Listings 1–2).
//!
//! `o_select(flag, x, y)` returns `x` when `flag` is true and `y` otherwise,
//! compiled so that neither the branch predictor nor the memory system sees
//! which arm was taken: on x86-64 this is a literal `cmov` (the same
//! instruction the paper's Rust implementation uses); on other targets a
//! mask-arithmetic fallback with identical data-independence properties.

/// Branch-free 64-bit select: `flag ? x : y`.
///
/// This is the paper's `o_mov` (Listing 1): `test ecx, -1; cmovz rax, r8`.
#[inline(always)]
#[cfg(target_arch = "x86_64")]
pub fn o_select_u64(flag: bool, x: u64, y: u64) -> u64 {
    let mut out = x;
    // SAFETY: pure register arithmetic; no memory is read or written.
    unsafe {
        core::arch::asm!(
            "test {f}, {f}",
            "cmovz {out}, {y}",
            f = in(reg) flag as u64,
            y = in(reg) y,
            out = inout(reg) out,
            options(pure, nomem, nostack),
        );
    }
    out
}

/// Branch-free 64-bit select: `flag ? x : y` (portable fallback).
#[inline(always)]
#[cfg(not(target_arch = "x86_64"))]
pub fn o_select_u64(flag: bool, x: u64, y: u64) -> u64 {
    let mask = (flag as u64).wrapping_neg(); // all-ones when flag
    (x & mask) | (y & !mask)
}

/// Types that support register-level oblivious selection.
///
/// Implementations must be branch-free and must not perform data-dependent
/// memory accesses. All cell types used by the aggregation algorithms
/// ((index, value) pairs, packed u64 cells, floats) implement this.
pub trait Oblivious: Copy {
    /// `flag ? x : y` without revealing `flag` through side channels.
    fn o_select(flag: bool, x: Self, y: Self) -> Self;
}

impl Oblivious for u64 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        o_select_u64(flag, x, y)
    }
}

impl Oblivious for u32 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        o_select_u64(flag, x as u64, y as u64) as u32
    }
}

impl Oblivious for i64 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        o_select_u64(flag, x as u64, y as u64) as i64
    }
}

impl Oblivious for usize {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        o_select_u64(flag, x as u64, y as u64) as usize
    }
}

impl Oblivious for bool {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        o_select_u64(flag, x as u64, y as u64) != 0
    }
}

impl Oblivious for u128 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        let hi = o_select_u64(flag, (x >> 64) as u64, (y >> 64) as u64);
        let lo = o_select_u64(flag, x as u64, y as u64);
        ((hi as u128) << 64) | lo as u128
    }
}

impl Oblivious for f32 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        f32::from_bits(o_select_u64(flag, x.to_bits() as u64, y.to_bits() as u64) as u32)
    }
}

impl Oblivious for f64 {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        f64::from_bits(o_select_u64(flag, x.to_bits(), y.to_bits()))
    }
}

impl<A: Oblivious, B: Oblivious> Oblivious for (A, B) {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        (A::o_select(flag, x.0, y.0), B::o_select(flag, x.1, y.1))
    }
}

impl<A: Oblivious, B: Oblivious, C: Oblivious> Oblivious for (A, B, C) {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        (A::o_select(flag, x.0, y.0), B::o_select(flag, x.1, y.1), C::o_select(flag, x.2, y.2))
    }
}

/// Generic oblivious select over any [`Oblivious`] type.
#[inline(always)]
pub fn o_select<T: Oblivious>(flag: bool, x: T, y: T) -> T {
    T::o_select(flag, x, y)
}

/// Conditionally swaps `a` and `b` when `flag` is true, in registers
/// (the paper's `o_swap`, Listing 2). The memory footprint — both cells
/// read, both written — is identical whichever way the flag falls; the
/// caller is responsible for actually performing those writes when the
/// values live in traced memory (see `TrackedBuf::write_pair`).
#[inline(always)]
pub fn o_swap<T: Oblivious>(flag: bool, a: &mut T, b: &mut T) {
    let new_a = T::o_select(flag, *b, *a);
    let new_b = T::o_select(flag, *a, *b);
    *a = new_a;
    *b = new_b;
}

/// Branch-free equality test on u64 (the *result* is secret; the
/// computation leaks nothing).
#[inline(always)]
pub fn o_eq_u64(a: u64, b: u64) -> bool {
    // (a ^ b) == 0, computed without a comparison chain. Rust compiles
    // integer == to a flag-setting compare which is already branch-free;
    // the explicit xor form documents intent.
    (a ^ b) == 0
}

/// Branch-free less-than on u64.
#[inline(always)]
pub fn o_lt_u64(a: u64, b: u64) -> bool {
    // Standard borrow-extraction trick.
    let d = a.wrapping_sub(b);
    (((!a & b) | ((!a | b) & d)) >> 63) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_u64() {
        assert_eq!(o_select_u64(true, 7, 9), 7);
        assert_eq!(o_select_u64(false, 7, 9), 9);
        assert_eq!(o_select_u64(true, u64::MAX, 0), u64::MAX);
        assert_eq!(o_select_u64(false, u64::MAX, 0), 0);
    }

    #[test]
    fn select_floats_preserve_bits() {
        assert_eq!(o_select(true, 1.5f32, -2.5), 1.5);
        assert_eq!(o_select(false, 1.5f32, -2.5), -2.5);
        assert!(o_select(true, f32::NAN, 1.0).is_nan());
        assert_eq!(o_select(true, -0.0f64, 1.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn select_tuples() {
        let a = (1u32, 2.0f32);
        let b = (3u32, 4.0f32);
        assert_eq!(o_select(true, a, b), a);
        assert_eq!(o_select(false, a, b), b);
        let t3 = o_select(true, (1u64, 2u64, 3u64), (4, 5, 6));
        assert_eq!(t3, (1, 2, 3));
    }

    #[test]
    fn swap_both_ways() {
        let (mut a, mut b) = (10u64, 20u64);
        o_swap(false, &mut a, &mut b);
        assert_eq!((a, b), (10, 20));
        o_swap(true, &mut a, &mut b);
        assert_eq!((a, b), (20, 10));
    }

    #[test]
    fn swap_pairs() {
        let (mut a, mut b) = ((1u32, 1.0f32), (2u32, 2.0f32));
        o_swap(true, &mut a, &mut b);
        assert_eq!(a, (2, 2.0));
        assert_eq!(b, (1, 1.0));
    }

    #[test]
    fn eq_and_lt() {
        assert!(o_eq_u64(5, 5));
        assert!(!o_eq_u64(5, 6));
        for (a, b) in
            [(0u64, 1u64), (1, 0), (5, 5), (u64::MAX, 0), (0, u64::MAX), (u64::MAX, u64::MAX)]
        {
            assert_eq!(o_lt_u64(a, b), a < b, "a={a} b={b}");
        }
    }

    #[test]
    fn lt_exhaustive_small() {
        for a in 0..20u64 {
            for b in 0..20u64 {
                assert_eq!(o_lt_u64(a, b), a < b);
            }
        }
    }

    #[test]
    fn select_bool_and_usize() {
        assert!(o_select(true, true, false));
        assert!(!o_select(false, true, false));
        assert_eq!(o_select(true, 3usize, 9), 3);
    }
}
