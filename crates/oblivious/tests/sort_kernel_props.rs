//! Differential properties of the batched sort kernel against the scalar
//! reference network: bitwise-identical outputs and digest-identical
//! traces at every thread count and observation granularity, plus the
//! Batcher comparator-count identity under block trace events.

use olive_memsim::{assert_oblivious, Granularity, NullTracer, RecordingTracer, TrackedBuf};
use olive_oblivious::sort_kernel::{
    bitonic_sort_keyed_pow2_with, bitonic_sort_tagged_pow2_with, bitonic_sort_u64_pow2_with,
    SortKernel,
};
use olive_oblivious::{bitonic_sort_pow2, o_select};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn random_words(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Duplicate-heavy cells: equal-key comparators must take the same swap
/// decision in both kernels for outputs to match bitwise.
fn clustered_words(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| (rng.gen_range(0..16u64) << 32) | rng.gen::<u32>() as u64).collect()
}

#[test]
fn outputs_bitwise_identical_u64() {
    // 8192 comfortably exceeds the kernel's internal parallelism
    // threshold, so threads ∈ {2, 8} genuinely run the barrier path.
    for n in [1usize, 2, 4, 32, 256, 1024, 8192] {
        for (seed, gen) in
            [(1u64, random_words as fn(usize, u64) -> Vec<u64>), (2, clustered_words)]
        {
            let data = gen(n, seed ^ n as u64);
            let mut scalar = TrackedBuf::new(0, data.clone());
            bitonic_sort_u64_pow2_with(&mut scalar, SortKernel::Scalar, 1, &mut NullTracer);
            for threads in THREAD_COUNTS {
                let mut batched = TrackedBuf::new(0, data.clone());
                bitonic_sort_u64_pow2_with(
                    &mut batched,
                    SortKernel::Batched,
                    threads,
                    &mut NullTracer,
                );
                assert_eq!(
                    scalar.as_slice_untraced(),
                    batched.as_slice_untraced(),
                    "n={n} threads={threads} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn digests_identical_at_both_granularities_and_every_thread_count() {
    for n in [64usize, 1024, 8192] {
        let data = random_words(n, 11);
        for granularity in [Granularity::Element, Granularity::Cacheline] {
            let mut scalar_tr = RecordingTracer::new(granularity);
            let mut scalar = TrackedBuf::new(9, data.clone());
            bitonic_sort_u64_pow2_with(&mut scalar, SortKernel::Scalar, 1, &mut scalar_tr);
            for threads in THREAD_COUNTS {
                let mut batched_tr = RecordingTracer::new(granularity);
                let mut batched = TrackedBuf::new(9, data.clone());
                bitonic_sort_u64_pow2_with(
                    &mut batched,
                    SortKernel::Batched,
                    threads,
                    &mut batched_tr,
                );
                assert_eq!(
                    batched_tr.digest(),
                    scalar_tr.digest(),
                    "n={n} {granularity:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn keyed_kernel_outputs_and_digests_match_scalar() {
    let mut rng = SmallRng::seed_from_u64(5);
    // (u32, f32) pairs keyed by the index half, with heavy key collisions.
    let data: Vec<(u32, f32)> =
        (0..4096).map(|_| (rng.gen_range(0..32), rng.gen_range(-4.0..4.0))).collect();
    let key = |c: &(u32, f32)| c.0 as u64;
    for granularity in [Granularity::Element, Granularity::Cacheline] {
        let mut scalar_tr = RecordingTracer::new(granularity);
        let mut scalar = TrackedBuf::new(2, data.clone());
        bitonic_sort_pow2(&mut scalar, key, &mut scalar_tr);
        for threads in THREAD_COUNTS {
            let mut batched_tr = RecordingTracer::new(granularity);
            let mut batched = TrackedBuf::new(2, data.clone());
            bitonic_sort_keyed_pow2_with(
                &mut batched,
                key,
                SortKernel::Batched,
                threads,
                &mut batched_tr,
            );
            let a = scalar.as_slice_untraced();
            let b = batched.as_slice_untraced();
            let bitwise_equal = a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits());
            assert!(bitwise_equal, "{granularity:?} threads={threads}: keyed outputs diverged");
            assert_eq!(
                batched_tr.digest(),
                scalar_tr.digest(),
                "{granularity:?} threads={threads}"
            );
        }
    }
}

#[test]
fn tagged_kernel_digests_match_scalar_at_both_granularities() {
    // The u128 tagged path (the shuffle's layout) must report 16-byte
    // elements identically to the scalar network over the same packed
    // words — a regression in its trace emission (e.g. the wrong element
    // size) would silently shift every shuffle trace.
    let data: Vec<u128> = (0..4096u128)
        .map(|i| ((i.wrapping_mul(0x9e37_79b9) % 64) << 64) | (i & u64::MAX as u128))
        .collect();
    for granularity in [Granularity::Element, Granularity::Cacheline] {
        let mut scalar_tr = RecordingTracer::new(granularity);
        let mut scalar = TrackedBuf::new(4, data.clone());
        bitonic_sort_tagged_pow2_with(&mut scalar, SortKernel::Scalar, 1, &mut scalar_tr);
        for threads in THREAD_COUNTS {
            let mut batched_tr = RecordingTracer::new(granularity);
            let mut batched = TrackedBuf::new(4, data.clone());
            bitonic_sort_tagged_pow2_with(
                &mut batched,
                SortKernel::Batched,
                threads,
                &mut batched_tr,
            );
            assert_eq!(
                batched_tr.digest(),
                scalar_tr.digest(),
                "{granularity:?} threads={threads}"
            );
            assert_eq!(
                scalar.as_slice_untraced(),
                batched.as_slice_untraced(),
                "{granularity:?} threads={threads}: tagged outputs diverged"
            );
        }
    }
}

#[test]
fn batched_kernel_is_oblivious_at_both_granularities() {
    // Definition 2.1 with δ=0, directly on the batched kernel: identical
    // traces for any same-length input, at element and cacheline
    // granularity, serial and threaded.
    // 4096 is exactly the kernel's parallelism threshold, so threads = 4
    // runs the barrier path here.
    let inputs: Vec<Vec<u64>> = vec![
        (0..4096).collect(),
        (0..4096).rev().collect(),
        vec![42; 4096],
        (0..4096).map(|i| i * 7919 % 4096).collect(),
    ];
    for granularity in [Granularity::Element, Granularity::Cacheline] {
        for threads in [1usize, 4] {
            assert_oblivious(granularity, &inputs, |input, tr| {
                let mut buf = TrackedBuf::new(1, input.clone());
                bitonic_sort_u64_pow2_with(&mut buf, SortKernel::Batched, threads, tr);
            });
        }
    }
}

#[test]
fn comparator_count_matches_batcher_under_block_events() {
    // Batcher's network has n/2 · log(n) · (log(n)+1) / 2 comparators,
    // each 2 reads + 2 writes. The batched kernel reports block events;
    // their expansion must land on exactly the same counters.
    for n in [64u64, 1024, 8192] {
        let logn = n.trailing_zeros() as u64;
        let comparators = n / 2 * logn * (logn + 1) / 2;
        for threads in [1usize, 4] {
            let mut tr = RecordingTracer::new(Granularity::Element);
            let mut buf = TrackedBuf::new(0, (0..n).collect::<Vec<u64>>());
            bitonic_sort_u64_pow2_with(&mut buf, SortKernel::Batched, threads, &mut tr);
            assert_eq!(tr.stats().reads, comparators * 2, "n={n} threads={threads}");
            assert_eq!(tr.stats().writes, comparators * 2, "n={n} threads={threads}");
        }
    }
}

#[test]
fn default_entry_points_sort_correctly() {
    // The env-dispatched wrappers (whatever OLIVE_SORT_KERNEL says) must
    // sort; this is the path production aggregation takes.
    let data = clustered_words(2048, 3);
    let mut expected = data.clone();
    expected.sort_unstable();
    let mut buf = TrackedBuf::new(0, data);
    olive_oblivious::bitonic_sort_u64_pow2(&mut buf, &mut NullTracer);
    assert_eq!(buf.into_inner(), expected);

    // Sanity: o_select remains the tie-free primitive underneath the
    // scalar reference the differential tests compare against.
    assert_eq!(o_select(true, 1u64, 2), 1);
}
