//! Randomized unit tests for the oblivious primitives: each primitive
//! must (a) compute the same result as its non-oblivious reference and
//! (b) emit a memory trace that is a pure function of the input *shape*
//! (length), never of the input *values* or of any secret index.

use olive_memsim::{trace_of, Granularity, NullTracer, TrackedBuf};
use olive_oblivious::{
    bitonic_sort_by_key, o_scan_read, o_scan_update, o_scan_write, o_select, o_swap,
    oblivious_shuffle,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn o_select_matches_branching_select() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..1000 {
        let (x, y) = (rng.gen::<u64>(), rng.gen::<u64>());
        let flag = rng.gen::<bool>();
        assert_eq!(o_select(flag, x, y), if flag { x } else { y });
        let (a, b) = (rng.gen::<f32>(), rng.gen::<f32>());
        assert_eq!(o_select(flag, a, b), if flag { a } else { b });
    }
}

#[test]
fn o_swap_matches_branching_swap() {
    let mut rng = SmallRng::seed_from_u64(12);
    for _ in 0..1000 {
        let (x0, y0) = (rng.gen::<u64>(), rng.gen::<u64>());
        let (mut x, mut y) = (x0, y0);
        let flag = rng.gen::<bool>();
        o_swap(flag, &mut x, &mut y);
        if flag {
            assert_eq!((x, y), (y0, x0));
        } else {
            assert_eq!((x, y), (x0, y0));
        }
    }
}

#[test]
fn bitonic_sort_sorts_random_inputs_of_every_small_length() {
    let mut rng = SmallRng::seed_from_u64(13);
    for len in 0..=65 {
        let data: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000)).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let got = bitonic_sort_by_key(0, data, u64::MAX, |x| *x, &mut NullTracer);
        assert_eq!(got, expected, "length {len}");
    }
}

#[test]
fn bitonic_sort_trace_is_fixed_per_length() {
    let mut rng = SmallRng::seed_from_u64(14);
    for len in [1usize, 2, 7, 16, 33] {
        let mut digests = Vec::new();
        for _ in 0..4 {
            let data: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            digests.push(trace_of(Granularity::Element, |tr| {
                bitonic_sort_by_key(0, data.clone(), u64::MAX, |x| *x, tr);
            }));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "sort trace varied across same-length inputs (len {len})"
        );
    }
    // Different lengths must differ (the trace encodes the schedule).
    let a = trace_of(Granularity::Element, |tr| {
        bitonic_sort_by_key(0, vec![1u64, 2, 3], u64::MAX, |x| *x, tr);
    });
    let b = trace_of(Granularity::Element, |tr| {
        bitonic_sort_by_key(0, vec![1u64, 2, 3, 4, 5], u64::MAX, |x| *x, tr);
    });
    assert_ne!(a, b);
}

#[test]
fn shuffle_is_a_permutation_and_varies_with_seed() {
    let n = 64usize;
    let data: Vec<u64> = (0..n as u64).collect();
    let mut rng1 = SmallRng::seed_from_u64(21);
    let out1 = oblivious_shuffle(0, data.clone(), &mut rng1, &mut NullTracer);
    let mut sorted = out1.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, data, "shuffle must preserve the multiset");

    let mut rng2 = SmallRng::seed_from_u64(22);
    let out2 = oblivious_shuffle(0, data.clone(), &mut rng2, &mut NullTracer);
    assert_ne!(out1, out2, "different seeds should give different orders");
}

#[test]
fn shuffle_trace_is_fixed_per_length() {
    // Neither the element values nor the randomness may show in the
    // trace: the permutation is applied via a data-independent sorting
    // network over register-held random keys.
    let mut digests = Vec::new();
    for seed in 0..4u64 {
        let data: Vec<u64> = (0..48).map(|i| i * seed).collect();
        digests.push(trace_of(Granularity::Element, |tr| {
            let mut rng = SmallRng::seed_from_u64(seed);
            oblivious_shuffle(0, data.clone(), &mut rng, tr);
        }));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "shuffle trace varied with data or randomness"
    );
}

#[test]
fn scan_read_write_update_match_direct_access() {
    let mut rng = SmallRng::seed_from_u64(31);
    for _ in 0..50 {
        let n = rng.gen_range(1..40usize);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let idx = rng.gen_range(0..n);

        let buf = TrackedBuf::new(0, data.clone());
        assert_eq!(o_scan_read(&buf, idx, &mut NullTracer), data[idx]);

        let mut buf = TrackedBuf::new(0, data.clone());
        let v = rng.gen::<u64>();
        o_scan_write(&mut buf, idx, v, &mut NullTracer);
        let mut expected = data.clone();
        expected[idx] = v;
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(buf.read(i, &mut NullTracer), *want);
        }

        let mut buf = TrackedBuf::new(0, data.clone());
        o_scan_update(&mut buf, |i, x| x.wrapping_add(i as u64), &mut NullTracer);
        for (i, base) in data.iter().enumerate() {
            assert_eq!(buf.read(i, &mut NullTracer), base.wrapping_add(i as u64));
        }
    }
}

#[test]
fn scan_traces_do_not_depend_on_secret_index() {
    let n = 32usize;
    let data: Vec<u64> = (0..n as u64).collect();
    let read_digest = |idx: usize| {
        trace_of(Granularity::Element, |tr| {
            let buf = TrackedBuf::new(0, data.clone());
            o_scan_read(&buf, idx, tr);
        })
    };
    let write_digest = |idx: usize| {
        trace_of(Granularity::Element, |tr| {
            let mut buf = TrackedBuf::new(0, data.clone());
            o_scan_write(&mut buf, idx, 77, tr);
        })
    };
    let r0 = read_digest(0);
    let w0 = write_digest(0);
    for idx in [1, n / 2, n - 1] {
        assert_eq!(read_digest(idx), r0, "o_scan_read trace leaked index {idx}");
        assert_eq!(write_digest(idx), w0, "o_scan_write trace leaked index {idx}");
    }
}
