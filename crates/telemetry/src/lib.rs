//! Side-band telemetry plane for the Olive workspace.
//!
//! Olive's security argument rests on a hard invariant: round output,
//! enclave signature, and the adversary-visible trace digest are bitwise
//! identical across thread counts, chunk sizes, crypto backends, shard
//! counts, and fault scripts. Observability therefore has to be provably
//! **side-band** — it may read everything but must never perturb the
//! computation. This crate provides that plane:
//!
//! * **Spans** — hierarchical begin/end scopes (round → ingest-chunk →
//!   shard ingress, …) emitted as one JSONL record at close, carrying a
//!   sequential id, the enclosing span's id, caller-supplied
//!   deterministic fields, and the wall-clock duration.
//! * **Counters / histograms** — monotonic totals and min/max/sum/count
//!   summaries accumulated under a mutex (order-independent, so worker
//!   threads may contribute) and flushed in sorted key order.
//! * **Events** — immediate records with deterministic fields only
//!   (fault firings, recovery attempts).
//! * **Bench records** — one-shot reports migrating the historical
//!   `ingestion_ws:`-style `println!` side channels onto one schema.
//!
//! Every record is a single JSON object per line. Wall-clock data lives
//! exclusively in a `"wall"` object that is **always the last key**, so
//! the *deterministic projection* of a stream — the part that must be
//! byte-identical across runs — is obtained by stripping that suffix
//! ([`deterministic_projection`]). Everything else (counts, bytes,
//! chunk/shard ids, fault sites, span ids) is a pure function of the
//! input and the armed/disarmed state never changes the computation.
//!
//! The exporter is armed by `OLIVE_METRICS=<path|stdout|off>` (default
//! off). Disarmed, every entry point is a branch on an `Option` — no
//! clock reads, no locks, no allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A field value in a telemetry record.
///
/// Deterministic fields should stick to integers, booleans and strings;
/// floats are for wall-clock/throughput data (their `Display` rendering
/// is stable for identical bits, but identical bits across runs is
/// exactly what wall-clock data does not promise).
#[derive(Debug, Clone)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (wall-clock data).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on write).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// Renders `,"k":v` pairs (leading comma per pair) into `out`.
fn fields_into(out: &mut String, fields: &[(&str, Value)]) {
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(out, k);
        out.push_str("\":");
        value_into(out, v);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

enum Sink {
    Stdout,
    File(std::io::BufWriter<std::fs::File>),
    Buffer(Vec<u8>),
}

struct State {
    sink: Sink,
    next_span: u64,
    stack: Vec<u64>,
    counters: BTreeMap<(String, String), u64>,
    hists: BTreeMap<(String, String), Hist>,
}

struct Inner {
    state: Mutex<State>,
}

impl Inner {
    fn new(sink: Sink) -> Arc<Inner> {
        Arc::new(Inner {
            state: Mutex::new(State {
                sink,
                next_span: 1,
                stack: Vec::new(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
            }),
        })
    }

    fn write_line(state: &mut State, line: &str) {
        match &mut state.sink {
            Sink::Stdout => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let _ = lock.write_all(line.as_bytes());
                let _ = lock.write_all(b"\n");
            }
            Sink::File(f) => {
                let _ = f.write_all(line.as_bytes());
                let _ = f.write_all(b"\n");
                let _ = f.flush();
            }
            Sink::Buffer(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }
}

/// A cheap-to-clone handle onto one telemetry stream (or onto nothing,
/// when disarmed). Every instrumented component holds one; clones share
/// the sink, the span-id sequence, and the counter tables.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("armed", &self.inner.is_some()).finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

impl Telemetry {
    /// The disarmed handle: every entry point is a no-op.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Armed, writing JSONL lines to stdout.
    pub fn stdout() -> Telemetry {
        Telemetry { inner: Some(Inner::new(Sink::Stdout)) }
    }

    /// Armed, appending JSONL lines to `path` (created if absent).
    /// Append mode lets several processes share one artifact file; each
    /// record is written as one line.
    pub fn to_file(path: &str) -> std::io::Result<Telemetry> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Telemetry { inner: Some(Inner::new(Sink::File(std::io::BufWriter::new(f)))) })
    }

    /// Armed, collecting JSONL lines in memory — the test sink. Read
    /// back with [`Telemetry::buffer_contents`].
    pub fn to_buffer() -> Telemetry {
        Telemetry { inner: Some(Inner::new(Sink::Buffer(Vec::new()))) }
    }

    /// The process-wide handle configured by `OLIVE_METRICS`
    /// (`<path>` | `stdout` | `off`; default off). Parsed once; every
    /// call returns a clone of the same handle, so all components share
    /// one stream. A malformed value (unopenable path) warns to stderr
    /// and disarms, mirroring the other `OLIVE_*` knobs.
    pub fn from_env() -> Telemetry {
        static HANDLE: OnceLock<Telemetry> = OnceLock::new();
        HANDLE
            .get_or_init(|| match std::env::var("OLIVE_METRICS") {
                Err(_) => Telemetry::off(),
                Ok(v) if v.is_empty() || v == "off" => Telemetry::off(),
                Ok(v) if v == "stdout" => Telemetry::stdout(),
                Ok(path) => match Telemetry::to_file(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("OLIVE_METRICS={path}: cannot open ({e}); telemetry disarmed");
                        Telemetry::off()
                    }
                },
            })
            .clone()
    }

    /// Whether this handle writes anywhere. Disarmed handles cost one
    /// branch per call.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. The record is emitted when the returned [`Span`] is
    /// dropped (or explicitly [`Span::end`]ed), carrying the given
    /// deterministic fields, any added later via [`Span::field`], and
    /// the wall-clock duration. Spans nest via an internal stack, so
    /// open/close them on one thread (the main round loop).
    pub fn span(&self, name: &str, det: &[(&str, Value)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span(None);
        };
        let (id, parent) = {
            let mut st = inner.state.lock().expect("telemetry mutex");
            let id = st.next_span;
            st.next_span += 1;
            let parent = st.stack.last().copied().unwrap_or(0);
            st.stack.push(id);
            (id, parent)
        };
        let mut det_buf = String::new();
        fields_into(&mut det_buf, det);
        Span(Some(SpanData {
            inner: Arc::clone(inner),
            id,
            parent,
            name: name.to_string(),
            det: det_buf,
            start: Instant::now(),
        }))
    }

    /// Emits an immediate record with deterministic fields only (plus
    /// the id of the currently open span, itself deterministic).
    pub fn event(&self, name: &str, det: &[(&str, Value)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state.lock().expect("telemetry mutex");
        let span = st.stack.last().copied().unwrap_or(0);
        let mut line = String::with_capacity(96);
        line.push_str("{\"record\":\"event\",\"name\":\"");
        escape_into(&mut line, name);
        let _ = write!(line, "\",\"deterministic\":{{\"span\":{span}");
        fields_into(&mut line, det);
        line.push_str("}}");
        Inner::write_line(&mut st, &line);
    }

    /// Adds `delta` to the monotonic counter `(name, key)`. Totals are
    /// order-independent, so worker threads may count concurrently;
    /// [`Telemetry::flush_stats`] emits them sorted.
    pub fn count(&self, name: &str, key: &str, delta: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state.lock().expect("telemetry mutex");
        *st.counters.entry((name.to_string(), key.to_string())).or_insert(0) += delta;
    }

    /// Records one observation into the histogram `(name, key)`
    /// (count/sum/min/max summary).
    pub fn observe(&self, name: &str, key: &str, value: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state.lock().expect("telemetry mutex");
        let h = st.hists.entry((name.to_string(), key.to_string())).or_default();
        if h.count == 0 {
            h.min = value;
            h.max = value;
        } else {
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        }
        h.count += 1;
        h.sum += value;
    }

    /// Emits every accumulated counter and histogram as one record each,
    /// in sorted `(name, key)` order, then clears them. Call at a
    /// deterministic point (end of round) so the flushed order is a
    /// pure function of the computation.
    pub fn flush_stats(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state.lock().expect("telemetry mutex");
        let counters = std::mem::take(&mut st.counters);
        let hists = std::mem::take(&mut st.hists);
        for ((name, key), total) in &counters {
            let mut line = String::with_capacity(96);
            line.push_str("{\"record\":\"counter\",\"name\":\"");
            escape_into(&mut line, name);
            line.push_str("\",\"key\":\"");
            escape_into(&mut line, key);
            let _ = write!(line, "\",\"deterministic\":{{\"total\":{total}}}}}");
            Inner::write_line(&mut st, &line);
        }
        for ((name, key), h) in &hists {
            let mut line = String::with_capacity(128);
            line.push_str("{\"record\":\"histogram\",\"name\":\"");
            escape_into(&mut line, name);
            line.push_str("\",\"key\":\"");
            escape_into(&mut line, key);
            let _ = write!(
                line,
                "\",\"deterministic\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}}}",
                h.count, h.sum, h.min, h.max
            );
            Inner::write_line(&mut st, &line);
        }
    }

    /// Emits a one-shot bench record: deterministic fields (config,
    /// sizes, measured byte counts) plus optional wall-clock fields
    /// (timings). This is the schema the historical `ingestion_ws:` /
    /// `checkpoint_overhead:` / `recovery_overhead:` `println!` side
    /// channels migrate onto.
    pub fn bench(&self, name: &str, det: &[(&str, Value)], wall: &[(&str, Value)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut line = String::with_capacity(160);
        line.push_str("{\"record\":\"bench\",\"name\":\"");
        escape_into(&mut line, name);
        line.push_str("\",\"deterministic\":{");
        let mut det_buf = String::new();
        fields_into(&mut det_buf, det);
        line.push_str(det_buf.strip_prefix(',').unwrap_or(&det_buf));
        line.push('}');
        if !wall.is_empty() {
            line.push_str(",\"wall\":{");
            let mut wall_buf = String::new();
            fields_into(&mut wall_buf, wall);
            line.push_str(wall_buf.strip_prefix(',').unwrap_or(&wall_buf));
            line.push('}');
        }
        line.push('}');
        let mut st = inner.state.lock().expect("telemetry mutex");
        Inner::write_line(&mut st, &line);
    }

    /// The accumulated stream, when this handle writes to the in-memory
    /// buffer sink; `None` otherwise. Leaves the buffer intact.
    pub fn buffer_contents(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("telemetry mutex");
        match &st.sink {
            Sink::Buffer(buf) => Some(String::from_utf8_lossy(buf).into_owned()),
            _ => None,
        }
    }
}

struct SpanData {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    name: String,
    det: String,
    start: Instant,
}

/// An open span. The record is emitted when this guard drops; early
/// returns and error unwinds therefore still close their spans.
pub struct Span(Option<SpanData>);

impl Span {
    /// Adds a deterministic field to the span record (appended after the
    /// fields given at open).
    pub fn field(&mut self, key: &str, value: Value) {
        if let Some(d) = &mut self.0 {
            let mut det = std::mem::take(&mut d.det);
            fields_into(&mut det, &[(key, value)]);
            d.det = det;
        }
    }

    /// Closes the span, emitting its record. Equivalent to dropping it;
    /// this form documents the close point.
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(d) = self.0.take() else {
            return;
        };
        let ns = d.start.elapsed().as_nanos() as u64;
        let mut line = String::with_capacity(128 + d.det.len());
        line.push_str("{\"record\":\"span\",\"name\":\"");
        escape_into(&mut line, &d.name);
        let _ = write!(line, "\",\"id\":{},\"parent\":{}", d.id, d.parent);
        line.push_str(",\"deterministic\":{");
        line.push_str(d.det.strip_prefix(',').unwrap_or(&d.det));
        let _ = write!(line, "}},\"wall\":{{\"ns\":{ns}}}}}");
        let mut st = d.inner.state.lock().expect("telemetry mutex");
        // Unwind the stack through this id: panicking/erroring code may
        // leak deeper spans; truncating keeps later parents correct.
        if let Some(pos) = st.stack.iter().rposition(|&x| x == d.id) {
            st.stack.truncate(pos);
        }
        Inner::write_line(&mut st, &line);
    }
}

/// Strips the wall-clock suffix from every line of a JSONL stream,
/// returning the byte-stable *deterministic projection*. Records without
/// a `"wall"` object pass through unchanged. The schema guarantees
/// `"wall"` is the final key of any record that has one, so a simple
/// suffix cut is exact.
pub fn deterministic_projection(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        match line.find(",\"wall\":") {
            Some(i) => {
                out.push_str(&line[..i]);
                out.push('}');
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_handle_emits_nothing_and_costs_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_armed());
        let mut s = t.span("round", &[("round", 1u64.into())]);
        s.field("clients", 5u64.into());
        s.end();
        t.event("fault", &[]);
        t.count("bytes", "hw", 10);
        t.observe("blob", "coordinator", 7);
        t.flush_stats();
        t.bench("ws", &[("n", 1u64.into())], &[]);
        assert_eq!(t.buffer_contents(), None);
    }

    #[test]
    fn spans_nest_with_sequential_ids() {
        let t = Telemetry::to_buffer();
        let outer = t.span("round", &[("round", 3u64.into())]);
        let inner = t.span("chunk", &[("chunk", 0u64.into())]);
        inner.end();
        outer.end();
        let out = t.buffer_contents().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // Inner closes first, referencing the outer as parent.
        assert!(lines[0].starts_with(
            "{\"record\":\"span\",\"name\":\"chunk\",\"id\":2,\"parent\":1,\
             \"deterministic\":{\"chunk\":0},\"wall\":{\"ns\":"
        ));
        assert!(lines[1].starts_with(
            "{\"record\":\"span\",\"name\":\"round\",\"id\":1,\"parent\":0,\
             \"deterministic\":{\"round\":3},\"wall\":{\"ns\":"
        ));
    }

    #[test]
    fn events_bind_the_open_span() {
        let t = Telemetry::to_buffer();
        let s = t.span("round", &[]);
        t.event("fault_fired", &[("site", "kill@2.0".into())]);
        s.end();
        let out = t.buffer_contents().unwrap();
        assert!(out.lines().next().unwrap().contains(
            "\"record\":\"event\",\"name\":\"fault_fired\",\
             \"deterministic\":{\"span\":1,\"site\":\"kill@2.0\"}"
        ));
    }

    #[test]
    fn counters_and_histograms_flush_sorted_and_clear() {
        let t = Telemetry::to_buffer();
        t.count("sealed_bytes", "hw", 100);
        t.count("opened_bytes", "hw", 40);
        t.count("sealed_bytes", "hw", 1);
        t.observe("ckpt_blob_bytes", "coordinator", 10);
        t.observe("ckpt_blob_bytes", "coordinator", 4);
        t.flush_stats();
        t.flush_stats(); // second flush emits nothing: tables cleared
        let out = t.buffer_contents().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"record\":\"counter\",\"name\":\"opened_bytes\",\"key\":\"hw\",\
             \"deterministic\":{\"total\":40}}"
        );
        assert_eq!(
            lines[1],
            "{\"record\":\"counter\",\"name\":\"sealed_bytes\",\"key\":\"hw\",\
             \"deterministic\":{\"total\":101}}"
        );
        assert_eq!(
            lines[2],
            "{\"record\":\"histogram\",\"name\":\"ckpt_blob_bytes\",\"key\":\"coordinator\",\
             \"deterministic\":{\"count\":2,\"sum\":14,\"min\":4,\"max\":10}}"
        );
    }

    /// The ORAM comparator's per-chunk metrics ride the existing
    /// counter/histogram schema unchanged — pin the exact lines the
    /// round pipeline's `oram_evicted_blocks` count and
    /// `oram_stash_occupancy` observation produce, so the names stay a
    /// stable contract for stream consumers.
    #[test]
    fn oram_counters_use_the_existing_schema() {
        let t = Telemetry::to_buffer();
        t.count("oram_evicted_blocks", "coordinator", 96);
        t.observe("oram_stash_occupancy", "max", 7);
        t.observe("oram_stash_occupancy", "max", 5);
        t.flush_stats();
        let out = t.buffer_contents().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"record\":\"counter\",\"name\":\"oram_evicted_blocks\",\"key\":\"coordinator\",\
             \"deterministic\":{\"total\":96}}"
        );
        assert_eq!(
            lines[1],
            "{\"record\":\"histogram\",\"name\":\"oram_stash_occupancy\",\"key\":\"max\",\
             \"deterministic\":{\"count\":2,\"sum\":12,\"min\":5,\"max\":7}}"
        );
    }

    #[test]
    fn bench_records_carry_det_and_wall_sections() {
        let t = Telemetry::to_buffer();
        t.bench(
            "ingestion_ws",
            &[("config", "streaming".into()), ("peak_bytes", 327_680u64.into())],
            &[("ns", 1234u64.into())],
        );
        t.bench("ingestion_ws", &[("n", 10u64.into())], &[]);
        let out = t.buffer_contents().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"record\":\"bench\",\"name\":\"ingestion_ws\",\"deterministic\":\
             {\"config\":\"streaming\",\"peak_bytes\":327680},\"wall\":{\"ns\":1234}}"
        );
        assert_eq!(
            lines[1],
            "{\"record\":\"bench\",\"name\":\"ingestion_ws\",\"deterministic\":{\"n\":10}}"
        );
    }

    #[test]
    fn projection_strips_exactly_the_wall_suffix() {
        let t = Telemetry::to_buffer();
        let s = t.span("round", &[("round", 1u64.into())]);
        t.event("fault_fired", &[("site", "drop@0.1".into())]);
        s.end();
        t.count("frames", "s0:c2s", 2);
        t.flush_stats();
        let out = t.buffer_contents().unwrap();
        let proj = deterministic_projection(&out);
        assert!(!proj.contains("\"wall\""));
        assert!(proj.contains(
            "\"name\":\"round\",\"id\":1,\"parent\":0,\
                               \"deterministic\":{\"round\":1}}"
        ));
        // Records without wall data pass through byte-identical.
        for (line, pline) in out.lines().zip(proj.lines()) {
            if !line.contains(",\"wall\":") {
                assert_eq!(line, pline);
            }
        }
    }

    #[test]
    fn two_identical_streams_project_identically() {
        let run = || {
            let t = Telemetry::to_buffer();
            let mut s = t.span("round", &[("round", 9u64.into())]);
            s.field("clients", 17u64.into());
            t.count("sealed_bytes", "ct", 4096);
            t.event("recovery_attempt", &[("site", "in@3.1".into()), ("attempt", 2u64.into())]);
            s.end();
            t.flush_stats();
            deterministic_projection(&t.buffer_contents().unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn strings_are_json_escaped() {
        let t = Telemetry::to_buffer();
        t.bench("b", &[("label", "a\"b\\c\nd".into())], &[]);
        let out = t.buffer_contents().unwrap();
        assert!(out.contains("\"label\":\"a\\\"b\\\\c\\u000ad\""));
    }

    #[test]
    fn leaked_child_spans_do_not_corrupt_the_stack() {
        let t = Telemetry::to_buffer();
        let outer = t.span("round", &[]);
        let _leaked = t.span("chunk", &[]); // dropped *after* outer below
        drop(outer); // truncates the stack through its own id
        let tail = t.span("finalize", &[]);
        drop(tail);
        let out = t.buffer_contents().unwrap();
        // The post-unwind span sees no stale parent.
        assert!(out.lines().any(|l| l.contains("\"name\":\"finalize\",\"id\":3,\"parent\":0")));
    }

    #[test]
    fn file_sink_appends_lines() {
        let path =
            std::env::temp_dir().join(format!("olive-telemetry-test-{}", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        {
            let t = Telemetry::to_file(&path).unwrap();
            t.bench("a", &[("n", 1u64.into())], &[]);
        }
        {
            let t = Telemetry::to_file(&path).unwrap();
            t.bench("b", &[("n", 2u64.into())], &[]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "append mode must keep earlier records");
        let _ = std::fs::remove_file(&path);
    }
}
