//! ℓ2 clipping and the Gaussian mechanism.

use rand::Rng;

/// Euclidean norm of a vector.
pub fn l2_norm(v: &[f32]) -> f32 {
    (v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()).sqrt() as f32
}

/// ℓ2-clips `v` in place to norm at most `c`
/// (Algorithm 6 line 22: `Δ · min(1, C/‖Δ‖₂)`).
pub fn clip_l2(v: &mut [f32], c: f32) {
    assert!(c > 0.0, "clipping bound must be positive");
    let norm = l2_norm(v);
    if norm > c {
        let scale = c / norm;
        for x in v.iter_mut() {
            *x *= scale;
        }
    }
}

/// Standard normal via Box–Muller.
fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a `d`-dimensional N(0, std² I) noise vector.
pub fn gaussian_noise_vec<R: Rng>(d: usize, std: f64, rng: &mut R) -> Vec<f32> {
    (0..d).map(|_| (std_normal(rng) * std) as f32).collect()
}

/// The Gaussian mechanism with noise multiplier σ and sensitivity bound C:
/// adds `N(0, σ²C²I_d)` (Algorithm 6 line 12).
#[derive(Clone, Copy, Debug)]
pub struct GaussianMechanism {
    /// Noise multiplier σ (noise std divided by sensitivity).
    pub sigma: f64,
    /// ℓ2 sensitivity / clipping bound C.
    pub clip: f32,
}

impl GaussianMechanism {
    /// Creates the mechanism.
    pub fn new(sigma: f64, clip: f32) -> Self {
        assert!(sigma >= 0.0 && clip > 0.0);
        GaussianMechanism { sigma, clip }
    }

    /// Perturbs `aggregate` in place.
    pub fn perturb<R: Rng>(&self, aggregate: &mut [f32], rng: &mut R) {
        if self.sigma == 0.0 {
            return;
        }
        let std = self.sigma * self.clip as f64;
        for x in aggregate.iter_mut() {
            *x += (std_normal(rng) * std) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn norm_and_clip() {
        let mut v = vec![3.0f32, 4.0];
        assert!((l2_norm(&v) - 5.0).abs() < 1e-6);
        clip_l2(&mut v, 1.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-5);
        assert!((v[0] / v[1] - 0.75).abs() < 1e-5, "direction preserved");
    }

    #[test]
    fn clip_noop_when_within_bound() {
        let mut v = vec![0.3f32, 0.4];
        clip_l2(&mut v, 1.0);
        assert_eq!(v, vec![0.3, 0.4]);
    }

    #[test]
    fn noise_moments() {
        let mut rng = SmallRng::seed_from_u64(0);
        let noise = gaussian_noise_vec(50_000, 2.0, &mut rng);
        let mean: f64 = noise.iter().map(|&x| x as f64).sum::<f64>() / noise.len() as f64;
        let var: f64 =
            noise.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / noise.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn mechanism_noise_scales_with_clip() {
        let mech = GaussianMechanism::new(1.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v = vec![0.0f32; 50_000];
        mech.perturb(&mut v, &mut rng);
        let var: f64 = v.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((var - 4.0).abs() < 0.2, "σC = 2 → var 4, got {var}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mech = GaussianMechanism::new(0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v = vec![1.0f32, 2.0];
        mech.perturb(&mut v, &mut rng);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clip_rejected() {
        clip_l2(&mut [1.0], 0.0);
    }
}
