//! Rényi-DP accounting (paper Appendix D, Lemmas D.4–D.7, Theorem D.8).

/// ln C(n, k) computed stably as a sum of logs (k ≤ n, both small here).
fn ln_binomial(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((k - i) as f64).ln();
    }
    acc
}

/// log-sum-exp of a slice.
fn log_sum_exp(terms: &[f64]) -> f64 {
    let m = terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return m;
    }
    m + terms.iter().map(|t| (t - m).exp()).sum::<f64>().ln()
}

/// RDP of the (non-subsampled) Gaussian mechanism at order α:
/// `ρ(α) = α / (2σ²)` (Lemma D.6).
pub fn rdp_gaussian(alpha: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0 && alpha > 1.0);
    alpha / (2.0 * sigma * sigma)
}

/// Tight RDP of the sampled Gaussian mechanism at integer order α with
/// sampling rate q (Mironov–Talwar–Zhu; this is what DP-SGD accountants
/// such as Opacus/TF-Privacy compute, and what Lemma D.7 upper-bounds):
///
/// A_α = Σ_{j=0..α} C(α,j) (1−q)^{α−j} q^j e^{j(j−1)/(2σ²)},
/// ρ(α) = log(A_α) / (α−1).
pub fn rdp_subsampled_gaussian(alpha: u64, q: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "the formula requires integer α ≥ 2");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(sigma > 0.0);
    if q == 0.0 {
        return 0.0;
    }
    if q >= 1.0 {
        return rdp_gaussian(alpha as f64, sigma);
    }
    let inv_s2 = 1.0 / (sigma * sigma);
    let ln_q = q.ln();
    let ln_1mq = (1.0 - q).ln();
    let mut terms = Vec::with_capacity(alpha as usize + 1);
    for j in 0..=alpha {
        let jf = j as f64;
        terms.push(
            ln_binomial(alpha, j)
                + jf * ln_q
                + (alpha - j) as f64 * ln_1mq
                + jf * (jf - 1.0) * inv_s2 / 2.0,
        );
    }
    log_sum_exp(&terms) / (alpha as f64 - 1.0)
}

/// The paper's Lemma D.7 transcription (Wang et al. upper bound):
///
/// ρ'(α) ≤ 1/(α−1) · log( 1
///     + 2 q² C(α,2) · min{ 2(e^{1/σ²} − 1), e^{1/σ²} }
///     + Σ_{j=3..α} 2 q^j C(α,j) e^{j(j−1)/(2σ²)} ).
///
/// Kept for fidelity/comparison; it is looser than
/// [`rdp_subsampled_gaussian`] (the residual `2 qʲ C(α,j)` terms do not
/// vanish as σ → ∞), so the accountant itself uses the tight formula.
pub fn rdp_subsampled_gaussian_lemma_d7(alpha: u64, q: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "the bound requires integer α ≥ 2");
    assert!((0.0..1.0).contains(&q), "q must be in [0,1)");
    assert!(sigma > 0.0);
    if q == 0.0 {
        return 0.0;
    }
    let inv_s2 = 1.0 / (sigma * sigma);
    let ln_q = q.ln();
    let ln2 = std::f64::consts::LN_2;
    let mut terms = Vec::with_capacity(alpha as usize);
    terms.push(0.0); // the "1 +"
    let j2_factor = (2.0 * inv_s2.exp_m1()).min(inv_s2.exp()).ln();
    terms.push(ln2 + 2.0 * ln_q + ln_binomial(alpha, 2) + j2_factor);
    for j in 3..=alpha {
        let jf = j as f64;
        terms.push(ln2 + jf * ln_q + ln_binomial(alpha, j) + jf * (jf - 1.0) * inv_s2 / 2.0);
    }
    log_sum_exp(&terms) / (alpha as f64 - 1.0)
}

/// Default order grid: dense small orders where the optimum usually lies,
/// sparse large orders for very small ε.
fn default_orders() -> Vec<u64> {
    let mut v: Vec<u64> = (2..=64).collect();
    v.extend([80, 96, 128, 192, 256, 512]);
    v
}

/// Accumulates RDP over rounds and converts to (ε, δ) (Lemmas D.4–D.5).
#[derive(Clone, Debug)]
pub struct RdpAccountant {
    orders: Vec<u64>,
    rdp: Vec<f64>,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// Accountant with the default order grid.
    pub fn new() -> Self {
        let orders = default_orders();
        let rdp = vec![0.0; orders.len()];
        RdpAccountant { orders, rdp }
    }

    /// Composes `rounds` steps of the subsampled Gaussian mechanism with
    /// sampling rate `q` and noise multiplier `sigma` (Lemma D.4: RDP adds).
    pub fn add_subsampled_gaussian(&mut self, q: f64, sigma: f64, rounds: u64) {
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.rdp[i] += rounds as f64 * rdp_subsampled_gaussian(alpha, q, sigma);
        }
    }

    /// Best (smallest) ε at the given δ over all tracked orders
    /// (Lemma D.5: ε = ρ + log(1/δ)/(α−1)).
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!((0.0..1.0).contains(&delta) && delta > 0.0);
        let log_inv_delta = (1.0 / delta).ln();
        self.orders
            .iter()
            .zip(self.rdp.iter())
            .map(|(&alpha, &rho)| rho + log_inv_delta / (alpha as f64 - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

/// One-shot: ε after `rounds` subsampled-Gaussian rounds.
pub fn epsilon_for(q: f64, sigma: f64, rounds: u64, delta: f64) -> f64 {
    let mut acc = RdpAccountant::new();
    acc.add_subsampled_gaussian(q, sigma, rounds);
    acc.epsilon(delta)
}

/// Theorem D.8's closed-form sufficient noise multiplier:
/// `σ² ≥ 7 q² T (ε + 2 log(1/δ)) / ε²` for ε < 2 log(1/δ).
pub fn sigma_theorem_d8(epsilon: f64, delta: f64, q: f64, rounds: u64) -> f64 {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
    assert!(epsilon < 2.0 * (1.0 / delta).ln(), "Theorem D.8 requires ε < 2 log(1/δ)");
    let sigma2 =
        7.0 * q * q * rounds as f64 * (epsilon + 2.0 * (1.0 / delta).ln()) / (epsilon * epsilon);
    sigma2.sqrt()
}

/// Calibrates the smallest σ (to 3 decimal places) achieving `(ε, δ)` after
/// `rounds` rounds with sampling rate `q`, by bisection on the accountant.
pub fn calibrate_sigma(epsilon: f64, delta: f64, q: f64, rounds: u64) -> f64 {
    assert!(epsilon > 0.0);
    let mut lo = 1e-2;
    let mut hi = 1.0;
    // Grow hi until it satisfies the target.
    while epsilon_for(q, hi, rounds, delta) > epsilon {
        hi *= 2.0;
        assert!(hi < 1e6, "calibration diverged");
    }
    while hi - lo > 1e-3 {
        let mid = 0.5 * (lo + hi);
        if epsilon_for(q, mid, rounds, delta) > epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 0)).abs() < 1e-12);
        assert!((ln_binomial(10, 10)).abs() < 1e-12);
        assert!((ln_binomial(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn subsampling_amplifies() {
        // Subsampled RDP must be far below the unsubsampled Gaussian RDP.
        let full = rdp_gaussian(8.0, 1.0);
        let sub = rdp_subsampled_gaussian(8, 0.01, 1.0);
        assert!(sub < full / 10.0, "sub {sub} vs full {full}");
    }

    #[test]
    fn q_one_recovers_gaussian() {
        assert_eq!(rdp_subsampled_gaussian(8, 1.0, 2.0), rdp_gaussian(8.0, 2.0));
    }

    #[test]
    fn q_zero_is_free() {
        assert_eq!(rdp_subsampled_gaussian(8, 0.0, 1.0), 0.0);
    }

    #[test]
    fn lemma_d7_upper_bounds_tight_formula() {
        for &alpha in &[2u64, 4, 8, 16] {
            for &sigma in &[0.9f64, 1.12, 2.0, 4.0] {
                let tight = rdp_subsampled_gaussian(alpha, 0.1, sigma);
                let loose = rdp_subsampled_gaussian_lemma_d7(alpha, 0.1, sigma);
                assert!(
                    loose >= tight - 1e-12,
                    "α={alpha} σ={sigma}: Lemma D.7 {loose} < tight {tight}"
                );
            }
        }
    }

    #[test]
    fn rdp_vanishes_as_sigma_grows() {
        let small = rdp_subsampled_gaussian(16, 0.1, 100.0);
        assert!(small < 1e-3, "ρ should vanish with huge σ, got {small}");
    }

    #[test]
    fn epsilon_monotone_in_rounds_q_and_sigma() {
        let base = epsilon_for(0.1, 1.5, 10, 1e-5);
        assert!(epsilon_for(0.1, 1.5, 100, 1e-5) > base, "more rounds, more ε");
        assert!(epsilon_for(0.2, 1.5, 10, 1e-5) > base, "more sampling, more ε");
        assert!(epsilon_for(0.1, 3.0, 10, 1e-5) < base, "more noise, less ε");
    }

    #[test]
    fn paper_setting_epsilon_is_practical() {
        // The paper's attack-under-DP experiments use σ = 1.12 with
        // (N, q, T) = (1000, 0.1, 3): the accountant should report a
        // reasonable single-digit ε at δ = 1e-5 — i.e. a *realistic*
        // deployment, which is exactly the regime where the attack still
        // succeeds (Figure 12/13).
        let eps = epsilon_for(0.1, 1.12, 3, 1e-5);
        assert!(eps > 0.05 && eps < 10.0, "ε = {eps}");
    }

    #[test]
    fn theorem_d8_is_sufficient() {
        // The closed form must over-provision relative to the tight
        // accountant: ε(σ_D8) ≤ ε_target.
        for (eps_target, q, t) in [(1.0, 0.1, 10u64), (2.0, 0.05, 100), (0.5, 0.01, 50)] {
            let sigma = sigma_theorem_d8(eps_target, 1e-5, q, t);
            let achieved = epsilon_for(q, sigma, t, 1e-5);
            assert!(
                achieved <= eps_target * 1.05,
                "σ_D8 = {sigma}: achieved ε {achieved} > target {eps_target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires ε < 2 log(1/δ)")]
    fn theorem_d8_validity_range() {
        sigma_theorem_d8(100.0, 1e-2, 0.1, 10);
    }

    #[test]
    fn calibration_achieves_target() {
        let sigma = calibrate_sigma(2.0, 1e-5, 0.1, 30);
        let eps = epsilon_for(0.1, sigma, 30, 1e-5);
        assert!(eps <= 2.0, "ε = {eps} at σ = {sigma}");
        // And not grossly over-noised: slightly smaller σ must violate.
        let eps_under = epsilon_for(0.1, sigma - 0.01, 30, 1e-5);
        assert!(eps_under > 2.0 * 0.95, "calibration should be near-tight, got {eps_under}");
    }

    #[test]
    fn composition_is_additive() {
        let mut acc = RdpAccountant::new();
        acc.add_subsampled_gaussian(0.1, 1.2, 5);
        acc.add_subsampled_gaussian(0.1, 1.2, 5);
        let eps_two_calls = acc.epsilon(1e-5);
        assert!((eps_two_calls - epsilon_for(0.1, 1.2, 10, 1e-5)).abs() < 1e-9);
    }

    #[test]
    fn epsilon_decreases_with_looser_delta() {
        let tight = epsilon_for(0.1, 1.5, 10, 1e-8);
        let loose = epsilon_for(0.1, 1.5, 10, 1e-3);
        assert!(loose < tight);
    }
}
