//! # olive-dp
//!
//! Differential privacy machinery for DP-FL in Olive (the paper's
//! Appendix D: client-level CDP-FL with top-k sparsification on a TEE).
//!
//! * [`mechanism`] — ℓ2 clipping and the Gaussian mechanism
//!   `N(0, σ²C²I_d)` applied to the aggregate **inside the enclave**
//!   (Algorithm 6 line 12);
//! * [`accountant`] — Rényi-DP accounting: the subsampled-Gaussian bound
//!   of Lemma D.7 (Wang et al.), RDP composition (Lemma D.4), conversion
//!   to (ε, δ)-DP (Lemma D.5), and noise calibration including the paper's
//!   closed-form Theorem D.8
//!   `σ² ≥ 7 q² T (ε + 2 log(1/δ)) / ε²`.
//!
//! A key point the paper makes (Appendix D.2): with *client-specific*
//! top-k sparsification the noise must still cover all `d` coordinates —
//! there is no O(k/d) noise reduction — because any coordinate of the
//! global model may be updated. The mechanism here therefore perturbs the
//! dense aggregate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod mechanism;

pub use accountant::{
    calibrate_sigma, epsilon_for, rdp_gaussian, rdp_subsampled_gaussian,
    rdp_subsampled_gaussian_lemma_d7, sigma_theorem_d8, RdpAccountant,
};
pub use mechanism::{clip_l2, gaussian_noise_vec, l2_norm, GaussianMechanism};
