//! Sparsified gradient representation and selection policies.
//!
//! Clients encode their local model delta as `(index, value)` pairs
//! (Section 2.1). Top-k keeps the k largest-magnitude coordinates — the
//! standard, *data-dependent* policy whose index set the paper's attack
//! exploits; random-k is the data-independent alternative (ref. 24) that
//! leaks nothing by construction; threshold keeps everything above a
//! magnitude cutoff (variable k, ref. 65).

use rand::Rng;

/// A sparsified gradient: `k` of `d` coordinates as parallel index/value
/// arrays, sorted by index.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseGradient {
    /// Dense dimension d.
    pub dense_dim: usize,
    /// Kept coordinate indices (strictly increasing).
    pub indices: Vec<u32>,
    /// Values aligned with `indices`.
    pub values: Vec<f32>,
}

/// Sparsification policy (the paper's `TopkSparse` plus the alternatives
/// discussed in Sections 2.1 and 3.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sparsifier {
    /// Keep the k largest-|value| coordinates (data-dependent, leaky).
    TopK(usize),
    /// Keep k uniformly random coordinates (data-independent: the index
    /// set is uncorrelated with training data, so index leakage is
    /// harmless — the paper's Section 3.3 "random-k involves no risk").
    RandomK(usize),
    /// Keep coordinates with |value| ≥ threshold.
    Threshold(f32),
}

impl SparseGradient {
    /// Number of transmitted coordinates k.
    pub fn k(&self) -> usize {
        self.indices.len()
    }

    /// Applies a sparsification policy to a dense vector.
    pub fn from_dense<R: Rng>(dense: &[f32], policy: Sparsifier, rng: &mut R) -> Self {
        let d = dense.len();
        let mut idxs: Vec<u32> = match policy {
            Sparsifier::TopK(k) => {
                let k = k.min(d);
                let mut order: Vec<u32> = (0..d as u32).collect();
                // Partial selection by |value| descending: O(d + k log k).
                order.select_nth_unstable_by(k.saturating_sub(1).min(d - 1), |&a, &b| {
                    dense[b as usize].abs().total_cmp(&dense[a as usize].abs())
                });
                order.truncate(k);
                order
            }
            Sparsifier::RandomK(k) => {
                let k = k.min(d);
                // Partial Fisher–Yates over the index range.
                let mut order: Vec<u32> = (0..d as u32).collect();
                for t in 0..k {
                    let j = rng.gen_range(t..d);
                    order.swap(t, j);
                }
                order.truncate(k);
                order
            }
            Sparsifier::Threshold(t) => {
                (0..d as u32).filter(|&i| dense[i as usize].abs() >= t).collect()
            }
        };
        idxs.sort_unstable();
        let values = idxs.iter().map(|&i| dense[i as usize]).collect();
        SparseGradient { dense_dim: d, indices: idxs, values }
    }

    /// Densifies back to `d` coordinates (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_dim];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
        out
    }

    /// ℓ2 norm of the kept values.
    pub fn l2_norm(&self) -> f32 {
        olive_dp::l2_norm(&self.values)
    }

    /// Scales all values in place (used for clipping).
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Clips the value vector to ℓ2 norm at most `c` (Algorithm 6 line 22;
    /// with sparsification only the k kept values contribute to the norm —
    /// the utility observation of Appendix D.2).
    pub fn clip_l2(&mut self, c: f32) {
        let norm = self.l2_norm();
        if norm > c {
            self.scale(c / norm);
        }
    }

    /// Serializes to the wire format the client encrypts:
    /// `d:u32 ‖ k:u32 ‖ (index:u32 ‖ value:f32-bits)×k`, little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.k() * 8);
        out.extend_from_slice(&(self.dense_dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.k() as u32).to_le_bytes());
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Parses the wire format. Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let d = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let k = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        if bytes.len() != 8 + k * 8 {
            return None;
        }
        let mut indices = Vec::with_capacity(k);
        let mut values = Vec::with_capacity(k);
        for c in 0..k {
            let off = 8 + c * 8;
            let i = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
            if i as usize >= d {
                return None;
            }
            indices.push(i);
            values
                .push(f32::from_bits(u32::from_le_bytes(bytes[off + 4..off + 8].try_into().ok()?)));
        }
        Some(SparseGradient { dense_dim: d, indices, values })
    }

    /// Packs each coordinate into one u64 cell `(index << 32) | value_bits`
    /// — the 8-byte gradient cell of Section 5.5's memory-size analysis,
    /// and the unit the oblivious sort operates on.
    pub fn to_cells(&self) -> Vec<u64> {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&i, &v)| ((i as u64) << 32) | v.to_bits() as u64)
            .collect()
    }
}

/// Unpacks a u64 cell into `(index, value)`.
#[inline]
pub fn cell_parts(cell: u64) -> (u32, f32) {
    ((cell >> 32) as u32, f32::from_bits(cell as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(9)
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let dense = vec![0.1f32, -5.0, 0.0, 3.0, -0.2, 4.0];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::TopK(3), &mut rng());
        assert_eq!(sg.indices, vec![1, 3, 5]);
        assert_eq!(sg.values, vec![-5.0, 3.0, 4.0]);
    }

    #[test]
    fn topk_k_larger_than_d() {
        let dense = vec![1.0f32, 2.0];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::TopK(10), &mut rng());
        assert_eq!(sg.k(), 2);
    }

    #[test]
    fn random_k_distinct_sorted_indices() {
        let dense = vec![1.0f32; 100];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::RandomK(10), &mut rng());
        assert_eq!(sg.k(), 10);
        for w in sg.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn random_k_is_data_independent() {
        // Identical RNG streams → identical index sets for different data.
        let a = SparseGradient::from_dense(&[1.0f32; 50], Sparsifier::RandomK(5), &mut rng());
        let data_b: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let b = SparseGradient::from_dense(&data_b, Sparsifier::RandomK(5), &mut rng());
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn threshold_policy() {
        let dense = vec![0.1f32, -2.0, 0.5, 3.0];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::Threshold(0.5), &mut rng());
        assert_eq!(sg.indices, vec![1, 2, 3]);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0f32, -1.5, 0.0, 2.5, 0.0];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::TopK(2), &mut rng());
        assert_eq!(sg.to_dense(), dense);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dense = vec![0.5f32, -1.5, 0.0, 2.5];
        let sg = SparseGradient::from_dense(&dense, Sparsifier::TopK(3), &mut rng());
        let bytes = sg.encode();
        assert_eq!(SparseGradient::decode(&bytes).unwrap(), sg);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(SparseGradient::decode(&[]).is_none());
        assert!(SparseGradient::decode(&[0; 7]).is_none());
        // k claims more cells than present.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]); // only one cell
        assert!(SparseGradient::decode(&bytes).is_none());
        // Index out of range.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_bits().to_le_bytes());
        assert!(SparseGradient::decode(&bytes).is_none());
    }

    #[test]
    fn clip_bounds_norm() {
        let mut sg = SparseGradient { dense_dim: 4, indices: vec![0, 1], values: vec![3.0, 4.0] };
        sg.clip_l2(1.0);
        assert!((sg.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cells_pack_unpack() {
        let sg = SparseGradient { dense_dim: 100, indices: vec![7, 42], values: vec![-0.25, 3.5] };
        let cells = sg.to_cells();
        assert_eq!(cell_parts(cells[0]), (7, -0.25));
        assert_eq!(cell_parts(cells[1]), (42, 3.5));
    }

    #[test]
    fn topk_index_set_correlates_with_data() {
        // The heart of the attack: two different "clients" (dense vectors
        // with energy in different coordinate blocks) produce disjoint
        // top-k index sets.
        let mut a = vec![0.01f32; 100];
        let mut b = vec![0.01f32; 100];
        for i in 0..10 {
            a[i] = 1.0 + i as f32;
            b[50 + i] = 1.0 + i as f32;
        }
        let sa = SparseGradient::from_dense(&a, Sparsifier::TopK(10), &mut rng());
        let sb = SparseGradient::from_dense(&b, Sparsifier::TopK(10), &mut rng());
        assert!(sa.indices.iter().all(|i| *i < 10));
        assert!(sb.indices.iter().all(|i| *i >= 50 && *i < 60));
    }
}
