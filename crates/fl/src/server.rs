//! Server-side FedAvg machinery: client sampling and the global update.

use olive_nn::Model;
use rand::Rng;

use crate::sparse::SparseGradient;

/// Samples each of `n_total` users independently with probability `q`
/// (Algorithm 6 line 5 — Poisson sampling, which is what the subsampled-RDP
/// analysis assumes). The sample may be *empty* — with probability
/// `(1−q)^N` nobody is picked — and callers must handle that round shape
/// rather than force a pick: substituting a uniform fallback participant
/// would break the sampling distribution the privacy analysis is
/// calibrated to (the fallback user's data would be disclosed with
/// probability 1 conditioned on an empty coin-flip round).
pub fn sample_clients<R: Rng>(n_total: usize, q: f64, rng: &mut R) -> Vec<u32> {
    (0..n_total as u32).filter(|_| rng.gen::<f64>() < q).collect()
}

/// The FedAvg server state: the global model and the server learning rate.
pub struct FedAvgServer {
    /// The global model θ_t.
    pub model: Model,
    /// Server learning rate η_s (Algorithm 1 line 14).
    pub server_lr: f32,
}

impl FedAvgServer {
    /// Wraps an initialized model.
    pub fn new(model: Model, server_lr: f32) -> Self {
        FedAvgServer { model, server_lr }
    }

    /// The current global parameter vector θ_t.
    pub fn params(&self) -> Vec<f32> {
        self.model.get_params()
    }

    /// Model dimension d.
    pub fn dim(&self) -> usize {
        self.model.param_count()
    }

    /// The *plain* (non-TEE, non-oblivious) reference aggregation: densely
    /// sums the sparse updates and averages by participant count. This is
    /// the paper's linear algorithm semantics (Algorithm 5 lines 2–9) and
    /// the ground truth the oblivious algorithms must reproduce.
    pub fn aggregate_plain(&self, updates: &[SparseGradient]) -> Vec<f32> {
        assert!(!updates.is_empty(), "no updates to aggregate");
        let d = self.dim();
        let mut sum = vec![0.0f32; d];
        for u in updates {
            assert_eq!(u.dense_dim, d, "update dimension mismatch");
            for (&i, &v) in u.indices.iter().zip(u.values.iter()) {
                sum[i as usize] += v;
            }
        }
        let inv = 1.0 / updates.len() as f32;
        for s in &mut sum {
            *s *= inv;
        }
        sum
    }

    /// Applies an aggregated delta: `θ ← θ + η_s Δ̃`.
    pub fn apply_aggregate(&mut self, aggregate: &[f32]) {
        let mut params = self.model.get_params();
        assert_eq!(aggregate.len(), params.len(), "aggregate dimension mismatch");
        for (p, a) in params.iter_mut().zip(aggregate.iter()) {
            *p += self.server_lr * a;
        }
        self.model.set_params(&params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Sparsifier;
    use olive_nn::zoo::mlp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_rate_statistics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let total: usize = (0..200).map(|_| sample_clients(1000, 0.1, &mut rng).len()).sum();
        let mean = total as f64 / 200.0;
        assert!((80.0..120.0).contains(&mean), "mean sample size {mean} vs expected 100");
    }

    #[test]
    fn sampling_is_honest_poisson_and_can_be_empty() {
        // At q = 0.01 over 5 users an empty round happens with probability
        // ~0.95 per draw; a forced fallback pick would make this loop never
        // observe one (and would skew the subsampling distribution the RDP
        // accountant assumes).
        let mut rng = SmallRng::seed_from_u64(1);
        let empties = (0..50).filter(|_| sample_clients(5, 0.01, &mut rng).is_empty()).count();
        assert!(empties > 25, "expected mostly-empty rounds at q=0.01, got {empties}/50 empty");
    }

    #[test]
    fn aggregate_plain_sums_and_averages() {
        let server = FedAvgServer::new(mlp(4, 2, 2, 0.0, 0), 1.0);
        let d = server.dim();
        let mk = |idx: Vec<u32>, val: Vec<f32>| SparseGradient {
            dense_dim: d,
            indices: idx,
            values: val,
        };
        let agg = server.aggregate_plain(&[mk(vec![0, 2], vec![1.0, 2.0]), mk(vec![2], vec![4.0])]);
        assert_eq!(agg[0], 0.5);
        assert_eq!(agg[2], 3.0);
        assert!(agg[1] == 0.0 && agg[3] == 0.0);
    }

    #[test]
    fn apply_aggregate_moves_params() {
        let mut server = FedAvgServer::new(mlp(4, 2, 2, 0.0, 0), 0.5);
        let before = server.params();
        let delta = vec![1.0f32; server.dim()];
        server.apply_aggregate(&delta);
        let after = server.params();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - b - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn fed_round_improves_model() {
        // One coarse FedAvg round on separable data should reduce loss.
        use crate::client::{local_update, ClientConfig};
        use olive_data::synthetic::{Generator, SyntheticConfig};
        let gen = Generator::new(SyntheticConfig::tiny(12, 3), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let test = gen.sample_balanced(30, &mut rng);

        let mut server = FedAvgServer::new(mlp(12, 8, 3, 0.0, 1), 1.0);
        let cfg = ClientConfig {
            epochs: 2,
            batch_size: 5,
            lr: 0.2,
            sparsifier: Sparsifier::TopK(40),
            clip: None,
        };
        let (loss_before, _) = server.model.evaluate(&test.features, &test.labels, 16);
        let mut scratch = mlp(12, 8, 3, 0.0, 1);
        for round in 0..5 {
            let params = server.params();
            let updates: Vec<SparseGradient> = (0..6)
                .map(|c| {
                    let data = gen.sample_class(c % 3, 15, &mut rng);
                    local_update(&mut scratch, &params, &data, &cfg, round * 10 + c as u64)
                })
                .collect();
            let agg = server.aggregate_plain(&updates);
            server.apply_aggregate(&agg);
        }
        let (loss_after, acc) = server.model.evaluate(&test.features, &test.labels, 16);
        assert!(loss_after < loss_before, "loss {loss_before} -> {loss_after}");
        assert!(acc > 0.5, "accuracy {acc}");
    }
}
