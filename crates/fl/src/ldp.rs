//! LDP-FL baseline: client-side perturbation before sharing.
//!
//! Table 2 of the paper contrasts trust models: LDP-FL needs no trusted
//! server but each client must randomize its own update, paying noise that
//! scales with the model dimension instead of shrinking with the number of
//! participants. This module implements the client-side Gaussian
//! perturbation so the Table 2 utility comparison (and the paper's
//! `eval-ldp-sgd` sanity script) can be reproduced.

use olive_dp::mechanism::{clip_l2, gaussian_noise_vec};
use rand::Rng;

use crate::sparse::SparseGradient;

/// Client-side LDP randomizer: clip the dense delta to `clip`, then add
/// `N(0, σ²·clip²)` to *every* coordinate (the client cannot rely on
/// aggregation to dilute noise — that is exactly the LDP utility penalty).
pub fn ldp_perturb_dense<R: Rng>(delta: &mut [f32], clip: f32, sigma: f64, rng: &mut R) {
    clip_l2(delta, clip);
    let noise = gaussian_noise_vec(delta.len(), sigma * clip as f64, rng);
    for (d, n) in delta.iter_mut().zip(noise.iter()) {
        *d += n;
    }
}

/// LDP over a sparsified update: noise only the k transmitted values (the
/// FedSel-style variant, ref. 45; the index choice itself is assumed
/// privatized by the selection mechanism, which we model as random-k).
pub fn ldp_perturb_sparse<R: Rng>(sg: &mut SparseGradient, clip: f32, sigma: f64, rng: &mut R) {
    sg.clip_l2(clip);
    let noise = gaussian_noise_vec(sg.values.len(), sigma * clip as f64, rng);
    for (v, n) in sg.values.iter_mut().zip(noise.iter()) {
        *v += n;
    }
}

/// Effective noise standard deviation in the *averaged global update* for
/// each scheme, used by the Table 2 comparison:
/// with n participants and per-coordinate client noise std s —
/// CDP (server/TEE noise): `s / n`; LDP: `s / sqrt(n)`.
pub fn effective_update_noise(scheme_is_cdp: bool, client_std: f64, n: usize) -> f64 {
    if scheme_is_cdp {
        client_std / n as f64
    } else {
        client_std / (n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dense_perturbation_noises_every_coordinate() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut delta = vec![0.0f32; 1000];
        ldp_perturb_dense(&mut delta, 1.0, 1.0, &mut rng);
        let nonzero = delta.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero > 990, "all coordinates must carry noise, got {nonzero}");
    }

    #[test]
    fn sparse_perturbation_preserves_index_set() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sg = SparseGradient {
            dense_dim: 100,
            indices: vec![3, 50, 99],
            values: vec![0.5, -0.5, 0.25],
        };
        let before = sg.indices.clone();
        ldp_perturb_sparse(&mut sg, 1.0, 0.5, &mut rng);
        assert_eq!(sg.indices, before);
    }

    #[test]
    fn ldp_noise_dominates_cdp_noise() {
        // The Table 2 gap: at n = 100 participants, LDP's effective noise
        // is 10× CDP's for the same client-side std.
        let cdp = effective_update_noise(true, 1.0, 100);
        let ldp = effective_update_noise(false, 1.0, 100);
        assert!((ldp / cdp - 10.0).abs() < 1e-9);
    }
}
