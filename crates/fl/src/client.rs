//! Client-side local training (the paper's `EncClient`, Algorithm 1
//! lines 15–23 / Algorithm 6 lines 15–24).

use olive_data::Dataset;
use olive_nn::Model;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{SparseGradient, Sparsifier};

/// Local-training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Local epochs per round.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Client learning rate η_c.
    pub lr: f32,
    /// Sparsification policy applied to the delta.
    pub sparsifier: Sparsifier,
    /// Optional ℓ2 clipping bound C (DP mode, Algorithm 6 line 22).
    pub clip: Option<f32>,
}

impl ClientConfig {
    /// A small default: 2 epochs, batch 10, lr 0.1, top-k by ratio α on d.
    pub fn with_top_ratio(d: usize, alpha: f64) -> Self {
        let k = ((d as f64 * alpha).round() as usize).max(1);
        ClientConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.1,
            sparsifier: Sparsifier::TopK(k),
            clip: None,
        }
    }
}

/// Runs local training from `global_params` on `data` and returns the
/// sparsified weight delta `Δ = TopkSparse(θ_local − θ_global)`.
///
/// `model` is a scratch model of the right architecture; its parameters
/// are overwritten. Deterministic in `seed` (batch order + dropout stream
/// are the only randomness).
pub fn local_update(
    model: &mut Model,
    global_params: &[f32],
    data: &Dataset,
    cfg: &ClientConfig,
    seed: u64,
) -> SparseGradient {
    assert!(!data.is_empty(), "client has no local data");
    model.set_params(global_params);
    model.zero_grads();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC11E_27A1);
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.epochs {
        // Fresh shuffle per epoch (Fisher–Yates).
        for t in (1..n).rev() {
            let j = rng.gen_range(0..=t);
            order.swap(t, j);
        }
        let mut s = 0;
        while s < n {
            let e = (s + cfg.batch_size).min(n);
            let mut xs = Vec::with_capacity((e - s) * data.feature_dim);
            let mut ys = Vec::with_capacity(e - s);
            for &i in &order[s..e] {
                xs.extend_from_slice(data.row(i));
                ys.push(data.labels[i]);
            }
            model.train_batch(&xs, &ys);
            model.sgd_step(cfg.lr);
            s = e;
        }
    }
    let local = model.get_params();
    let delta: Vec<f32> = local.iter().zip(global_params.iter()).map(|(l, g)| l - g).collect();
    let mut sparse = SparseGradient::from_dense(&delta, cfg.sparsifier, &mut rng);
    if let Some(c) = cfg.clip {
        sparse.clip_l2(c);
    }
    sparse
}

/// Computes the top-k index set a *hypothetical* client holding exactly the
/// samples `data` would transmit, without updating any global state — the
/// attacker's teacher-index computation (Algorithm 2 lines 9–12 computes
/// gradients of the global model on labelled test data `X_l`).
pub fn teacher_indices(
    model: &mut Model,
    global_params: &[f32],
    data: &Dataset,
    cfg: &ClientConfig,
    seed: u64,
) -> Vec<u32> {
    local_update(model, global_params, data, cfg, seed).indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_data::synthetic::{Generator, SyntheticConfig};
    use olive_nn::zoo::mlp;

    fn setup() -> (Model, Vec<f32>, Generator) {
        let model = mlp(16, 8, 4, 0.0, 3);
        let params = model.get_params();
        let gen = Generator::new(SyntheticConfig::tiny(16, 4), 5);
        (model, params, gen)
    }

    #[test]
    fn delta_is_sparse_and_sorted() {
        let (mut model, params, gen) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let data = gen.sample_class(1, 20, &mut rng);
        let cfg = ClientConfig {
            epochs: 1,
            batch_size: 5,
            lr: 0.1,
            sparsifier: Sparsifier::TopK(10),
            clip: None,
        };
        let sg = local_update(&mut model, &params, &data, &cfg, 7);
        assert_eq!(sg.k(), 10);
        assert_eq!(sg.dense_dim, params.len());
        for w in sg.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(sg.values.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let (mut model, params, gen) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let data = gen.sample_class(2, 12, &mut rng);
        let cfg = ClientConfig::with_top_ratio(params.len(), 0.05);
        let a = local_update(&mut model, &params, &data, &cfg, 1);
        let b = local_update(&mut model, &params, &data, &cfg, 1);
        assert_eq!(a, b);
        let c = local_update(&mut model, &params, &data, &cfg, 2);
        assert!(a.indices != c.indices || a.values != c.values);
    }

    #[test]
    fn clip_respected() {
        let (mut model, params, gen) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let data = gen.sample_class(0, 20, &mut rng);
        let cfg = ClientConfig {
            epochs: 3,
            batch_size: 4,
            lr: 0.5,
            sparsifier: Sparsifier::TopK(20),
            clip: Some(0.1),
        };
        let sg = local_update(&mut model, &params, &data, &cfg, 3);
        assert!(sg.l2_norm() <= 0.1 + 1e-5);
    }

    #[test]
    fn different_labels_different_indices() {
        // The correlation the attack rides on: clients holding different
        // labels produce different top-k index sets.
        let (mut model, params, gen) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = ClientConfig {
            epochs: 2,
            batch_size: 5,
            lr: 0.2,
            sparsifier: Sparsifier::TopK(8),
            clip: None,
        };
        let d0 = gen.sample_class(0, 20, &mut rng);
        let d1 = gen.sample_class(1, 20, &mut rng);
        let i0 = local_update(&mut model, &params, &d0, &cfg, 1).indices;
        let i1 = local_update(&mut model, &params, &d1, &cfg, 1).indices;
        let overlap = i0.iter().filter(|i| i1.contains(i)).count();
        assert!(overlap < i0.len(), "index sets should differ across labels");
    }

    #[test]
    fn with_top_ratio_computes_k() {
        let cfg = ClientConfig::with_top_ratio(1000, 0.01);
        assert_eq!(cfg.sparsifier, Sparsifier::TopK(10));
        let tiny = ClientConfig::with_top_ratio(10, 0.001);
        assert_eq!(tiny.sparsifier, Sparsifier::TopK(1), "k is floored at 1");
    }

    #[test]
    #[should_panic(expected = "no local data")]
    fn empty_dataset_panics() {
        let (mut model, params, _gen) = setup();
        let empty = Dataset { features: vec![], labels: vec![], feature_dim: 16, num_classes: 4 };
        let cfg = ClientConfig::with_top_ratio(params.len(), 0.1);
        local_update(&mut model, &params, &empty, &cfg, 0);
    }
}
