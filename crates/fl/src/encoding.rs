//! Alternative sparse-index encodings (paper Section 3.3, "Generality
//! and Limitation").
//!
//! The paper notes that the index-leak is independent of the wire
//! encoding: some secure-aggregation schemes (refs. 24, 46) transmit the
//! index set as a d-bit **bitmap** plus the k values, rather than
//! `(index, value)` pairs — "but the same problem occurred during
//! aggregation", because the server must decode back to positions before
//! summing into the dense model. This module implements that encoding so
//! the claim is testable: decode(bitmap) yields exactly the same cells,
//! hence exactly the same access pattern, as the pair encoding.
//!
//! Quantization is likewise orthogonal (it changes values, never
//! indices); [`quantize_stochastic`] implements the standard 8-bit
//! stochastic quantizer to document that.

use rand::Rng;

use crate::sparse::SparseGradient;

/// A bitmap-encoded sparse gradient: `⌈d/8⌉` index-presence bytes followed
/// by the k values in index order.
#[derive(Clone, Debug, PartialEq)]
pub struct BitmapEncoded {
    /// Dense dimension d.
    pub dense_dim: usize,
    /// d-bit presence map (bit i set ⇔ coordinate i transmitted).
    pub bitmap: Vec<u8>,
    /// The k values, ascending index order.
    pub values: Vec<f32>,
}

impl BitmapEncoded {
    /// Encodes a sparse gradient as bitmap + values.
    pub fn encode(sg: &SparseGradient) -> Self {
        let mut bitmap = vec![0u8; sg.dense_dim.div_ceil(8)];
        for &i in &sg.indices {
            bitmap[i as usize / 8] |= 1 << (i % 8);
        }
        BitmapEncoded { dense_dim: sg.dense_dim, bitmap, values: sg.values.clone() }
    }

    /// Decodes back to the `(index, value)` representation — this is what
    /// the server must do before aggregation, and where the positions
    /// re-materialize regardless of the wire format.
    pub fn decode(&self) -> Option<SparseGradient> {
        let mut indices = Vec::with_capacity(self.values.len());
        for i in 0..self.dense_dim {
            if self.bitmap[i / 8] >> (i % 8) & 1 == 1 {
                indices.push(i as u32);
            }
        }
        if indices.len() != self.values.len() {
            return None; // bitmap popcount must equal the value count
        }
        Some(SparseGradient { dense_dim: self.dense_dim, indices, values: self.values.clone() })
    }

    /// Wire size in bytes — the communication saving that motivates this
    /// encoding when k > d/64 or so.
    pub fn wire_bytes(&self) -> usize {
        self.bitmap.len() + 4 * self.values.len()
    }
}

/// 8-bit stochastic quantization of the values (indices untouched):
/// each value moves to one of the two nearest grid points with
/// probability proportional to proximity, making the quantizer unbiased.
pub fn quantize_stochastic<R: Rng>(sg: &mut SparseGradient, rng: &mut R) {
    let max = sg.values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max == 0.0 {
        return;
    }
    let levels = 127.0f32;
    for v in &mut sg.values {
        let scaled = *v / max * levels;
        let floor = scaled.floor();
        let frac = scaled - floor;
        let q = floor + f32::from(rng.gen::<f32>() < frac);
        *v = q / levels * max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample() -> SparseGradient {
        SparseGradient {
            dense_dim: 20,
            indices: vec![0, 7, 8, 19],
            values: vec![0.5, -1.0, 2.0, -0.25],
        }
    }

    #[test]
    fn bitmap_roundtrip() {
        let sg = sample();
        let enc = BitmapEncoded::encode(&sg);
        assert_eq!(enc.decode().unwrap(), sg);
    }

    #[test]
    fn bitmap_rejects_count_mismatch() {
        let mut enc = BitmapEncoded::encode(&sample());
        enc.values.pop();
        assert!(enc.decode().is_none());
    }

    #[test]
    fn bitmap_exposes_identical_index_set() {
        // The Section 3.3 claim in miniature: the decoded cells are
        // byte-identical to the pair encoding's, so aggregation touches
        // exactly the same G* addresses whatever the wire format.
        let sg = sample();
        let via_bitmap = BitmapEncoded::encode(&sg).decode().unwrap();
        assert_eq!(via_bitmap.indices, sg.indices);
        assert_eq!(via_bitmap.to_dense(), sg.to_dense());
    }

    #[test]
    fn wire_size_tradeoff() {
        // Bitmap wins when k is large relative to d/ (32+32 bits per pair).
        let dense: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let heavy =
            SparseGradient::from_dense(&dense, crate::sparse::Sparsifier::TopK(128), &mut rng);
        let enc = BitmapEncoded::encode(&heavy);
        assert!(enc.wire_bytes() < heavy.encode().len());
    }

    #[test]
    fn quantization_changes_values_not_indices() {
        let mut sg = sample();
        let idx_before = sg.indices.clone();
        let mut rng = SmallRng::seed_from_u64(1);
        quantize_stochastic(&mut sg, &mut rng);
        assert_eq!(sg.indices, idx_before);
        // Values land on the 1/127 grid of the max magnitude.
        let max = 2.0f32;
        for v in &sg.values {
            let grid = v / max * 127.0;
            assert!((grid - grid.round()).abs() < 1e-4, "{v} off-grid");
        }
    }

    #[test]
    fn quantization_is_unbiased_in_expectation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let true_val = 0.337f32;
        let mut sum = 0.0f64;
        let n = 4000;
        for _ in 0..n {
            let mut sg =
                SparseGradient { dense_dim: 2, indices: vec![0, 1], values: vec![true_val, 1.0] };
            quantize_stochastic(&mut sg, &mut rng);
            sum += sg.values[0] as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - true_val as f64).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_gradient_quantizes_to_zero() {
        let mut sg = SparseGradient { dense_dim: 4, indices: vec![1], values: vec![0.0] };
        let mut rng = SmallRng::seed_from_u64(3);
        quantize_stochastic(&mut sg, &mut rng);
        assert_eq!(sg.values, vec![0.0]);
    }
}
