//! # olive-fl
//!
//! The federated-learning stack: everything that happens *outside* the
//! enclave in the paper's Algorithm 1 / Algorithm 6.
//!
//! * [`sparse`] — sparsified gradient encoding: the `(index, value)` pair
//!   representation every client transmits (Section 2.1), with top-k,
//!   random-k and threshold selection policies;
//! * [`client`] — local training (`EncClient`): set global weights, run
//!   local SGD epochs, compute the weight delta, sparsify, optionally
//!   ℓ2-clip for DP;
//! * [`server`] — client sampling and the FedAvg global update
//!   `θ_{t+1} = θ_t + η_s Δ̃_t`, plus a *plain* (non-TEE, non-oblivious)
//!   reference aggregator;
//! * [`ldp`] — an LDP-FL baseline (client-side Gaussian noise) used by the
//!   Table 2 trust/utility comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod encoding;
pub mod ldp;
pub mod server;
pub mod sparse;

pub use client::{local_update, ClientConfig};
pub use server::{sample_clients, FedAvgServer};
pub use sparse::{SparseGradient, Sparsifier};
