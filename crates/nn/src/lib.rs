//! # olive-nn
//!
//! A minimal, dependency-free neural-network library: exactly the pieces the
//! Olive reproduction needs and nothing more.
//!
//! Three consumers:
//! 1. **FL clients** train the global models of the paper's Table 1 / Table 3
//!    (MLPs and a LeNet-style CNN) locally with SGD (Algorithm 1's
//!    `EncClient`);
//! 2. **the attacker** (Algorithm 2) trains multilayer perceptrons on
//!    multi-hot index vectors (Table 4's `NN` / `NN-single` models);
//! 3. **evaluation** computes test accuracy/loss for the utility figures
//!    (Figures 15–16).
//!
//! Design choices: plain `Vec<f32>` storage, explicit batched
//! forward/backward per layer, enum dispatch (no trait objects), flat
//! parameter/gradient views for FL (get/set the whole model as one vector —
//! the unit the paper sparsifies). Correctness is pinned by
//! finite-difference gradient checks in the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod zoo;

pub use layers::{Conv2d, Dense, Dropout, Layer, MaxPool2d, Relu};
pub use loss::softmax_cross_entropy;
pub use model::Model;
pub use optim::Sgd;
pub use zoo::{
    attacker_nn, attacker_nn_single, cifar100_cnn, cifar10_cnn, cifar10_mlp, mnist_mlp,
    purchase100_mlp, ModelSpec,
};
