//! Weight initialization.

use rand::Rng;

/// Uniform Glorot/Xavier initialization for a weight tensor with the given
/// fan-in and fan-out: U(−a, a) with a = sqrt(6 / (fan_in + fan_out)).
pub fn xavier_uniform<R: Rng>(fan_in: usize, fan_out: usize, len: usize, rng: &mut R) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    (0..len).map(|_| rng.gen_range(-a..a)).collect()
}

/// He (Kaiming) uniform initialization for ReLU fan-in.
pub fn he_uniform<R: Rng>(fan_in: usize, len: usize, rng: &mut R) -> Vec<f32> {
    let a = (6.0 / fan_in as f64).sqrt() as f32;
    (0..len).map(|_| rng.gen_range(-a..a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bounds_respected() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let a = (6.0f64 / 300.0).sqrt() as f32;
        let w = xavier_uniform(100, 200, 10_000, &mut rng);
        assert!(w.iter().all(|&x| x > -a && x < a));
        // Spread sanity: roughly symmetric around zero.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < a / 10.0);
    }

    #[test]
    fn he_bounds() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let a = (6.0f64 / 50.0).sqrt() as f32;
        let w = he_uniform(50, 1000, &mut rng);
        assert!(w.iter().all(|&x| x > -a && x < a));
    }
}
