//! Softmax cross-entropy loss.

/// Computes mean softmax cross-entropy loss over a batch and the gradient
/// with respect to the logits.
///
/// `logits` is `(n, num_classes)` row-major; `labels[i] < num_classes`.
/// Returns `(mean_loss, dL/dlogits)` with the gradient already divided by
/// the batch size.
pub fn softmax_cross_entropy(
    logits: &[f32],
    labels: &[usize],
    num_classes: usize,
) -> (f32, Vec<f32>) {
    let n = labels.len();
    assert_eq!(logits.len(), n * num_classes, "logits shape mismatch");
    let mut grad = vec![0.0f32; logits.len()];
    let mut loss = 0.0f64;
    for s in 0..n {
        let row = &logits[s * num_classes..(s + 1) * num_classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let label = labels[s];
        assert!(label < num_classes, "label {label} out of range");
        let p_label = exp[label] / sum;
        loss += -(p_label.max(1e-12) as f64).ln();
        let g = &mut grad[s * num_classes..(s + 1) * num_classes];
        for c in 0..num_classes {
            let p = exp[c] / sum;
            g[c] = (p - if c == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Softmax probabilities for one batch of logits (used by the attacker to
/// produce per-label scores).
pub fn softmax(logits: &[f32], num_classes: usize) -> Vec<f32> {
    assert_eq!(logits.len() % num_classes, 0);
    let mut out = vec![0.0f32; logits.len()];
    for (row, orow) in logits.chunks_exact(num_classes).zip(out.chunks_exact_mut(num_classes)) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &v) in orow.iter_mut().zip(row.iter()) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let (loss, _) = softmax_cross_entropy(&[0.0, 0.0, 0.0, 0.0], &[2], 4);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let (loss, _) = softmax_cross_entropy(&[100.0, 0.0], &[0], 2);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_sums_to_zero_per_sample() {
        let (_, g) = softmax_cross_entropy(&[1.0, 2.0, 3.0], &[1], 3);
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(g[1] < 0.0, "true-class gradient is negative");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![0.3f32, -0.7, 1.1, 0.2, 0.9, -1.2];
        let labels = vec![2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, 3);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels, 3);
            let mut lm = logits.clone();
            lm[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels, 3);
            let fd = (loss_p - loss_m) / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 1e-3, "logit {i}: fd {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 3);
        for row in p.chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
