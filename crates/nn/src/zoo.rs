//! The paper's model catalog (Tables 1, 3 and 4).
//!
//! Parameter counts reproduce the paper where the architecture is fully
//! specified: MNIST MLP = 50,890, CIFAR10 CNN = 62,006, Purchase100 MLP =
//! 44,964. The CIFAR100 model is a small CNN with ≈ 204k parameters
//! standing in for the paper's ResNet-18-derived 201,588 (a from-scratch
//! ResNet with batch-norm is out of scope and irrelevant to the attack
//! mechanics — see `DESIGN.md` §1).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::layers::{Conv2d, Dense, Dropout, Layer, MaxPool2d, Relu};
use crate::model::Model;

/// Identifies a catalogued global model (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelSpec {
    /// MNIST MLP: 784 → 64 → 10 with dropout 0.5 (50,890 params).
    MnistMlp,
    /// CIFAR10 MLP: 3072 → 64 → 10 with dropout 0.5 (197,322 params).
    Cifar10Mlp,
    /// CIFAR10 CNN: LeNet-style conv stack (62,006 params).
    Cifar10Cnn,
    /// Purchase100 MLP: 600 → 64 → 100 with dropout 0.5 (44,964 params).
    Purchase100Mlp,
    /// CIFAR100 CNN: small conv stack, ≈ 204k params (ResNet-18 stand-in).
    Cifar100Cnn,
}

impl ModelSpec {
    /// Human-readable name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::MnistMlp => "MNIST MLP",
            ModelSpec::Cifar10Mlp => "CIFAR10 MLP",
            ModelSpec::Cifar10Cnn => "CIFAR10 CNN",
            ModelSpec::Purchase100Mlp => "Purchase100 MLP",
            ModelSpec::Cifar100Cnn => "CIFAR100 CNN",
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        match self {
            ModelSpec::MnistMlp => 28 * 28,
            ModelSpec::Cifar10Mlp | ModelSpec::Cifar10Cnn | ModelSpec::Cifar100Cnn => 3 * 32 * 32,
            ModelSpec::Purchase100Mlp => 600,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        match self {
            ModelSpec::MnistMlp | ModelSpec::Cifar10Mlp | ModelSpec::Cifar10Cnn => 10,
            ModelSpec::Purchase100Mlp | ModelSpec::Cifar100Cnn => 100,
        }
    }

    /// Builds the model with seeded initialization.
    pub fn build(&self, seed: u64) -> Model {
        match self {
            ModelSpec::MnistMlp => mnist_mlp(seed),
            ModelSpec::Cifar10Mlp => cifar10_mlp(seed),
            ModelSpec::Cifar10Cnn => cifar10_cnn(seed),
            ModelSpec::Purchase100Mlp => purchase100_mlp(seed),
            ModelSpec::Cifar100Cnn => cifar100_cnn(seed),
        }
    }

    /// All catalogued models, Table 1 order.
    pub fn all() -> [ModelSpec; 5] {
        [
            ModelSpec::MnistMlp,
            ModelSpec::Cifar10Mlp,
            ModelSpec::Cifar10Cnn,
            ModelSpec::Purchase100Mlp,
            ModelSpec::Cifar100Cnn,
        ]
    }
}

/// Generic 2-layer MLP: `input → hidden (ReLU, dropout 0.5) → classes`,
/// the architecture of every MLP row of Table 3. Used directly for
/// reduced-scale attack experiments.
pub fn mlp(input_dim: usize, hidden: usize, classes: usize, dropout: f32, seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    Model::new(
        vec![
            Layer::Dense(Dense::new(input_dim, hidden, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Dropout(Dropout::new(dropout, seed ^ 0xD20F_F00D)),
            Layer::Dense(Dense::new(hidden, classes, &mut rng)),
        ],
        classes,
    )
}

/// MNIST MLP (Table 3): 784 → 64 → 10, dropout 0.5. 50,890 parameters.
pub fn mnist_mlp(seed: u64) -> Model {
    mlp(28 * 28, 64, 10, 0.5, seed)
}

/// CIFAR10 MLP (Table 3): 3072 → 64 → 10, dropout 0.5. 197,322 parameters
/// (the paper reports 197,320; the 2-parameter delta is bias bookkeeping).
pub fn cifar10_mlp(seed: u64) -> Model {
    mlp(3 * 32 * 32, 64, 10, 0.5, seed)
}

/// CIFAR10 CNN (Table 3): conv(3→6, k5) → pool → conv(6→16, k5) → pool →
/// 400 → 120 → 84 → 10. Exactly 62,006 parameters as in Table 1.
pub fn cifar10_cnn(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    Model::new(
        vec![
            Layer::Conv2d(Conv2d::new(3, 6, 5, 32, 32, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(6, 28, 28)),
            Layer::Conv2d(Conv2d::new(6, 16, 5, 14, 14, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(16, 10, 10)),
            Layer::Dense(Dense::new(16 * 5 * 5, 120, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(120, 84, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(84, 10, &mut rng)),
        ],
        10,
    )
}

/// Purchase100 MLP (Table 3): 600 → 64 → 100, dropout 0.5. 44,964 params.
pub fn purchase100_mlp(seed: u64) -> Model {
    mlp(600, 64, 100, 0.5, seed)
}

/// CIFAR100 CNN: conv(3→8, k5) → pool → conv(8→16, k5) → pool → 400 → 400
/// → 100. ≈ 204k parameters, the ResNet-18 stand-in (see module docs).
pub fn cifar100_cnn(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    Model::new(
        vec![
            Layer::Conv2d(Conv2d::new(3, 8, 5, 32, 32, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(8, 28, 28)),
            Layer::Conv2d(Conv2d::new(8, 16, 5, 14, 14, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(16, 10, 10)),
            Layer::Dense(Dense::new(16 * 5 * 5, 400, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(400, 100, &mut rng)),
        ],
        100,
    )
}

/// The attacker's per-round classifier (Table 4, `NN`): `d → 1000 → |L|`
/// with dropout 0.5, where `d` is the multi-hot index-vector dimension.
/// `hidden` is parameterized so reduced-scale experiments stay faithful in
/// shape.
pub fn attacker_nn(input_dim: usize, hidden: usize, labels: usize, seed: u64) -> Model {
    mlp(input_dim, hidden, labels, 0.5, seed)
}

/// The attacker's all-rounds classifier (Table 4, `NN-single`):
/// `d → 2000 → |L|` over concatenated rounds.
pub fn attacker_nn_single(input_dim: usize, hidden: usize, labels: usize, seed: u64) -> Model {
    mlp(input_dim, hidden, labels, 0.5, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts() {
        // Table 1's exact numbers where the architecture is unambiguous.
        assert_eq!(mnist_mlp(0).param_count(), 50_890);
        assert_eq!(cifar10_cnn(0).param_count(), 62_006);
        assert_eq!(purchase100_mlp(0).param_count(), 44_964);
        // CIFAR10 MLP: 197,322 vs the paper's 197,320 (bias bookkeeping).
        assert_eq!(cifar10_mlp(0).param_count(), 197_322);
        // CIFAR100 stand-in lands near the paper's 201,588.
        let c100 = cifar100_cnn(0).param_count();
        assert!((190_000..220_000).contains(&c100), "got {c100}");
    }

    #[test]
    fn spec_metadata_consistent() {
        for spec in ModelSpec::all() {
            let mut m = spec.build(1);
            assert_eq!(m.num_classes, spec.num_classes(), "{}", spec.name());
            // Forward pass shape sanity.
            let x = vec![0.1f32; spec.input_dim() * 2];
            let logits = m.forward(&x, 2, false);
            assert_eq!(logits.len(), 2 * spec.num_classes(), "{}", spec.name());
        }
    }

    #[test]
    fn cnn_trains_a_step() {
        let mut m = cifar10_cnn(3);
        let x = vec![0.05f32; 3 * 32 * 32];
        let before = m.get_params();
        m.train_batch(&x, &[3]);
        m.sgd_step(0.1);
        assert_ne!(m.get_params(), before);
    }

    #[test]
    fn builds_are_seed_deterministic() {
        assert_eq!(mnist_mlp(7).get_params(), mnist_mlp(7).get_params());
        assert_ne!(mnist_mlp(7).get_params(), mnist_mlp(8).get_params());
    }
}
