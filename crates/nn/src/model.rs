//! Sequential model with flat parameter views.
//!
//! FL treats the whole model as one parameter vector θ ∈ R^d — sparsify,
//! clip, encrypt, aggregate all operate on that vector — so [`Model`]
//! exposes `get_params`/`set_params`/`get_grads` over the concatenation of
//! all layer parameters in construction order.

use crate::layers::Layer;
use crate::loss::{softmax, softmax_cross_entropy};

/// A feed-forward network as an ordered list of layers.
#[derive(Clone, Debug)]
pub struct Model {
    layers: Vec<Layer>,
    /// Number of classes (output dimension of the last dense layer).
    pub num_classes: usize,
}

impl Model {
    /// Builds a model from layers; `num_classes` is the logit dimension.
    pub fn new(layers: Vec<Layer>, num_classes: usize) -> Self {
        Model { layers, num_classes }
    }

    /// Total trainable parameter count `d`.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_len).sum()
    }

    /// Batched forward pass returning logits.
    pub fn forward(&mut self, x: &[f32], n: usize, train: bool) -> Vec<f32> {
        let mut cur = x.to_vec();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, n, train);
        }
        cur
    }

    /// Forward + loss + backward; accumulates parameter gradients and
    /// returns the batch loss.
    pub fn train_batch(&mut self, x: &[f32], labels: &[usize]) -> f32 {
        let logits = self.forward(x, labels.len(), true);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels, self.num_classes);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, labels.len());
        }
        loss
    }

    /// Applies one plain SGD step with learning rate `lr` and clears grads.
    pub fn sgd_step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(lr);
        }
        self.zero_grads();
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// The flat parameter vector θ.
    pub fn get_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.read_params(&mut out);
        }
        out
    }

    /// Overwrites θ from a flat vector (length must equal
    /// [`Model::param_count`]).
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "parameter vector length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.write_params(params, &mut offset);
        }
        debug_assert_eq!(offset, params.len());
    }

    /// The flat accumulated-gradient vector ∇θ.
    pub fn get_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.read_grads(&mut out);
        }
        out
    }

    /// Predicted class per sample.
    pub fn predict(&mut self, x: &[f32], n: usize) -> Vec<usize> {
        let logits = self.forward(x, n, false);
        logits
            .chunks_exact(self.num_classes)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Class-probability rows for a batch (softmax over logits).
    pub fn predict_proba(&mut self, x: &[f32], n: usize) -> Vec<f32> {
        let logits = self.forward(x, n, false);
        softmax(&logits, self.num_classes)
    }

    /// Mean loss and accuracy over a labelled set, evaluated in chunks.
    pub fn evaluate(&mut self, x: &[f32], labels: &[usize], batch: usize) -> (f32, f32) {
        let n = labels.len();
        let feat = x.len() / n.max(1);
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        let mut s = 0;
        while s < n {
            let e = (s + batch).min(n);
            let logits = self.forward(&x[s * feat..e * feat], e - s, false);
            let (loss, _) = softmax_cross_entropy(&logits, &labels[s..e], self.num_classes);
            total_loss += loss as f64 * (e - s) as f64;
            for (row, &label) in logits.chunks_exact(self.num_classes).zip(&labels[s..e]) {
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if pred == label {
                    correct += 1;
                }
            }
            s = e;
        }
        ((total_loss / n.max(1) as f64) as f32, correct as f32 / n.max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Model {
        let mut rng = SmallRng::seed_from_u64(seed);
        Model::new(
            vec![
                Layer::Dense(Dense::new(4, 8, &mut rng)),
                Layer::Relu(Relu::new()),
                Layer::Dense(Dense::new(8, 3, &mut rng)),
            ],
            3,
        )
    }

    #[test]
    fn param_count_and_roundtrip() {
        let mut m = tiny_mlp(0);
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        let p = m.get_params();
        assert_eq!(p.len(), m.param_count());
        let doubled: Vec<f32> = p.iter().map(|v| v * 2.0).collect();
        m.set_params(&doubled);
        assert_eq!(m.get_params(), doubled);
    }

    /// Finite-difference gradient check on the full MLP: the single most
    /// important test in this crate — everything downstream (FL deltas,
    /// top-k indices, the attack itself) depends on correct gradients.
    #[test]
    fn gradient_check_mlp() {
        let mut m = tiny_mlp(1);
        let x = vec![0.5f32, -0.3, 0.8, 0.1, -0.4, 0.9, -0.2, 0.6];
        let labels = vec![0usize, 2];
        m.zero_grads();
        m.train_batch(&x, &labels);
        let analytic = m.get_grads();
        let params = m.get_params();
        let eps = 2e-3f32;
        // Check a spread of parameter coordinates (all would be slow).
        for &i in &[0usize, 3, 10, 32, 33, 40, 50, 58, 66] {
            let mut pp = params.clone();
            pp[i] += eps;
            m.set_params(&pp);
            let logits = m.forward(&x, 2, false);
            let (lp, _) = softmax_cross_entropy(&logits, &labels, 3);
            let mut pm = params.clone();
            pm[i] -= eps;
            m.set_params(&pm);
            let logits = m.forward(&x, 2, false);
            let (lm, _) = softmax_cross_entropy(&logits, &labels, 3);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2 * analytic[i].abs().max(1.0),
                "param {i}: finite-diff {fd} vs analytic {}",
                analytic[i]
            );
        }
    }

    /// Same check through a conv + pool stack.
    #[test]
    fn gradient_check_cnn() {
        use crate::layers::{Conv2d, MaxPool2d};
        let mut rng = SmallRng::seed_from_u64(2);
        let mut m = Model::new(
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 6, 6, &mut rng)),
                Layer::Relu(Relu::new()),
                Layer::MaxPool2d(MaxPool2d::new(2, 4, 4)),
                Layer::Dense(Dense::new(2 * 2 * 2, 2, &mut rng)),
            ],
            2,
        );
        let x: Vec<f32> = (0..36).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let labels = vec![1usize];
        m.zero_grads();
        m.train_batch(&x, &labels);
        let analytic = m.get_grads();
        let params = m.get_params();
        let eps = 2e-3f32;
        for &i in &[0usize, 5, 10, 17, 20, 25, 30, analytic.len() - 1] {
            let mut pp = params.clone();
            pp[i] += eps;
            m.set_params(&pp);
            let (lp, _) = softmax_cross_entropy(&m.forward(&x, 1, false), &labels, 2);
            let mut pm = params.clone();
            pm[i] -= eps;
            m.set_params(&pm);
            let (lm, _) = softmax_cross_entropy(&m.forward(&x, 1, false), &labels, 2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 3e-2 * analytic[i].abs().max(1.0),
                "param {i}: finite-diff {fd} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut m = tiny_mlp(3);
        // Two separable clusters.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let c = i % 2;
            let base = if c == 0 { 1.0f32 } else { -1.0 };
            xs.extend_from_slice(&[base, base * 0.5, -base, base]);
            ys.push(c);
        }
        let first = m.train_batch(&xs, &ys);
        m.sgd_step(0.5);
        for _ in 0..50 {
            m.train_batch(&xs, &ys);
            m.sgd_step(0.5);
        }
        let (final_loss, acc) = m.evaluate(&xs, &ys, 8);
        assert!(final_loss < first * 0.5, "loss {first} -> {final_loss}");
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn predict_proba_shape() {
        let mut m = tiny_mlp(4);
        let p = m.predict_proba(&[0.0; 8], 2);
        assert_eq!(p.len(), 6);
        for row in p.chunks_exact(3) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_params_wrong_length_panics() {
        let mut m = tiny_mlp(5);
        m.set_params(&[0.0; 3]);
    }
}
