//! SGD with optional momentum, operating on the model's flat views.

use crate::model::Model;

/// Stochastic gradient descent with classical momentum.
///
/// Plain SGD (`momentum = 0`) matches the paper's client optimizer
/// (Algorithm 1 line 19: `θ ← θ − η ∇ℓ`); momentum is available for the
/// attacker's classifier training.
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer for a model with `param_count` parameters.
    pub fn new(lr: f32, momentum: f32, param_count: usize) -> Self {
        Sgd { lr, momentum, velocity: vec![0.0; param_count] }
    }

    /// Applies one update from the model's accumulated gradients, then
    /// clears them.
    pub fn step(&mut self, model: &mut Model) {
        if self.momentum == 0.0 {
            model.sgd_step(self.lr);
            return;
        }
        let grads = model.get_grads();
        assert_eq!(grads.len(), self.velocity.len(), "optimizer/model size mismatch");
        let mut params = model.get_params();
        for ((v, g), p) in self.velocity.iter_mut().zip(grads.iter()).zip(params.iter_mut()) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
        model.set_params(&params);
        model.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> Model {
        let mut rng = SmallRng::seed_from_u64(0);
        Model::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))], 2)
    }

    #[test]
    fn momentum_zero_equals_plain_sgd() {
        let mut m1 = model();
        let mut m2 = m1.clone();
        let x = [1.0f32, -1.0];
        let y = [0usize];
        m1.train_batch(&x, &y);
        m1.sgd_step(0.1);
        let mut opt = Sgd::new(0.1, 0.0, m2.param_count());
        m2.train_batch(&x, &y);
        opt.step(&mut m2);
        assert_eq!(m1.get_params(), m2.get_params());
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let mut m = model();
        let x = [1.0f32, -1.0];
        let y = [0usize];
        let mut opt = Sgd::new(0.01, 0.9, m.param_count());
        let p0 = m.get_params();
        m.train_batch(&x, &y);
        opt.step(&mut m);
        let step1: f32 = m.get_params().iter().zip(p0.iter()).map(|(a, b)| (a - b).abs()).sum();
        let p1 = m.get_params();
        m.train_batch(&x, &y);
        opt.step(&mut m);
        let step2: f32 = m.get_params().iter().zip(p1.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(step2 > step1, "velocity should build up: {step1} vs {step2}");
    }

    #[test]
    fn training_with_momentum_converges() {
        let mut m = model();
        let mut opt = Sgd::new(0.05, 0.9, m.param_count());
        let xs = [1.0f32, 0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 1.0];
        let ys = [0usize, 1, 0, 1];
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            last = m.train_batch(&xs, &ys);
            opt.step(&mut m);
        }
        assert!(last < 0.1, "loss {last}");
    }
}
