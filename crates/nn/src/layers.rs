//! Layer implementations: Dense, ReLU, Dropout, Conv2d, MaxPool2d.
//!
//! Every layer owns its parameters, gradients, and whatever activation
//! cache its backward pass needs. Data flows as flat `Vec<f32>` batches:
//! a batch of `n` inputs of `d` features is a `n*d` vector in row-major
//! order; conv layers interpret features as `(channels, height, width)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::init::{he_uniform, xavier_uniform};

/// A fully connected layer: `y = W x + b` with `W` stored row-major
/// `(out_dim, in_dim)`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Input feature count.
    pub in_dim: usize,
    /// Output feature count.
    pub out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    input_cache: Vec<f32>,
}

impl Dense {
    /// Creates a Xavier-initialized dense layer.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            in_dim,
            out_dim,
            w: xavier_uniform(in_dim, out_dim, in_dim * out_dim, rng),
            b: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            input_cache: Vec::new(),
        }
    }

    fn forward(&mut self, x: &[f32], n: usize, _train: bool) -> Vec<f32> {
        debug_assert_eq!(x.len(), n * self.in_dim);
        self.input_cache.clear();
        self.input_cache.extend_from_slice(x);
        let mut out = vec![0.0f32; n * self.out_dim];
        for s in 0..n {
            let xs = &x[s * self.in_dim..(s + 1) * self.in_dim];
            let os = &mut out[s * self.out_dim..(s + 1) * self.out_dim];
            for (o, ov) in os.iter_mut().enumerate() {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let mut acc = self.b[o];
                for (wv, xv) in row.iter().zip(xs.iter()) {
                    acc += wv * xv;
                }
                *ov = acc;
            }
        }
        out
    }

    fn backward(&mut self, gout: &[f32], n: usize) -> Vec<f32> {
        debug_assert_eq!(gout.len(), n * self.out_dim);
        let x = &self.input_cache;
        let mut gin = vec![0.0f32; n * self.in_dim];
        for s in 0..n {
            let xs = &x[s * self.in_dim..(s + 1) * self.in_dim];
            let gs = &gout[s * self.out_dim..(s + 1) * self.out_dim];
            let gis = &mut gin[s * self.in_dim..(s + 1) * self.in_dim];
            for (o, &g) in gs.iter().enumerate() {
                self.grad_b[o] += g;
                let wrow = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let gwrow = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
                for i in 0..self.in_dim {
                    gwrow[i] += g * xs[i];
                    gis[i] += g * wrow[i];
                }
            }
        }
        gin
    }
}

/// Rectified linear unit.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }

    fn forward(&mut self, x: &[f32], _n: usize, _train: bool) -> Vec<f32> {
        self.mask = x.iter().map(|&v| v > 0.0).collect();
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    fn backward(&mut self, gout: &[f32], _n: usize) -> Vec<f32> {
        gout.iter().zip(self.mask.iter()).map(|(&g, &m)| if m { g } else { 0.0 }).collect()
    }
}

/// Inverted dropout: at train time zeroes activations with probability `p`
/// and scales survivors by `1/(1-p)`; identity at eval time.
#[derive(Clone, Debug)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    rng: SmallRng,
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer with its own seeded RNG stream.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p, rng: SmallRng::seed_from_u64(seed), mask: Vec::new() }
    }

    fn forward(&mut self, x: &[f32], _n: usize, train: bool) -> Vec<f32> {
        if !train || self.p == 0.0 {
            self.mask.clear();
            return x.to_vec();
        }
        let scale = 1.0 / (1.0 - self.p);
        self.mask =
            x.iter().map(|_| if self.rng.gen::<f32>() < self.p { 0.0 } else { scale }).collect();
        x.iter().zip(self.mask.iter()).map(|(&v, &m)| v * m).collect()
    }

    fn backward(&mut self, gout: &[f32], _n: usize) -> Vec<f32> {
        if self.mask.is_empty() {
            return gout.to_vec();
        }
        gout.iter().zip(self.mask.iter()).map(|(&g, &m)| g * m).collect()
    }
}

/// 2-D convolution, stride 1, no padding (LeNet-style as in Table 3).
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel size.
    pub k: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w_dim: usize,
    weights: Vec<f32>, // (out_ch, in_ch, k, k)
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    input_cache: Vec<f32>,
}

impl Conv2d {
    /// Creates a He-initialized convolution over `(in_ch, h, w)` inputs.
    pub fn new<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        h: usize,
        w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(k <= h && k <= w, "kernel larger than input");
        let fan_in = in_ch * k * k;
        Conv2d {
            in_ch,
            out_ch,
            k,
            h,
            w_dim: w,
            weights: he_uniform(fan_in, out_ch * in_ch * k * k, rng),
            bias: vec![0.0; out_ch],
            grad_w: vec![0.0; out_ch * in_ch * k * k],
            grad_b: vec![0.0; out_ch],
            input_cache: Vec::new(),
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.h - self.k + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.w_dim - self.k + 1
    }

    fn forward(&mut self, x: &[f32], n: usize, _train: bool) -> Vec<f32> {
        let (c, h, w, k) = (self.in_ch, self.h, self.w_dim, self.k);
        let (oh, ow) = (self.out_h(), self.out_w());
        debug_assert_eq!(x.len(), n * c * h * w);
        self.input_cache.clear();
        self.input_cache.extend_from_slice(x);
        let mut out = vec![0.0f32; n * self.out_ch * oh * ow];
        for s in 0..n {
            let xs = &x[s * c * h * w..(s + 1) * c * h * w];
            for oc in 0..self.out_ch {
                let wout = &self.weights[oc * c * k * k..(oc + 1) * c * k * k];
                let base = (s * self.out_ch + oc) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[oc];
                        for ci in 0..c {
                            let wch = &wout[ci * k * k..(ci + 1) * k * k];
                            let xch = &xs[ci * h * w..(ci + 1) * h * w];
                            for ky in 0..k {
                                let xrow = &xch[(oy + ky) * w + ox..(oy + ky) * w + ox + k];
                                let wrow = &wch[ky * k..(ky + 1) * k];
                                for kx in 0..k {
                                    acc += wrow[kx] * xrow[kx];
                                }
                            }
                        }
                        out[base + oy * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, gout: &[f32], n: usize) -> Vec<f32> {
        let (c, h, w, k) = (self.in_ch, self.h, self.w_dim, self.k);
        let (oh, ow) = (self.out_h(), self.out_w());
        debug_assert_eq!(gout.len(), n * self.out_ch * oh * ow);
        let x = &self.input_cache;
        let mut gin = vec![0.0f32; n * c * h * w];
        for s in 0..n {
            let xs = &x[s * c * h * w..(s + 1) * c * h * w];
            let gis = &mut gin[s * c * h * w..(s + 1) * c * h * w];
            for oc in 0..self.out_ch {
                let wout = &self.weights[oc * c * k * k..(oc + 1) * c * k * k];
                let gwout = &mut self.grad_w[oc * c * k * k..(oc + 1) * c * k * k];
                let base = (s * self.out_ch + oc) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gout[base + oy * ow + ox];
                        self.grad_b[oc] += g;
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let xi = ci * h * w + (oy + ky) * w + ox + kx;
                                    let wi = ci * k * k + ky * k + kx;
                                    gwout[wi] += g * xs[xi];
                                    gis[xi] += g * wout[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        gin
    }
}

/// 2×2 max pooling with stride 2 over `(channels, h, w)` feature maps.
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    /// Channels.
    pub ch: usize,
    /// Input height (must be even).
    pub h: usize,
    /// Input width (must be even).
    pub w: usize,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a 2×2/stride-2 pool for the given input shape.
    pub fn new(ch: usize, h: usize, w: usize) -> Self {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "pool input must have even spatial dims"
        );
        MaxPool2d { ch, h, w, argmax: Vec::new() }
    }

    fn forward(&mut self, x: &[f32], n: usize, _train: bool) -> Vec<f32> {
        let (c, h, w) = (self.ch, self.h, self.w);
        let (oh, ow) = (h / 2, w / 2);
        debug_assert_eq!(x.len(), n * c * h * w);
        let mut out = vec![0.0f32; n * c * oh * ow];
        self.argmax = vec![0usize; out.len()];
        for s in 0..n {
            for ci in 0..c {
                let xch = &x[(s * c + ci) * h * w..(s * c + ci + 1) * h * w];
                let base = (s * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let xi = (2 * oy + dy) * w + 2 * ox + dx;
                                if xch[xi] > best {
                                    best = xch[xi];
                                    best_i = xi;
                                }
                            }
                        }
                        out[base + oy * ow + ox] = best;
                        self.argmax[base + oy * ow + ox] = (s * c + ci) * h * w + best_i;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, gout: &[f32], n: usize) -> Vec<f32> {
        let gin_len = n * self.ch * self.h * self.w;
        let mut gin = vec![0.0f32; gin_len];
        for (o, &g) in gout.iter().enumerate() {
            gin[self.argmax[o]] += g;
        }
        gin
    }
}

/// A network layer (enum dispatch keeps parameter plumbing simple and
/// monomorphic).
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fully connected.
    Dense(Dense),
    /// ReLU activation.
    Relu(Relu),
    /// Inverted dropout.
    Dropout(Dropout),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// 2×2 max pool.
    MaxPool2d(MaxPool2d),
}

impl Layer {
    /// Batched forward pass. `train` toggles dropout.
    pub fn forward(&mut self, x: &[f32], n: usize, train: bool) -> Vec<f32> {
        match self {
            Layer::Dense(l) => l.forward(x, n, train),
            Layer::Relu(l) => l.forward(x, n, train),
            Layer::Dropout(l) => l.forward(x, n, train),
            Layer::Conv2d(l) => l.forward(x, n, train),
            Layer::MaxPool2d(l) => l.forward(x, n, train),
        }
    }

    /// Batched backward pass; accumulates parameter gradients and returns
    /// the gradient with respect to the layer input.
    pub fn backward(&mut self, gout: &[f32], n: usize) -> Vec<f32> {
        match self {
            Layer::Dense(l) => l.backward(gout, n),
            Layer::Relu(l) => l.backward(gout, n),
            Layer::Dropout(l) => l.backward(gout, n),
            Layer::Conv2d(l) => l.backward(gout, n),
            Layer::MaxPool2d(l) => l.backward(gout, n),
        }
    }

    /// Number of trainable parameters.
    pub fn param_len(&self) -> usize {
        match self {
            Layer::Dense(l) => l.w.len() + l.b.len(),
            Layer::Conv2d(l) => l.weights.len() + l.bias.len(),
            _ => 0,
        }
    }

    /// Appends this layer's parameters to `out` (weights then biases).
    pub fn read_params(&self, out: &mut Vec<f32>) {
        match self {
            Layer::Dense(l) => {
                out.extend_from_slice(&l.w);
                out.extend_from_slice(&l.b);
            }
            Layer::Conv2d(l) => {
                out.extend_from_slice(&l.weights);
                out.extend_from_slice(&l.bias);
            }
            _ => {}
        }
    }

    /// Overwrites this layer's parameters from `src`, advancing `offset`.
    pub fn write_params(&mut self, src: &[f32], offset: &mut usize) {
        match self {
            Layer::Dense(l) => {
                let wl = l.w.len();
                l.w.copy_from_slice(&src[*offset..*offset + wl]);
                *offset += wl;
                let bl = l.b.len();
                l.b.copy_from_slice(&src[*offset..*offset + bl]);
                *offset += bl;
            }
            Layer::Conv2d(l) => {
                let wl = l.weights.len();
                l.weights.copy_from_slice(&src[*offset..*offset + wl]);
                *offset += wl;
                let bl = l.bias.len();
                l.bias.copy_from_slice(&src[*offset..*offset + bl]);
                *offset += bl;
            }
            _ => {}
        }
    }

    /// Appends this layer's accumulated gradients to `out`.
    pub fn read_grads(&self, out: &mut Vec<f32>) {
        match self {
            Layer::Dense(l) => {
                out.extend_from_slice(&l.grad_w);
                out.extend_from_slice(&l.grad_b);
            }
            Layer::Conv2d(l) => {
                out.extend_from_slice(&l.grad_w);
                out.extend_from_slice(&l.grad_b);
            }
            _ => {}
        }
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        match self {
            Layer::Dense(l) => {
                l.grad_w.iter_mut().for_each(|g| *g = 0.0);
                l.grad_b.iter_mut().for_each(|g| *g = 0.0);
            }
            Layer::Conv2d(l) => {
                l.grad_w.iter_mut().for_each(|g| *g = 0.0);
                l.grad_b.iter_mut().for_each(|g| *g = 0.0);
            }
            _ => {}
        }
    }

    /// Applies `param -= lr * grad` (plus momentum handled by the caller via
    /// [`crate::optim::Sgd`], which uses the flat views instead).
    pub fn sgd_step(&mut self, lr: f32) {
        match self {
            Layer::Dense(l) => {
                for (p, g) in l.w.iter_mut().zip(l.grad_w.iter()) {
                    *p -= lr * g;
                }
                for (p, g) in l.b.iter_mut().zip(l.grad_b.iter()) {
                    *p -= lr * g;
                }
            }
            Layer::Conv2d(l) => {
                for (p, g) in l.weights.iter_mut().zip(l.grad_w.iter()) {
                    *p -= lr * g;
                }
                for (p, g) in l.bias.iter_mut().zip(l.grad_b.iter()) {
                    *p -= lr * g;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_known_values() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w = vec![1.0, 2.0, 3.0, 4.0]; // rows: [1,2], [3,4]
        d.b = vec![0.5, -0.5];
        let out = d.forward(&[1.0, 1.0, 2.0, 0.0], 2, false);
        assert_eq!(out, vec![3.5, 6.5, 2.5, 5.5]);
    }

    #[test]
    fn dense_backward_shapes_and_bias_grad() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        d.forward(&[1.0, 2.0, 3.0], 1, true);
        let gin = d.backward(&[1.0, 1.0], 1);
        assert_eq!(gin.len(), 3);
        assert_eq!(d.grad_b, vec![1.0, 1.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let out = r.forward(&[-1.0, 0.0, 2.0], 1, true);
        assert_eq!(out, vec![0.0, 0.0, 2.0]);
        let gin = r.backward(&[5.0, 5.0, 5.0], 1);
        assert_eq!(gin, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut dr = Dropout::new(0.5, 42);
        let x = vec![1.0f32; 100];
        assert_eq!(dr.forward(&x, 1, false), x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut dr = Dropout::new(0.5, 42);
        let x = vec![1.0f32; 10_000];
        let out = dr.forward(&x, 1, true);
        let zeros = out.iter().filter(|&&v| v == 0.0).count();
        let survivors: Vec<f32> = out.iter().copied().filter(|&v| v != 0.0).collect();
        assert!((4000..6000).contains(&zeros), "~half dropped, got {zeros}");
        assert!(survivors.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // Backward respects the same mask.
        let gin = dr.backward(&vec![1.0f32; 10_000], 1);
        for (o, g) in out.iter().zip(gin.iter()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn conv_forward_identity_kernel() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 1, 3, 3, &mut rng);
        c.weights = vec![2.0];
        c.bias = vec![1.0];
        let x: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let out = c.forward(&x, 1, false);
        let expected: Vec<f32> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn conv_forward_hand_computed() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 2, 3, 3, &mut rng);
        c.weights = vec![1.0, 0.0, 0.0, 1.0]; // main diagonal
        c.bias = vec![0.0];
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ];
        let out = c.forward(&x, 1, false);
        // 2x2 output: [1+5, 2+6, 4+8, 5+9]
        assert_eq!(out, vec![6.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut p = MaxPool2d::new(1, 4, 4);
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0,   0.0, 0.0,
            3.0, 4.0,   0.0, 5.0,

            9.0, 0.0,   1.0, 1.0,
            0.0, 0.0,   1.0, 2.0,
        ];
        let out = p.forward(&x, 1, false);
        assert_eq!(out, vec![4.0, 5.0, 9.0, 2.0]);
        let gin = p.backward(&[1.0, 1.0, 1.0, 1.0], 1);
        let nonzero: Vec<usize> =
            gin.iter().enumerate().filter(|(_, &g)| g != 0.0).map(|(i, _)| i).collect();
        assert_eq!(nonzero, vec![5, 7, 8, 15]);
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Layer::Dense(Dense::new(4, 3, &mut rng));
        assert_eq!(layer.param_len(), 15);
        let mut params = Vec::new();
        layer.read_params(&mut params);
        assert_eq!(params.len(), 15);
        let new_params: Vec<f32> = (0..15).map(|i| i as f32).collect();
        let mut off = 0;
        layer.write_params(&new_params, &mut off);
        assert_eq!(off, 15);
        let mut back = Vec::new();
        layer.read_params(&mut back);
        assert_eq!(back, new_params);
    }
}
