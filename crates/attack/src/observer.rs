//! The side-channel observer: trace events → per-user index sets.
//!
//! During the leaky linear aggregation (Proposition 3.2) every incoming
//! cell produces exactly one `(read, write)` pair on the dense buffer
//! `G*`, in cell order. Cells are processed user by user (`G = G₁∥…∥Gₙ`),
//! and the ciphertext sizes already tell the server each user's `k`, so
//! the `t`-th pair belongs to user `processed[t / k]` and its offset *is*
//! the secret index (element granularity) or its 64-byte line (cacheline
//! granularity, Figure 7).

use olive_core::regions::REGION_G_STAR;
use olive_memsim::{Access, Granularity, Op};
use olive_tee::UserId;

/// Per-user observed feature sets for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// Observation granularity.
    pub granularity: Granularity,
    /// Feature-space dimension: `d` for element granularity, `⌈4d/64⌉`
    /// lines for cacheline granularity.
    pub feature_dim: usize,
    /// `(user, sorted distinct feature ids)` in processing order.
    pub per_user: Vec<(UserId, Vec<u32>)>,
}

/// Feature-space dimension for a model of dimension `d` at a granularity.
pub fn feature_dim(d: usize, granularity: Granularity) -> usize {
    match granularity {
        Granularity::Element => d,
        // f32 weights: 16 per 64-byte line.
        Granularity::Cacheline => d.div_ceil(16),
    }
}

/// Parses one round's trace. `processed` is the public upload-processing
/// order; `k` the per-user cell count; `d` the model dimension.
///
/// Works on traces captured at either granularity (the tracer's
/// granularity must match the `granularity` argument). Robust to
/// non-leaky traces: if fewer than `processed.len()·k` pairs exist, the
/// remaining users simply observe nothing.
pub fn observe_linear_aggregation(
    events: &[Access],
    processed: &[UserId],
    k: usize,
    d: usize,
    granularity: Granularity,
) -> Observation {
    let fdim = feature_dim(d, granularity);
    let total_cells = processed.len() * k;
    let mut per_user: Vec<(UserId, Vec<u32>)> =
        processed.iter().map(|&u| (u, Vec::new())).collect();
    let mut cell = 0usize;
    let mut pending_read: Option<u64> = None;
    for a in events {
        if cell >= total_cells {
            break;
        }
        if a.region != REGION_G_STAR {
            continue;
        }
        match a.op {
            Op::Read => pending_read = Some(a.offset),
            Op::Write => {
                if let Some(off) = pending_read.take() {
                    // A completed read-modify-write pair = one cell.
                    let feature = match granularity {
                        Granularity::Element => (off / 4) as u32,
                        Granularity::Cacheline => off as u32,
                    };
                    if (feature as usize) < fdim {
                        per_user[cell / k].1.push(feature);
                    }
                    cell += 1;
                }
            }
        }
    }
    for (_, feats) in &mut per_user {
        feats.sort_unstable();
        feats.dedup();
    }
    Observation { granularity, feature_dim: fdim, per_user }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::aggregation::{aggregate, AggregatorKind};
    use olive_fl::SparseGradient;
    use olive_memsim::RecordingTracer;

    fn updates() -> Vec<SparseGradient> {
        vec![
            SparseGradient { dense_dim: 64, indices: vec![3, 17, 40], values: vec![1.0; 3] },
            SparseGradient { dense_dim: 64, indices: vec![3, 20, 63], values: vec![1.0; 3] },
        ]
    }

    fn run(kind: AggregatorKind, granularity: Granularity) -> Observation {
        let ups = updates();
        let mut tr = RecordingTracer::with_events(granularity);
        aggregate(kind, &ups, 64, &mut tr);
        observe_linear_aggregation(tr.events().unwrap(), &[10, 11], 3, 64, granularity)
    }

    #[test]
    fn recovers_exact_indices_at_element_granularity() {
        let obs = run(AggregatorKind::NonOblivious, Granularity::Element);
        assert_eq!(obs.per_user[0], (10, vec![3, 17, 40]));
        assert_eq!(obs.per_user[1], (11, vec![3, 20, 63]));
    }

    #[test]
    fn recovers_lines_at_cacheline_granularity() {
        let obs = run(AggregatorKind::NonOblivious, Granularity::Cacheline);
        // 16 f32 per line: 3→0, 17→1, 40→2 / 3→0, 20→1, 63→3.
        assert_eq!(obs.per_user[0], (10, vec![0, 1, 2]));
        assert_eq!(obs.per_user[1], (11, vec![0, 1, 3]));
        assert_eq!(obs.feature_dim, 4);
    }

    #[test]
    fn advanced_defense_yields_no_user_signal() {
        // Against Algorithm 4 the only G* read-write pairs come from the
        // (index-oblivious) averaging pass: every user "observes" the same
        // data-independent prefix — zero attack signal.
        let a = run(AggregatorKind::Advanced, Granularity::Element);
        // Re-run with different secret indices:
        let ups2 = vec![
            SparseGradient { dense_dim: 64, indices: vec![1, 2, 5], values: vec![1.0; 3] },
            SparseGradient { dense_dim: 64, indices: vec![7, 8, 9], values: vec![1.0; 3] },
        ];
        let mut tr = RecordingTracer::with_events(Granularity::Element);
        aggregate(AggregatorKind::Advanced, &ups2, 64, &mut tr);
        let b = observe_linear_aggregation(
            tr.events().unwrap(),
            &[10, 11],
            3,
            64,
            Granularity::Element,
        );
        assert_eq!(a, b, "observed features must not depend on the secret indices");
    }

    #[test]
    fn baseline_defense_hides_indices_at_cacheline() {
        let a = run(AggregatorKind::Baseline { cacheline_weights: 16 }, Granularity::Cacheline);
        let ups2 = vec![
            SparseGradient { dense_dim: 64, indices: vec![0, 1, 2], values: vec![1.0; 3] },
            SparseGradient { dense_dim: 64, indices: vec![61, 62, 63], values: vec![1.0; 3] },
        ];
        let mut tr = RecordingTracer::with_events(Granularity::Cacheline);
        aggregate(AggregatorKind::Baseline { cacheline_weights: 16 }, &ups2, 64, &mut tr);
        let b = observe_linear_aggregation(
            tr.events().unwrap(),
            &[10, 11],
            3,
            64,
            Granularity::Cacheline,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn short_traces_leave_users_empty() {
        let obs = observe_linear_aggregation(&[], &[1, 2], 5, 64, Granularity::Element);
        assert_eq!(obs.per_user.len(), 2);
        assert!(obs.per_user.iter().all(|(_, f)| f.is_empty()));
    }
}
