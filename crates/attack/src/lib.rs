//! # olive-attack
//!
//! The paper's sensitive-label inference attack (Section 4, Algorithm 2).
//!
//! A semi-honest server observes the enclave's memory access pattern while
//! it aggregates **top-k sparsified** gradients, recovers each user's
//! transmitted index set, and classifies those index sets against
//! "teacher" index sets it computes itself from the global model and a
//! labelled public test pool. The inferred output is the set of sensitive
//! labels in the victim's training data.
//!
//! Modules, following the algorithm:
//! * [`observer`] — the side channel: parses a [`RecordingTracer`] event
//!   stream from the leaky linear aggregation into per-user index sets,
//!   at element or cacheline granularity (Figure 7's 64-byte case);
//! * [`teacher`] — computes `teacher[l, t]`: top-k gradient indices of
//!   the round-t global model on test data of label `l`;
//! * [`methods`] — the three scorers: `Jac` (Jaccard similarity over
//!   union index sets), `NN` (one classifier per round, scores averaged),
//!   `NN-single` (one classifier over concatenated rounds);
//! * [`kmeans`] — 1-D 2-means selection of the high-scoring label set
//!   when the victim's label-set size is unknown (Algorithm 2 line 27);
//! * [`metrics`] — the paper's `all` / `top-1` success metrics;
//! * [`pipeline`] — end-to-end driver against a running
//!   [`OliveSystem`].
//!
//! [`RecordingTracer`]: olive_memsim::RecordingTracer
//! [`OliveSystem`]: olive_core::OliveSystem

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kmeans;
pub mod methods;
pub mod metrics;
pub mod observer;
pub mod pipeline;
pub mod teacher;

pub use kmeans::top_cluster_labels;
pub use methods::{score_user, AttackMethod, NnParams, ObservationLog, TeacherLog};
pub use metrics::{evaluate_inference, AttackMetrics};
pub use observer::{observe_linear_aggregation, Observation};
pub use pipeline::{run_attack, AttackOutcome, AttackPipelineConfig};
