//! The paper's attack-success metrics (Section 4.2): `all` and `top-1`.

use crate::kmeans::top_cluster_labels;

/// Infers the victim's label set from scores: top-`count` when the set
/// size is known (fixed-label setting), 2-means clustering otherwise
/// (random-label setting).
pub fn infer_label_set(scores: &[f64], known_count: Option<usize>) -> Vec<usize> {
    match known_count {
        Some(count) => {
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            let mut picked: Vec<usize> = order.into_iter().take(count).collect();
            picked.sort_unstable();
            picked
        }
        None => {
            let mut picked = top_cluster_labels(scores);
            picked.sort_unstable();
            picked
        }
    }
}

/// The single highest-scoring label.
pub fn top1_label(scores: &[f64]) -> usize {
    scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
}

/// One victim's outcome.
#[derive(Clone, Debug)]
pub struct PerUserResult {
    /// The victim.
    pub user: u32,
    /// Ground-truth label set.
    pub truth: Vec<usize>,
    /// Inferred label set.
    pub inferred: Vec<usize>,
    /// Highest-scored label.
    pub top1: usize,
}

/// Aggregate attack success rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackMetrics {
    /// Fraction of victims whose inferred set equals the truth exactly.
    pub all: f64,
    /// Fraction of victims whose top-scored label is in the truth
    /// ("minimal privacy leak", Section 4.2).
    pub top1: f64,
    /// Number of victims evaluated.
    pub evaluated: usize,
}

/// Computes `all` / `top-1` over per-user results.
pub fn evaluate_inference(results: &[PerUserResult]) -> AttackMetrics {
    if results.is_empty() {
        return AttackMetrics { all: 0.0, top1: 0.0, evaluated: 0 };
    }
    let mut all_hits = 0usize;
    let mut top1_hits = 0usize;
    for r in results {
        let mut truth = r.truth.clone();
        truth.sort_unstable();
        if truth == r.inferred {
            all_hits += 1;
        }
        if truth.contains(&r.top1) {
            top1_hits += 1;
        }
    }
    AttackMetrics {
        all: all_hits as f64 / results.len() as f64,
        top1: top1_hits as f64 / results.len() as f64,
        evaluated: results.len(),
    }
}

/// Expected `all` success of uniform random guessing with known set size:
/// `1 / C(num_labels, set_size)` — the paper's Figure 14 baseline
/// ("1/₁₀C₃ < 0.01").
pub fn random_guess_all(num_labels: usize, set_size: usize) -> f64 {
    let mut c = 1.0f64;
    for i in 0..set_size {
        c = c * (num_labels - i) as f64 / (i + 1) as f64;
    }
    1.0 / c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_known_count_takes_top_scores() {
        let scores = vec![0.1, 0.9, 0.3, 0.8];
        assert_eq!(infer_label_set(&scores, Some(2)), vec![1, 3]);
        assert_eq!(infer_label_set(&scores, Some(1)), vec![1]);
    }

    #[test]
    fn infer_unknown_count_clusters() {
        let scores = vec![0.05, 0.9, 0.1, 0.88];
        assert_eq!(infer_label_set(&scores, None), vec![1, 3]);
    }

    #[test]
    fn metrics_all_and_top1() {
        let results = vec![
            PerUserResult { user: 0, truth: vec![1, 3], inferred: vec![1, 3], top1: 1 },
            PerUserResult { user: 1, truth: vec![2], inferred: vec![0], top1: 2 },
            PerUserResult { user: 2, truth: vec![0, 4], inferred: vec![0, 3], top1: 5 },
        ];
        let m = evaluate_inference(&results);
        assert!((m.all - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.top1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.evaluated, 3);
    }

    #[test]
    fn truth_order_does_not_matter() {
        let results =
            vec![PerUserResult { user: 0, truth: vec![3, 1], inferred: vec![1, 3], top1: 3 }];
        let m = evaluate_inference(&results);
        assert_eq!(m.all, 1.0);
    }

    #[test]
    fn random_guess_baseline() {
        // 1/C(10,3) = 1/120.
        assert!((random_guess_all(10, 3) - 1.0 / 120.0).abs() < 1e-12);
        assert!((random_guess_all(100, 2) - 1.0 / 4950.0).abs() < 1e-12);
        assert_eq!(random_guess_all(10, 1), 0.1);
    }

    #[test]
    fn empty_results() {
        let m = evaluate_inference(&[]);
        assert_eq!(m.evaluated, 0);
    }
}
