//! Teacher index generation (Algorithm 2 lines 9–12).
//!
//! For each label `l`, the attacker computes the gradient of the round's
//! global model on its labelled test pool `X_l` — *without* updating the
//! model — and keeps the top-k indices. These are the supervised-learning
//! features: if the victim's training data contains label `l`, its
//! observed top-k set will resemble `teacher[l]`.

use olive_data::Dataset;
use olive_fl::{SparseGradient, Sparsifier};
use olive_memsim::Granularity;
use olive_nn::Model;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Top-k gradient indices of `model@params` on `data` (one full-batch
/// gradient, no update), mapped into the observation feature space.
pub fn teacher_features(
    model: &mut Model,
    params: &[f32],
    data: &Dataset,
    k: usize,
    granularity: Granularity,
) -> Vec<u32> {
    assert!(!data.is_empty(), "teacher pool for a label is empty");
    model.set_params(params);
    model.zero_grads();
    // Full-batch gradient in chunks (memory-bounded).
    let chunk = 64usize;
    let mut s = 0;
    while s < data.len() {
        let e = (s + chunk).min(data.len());
        let mut xs = Vec::with_capacity((e - s) * data.feature_dim);
        for i in s..e {
            xs.extend_from_slice(data.row(i));
        }
        model.train_batch(&xs, &data.labels[s..e]);
        s = e;
    }
    let grads = model.get_grads();
    model.zero_grads();
    let mut rng = SmallRng::seed_from_u64(0); // top-k is deterministic
    let sparse = SparseGradient::from_dense(&grads, Sparsifier::TopK(k), &mut rng);
    to_feature_space(&sparse.indices, granularity)
}

/// Maps raw parameter indices into the observation feature space
/// (identity for element granularity; 16-per-line for cachelines).
pub fn to_feature_space(indices: &[u32], granularity: Granularity) -> Vec<u32> {
    match granularity {
        Granularity::Element => indices.to_vec(),
        Granularity::Cacheline => {
            let mut lines: Vec<u32> = indices.iter().map(|&i| i / 16).collect();
            lines.sort_unstable();
            lines.dedup();
            lines
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_data::synthetic::{Generator, SyntheticConfig};
    use olive_nn::zoo::mlp;

    #[test]
    fn teacher_indices_depend_on_label() {
        let gen = Generator::new(SyntheticConfig::tiny(24, 4), 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = mlp(24, 8, 4, 0.0, 2);
        let params = model.get_params();
        let x0 = gen.sample_class(0, 30, &mut rng);
        let x1 = gen.sample_class(1, 30, &mut rng);
        let t0 = teacher_features(&mut model, &params, &x0, 20, Granularity::Element);
        let t1 = teacher_features(&mut model, &params, &x1, 20, Granularity::Element);
        assert_eq!(t0.len(), 20);
        assert_ne!(t0, t1, "different labels must induce different teacher sets");
    }

    #[test]
    fn teacher_is_deterministic() {
        let gen = Generator::new(SyntheticConfig::tiny(24, 4), 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = mlp(24, 8, 4, 0.0, 2);
        let params = model.get_params();
        let x = gen.sample_class(2, 20, &mut rng);
        let a = teacher_features(&mut model, &params, &x, 10, Granularity::Element);
        let b = teacher_features(&mut model, &params, &x, 10, Granularity::Element);
        assert_eq!(a, b);
    }

    #[test]
    fn cacheline_space_coarsens() {
        let idx = vec![0u32, 5, 15, 16, 17, 300];
        let lines = to_feature_space(&idx, Granularity::Cacheline);
        assert_eq!(lines, vec![0, 1, 18]);
    }
}
