//! End-to-end attack driver against a running [`OliveSystem`].
//!
//! Executes T federated rounds while playing the semi-honest server of
//! Section 3.1: records the enclave's aggregation trace each round,
//! extracts per-user index sets ([`crate::observer`]), computes teacher
//! sets from the round's global model and the attacker's labelled pool
//! ([`crate::teacher`]), scores every participant ([`crate::methods`]),
//! and reports the `all` / `top-1` success rates.

use std::collections::HashMap;

use olive_core::OliveSystem;
use olive_data::Dataset;
use olive_memsim::{Granularity, RecordingTracer};
use olive_nn::Model;

use crate::methods::{score_all_users, AttackMethod, ObservationLog, TeacherLog};
use crate::metrics::{
    evaluate_inference, infer_label_set, top1_label, AttackMetrics, PerUserResult,
};
use crate::observer::{feature_dim, observe_linear_aggregation};
use crate::teacher::teacher_features;

/// Attack-pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct AttackPipelineConfig {
    /// Scoring method.
    pub method: AttackMethod,
    /// Side-channel observation granularity.
    pub granularity: Granularity,
    /// `Some(k)` in the fixed-label setting (attacker knows the set
    /// size), `None` for the random-label setting (2-means selection).
    pub known_label_count: Option<usize>,
    /// Rounds to observe (the paper's T; T = 3 suffices).
    pub rounds: usize,
    /// Attacker RNG seed.
    pub seed: u64,
    /// Cap on retained trace events per round (memory guard).
    pub event_cap: usize,
}

impl AttackPipelineConfig {
    /// Default: Jaccard, element granularity, fixed labels, 3 rounds.
    pub fn new(method: AttackMethod, known_label_count: Option<usize>) -> Self {
        AttackPipelineConfig {
            method,
            granularity: Granularity::Element,
            known_label_count,
            rounds: 3,
            seed: 0xA77AC4,
            event_cap: 64 << 20,
        }
    }
}

/// Everything the attack produced.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Success metrics over all participants observed at least once.
    pub metrics: AttackMetrics,
    /// Per-user detail.
    pub per_user: Vec<PerUserResult>,
    /// The raw per-user scores (for score-distribution analysis).
    pub scores: HashMap<u32, Vec<f64>>,
    /// The collected observations (for re-scoring with other methods
    /// without re-running FL).
    pub observations: ObservationLog,
    /// The teacher sets (likewise reusable).
    pub teacher: TeacherLog,
}

/// Runs T rounds of `sys` under observation and mounts the attack using
/// `attacker_pool` (the labelled public test data of Section 3.1
/// assumption (2)). The pool's `num_classes` defines |L|.
pub fn run_attack(
    sys: &mut OliveSystem,
    attacker_pool: &Dataset,
    cfg: &AttackPipelineConfig,
) -> AttackOutcome {
    let d = sys.dim();
    let fdim = feature_dim(d, cfg.granularity);
    let labels = attacker_pool.num_classes;
    let mut obs = ObservationLog { feature_dim: fdim, per_round: Vec::new() };
    let mut teacher = TeacherLog { feature_dim: fdim, per_round: Vec::new() };
    // The attacker's gradient scratch model shares the architecture
    // (assumption (1): the server knows the model — it orchestrates it).
    let mut scratch: Model = sys.server.model.clone();
    let by_label: Vec<Dataset> = (0..labels).map(|l| attacker_pool.filter_label(l)).collect();

    for _ in 0..cfg.rounds {
        let params = sys.global_params();
        let mut tr = RecordingTracer::with_events(cfg.granularity).with_event_cap(cfg.event_cap);
        let report = sys.run_round(&mut tr).expect("fault-free attack rounds complete");
        let observation = observe_linear_aggregation(
            tr.events().expect("recording tracer retains events"),
            &report.processed_users,
            report.k_per_user,
            d,
            cfg.granularity,
        );
        obs.per_round.push(observation.per_user.into_iter().collect());
        // Teacher sets use the *pre-round* model θ_t, matching what the
        // observed clients trained on (Algorithm 2 lines 9–12).
        let teach_t: Vec<Vec<u32>> = by_label
            .iter()
            .map(|pool| {
                teacher_features(&mut scratch, &params, pool, report.k_per_user, cfg.granularity)
            })
            .collect();
        teacher.per_round.push(teach_t);
    }

    let scores = score_all_users(cfg.method, &obs, &teacher, cfg.seed);
    let mut per_user: Vec<PerUserResult> = scores
        .iter()
        .map(|(&user, s)| {
            let inferred = infer_label_set(s, cfg.known_label_count);
            PerUserResult {
                user,
                truth: sys.client_label_set(user).to_vec(),
                inferred,
                top1: top1_label(s),
            }
        })
        .collect();
    per_user.sort_by_key(|r| r.user);
    let metrics = evaluate_inference(&per_user);
    AttackOutcome { metrics, per_user, scores, observations: obs, teacher }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::aggregation::AggregatorKind;
    use olive_core::olive::OliveConfig;
    use olive_data::synthetic::{Generator, SyntheticConfig};
    use olive_data::{partition, LabelAssignment};
    use olive_fl::{ClientConfig, Sparsifier};
    use olive_nn::zoo::mlp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A small but realistic FL deployment for attack testing: 12 clients,
    /// 4 labels, clear label structure, aggressive sparsification.
    fn system(aggregator: AggregatorKind) -> (OliveSystem, Dataset) {
        let gen = Generator::new(SyntheticConfig::tiny(24, 4), 17);
        let clients = partition(&gen, 12, LabelAssignment::Fixed(1), 24, 5);
        let model = mlp(24, 10, 4, 0.0, 9);
        let d = model.param_count();
        let cfg = OliveConfig {
            n_clients: 12,
            sample_rate: 0.9,
            client: ClientConfig {
                epochs: 2,
                batch_size: 8,
                lr: 0.3,
                sparsifier: Sparsifier::TopK(d / 20),
                clip: None,
            },
            aggregator,
            server_lr: 0.5,
            dp: None,
            seed: 1234,
        };
        let sys = OliveSystem::new(model, clients, cfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let pool = gen.sample_balanced(40, &mut rng);
        (sys, pool)
    }

    #[test]
    fn jaccard_attack_beats_random_guessing_against_leaky_aggregation() {
        let (mut sys, pool) = system(AggregatorKind::NonOblivious);
        let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
        let outcome = run_attack(&mut sys, &pool, &cfg);
        // Random guessing of 1 of 4 labels succeeds 25% of the time; the
        // attack should do much better on strongly clustered data.
        assert!(
            outcome.metrics.all > 0.5,
            "attack all-accuracy {} should beat 0.25 random baseline",
            outcome.metrics.all
        );
        assert!(outcome.metrics.top1 >= outcome.metrics.all);
        assert!(outcome.metrics.evaluated >= 8);
    }

    #[test]
    fn attack_collapses_against_advanced_defense() {
        let (mut sys, pool) = system(AggregatorKind::Advanced);
        let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, Some(1));
        let outcome = run_attack(&mut sys, &pool, &cfg);
        // Against the oblivious aggregator every user yields identical
        // (data-independent) observations → scores carry no signal. With 4
        // labels the attack cannot reliably exceed chance.
        assert!(
            outcome.metrics.all <= 0.5,
            "defense should collapse the attack, got {}",
            outcome.metrics.all
        );
        // And the observations are *data-independent*: a system trained on
        // a different data distribution (different partition seed) under
        // the same protocol schedule yields byte-identical observations.
        // Same protocol seed → same sampling; different client data:
        let gen2 = Generator::new(SyntheticConfig::tiny(24, 4), 999);
        let clients2 = partition(&gen2, 12, LabelAssignment::Fixed(1), 24, 888);
        let model2 = mlp(24, 10, 4, 0.0, 9);
        let cfg2 = OliveConfig {
            n_clients: 12,
            sample_rate: 0.9,
            client: ClientConfig {
                epochs: 2,
                batch_size: 8,
                lr: 0.3,
                sparsifier: Sparsifier::TopK(model2.param_count() / 20),
                clip: None,
            },
            aggregator: AggregatorKind::Advanced,
            server_lr: 0.5,
            dp: None,
            seed: 1234,
        };
        let mut sys2 = OliveSystem::new(model2, clients2, cfg2);
        let outcome2 = run_attack(&mut sys2, &pool, &cfg);
        for (a, b) in
            outcome.observations.per_round.iter().zip(outcome2.observations.per_round.iter())
        {
            let mut ka: Vec<_> = a.iter().collect();
            let mut kb: Vec<_> = b.iter().collect();
            ka.sort_by_key(|(u, _)| **u);
            kb.sort_by_key(|(u, _)| **u);
            assert_eq!(ka, kb, "observations must not depend on client data");
        }
    }

    #[test]
    fn random_label_setting_uses_clustering() {
        let (mut sys, pool) = system(AggregatorKind::NonOblivious);
        let cfg = AttackPipelineConfig::new(AttackMethod::Jaccard, None);
        let outcome = run_attack(&mut sys, &pool, &cfg);
        // Success is harder without the size hint, but top-1 should hold.
        assert!(outcome.metrics.top1 > 0.5, "top-1 {} should beat chance", outcome.metrics.top1);
    }
}
