//! 1-D 2-means clustering over label scores (Algorithm 2 lines 26–28).
//!
//! When the attacker does not know how many labels the victim holds
//! (the random-label setting of Figure 5), it clusters the per-label
//! scores into two groups and returns the labels of the higher-centroid
//! cluster.

/// Returns the indices (labels) belonging to the higher-mean cluster of a
/// 2-means over the scores. Ties and degenerate inputs fall back to the
/// single top score.
pub fn top_cluster_labels(scores: &[f64]) -> Vec<usize> {
    assert!(!scores.is_empty());
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    if !(max - min).is_normal() {
        // All scores (near-)equal: no cluster structure; return the argmax.
        let arg = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        return vec![arg];
    }
    let mut c_lo = min;
    let mut c_hi = max;
    let mut assign = vec![false; scores.len()]; // true = high cluster
    for _ in 0..100 {
        let mut changed = false;
        for (i, &s) in scores.iter().enumerate() {
            let hi = (s - c_hi).abs() <= (s - c_lo).abs();
            if hi != assign[i] {
                assign[i] = hi;
                changed = true;
            }
        }
        let (mut sum_hi, mut n_hi, mut sum_lo, mut n_lo) = (0.0, 0usize, 0.0, 0usize);
        for (i, &s) in scores.iter().enumerate() {
            if assign[i] {
                sum_hi += s;
                n_hi += 1;
            } else {
                sum_lo += s;
                n_lo += 1;
            }
        }
        if n_hi > 0 {
            c_hi = sum_hi / n_hi as f64;
        }
        if n_lo > 0 {
            c_lo = sum_lo / n_lo as f64;
        }
        if !changed {
            break;
        }
    }
    let picked: Vec<usize> =
        assign.iter().enumerate().filter(|(_, &hi)| hi).map(|(i, _)| i).collect();
    if picked.is_empty() || picked.len() == scores.len() {
        // Degenerate clustering: argmax fallback.
        let arg = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        return vec![arg];
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_clear_clusters() {
        let scores = vec![0.1, 0.9, 0.85, 0.05, 0.12, 0.95];
        let mut top = top_cluster_labels(&scores);
        top.sort_unstable();
        assert_eq!(top, vec![1, 2, 5]);
    }

    #[test]
    fn single_high_score() {
        let scores = vec![0.01, 0.02, 0.99, 0.015];
        assert_eq!(top_cluster_labels(&scores), vec![2]);
    }

    #[test]
    fn uniform_scores_fall_back_to_argmax() {
        let scores = vec![0.5, 0.5, 0.5];
        assert_eq!(top_cluster_labels(&scores).len(), 1);
    }

    #[test]
    fn two_point_input() {
        assert_eq!(top_cluster_labels(&[0.1, 0.8]), vec![1]);
    }

    #[test]
    fn handles_negative_scores() {
        let scores = vec![-5.0, -4.8, 3.0, 3.2];
        let mut top = top_cluster_labels(&scores);
        top.sort_unstable();
        assert_eq!(top, vec![2, 3]);
    }
}
