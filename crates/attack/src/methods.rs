//! The three attack scorers of Algorithm 2: `Jac`, `NN`, `NN-single`.

use std::collections::HashMap;

use olive_nn::zoo::{attacker_nn, attacker_nn_single};
use olive_nn::Sgd;
use olive_tee::UserId;

/// Observed per-user feature sets, per round (`index[i, t]`).
#[derive(Clone, Debug, Default)]
pub struct ObservationLog {
    /// Feature dimension (model dim `d` or cacheline count).
    pub feature_dim: usize,
    /// One map per round: participant → sorted feature ids.
    pub per_round: Vec<HashMap<UserId, Vec<u32>>>,
}

impl ObservationLog {
    /// Rounds the given user participated in.
    pub fn rounds_of(&self, user: UserId) -> Vec<usize> {
        (0..self.per_round.len()).filter(|&t| self.per_round[t].contains_key(&user)).collect()
    }

    /// All users that participated in at least one round.
    pub fn participants(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> =
            self.per_round.iter().flat_map(|m| m.keys().copied()).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

/// Teacher feature sets (`teacher[l, t]`).
#[derive(Clone, Debug, Default)]
pub struct TeacherLog {
    /// Feature dimension (must match the observations).
    pub feature_dim: usize,
    /// `per_round[t][l]` = sorted feature ids for label `l` at round `t`.
    pub per_round: Vec<Vec<Vec<u32>>>,
}

impl TeacherLog {
    /// Number of labels |L|.
    pub fn num_labels(&self) -> usize {
        self.per_round.first().map(|r| r.len()).unwrap_or(0)
    }
}

/// Hyperparameters of the attacker's MLP (Table 4).
#[derive(Clone, Copy, Debug)]
pub struct NnParams {
    /// Hidden width (paper: 1000 for NN, 2000 for NN-single).
    pub hidden: usize,
    /// Training epochs over the |L| teacher samples.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for NnParams {
    fn default() -> Self {
        NnParams { hidden: 128, epochs: 150, lr: 0.3 }
    }
}

/// Scoring method.
#[derive(Clone, Copy, Debug)]
pub enum AttackMethod {
    /// Jaccard similarity between union index sets (Algorithm 2 line 17).
    Jaccard,
    /// One classifier per round; scores averaged (line 19–21).
    Nn(NnParams),
    /// One classifier over rounds concatenated (lines 22–25).
    NnSingle(NnParams),
}

fn multi_hot(features: &[u32], dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    for &f in features {
        if (f as usize) < dim {
            v[f as usize] = 1.0;
        }
    }
    v
}

fn union(sets: impl IntoIterator<Item = Vec<u32>>) -> Vec<u32> {
    let mut all: Vec<u32> = sets.into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// |a ∩ b| / |a ∪ b| over sorted distinct slices.
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Scores every participant against every label. Returns
/// `user → per-label scores` (higher = more likely in the training data).
pub fn score_all_users(
    method: AttackMethod,
    obs: &ObservationLog,
    teacher: &TeacherLog,
    seed: u64,
) -> HashMap<UserId, Vec<f64>> {
    assert_eq!(obs.feature_dim, teacher.feature_dim, "feature spaces must match");
    assert_eq!(obs.per_round.len(), teacher.per_round.len(), "round counts must match");
    let labels = teacher.num_labels();
    let users = obs.participants();
    let mut out: HashMap<UserId, Vec<f64>> = HashMap::new();
    match method {
        AttackMethod::Jaccard => {
            for &user in &users {
                let rounds = obs.rounds_of(user);
                let observed = union(rounds.iter().map(|&t| obs.per_round[t][&user].clone()));
                let scores = (0..labels)
                    .map(|l| {
                        let teach = union(rounds.iter().map(|&t| teacher.per_round[t][l].clone()));
                        jaccard(&observed, &teach)
                    })
                    .collect();
                out.insert(user, scores);
            }
        }
        AttackMethod::Nn(params) => {
            let dim = obs.feature_dim;
            // Per-round models trained once, then applied to all users.
            let mut round_models = Vec::with_capacity(teacher.per_round.len());
            for (t, teach_t) in teacher.per_round.iter().enumerate() {
                let mut model = attacker_nn(dim, params.hidden, labels, seed ^ (t as u64) << 8);
                let mut opt = Sgd::new(params.lr, 0.9, model.param_count());
                let mut xs = Vec::with_capacity(labels * dim);
                let mut ys = Vec::with_capacity(labels);
                for (l, feats) in teach_t.iter().enumerate() {
                    xs.extend_from_slice(&multi_hot(feats, dim));
                    ys.push(l);
                }
                for _ in 0..params.epochs {
                    model.train_batch(&xs, &ys);
                    opt.step(&mut model);
                }
                round_models.push(model);
            }
            for &user in &users {
                let mut scores = vec![0.0f64; labels];
                let rounds = obs.rounds_of(user);
                for &t in &rounds {
                    let x = multi_hot(&obs.per_round[t][&user], dim);
                    let proba = round_models[t].predict_proba(&x, 1);
                    for (s, &p) in scores.iter_mut().zip(proba.iter()) {
                        *s += p as f64;
                    }
                }
                for s in &mut scores {
                    *s /= rounds.len().max(1) as f64;
                }
                out.insert(user, scores);
            }
        }
        AttackMethod::NnSingle(params) => {
            let t_rounds = teacher.per_round.len();
            let dim = obs.feature_dim * t_rounds;
            let mut model = attacker_nn_single(dim, params.hidden, labels, seed ^ 0x5176);
            let mut opt = Sgd::new(params.lr, 0.9, model.param_count());
            let mut xs = Vec::with_capacity(labels * dim);
            let mut ys = Vec::with_capacity(labels);
            for l in 0..labels {
                let mut row = vec![0.0f32; dim];
                for t in 0..t_rounds {
                    let block = multi_hot(&teacher.per_round[t][l], obs.feature_dim);
                    row[t * obs.feature_dim..(t + 1) * obs.feature_dim].copy_from_slice(&block);
                }
                xs.extend_from_slice(&row);
                ys.push(l);
            }
            for _ in 0..params.epochs {
                model.train_batch(&xs, &ys);
                opt.step(&mut model);
            }
            for &user in &users {
                // Non-participated rounds stay zero (the zeroization the
                // paper notes may cost NN-single some accuracy).
                let mut row = vec![0.0f32; dim];
                for &t in &obs.rounds_of(user) {
                    let block = multi_hot(&obs.per_round[t][&user], obs.feature_dim);
                    row[t * obs.feature_dim..(t + 1) * obs.feature_dim].copy_from_slice(&block);
                }
                let proba = model.predict_proba(&row, 1);
                out.insert(user, proba.iter().map(|&p| p as f64).collect());
            }
        }
    }
    out
}

/// Scores one user (thin wrapper over [`score_all_users`] for tests).
pub fn score_user(
    method: AttackMethod,
    obs: &ObservationLog,
    teacher: &TeacherLog,
    user: UserId,
    seed: u64,
) -> Vec<f64> {
    score_all_users(method, obs, teacher, seed)
        .remove(&user)
        .expect("user did not participate in any observed round")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_logs(labels: usize, dim: usize) -> (ObservationLog, TeacherLog) {
        // Label l "owns" feature block [l*8, l*8+8); teacher knows it; each
        // user u holds labels {u % labels} and observes that block.
        let rounds = 2;
        let mut obs = ObservationLog { feature_dim: dim, per_round: vec![] };
        let mut teach = TeacherLog { feature_dim: dim, per_round: vec![] };
        for t in 0..rounds {
            let mut m = HashMap::new();
            for u in 0..6u32 {
                let l = (u as usize) % labels;
                let feats: Vec<u32> =
                    (0..8).map(|j| (l * 8 + j) as u32).chain([(t as u32) + 60]).collect();
                m.insert(u, feats);
            }
            obs.per_round.push(m);
            teach
                .per_round
                .push((0..labels).map(|l| (0..8).map(|j| (l * 8 + j) as u32).collect()).collect());
        }
        (obs, teach)
    }

    #[test]
    fn jaccard_math() {
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[1], &[1]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
    }

    #[test]
    fn jaccard_attack_recovers_planted_labels() {
        let (obs, teach) = synthetic_logs(4, 64);
        let scores = score_all_users(AttackMethod::Jaccard, &obs, &teach, 1);
        for u in 0..6u32 {
            let s = &scores[&u];
            let best = s.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            assert_eq!(best, (u as usize) % 4, "user {u}: {s:?}");
        }
    }

    #[test]
    fn nn_attack_recovers_planted_labels() {
        let (obs, teach) = synthetic_logs(4, 64);
        let params = NnParams { hidden: 32, epochs: 120, lr: 0.3 };
        let scores = score_all_users(AttackMethod::Nn(params), &obs, &teach, 2);
        for u in 0..6u32 {
            let s = &scores[&u];
            let best = s.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            assert_eq!(best, (u as usize) % 4, "user {u}: {s:?}");
        }
    }

    #[test]
    fn nn_single_attack_recovers_planted_labels() {
        let (obs, teach) = synthetic_logs(4, 64);
        let params = NnParams { hidden: 48, epochs: 150, lr: 0.3 };
        let scores = score_all_users(AttackMethod::NnSingle(params), &obs, &teach, 3);
        let mut hits = 0;
        for u in 0..6u32 {
            let s = &scores[&u];
            let best = s.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            hits += usize::from(best == (u as usize) % 4);
        }
        assert!(hits >= 5, "NN-single should recover most: {hits}/6");
    }

    #[test]
    fn uninformative_observations_give_uninformative_scores() {
        // Every user observes the same features → identical scores for all
        // users → no attack signal (the defended case).
        let (mut obs, teach) = synthetic_logs(4, 64);
        for m in &mut obs.per_round {
            for feats in m.values_mut() {
                *feats = vec![0, 1, 2];
            }
        }
        let scores = score_all_users(AttackMethod::Jaccard, &obs, &teach, 4);
        let first = &scores[&0];
        for u in 1..6u32 {
            assert_eq!(&scores[&u], first);
        }
    }

    #[test]
    #[should_panic(expected = "feature spaces must match")]
    fn mismatched_dims_panic() {
        let (obs, mut teach) = synthetic_logs(2, 64);
        teach.feature_dim = 32;
        score_all_users(AttackMethod::Jaccard, &obs, &teach, 0);
    }
}
