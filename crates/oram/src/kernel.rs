//! PathORAM access-kernel selection.
//!
//! The scalar access path in [`crate::path_oram`] drives every stash
//! operation through per-slot traced reads and per-slot `o_select` tuple
//! copies — correct and readable, but the bookkeeping defeats
//! vectorization and costs `~4·(L+1)·S` tuple-sized select chains per
//! access. The batched kernel rebuilds the hot path around the same
//! observations as the sort kernel (`olive-oblivious::sort_kernel`):
//!
//! 1. **The trace is a closed-form function of the path.** A PathORAM
//!    access touches tree buckets along one (public, uniformly random)
//!    path and sweeps the whole stash a fixed number of times whatever
//!    the data, so the batched kernel emits the canonical schedule
//!    (per-bucket reads/writes plus `touch_rw_stripe` block events, one
//!    per stash sweep) and performs the data movement separately on
//!    untraced slices. Recording tracers expand each stripe into the
//!    exact per-slot sequence of the scalar path, so digests agree at
//!    every granularity — and, because emission is independent of the
//!    physical execution, at every thread count too.
//! 2. **Decisions live in the packed meta words.** Every stash decision
//!    reads only the packed `(key << 32) | leaf` u64, never the value
//!    payload, so the kernel mirrors the metas into one contiguous
//!    scratch array and scans *that* with the branchless mask-select
//!    accumulators of `olive-oblivious::meta_scan` (runtime-dispatched
//!    AVX2/AVX-512 monomorphizations). Values move at most a handful of
//!    times per access, by index.
//! 3. **Eviction depth is computed once per access.** A block with leaf
//!    `l` can evict into the path-to-`x` bucket at level `d` iff
//!    `d <= levels − bitlen(l ⊕ x)`; one `lzcnt` sweep yields every
//!    block's deepest eligible level, replacing the scalar path's
//!    per-bucket-slot full-stash `path_node` re-derivations.
//!
//! `OLIVE_ORAM_KERNEL=scalar` forces every ORAM built afterwards onto
//! the scalar reference path for differential testing (mirroring
//! `OLIVE_SORT_KERNEL`); the CI tier-1 job runs the ORAM suites that
//! way. Tests that need both kernels in one process use
//! [`crate::PathOram::set_kernel`] instead.

use std::sync::OnceLock;

/// Which implementation of the PathORAM access runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OramKernel {
    /// The readable per-slot reference path (traced `o_select` sweeps).
    Scalar,
    /// The batched meta-scan kernel (default). Bitwise-identical state,
    /// outputs, and trace digests to [`OramKernel::Scalar`].
    Batched,
}

/// Process-wide kernel selection: `OLIVE_ORAM_KERNEL=scalar` pins the
/// reference path, anything else (or unset) selects the batched kernel.
/// Read once and cached; both kernels produce bitwise-identical state,
/// outputs, and trace digests, so the knob only trades speed for
/// single-stepping readability.
pub fn oram_kernel() -> OramKernel {
    static KERNEL: OnceLock<OramKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| match std::env::var("OLIVE_ORAM_KERNEL").as_deref() {
        Ok("scalar") => OramKernel::Scalar,
        Ok("batched") | Err(_) => OramKernel::Batched,
        Ok(other) => {
            eprintln!(
                "OLIVE_ORAM_KERNEL={other:?} is not \"scalar\" or \"batched\"; using batched"
            );
            OramKernel::Batched
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_env_default_is_batched() {
        match std::env::var("OLIVE_ORAM_KERNEL").as_deref() {
            Ok("scalar") => assert_eq!(oram_kernel(), OramKernel::Scalar),
            _ => assert_eq!(oram_kernel(), OramKernel::Batched),
        }
    }
}
