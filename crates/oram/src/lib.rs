//! # olive-oram
//!
//! PathORAM in the ZeroTrace/SGX security model — the general-purpose
//! oblivious-memory comparator of the paper's Figure 9.
//!
//! Plain PathORAM assumes a private "client storage" for the stash and
//! position map; inside an SGX enclave no such private memory exists (the
//! adversary sees every access, Section 2.3), so ZeroTrace makes stash and
//! position-map accesses oblivious themselves via `CMOV`-based linear
//! scans. That constant-factor overhead — a full stash scan per path slot,
//! plus recursive position-map lookups — is precisely why the paper's
//! task-specific Advanced algorithm beats ORAM by >10× (Section 5.5).
//!
//! This crate provides:
//! * [`PathOram`] — bucketed tree ORAM (Z = 4), oblivious stash, three
//!   position-map strategies ([`PosMapKind`]): `Trusted` (plain array —
//!   the client-storage assumption, *invalid* under SGX, kept as an
//!   ablation), `LinearScan` (ZeroTrace-faithful O(N) oblivious scan),
//!   and `Recursive` (position map stored in a smaller ORAM, as real
//!   ZeroTrace deploys);
//! * [`kernel`] — the access-kernel split: a batched fast path (canonical
//!   trace emission + `olive-oblivious::meta_scan` branchless sweeps over
//!   the packed meta words) that is bitwise state-, output-, and
//!   trace-digest-identical to the scalar reference, selected per process
//!   with `OLIVE_ORAM_KERNEL` (mirroring `OLIVE_SORT_KERNEL`);
//! * stash-occupancy and eviction instrumentation to validate the
//!   stash-size ≤ 20 configuration the paper uses and feed the telemetry
//!   counters.
//!
//! This crate stays `forbid(unsafe_code)`: the ISA-dispatched scan
//! monomorphizations live in `olive-oblivious` next to the sort kernel's.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod path_oram;
pub mod posmap;

pub use kernel::{oram_kernel, OramKernel};
pub use path_oram::{
    predicted_resident_bytes, BlockCodec, OramError, OramStats, PathOram, PathOramConfig,
    BUCKET_SIZE, INVALID_KEY,
};
pub use posmap::{PosBlock, PosMapKind, POS_BLOCK_FANOUT};
