//! PathORAM with oblivious stash operations (ZeroTrace construction).

use olive_memsim::{StateError, StateReader, StateWriter, Tracer, TrackedBuf};
use olive_oblivious::primitives::Oblivious;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::posmap::{PosMap, PosMapKind};

/// Fixed-width serialization for ORAM block values, so a whole ORAM
/// (tree, stash, position map, path RNG) can be snapshotted into a
/// sealed checkpoint and restored bit-exactly.
pub trait BlockCodec: Sized {
    /// Append this value's encoding. Must be fixed-width per type.
    fn encode_into(&self, w: &mut StateWriter);
    /// Decode one value back.
    fn decode_from(r: &mut StateReader<'_>) -> Result<Self, StateError>;
}

impl BlockCodec for u64 {
    fn encode_into(&self, w: &mut StateWriter) {
        w.put_u64(*self);
    }
    fn decode_from(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        r.get_u64()
    }
}

/// Blocks per bucket (the standard Z = 4).
pub const BUCKET_SIZE: usize = 4;

/// Sentinel key marking an empty slot.
pub const INVALID_KEY: u32 = u32::MAX;

#[inline(always)]
fn pack_meta(key: u32, leaf: u32) -> u64 {
    ((key as u64) << 32) | leaf as u64
}

#[inline(always)]
fn meta_key(meta: u64) -> u32 {
    (meta >> 32) as u32
}

#[inline(always)]
fn meta_leaf(meta: u64) -> u32 {
    meta as u32
}

/// ORAM configuration.
#[derive(Clone, Copy, Debug)]
pub struct PathOramConfig {
    /// Number of addressable blocks (logical keys `0..capacity`).
    pub capacity: usize,
    /// Persistent stash limit; the paper fixes 20 (Section 5.5 setup).
    /// Exceeding it during operation is a hard error (probability is
    /// negligible for Z = 4 by the PathORAM analysis).
    pub stash_limit: usize,
    /// Position-map strategy.
    pub posmap: PosMapKind,
    /// Base region id for memory tracing (tree, stash, posmap get
    /// `base`, `base+1`, `base+2`; recursive maps continue upward).
    pub region_base: u32,
}

/// Occupancy / usage counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct OramStats {
    /// Completed accesses.
    pub accesses: u64,
    /// High-water mark of persistent stash occupancy (post-eviction).
    pub max_stash_occupancy: usize,
}

/// A PathORAM holding `capacity` blocks of type `V`.
///
/// All stash and bucket manipulation is branch-free (`o_select`) and
/// touches a data-independent sequence of addresses; the only variability
/// in the trace is the *uniformly random* path identity, which is exactly
/// PathORAM's statistical-obliviousness guarantee.
pub struct PathOram<V: Oblivious + Default> {
    /// `(2·leaves − 1) · Z` slots of `(meta, value)`, heap-ordered buckets.
    tree: TrackedBuf<(u64, V)>,
    /// Oblivious stash: `stash_limit + Z·(L+1)` slots.
    stash: TrackedBuf<(u64, V)>,
    posmap: PosMap,
    leaves: u32,
    levels: u32,
    config: PathOramConfig,
    rng: SmallRng,
    stats: OramStats,
}

impl<V: Oblivious + Default> PathOram<V> {
    /// Builds an empty ORAM (every key initially reads `V::default()`).
    pub fn new(config: PathOramConfig, seed: u64) -> Self {
        assert!(config.capacity >= 1);
        assert!((config.capacity as u64) < INVALID_KEY as u64, "capacity too large");
        let leaves = config.capacity.next_power_of_two().max(2) as u32;
        let levels = leaves.trailing_zeros(); // path has levels+1 buckets
        let buckets = 2 * leaves as usize - 1;
        let empty = (pack_meta(INVALID_KEY, 0), V::default());
        let tree = TrackedBuf::new(config.region_base, vec![empty; buckets * BUCKET_SIZE]);
        let path_len = BUCKET_SIZE * (levels as usize + 1);
        let stash =
            TrackedBuf::new(config.region_base + 1, vec![empty; config.stash_limit + path_len]);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x04A7_04A7);
        let posmap = {
            let mut leaf_rng = SmallRng::seed_from_u64(rng.gen());
            PosMap::build(config.posmap, config.capacity, config.region_base + 2, seed, |_| {
                leaf_rng.gen_range(0..leaves)
            })
        };
        PathOram { tree, stash, posmap, leaves, levels, config, rng, stats: OramStats::default() }
    }

    /// Number of addressable blocks.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Usage counters.
    pub fn stats(&self) -> OramStats {
        self.stats
    }

    /// Approximate resident bytes of the tree + stash (for EPC accounting).
    pub fn memory_bytes(&self) -> u64 {
        ((self.tree.len() + self.stash.len()) * core::mem::size_of::<(u64, V)>()) as u64
    }

    /// Heap index (1-based) of the bucket at `level` on the path to `leaf`.
    #[inline]
    fn path_node(&self, leaf: u32, level: u32) -> u32 {
        (self.leaves + leaf) >> (self.levels - level)
    }

    /// Oblivious read: returns the block's value (default if never written).
    pub fn read<TR: Tracer>(&mut self, key: u32, tr: &mut TR) -> V {
        self.access(key, |v| v, tr)
    }

    /// Oblivious write.
    pub fn write<TR: Tracer>(&mut self, key: u32, value: V, tr: &mut TR) {
        self.access(key, move |_| value, tr);
    }

    /// Oblivious read-modify-write: applies `f` to the current value and
    /// stores the result; returns the *old* value. `f` must be branch-free
    /// with respect to secret data (it runs once per stash slot).
    pub fn update<TR: Tracer, F: Fn(V) -> V + Copy>(&mut self, key: u32, f: F, tr: &mut TR) -> V {
        self.access(key, f, tr)
    }

    /// The full PathORAM access: remap, read path into stash, scan-update,
    /// and greedily evict back along the same path.
    fn access<TR: Tracer, F: Fn(V) -> V + Copy>(&mut self, key: u32, f: F, tr: &mut TR) -> V {
        assert!((key as usize) < self.config.capacity, "key out of range");
        let new_leaf = self.rng.gen_range(0..self.leaves);
        let leaf = self.posmap.get_and_set(key, new_leaf, tr);
        debug_assert!(leaf < self.leaves, "corrupt position map");
        let empty = (pack_meta(INVALID_KEY, 0), V::default());

        // Phase 1: move the whole path into the stash.
        for level in 0..=self.levels {
            let node = self.path_node(leaf, level);
            for z in 0..BUCKET_SIZE {
                let idx = (node as usize - 1) * BUCKET_SIZE + z;
                let slot = self.tree.read(idx, tr);
                self.tree.write(idx, empty, tr);
                self.stash_insert(slot, tr);
            }
        }

        // Phase 2: one oblivious sweep: find the block, apply `f`, remap
        // its leaf; remember whether it existed.
        let mut old = V::default();
        let mut found = false;
        for i in 0..self.stash.len() {
            let (meta, value) = self.stash.read(i, tr);
            let hit = meta_key(meta) == key;
            old = V::o_select(hit, value, old);
            let new_value = V::o_select(hit, f(value), value);
            let new_meta = u64::o_select(hit, pack_meta(key, new_leaf), meta);
            self.stash.write(i, (new_meta, new_value), tr);
            found |= hit;
        }
        // First-ever access: materialize the block (the insert scan runs
        // unconditionally; an already-found block inserts an empty slot).
        let fresh = (
            u64::o_select(found, pack_meta(INVALID_KEY, 0), pack_meta(key, new_leaf)),
            V::o_select(found, V::default(), f(V::default())),
        );
        self.stash_insert(fresh, tr);

        // Phase 3: greedy eviction, deepest bucket first.
        for level in (0..=self.levels).rev() {
            let node = self.path_node(leaf, level);
            for z in 0..BUCKET_SIZE {
                let idx = (node as usize - 1) * BUCKET_SIZE + z;
                let mut chosen = empty;
                let mut chosen_found = false;
                for i in 0..self.stash.len() {
                    let (meta, value) = self.stash.read(i, tr);
                    let valid = meta_key(meta) != INVALID_KEY;
                    // Eligible iff this bucket lies on the block's own path.
                    let on_path = valid && self.path_node(meta_leaf(meta), level) == node;
                    let take = on_path && !chosen_found;
                    chosen = <(u64, V)>::o_select(take, (meta, value), chosen);
                    self.stash.write(i, <(u64, V)>::o_select(take, empty, (meta, value)), tr);
                    chosen_found |= take;
                }
                self.tree.write(idx, chosen, tr);
            }
        }

        self.stats.accesses += 1;
        let occupancy = self.stash_occupancy();
        self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(occupancy);
        assert!(
            occupancy <= self.config.stash_limit,
            "stash overflow: {occupancy} > limit {} after {} accesses",
            self.config.stash_limit,
            self.stats.accesses
        );
        old
    }

    /// Inserts a slot into the first free stash position with a fixed
    /// full-scan trace. Inserting an empty slot is a no-op with the same
    /// trace. Panics if the slot is valid and the stash is full.
    fn stash_insert<TR: Tracer>(&mut self, slot: (u64, V), tr: &mut TR) {
        let valid = meta_key(slot.0) != INVALID_KEY;
        let mut placed = false;
        for i in 0..self.stash.len() {
            let cur = self.stash.read(i, tr);
            let free = meta_key(cur.0) == INVALID_KEY;
            let put = valid && free && !placed;
            self.stash.write(i, <(u64, V)>::o_select(put, slot, cur), tr);
            placed |= put;
        }
        assert!(placed || !valid, "stash insert failed: no free slot");
    }

    /// Current number of occupied stash slots (untraced: diagnostic only).
    pub fn stash_occupancy(&self) -> usize {
        self.stash
            .as_slice_untraced()
            .iter()
            .filter(|(meta, _)| meta_key(*meta) != INVALID_KEY)
            .count()
    }
}

impl<V: Oblivious + Default + BlockCodec> PathOram<V> {
    /// Serializes the complete ORAM state — tree, stash, position map,
    /// path RNG, and counters — for a sealed checkpoint. Loading the
    /// blob into a freshly built ORAM of the *same configuration*
    /// reproduces the snapshotted instance exactly: every subsequent
    /// access returns the same value and emits the same trace.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.save_into(&mut w);
        w.into_bytes()
    }

    /// Restores state captured by [`PathOram::save_state`] into this
    /// instance. `self` must have been built with the same
    /// configuration (capacity, stash limit, position-map strategy);
    /// a blob from a differently shaped ORAM fails with
    /// [`StateError::Mismatch`]. Restoration is untraced: unsealing a
    /// checkpoint is bulk I/O outside the adversary-observed window.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        self.load_from(&mut r)?;
        r.expect_end()
    }

    pub(crate) fn save_into(&self, w: &mut StateWriter) {
        w.put_usize(self.config.capacity);
        w.put_u32(self.leaves);
        w.put_u32(self.levels);
        for buf in [&self.tree, &self.stash] {
            w.put_usize(buf.len());
            for (meta, value) in buf.as_slice_untraced() {
                w.put_u64(*meta);
                value.encode_into(w);
            }
        }
        self.posmap.save_into(w);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_u64(self.stats.accesses);
        w.put_usize(self.stats.max_stash_occupancy);
    }

    pub(crate) fn load_from(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        if r.get_usize()? != self.config.capacity
            || r.get_u32()? != self.leaves
            || r.get_u32()? != self.levels
        {
            return Err(StateError::Mismatch);
        }
        for buf in [&mut self.tree, &mut self.stash] {
            if r.get_usize()? != buf.len() {
                return Err(StateError::Mismatch);
            }
            for slot in buf.as_mut_slice_untraced() {
                *slot = (r.get_u64()?, V::decode_from(r)?);
            }
        }
        self.posmap.load_from(r)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        self.stats.accesses = r.get_u64()?;
        self.stats.max_stash_occupancy = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};
    use std::collections::HashMap;

    fn oram(capacity: usize, posmap: PosMapKind, seed: u64) -> PathOram<u64> {
        PathOram::new(PathOramConfig { capacity, stash_limit: 20, posmap, region_base: 10 }, seed)
    }

    /// Basic read/write/update semantics, sharing one constructed ORAM
    /// (construction dominates tiny tests; one instance covers all three
    /// behaviors without loss of coverage).
    #[test]
    fn basic_ops_share_one_oram() {
        let mut o = oram(16, PosMapKind::LinearScan, 1);
        for k in 0..16 {
            assert_eq!(o.read(k, &mut NullTracer), 0, "unwritten keys read default");
        }
        o.write(5, 555, &mut NullTracer);
        o.write(7, 777, &mut NullTracer);
        assert_eq!(o.read(5, &mut NullTracer), 555);
        assert_eq!(o.read(7, &mut NullTracer), 777);
        assert_eq!(o.read(6, &mut NullTracer), 0);
        let old = o.update(5, |v| v + 5, &mut NullTracer);
        assert_eq!(old, 555, "update returns the pre-image");
        assert_eq!(o.read(5, &mut NullTracer), 560, "update applies f");
    }

    /// The canonical model test: random ops vs a HashMap, across all
    /// position-map strategies.
    #[test]
    fn matches_reference_model() {
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            let capacity = 64;
            let mut o = oram(capacity, posmap, 42);
            let mut model: HashMap<u32, u64> = HashMap::new();
            let mut rng = SmallRng::seed_from_u64(7);
            for step in 0..200 {
                let key = rng.gen_range(0..capacity as u32);
                if rng.gen_bool(0.5) {
                    let v = rng.gen::<u64>() >> 1;
                    o.write(key, v, &mut NullTracer);
                    model.insert(key, v);
                } else {
                    let got = o.read(key, &mut NullTracer);
                    let want = model.get(&key).copied().unwrap_or(0);
                    assert_eq!(got, want, "{posmap:?} step {step} key {key}");
                }
            }
        }
    }

    #[test]
    fn stash_stays_bounded_under_load() {
        let mut o = oram(128, PosMapKind::Trusted, 9);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..800 {
            let key = rng.gen_range(0..128u32);
            o.write(key, key as u64, &mut NullTracer);
        }
        // The access() assertion already enforces ≤ 20; record the margin.
        assert!(o.stats().max_stash_occupancy <= 20);
        assert_eq!(o.stats().accesses, 800);
    }

    #[test]
    fn trace_length_is_key_independent() {
        // Statistical obliviousness: with the path randomness fixed by the
        // seed, the *shape* (length and op counts) of the trace must not
        // depend on which key is touched. (Full trace equality does not
        // hold — the random path identity legitimately differs — so we
        // compare op counts, which would differ for any key-dependent
        // stash/bucket logic.)
        let counts = |key: u32| {
            let mut o = oram(64, PosMapKind::LinearScan, 5);
            let mut tr = RecordingTracer::new(Granularity::Element);
            o.write(key, 1, &mut tr);
            o.read(key, &mut tr);
            (tr.stats().reads, tr.stats().writes)
        };
        let base = counts(0);
        for key in [1u32, 17, 63] {
            assert_eq!(counts(key), base, "key {key}");
        }
    }

    #[test]
    fn paths_are_uniformly_distributed() {
        // The remapped leaf after each access is uniform — bucket the
        // accessed paths of a fixed key and check rough uniformity.
        let mut o = oram(64, PosMapKind::Trusted, 13);
        let mut hist = [0u32; 4];
        for _ in 0..400 {
            o.write(5, 1, &mut NullTracer);
            // Peek the posmap through a read of its trusted variant: the
            // next access path = current leaf; bucket by quartile.
            let leaf = match &o.posmap {
                PosMap::Trusted(v) => v[5],
                _ => unreachable!(),
            };
            hist[(leaf / 16) as usize] += 1;
        }
        for (i, &c) in hist.iter().enumerate() {
            assert!((50..=150).contains(&c), "quartile {i}: {c}/400");
        }
    }

    #[test]
    fn capacity_one_works() {
        let mut o = oram(1, PosMapKind::LinearScan, 21);
        o.write(0, 99, &mut NullTracer);
        assert_eq!(o.read(0, &mut NullTracer), 99);
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn out_of_range_key_panics() {
        let mut o = oram(8, PosMapKind::LinearScan, 1);
        o.read(8, &mut NullTracer);
    }

    #[test]
    fn recursive_posmap_large() {
        // Large enough to force a genuinely recursive position map
        // (512 keys → 32 posmap blocks > the 16-block linear cutoff), but
        // no larger: recursive accesses are the most expensive operation
        // in this suite and this test once dominated its wall-clock.
        let mut o = oram(512, PosMapKind::Recursive, 31);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut model: HashMap<u32, u64> = HashMap::new();
        for _ in 0..96 {
            let key = rng.gen_range(0..512u32);
            let v = rng.gen::<u64>() >> 1;
            o.write(key, v, &mut NullTracer);
            model.insert(key, v);
        }
        // Read back a bounded sample (reads cost the same as writes;
        // verifying every model entry re-pays the whole write pass).
        for (k, v) in model.into_iter().take(32) {
            assert_eq!(o.read(k, &mut NullTracer), v, "key {k}");
        }
    }

    #[test]
    fn state_roundtrip_resumes_exactly() {
        // Snapshot mid-stream, restore into a *fresh* same-config ORAM,
        // then drive both with identical operations: values AND traces
        // must match (the restored RNG continues the same path stream).
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            let capacity = 300; // recursive: 19 blocks > 16 → a real inner ORAM
            let cfg = PathOramConfig { capacity, stash_limit: 40, posmap, region_base: 10 };
            let mut a = PathOram::<u64>::new(cfg, 77);
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..40 {
                let key = rng.gen_range(0..capacity as u32);
                a.write(key, key as u64 + 1000, &mut NullTracer);
            }
            let blob = a.save_state();
            let mut b = PathOram::<u64>::new(cfg, 12345); // seed irrelevant post-load
            b.load_state(&blob).unwrap();
            assert_eq!(b.stats().accesses, a.stats().accesses);
            let mut tra = RecordingTracer::new(Granularity::Element);
            let mut trb = RecordingTracer::new(Granularity::Element);
            for _ in 0..30 {
                let key = rng.gen_range(0..capacity as u32);
                assert_eq!(
                    a.update(key, |v| v ^ 7, &mut tra),
                    b.update(key, |v| v ^ 7, &mut trb),
                    "{posmap:?} value divergence after restore"
                );
            }
            assert_eq!(tra.digest(), trb.digest(), "{posmap:?} trace divergence after restore");
        }
    }

    #[test]
    fn state_blob_shape_mismatch_rejected() {
        let a = oram(64, PosMapKind::LinearScan, 1);
        let blob = a.save_state();
        // Different capacity.
        let mut b = oram(32, PosMapKind::LinearScan, 1);
        assert_eq!(b.load_state(&blob), Err(olive_memsim::StateError::Mismatch));
        // Different posmap strategy.
        let mut c = oram(64, PosMapKind::Trusted, 1);
        assert_eq!(c.load_state(&blob), Err(olive_memsim::StateError::Mismatch));
        // Truncation.
        let mut d = oram(64, PosMapKind::LinearScan, 2);
        assert_eq!(d.load_state(&blob[..blob.len() - 1]), Err(olive_memsim::StateError::Truncated));
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
}
