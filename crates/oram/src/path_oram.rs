//! PathORAM with oblivious stash operations (ZeroTrace construction).
//!
//! Two access kernels implement the identical abstract machine (see
//! [`crate::kernel`]): the **scalar** reference path drives every stash
//! operation through traced per-slot `o_select` sweeps, the **batched**
//! default emits the canonical trace as block events and runs the
//! decisions as SIMD-friendly scans over a contiguous mirror of the
//! packed `(key << 32) | leaf` meta words. State, outputs, and trace
//! digests are bitwise identical between kernels at every granularity —
//! the differential suites pin this.

use olive_memsim::{Op, StateError, StateReader, StateWriter, Tracer, TrackedBuf};
use olive_oblivious::meta_scan;
use olive_oblivious::primitives::Oblivious;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kernel::{oram_kernel, OramKernel};
use crate::posmap::{PosMap, PosMapKind, POS_BLOCK_FANOUT};

/// Fixed-width serialization for ORAM block values, so a whole ORAM
/// (tree, stash, position map, path RNG) can be snapshotted into a
/// sealed checkpoint and restored bit-exactly.
pub trait BlockCodec: Sized {
    /// Append this value's encoding. Must be fixed-width per type.
    fn encode_into(&self, w: &mut StateWriter);
    /// Decode one value back.
    fn decode_from(r: &mut StateReader<'_>) -> Result<Self, StateError>;
}

impl BlockCodec for u64 {
    fn encode_into(&self, w: &mut StateWriter) {
        w.put_u64(*self);
    }
    fn decode_from(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        r.get_u64()
    }
}

/// Blocks per bucket (the standard Z = 4).
pub const BUCKET_SIZE: usize = 4;

/// Sentinel key marking an empty slot.
pub const INVALID_KEY: u32 = u32::MAX;

#[inline(always)]
fn pack_meta(key: u32, leaf: u32) -> u64 {
    ((key as u64) << 32) | leaf as u64
}

#[inline(always)]
fn meta_key(meta: u64) -> u32 {
    (meta >> 32) as u32
}

#[inline(always)]
fn meta_leaf(meta: u64) -> u32 {
    meta as u32
}

/// Heap index (1-based) of the bucket at `level` on the path to `leaf`
/// in a tree with `leaves` leaves and `levels + 1` levels.
#[inline(always)]
fn path_node_at(leaves: u32, levels: u32, leaf: u32, level: u32) -> u32 {
    (leaves + leaf) >> (levels - level)
}

/// Structured access errors. Inside an enclave an aborting panic is the
/// worst failure mode (it tears down the whole attested round), so the
/// `try_*` entry points surface caller bugs as values; the infallible
/// entry points keep the documented panic contract for code that has
/// already range-checked its keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OramError {
    /// The logical key is outside `0..capacity`.
    KeyOutOfRange {
        /// The offending key.
        key: u32,
        /// The ORAM's capacity.
        capacity: usize,
    },
}

impl core::fmt::Display for OramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OramError::KeyOutOfRange { key, capacity } => {
                write!(f, "key out of range: {key} >= capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for OramError {}

/// ORAM configuration.
#[derive(Clone, Copy, Debug)]
pub struct PathOramConfig {
    /// Number of addressable blocks (logical keys `0..capacity`).
    pub capacity: usize,
    /// Persistent stash limit; the paper fixes 20 (Section 5.5 setup).
    /// Exceeding it during operation is a hard error (probability is
    /// negligible for Z = 4 by the PathORAM analysis).
    pub stash_limit: usize,
    /// Position-map strategy.
    pub posmap: PosMapKind,
    /// Base region id for memory tracing (tree, stash, posmap get
    /// `base`, `base+1`, `base+2`; recursive maps continue upward).
    pub region_base: u32,
}

/// Occupancy / usage counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct OramStats {
    /// Completed accesses.
    pub accesses: u64,
    /// High-water mark of persistent stash occupancy (post-eviction).
    pub max_stash_occupancy: usize,
    /// Valid blocks written back into tree buckets by evictions.
    /// Counted identically by both kernels; **not** serialized (the
    /// checkpoint blob layout predates it), so restored instances
    /// restart it at zero.
    pub evicted_blocks: u64,
}

/// Reusable per-access scratch — the batched kernel's de-amortization:
/// nothing is allocated inside `access`. Host-side bookkeeping only:
/// never serialized, never traced (the canonical trace emission stands
/// in for the scans that read it).
struct AccessScratch {
    /// Contiguous mirror of the stash meta words (kept in sync through
    /// every stash mutation during an access).
    meta: Vec<u64>,
    /// Deepest eligible eviction level per stash slot (−1 = free).
    depth: Vec<i32>,
    /// Ascending free-slot list, consumed front to back.
    free: Vec<u32>,
    /// Per-bucket eviction picks, plus one sentinel slot.
    picks: [u32; BUCKET_SIZE + 1],
}

impl AccessScratch {
    fn with_slots(slots: usize) -> Self {
        AccessScratch {
            meta: vec![0; slots],
            depth: vec![-1; slots],
            free: vec![0; slots],
            picks: [0; BUCKET_SIZE + 1],
        }
    }
}

/// A PathORAM holding `capacity` blocks of type `V`.
///
/// All stash and bucket manipulation is branch-free (`o_select`) and
/// touches a data-independent sequence of addresses; the only variability
/// in the trace is the *uniformly random* path identity, which is exactly
/// PathORAM's statistical-obliviousness guarantee.
pub struct PathOram<V: Oblivious + Default> {
    /// `(2·leaves − 1) · Z` slots of `(meta, value)`, heap-ordered buckets.
    tree: TrackedBuf<(u64, V)>,
    /// Oblivious stash: `stash_limit + Z·(L+1)` slots.
    stash: TrackedBuf<(u64, V)>,
    pub(crate) posmap: PosMap,
    leaves: u32,
    levels: u32,
    config: PathOramConfig,
    rng: SmallRng,
    stats: OramStats,
    kernel: OramKernel,
    scratch: AccessScratch,
}

impl<V: Oblivious + Default> PathOram<V> {
    /// Builds an empty ORAM (every key initially reads `V::default()`).
    pub fn new(config: PathOramConfig, seed: u64) -> Self {
        assert!(config.capacity >= 1);
        assert!((config.capacity as u64) < INVALID_KEY as u64, "capacity too large");
        let leaves = config.capacity.next_power_of_two().max(2) as u32;
        let levels = leaves.trailing_zeros(); // path has levels+1 buckets
        let buckets = 2 * leaves as usize - 1;
        let empty = (pack_meta(INVALID_KEY, 0), V::default());
        let tree = TrackedBuf::new(config.region_base, vec![empty; buckets * BUCKET_SIZE]);
        let path_len = BUCKET_SIZE * (levels as usize + 1);
        let stash =
            TrackedBuf::new(config.region_base + 1, vec![empty; config.stash_limit + path_len]);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x04A7_04A7);
        let posmap = {
            let mut leaf_rng = SmallRng::seed_from_u64(rng.gen());
            PosMap::build(config.posmap, config.capacity, config.region_base + 2, seed, |_| {
                leaf_rng.gen_range(0..leaves)
            })
        };
        let scratch = AccessScratch::with_slots(stash.len());
        PathOram {
            tree,
            stash,
            posmap,
            leaves,
            levels,
            config,
            rng,
            stats: OramStats::default(),
            kernel: oram_kernel(),
            scratch,
        }
    }

    /// Number of addressable blocks.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Usage counters.
    pub fn stats(&self) -> OramStats {
        self.stats
    }

    /// The active access kernel.
    pub fn kernel(&self) -> OramKernel {
        self.kernel
    }

    /// Overrides the access kernel for this instance and, recursively,
    /// its position-map ORAMs (in-process differential tests compare
    /// kernels without touching the `OLIVE_ORAM_KERNEL` process knob).
    pub fn set_kernel(&mut self, kernel: OramKernel) {
        self.kernel = kernel;
        self.posmap.set_kernel(kernel);
    }

    /// Approximate resident bytes of the tree + stash (for EPC accounting).
    pub fn memory_bytes(&self) -> u64 {
        ((self.tree.len() + self.stash.len()) * core::mem::size_of::<(u64, V)>()) as u64
    }

    /// Bytes of the reusable per-access scratch (meta mirror, depth map,
    /// free list, eviction picks), including the recursive position
    /// map's. Allocated once at construction; `access` allocates nothing.
    pub fn scratch_bytes(&self) -> u64 {
        let own = (self.scratch.meta.len() * 8
            + self.scratch.depth.len() * 4
            + self.scratch.free.len() * 4
            + core::mem::size_of_val(&self.scratch.picks)) as u64;
        own + self.posmap.scratch_bytes()
    }

    /// Total resident bytes — tree, stash, position map (recursively,
    /// including inner trees, stashes, and scratch), and this ORAM's
    /// access scratch — the number the EPC working-set model charges.
    pub fn resident_bytes(&self) -> u64 {
        self.memory_bytes() + self.posmap.storage_bytes() + self.scratch_bytes()
    }

    /// Heap index (1-based) of the bucket at `level` on the path to `leaf`.
    #[inline]
    fn path_node(&self, leaf: u32, level: u32) -> u32 {
        path_node_at(self.leaves, self.levels, leaf, level)
    }

    /// Oblivious read: returns the block's value (default if never written).
    pub fn read<TR: Tracer>(&mut self, key: u32, tr: &mut TR) -> V {
        self.access(key, |v| v, tr)
    }

    /// Oblivious write.
    pub fn write<TR: Tracer>(&mut self, key: u32, value: V, tr: &mut TR) {
        self.access(key, move |_| value, tr);
    }

    /// Oblivious read-modify-write: applies `f` to the current value and
    /// stores the result; returns the *old* value. `f` must be branch-free
    /// with respect to secret data and pure (the scalar kernel evaluates
    /// it once per stash slot, the batched kernel once per access).
    pub fn update<TR: Tracer, F: Fn(V) -> V + Copy>(&mut self, key: u32, f: F, tr: &mut TR) -> V {
        self.access(key, f, tr)
    }

    /// Fused read-and-clear — aggregation's drain pattern: one path walk
    /// returns the value and stores `V::default()` back, instead of the
    /// read-walk + write-walk a naive drain would pay. The block stays
    /// resident (zeroed), so the position map and trace shape are
    /// unchanged — `take` is trace- and state-identical to
    /// `update(key, |_| V::default())`.
    pub fn take<TR: Tracer>(&mut self, key: u32, tr: &mut TR) -> V {
        self.access(key, |_| V::default(), tr)
    }

    /// [`PathOram::read`] returning a structured error on caller bugs.
    pub fn try_read<TR: Tracer>(&mut self, key: u32, tr: &mut TR) -> Result<V, OramError> {
        self.try_access(key, |v| v, tr)
    }

    /// [`PathOram::write`] returning a structured error on caller bugs.
    pub fn try_write<TR: Tracer>(
        &mut self,
        key: u32,
        value: V,
        tr: &mut TR,
    ) -> Result<(), OramError> {
        self.try_access(key, move |_| value, tr).map(|_| ())
    }

    /// [`PathOram::update`] returning a structured error on caller bugs.
    pub fn try_update<TR: Tracer, F: Fn(V) -> V + Copy>(
        &mut self,
        key: u32,
        f: F,
        tr: &mut TR,
    ) -> Result<V, OramError> {
        self.try_access(key, f, tr)
    }

    /// [`PathOram::take`] returning a structured error on caller bugs.
    pub fn try_take<TR: Tracer>(&mut self, key: u32, tr: &mut TR) -> Result<V, OramError> {
        self.try_access(key, |_| V::default(), tr)
    }

    /// Kernel dispatch with the documented panic contract ("key out of
    /// range") for the infallible entry points.
    fn access<TR: Tracer, F: Fn(V) -> V + Copy>(&mut self, key: u32, f: F, tr: &mut TR) -> V {
        match self.try_access(key, f, tr) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Range-checks `key`, then runs the full PathORAM access — remap,
    /// read path into stash, scan-update, greedy evict — on the active
    /// kernel. Both kernels leave bitwise-identical state and emit
    /// digest-identical traces.
    fn try_access<TR: Tracer, F: Fn(V) -> V + Copy>(
        &mut self,
        key: u32,
        f: F,
        tr: &mut TR,
    ) -> Result<V, OramError> {
        if key as usize >= self.config.capacity {
            return Err(OramError::KeyOutOfRange { key, capacity: self.config.capacity });
        }
        Ok(match self.kernel {
            OramKernel::Scalar => self.access_scalar(key, f, tr),
            OramKernel::Batched => self.access_batched(key, f, tr),
        })
    }

    /// The scalar reference access: every decision runs as a traced,
    /// branch-free `o_select` sweep over the whole stash.
    fn access_scalar<TR: Tracer, F: Fn(V) -> V + Copy>(
        &mut self,
        key: u32,
        f: F,
        tr: &mut TR,
    ) -> V {
        let new_leaf = self.rng.gen_range(0..self.leaves);
        let leaf = self.posmap.get_and_set(key, new_leaf, tr);
        debug_assert!(leaf < self.leaves, "corrupt position map");
        let empty = (pack_meta(INVALID_KEY, 0), V::default());

        // Phase 1: move the whole path into the stash.
        for level in 0..=self.levels {
            let node = self.path_node(leaf, level);
            for z in 0..BUCKET_SIZE {
                let idx = (node as usize - 1) * BUCKET_SIZE + z;
                let slot = self.tree.read(idx, tr);
                self.tree.write(idx, empty, tr);
                self.stash_insert(slot, tr);
            }
        }

        // Phase 2: one oblivious sweep: find the block, apply `f`, remap
        // its leaf; remember whether it existed.
        let mut old = V::default();
        let mut found = false;
        for i in 0..self.stash.len() {
            let (meta, value) = self.stash.read(i, tr);
            let hit = meta_key(meta) == key;
            old = V::o_select(hit, value, old);
            let new_value = V::o_select(hit, f(value), value);
            let new_meta = u64::o_select(hit, pack_meta(key, new_leaf), meta);
            self.stash.write(i, (new_meta, new_value), tr);
            found |= hit;
        }
        // First-ever access: materialize the block (the insert scan runs
        // unconditionally; an already-found block inserts an empty slot).
        let fresh = (
            u64::o_select(found, pack_meta(INVALID_KEY, 0), pack_meta(key, new_leaf)),
            V::o_select(found, V::default(), f(V::default())),
        );
        self.stash_insert(fresh, tr);

        // Phase 3: greedy eviction, deepest bucket first.
        for level in (0..=self.levels).rev() {
            let node = self.path_node(leaf, level);
            for z in 0..BUCKET_SIZE {
                let idx = (node as usize - 1) * BUCKET_SIZE + z;
                let mut chosen = empty;
                let mut chosen_found = false;
                for i in 0..self.stash.len() {
                    let (meta, value) = self.stash.read(i, tr);
                    let valid = meta_key(meta) != INVALID_KEY;
                    // Eligible iff this bucket lies on the block's own path.
                    let on_path = valid && self.path_node(meta_leaf(meta), level) == node;
                    let take = on_path && !chosen_found;
                    chosen = <(u64, V)>::o_select(take, (meta, value), chosen);
                    self.stash.write(i, <(u64, V)>::o_select(take, empty, (meta, value)), tr);
                    chosen_found |= take;
                }
                self.tree.write(idx, chosen, tr);
                self.stats.evicted_blocks += chosen_found as u64;
            }
        }

        self.stats.accesses += 1;
        let occupancy = self.stash_occupancy();
        self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(occupancy);
        assert!(
            occupancy <= self.config.stash_limit,
            "stash overflow: {occupancy} > limit {} after {} accesses",
            self.config.stash_limit,
            self.stats.accesses
        );
        old
    }

    /// The batched access: canonical trace emission (bucket touches +
    /// whole-stash [`Tracer::touch_rw_stripe`] block events, expanding to
    /// the scalar kernel's exact per-slot sequence) with the data
    /// movement on untraced slices, driven by the `meta_scan` kernels
    /// over the contiguous meta mirror.
    ///
    /// State equivalence to the scalar kernel, phase by phase:
    /// * phase 1 only fills stash slots, so the scalar "first free slot"
    ///   insert scan consumes exactly the ascending initial free list;
    /// * phase 2's single `f` application equals the scalar per-slot
    ///   `o_select` sweep because `f` is pure and keys are unique;
    /// * phase 3's "first eligible blocks in stash order" per bucket is
    ///   precisely what the scalar per-slot take-first sweep chooses,
    ///   with eligibility precomputed as a leaf-prefix depth.
    fn access_batched<TR: Tracer, F: Fn(V) -> V + Copy>(
        &mut self,
        key: u32,
        f: F,
        tr: &mut TR,
    ) -> V {
        let new_leaf = self.rng.gen_range(0..self.leaves);
        let leaf = self.posmap.get_and_set(key, new_leaf, tr);
        debug_assert!(leaf < self.leaves, "corrupt position map");
        let empty = (pack_meta(INVALID_KEY, 0), V::default());
        let eb = core::mem::size_of::<(u64, V)>() as u32;
        let (leaves, levels) = (self.leaves, self.levels);
        let (tree_region, stash_region) = (self.tree.region(), self.stash.region());
        let slots = self.stash.len();

        // Split borrows: traced state stays untouched; the kernels see
        // plain slices (tree/stash data) plus the scratch mirrors.
        let tree_data = self.tree.as_mut_slice_untraced();
        let stash_data = self.stash.as_mut_slice_untraced();
        let scratch = &mut self.scratch;
        debug_assert_eq!(scratch.meta.len(), slots);
        for (m, slot) in scratch.meta.iter_mut().zip(stash_data.iter()) {
            *m = slot.0;
        }
        let free_cnt = meta_scan::collect_free(&scratch.meta, INVALID_KEY, &mut scratch.free);
        let mut next_free = 0usize;

        // Phase 1: move the whole path into the stash, each valid block
        // into the next ascending free slot.
        for level in 0..=levels {
            let node = path_node_at(leaves, levels, leaf, level) as usize;
            for z in 0..BUCKET_SIZE {
                let idx = (node - 1) * BUCKET_SIZE + z;
                tr.touch(tree_region, (idx * eb as usize) as u64, eb, Op::Read);
                tr.touch(tree_region, (idx * eb as usize) as u64, eb, Op::Write);
                tr.touch_rw_stripe(stash_region, eb, 0, 1, slots as u64);
                let slot = tree_data[idx];
                tree_data[idx] = empty;
                let valid = meta_key(slot.0) != INVALID_KEY;
                assert!(!valid || next_free < free_cnt, "stash insert failed: no free slot");
                let dst = scratch.free[next_free.min(slots - 1)] as usize;
                stash_data[dst] = <(u64, V)>::o_select(valid, slot, stash_data[dst]);
                scratch.meta[dst] = stash_data[dst].0;
                next_free += valid as usize;
            }
        }

        // Phase 2: one key scan finds the block (free slots hold exactly
        // `empty`, so a miss reads `V::default()` from the insert slot);
        // apply `f`, remap the leaf, and on a first-ever access
        // materialize the block in the next free slot.
        tr.touch_rw_stripe(stash_region, eb, 0, 1, slots as u64);
        tr.touch_rw_stripe(stash_region, eb, 0, 1, slots as u64);
        let (found, hit) = meta_scan::key_scan(&scratch.meta, key);
        assert!(found || next_free < free_cnt, "stash insert failed: no free slot");
        let mask = (found as usize).wrapping_neg();
        let dst = (hit & mask) | (scratch.free[next_free.min(slots - 1)] as usize & !mask);
        let old = V::o_select(found, stash_data[dst].1, V::default());
        stash_data[dst] = (pack_meta(key, new_leaf), f(old));
        scratch.meta[dst] = pack_meta(key, new_leaf);
        next_free += !found as usize;

        // Phase 3: greedy eviction, deepest bucket first.
        meta_scan::eviction_depths(&scratch.meta, INVALID_KEY, leaf, levels, &mut scratch.depth);
        let mut evicted = 0usize;
        for level in (0..=levels).rev() {
            let node = path_node_at(leaves, levels, leaf, level) as usize;
            let base = (node - 1) * BUCKET_SIZE;
            let cnt = meta_scan::pick_eligible(&scratch.depth, level as i32, &mut scratch.picks);
            for z in 0..BUCKET_SIZE {
                tr.touch_rw_stripe(stash_region, eb, 0, 1, slots as u64);
                tr.touch(tree_region, ((base + z) * eb as usize) as u64, eb, Op::Write);
                if z < cnt {
                    let i = scratch.picks[z] as usize;
                    tree_data[base + z] = stash_data[i];
                    stash_data[i] = empty;
                    scratch.meta[i] = empty.0;
                    scratch.depth[i] = -1;
                } else {
                    tree_data[base + z] = empty;
                }
            }
            evicted += cnt;
        }

        self.stats.accesses += 1;
        self.stats.evicted_blocks += evicted as u64;
        let occupancy = (slots - free_cnt) + next_free - evicted;
        debug_assert_eq!(occupancy, self.stash_occupancy(), "occupancy bookkeeping drifted");
        self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(occupancy);
        assert!(
            occupancy <= self.config.stash_limit,
            "stash overflow: {occupancy} > limit {} after {} accesses",
            self.config.stash_limit,
            self.stats.accesses
        );
        old
    }

    /// Inserts a slot into the first free stash position with a fixed
    /// full-scan trace. Inserting an empty slot is a no-op with the same
    /// trace. Panics if the slot is valid and the stash is full.
    fn stash_insert<TR: Tracer>(&mut self, slot: (u64, V), tr: &mut TR) {
        let valid = meta_key(slot.0) != INVALID_KEY;
        let mut placed = false;
        for i in 0..self.stash.len() {
            let cur = self.stash.read(i, tr);
            let free = meta_key(cur.0) == INVALID_KEY;
            let put = valid && free && !placed;
            self.stash.write(i, <(u64, V)>::o_select(put, slot, cur), tr);
            placed |= put;
        }
        assert!(placed || !valid, "stash insert failed: no free slot");
    }

    /// Current number of occupied stash slots (untraced: diagnostic only).
    pub fn stash_occupancy(&self) -> usize {
        self.stash
            .as_slice_untraced()
            .iter()
            .filter(|(meta, _)| meta_key(*meta) != INVALID_KEY)
            .count()
    }
}

/// Predicted [`PathOram::resident_bytes`] for a not-yet-built ORAM with
/// `capacity` blocks of `elem_bytes`-sized `(meta, value)` slots — the
/// EPC working-set planner sizes ORAM aggregation without constructing
/// one. Mirrors the construction arithmetic exactly (a unit test pins
/// the two together).
pub fn predicted_resident_bytes(
    capacity: usize,
    stash_limit: usize,
    elem_bytes: usize,
    posmap: PosMapKind,
) -> u64 {
    let leaves = capacity.next_power_of_two().max(2);
    let levels = leaves.trailing_zeros() as usize;
    let tree_slots = (2 * leaves - 1) * BUCKET_SIZE;
    let stash_slots = stash_limit + BUCKET_SIZE * (levels + 1);
    let tree_stash = ((tree_slots + stash_slots) * elem_bytes) as u64;
    // Scratch: meta (8 B) + depth (4 B) + free (4 B) per slot + picks.
    let scratch = (stash_slots * 16 + (BUCKET_SIZE + 1) * 4) as u64;
    let posmap_bytes = match posmap {
        PosMapKind::Trusted | PosMapKind::LinearScan => 4 * capacity as u64,
        PosMapKind::Recursive => {
            let blocks = capacity.div_ceil(POS_BLOCK_FANOUT);
            if blocks <= 16 {
                4 * capacity as u64 // built as a linear map below the cutoff
            } else {
                let inner =
                    if blocks <= 256 { PosMapKind::LinearScan } else { PosMapKind::Recursive };
                predicted_resident_bytes(blocks, 40, 8 + 4 * POS_BLOCK_FANOUT, inner)
            }
        }
    };
    tree_stash + scratch + posmap_bytes
}

impl<V: Oblivious + Default + BlockCodec> PathOram<V> {
    /// Serializes the complete ORAM state — tree, stash, position map,
    /// path RNG, and counters — for a sealed checkpoint. Loading the
    /// blob into a freshly built ORAM of the *same configuration*
    /// reproduces the snapshotted instance exactly: every subsequent
    /// access returns the same value and emits the same trace.
    ///
    /// The blob layout is **version-stable across the fast-path
    /// rewrite**: both kernels produce bitwise-identical state, the
    /// batched kernel's scratch is never serialized, and
    /// [`OramStats::evicted_blocks`] is deliberately excluded — so a
    /// round checkpointed by the pre-fast-path seed restores bitwise
    /// (`checkpoint_blob_layout_is_stable_across_versions` pins this
    /// against committed v0 fixture blobs).
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.save_into(&mut w);
        w.into_bytes()
    }

    /// Restores state captured by [`PathOram::save_state`] into this
    /// instance. `self` must have been built with the same
    /// configuration (capacity, stash limit, position-map strategy);
    /// a blob from a differently shaped ORAM fails with
    /// [`StateError::Mismatch`]. Restoration is untraced: unsealing a
    /// checkpoint is bulk I/O outside the adversary-observed window.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        self.load_from(&mut r)?;
        r.expect_end()
    }

    pub(crate) fn save_into(&self, w: &mut StateWriter) {
        w.put_usize(self.config.capacity);
        w.put_u32(self.leaves);
        w.put_u32(self.levels);
        for buf in [&self.tree, &self.stash] {
            w.put_usize(buf.len());
            for (meta, value) in buf.as_slice_untraced() {
                w.put_u64(*meta);
                value.encode_into(w);
            }
        }
        self.posmap.save_into(w);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_u64(self.stats.accesses);
        w.put_usize(self.stats.max_stash_occupancy);
    }

    pub(crate) fn load_from(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        if r.get_usize()? != self.config.capacity
            || r.get_u32()? != self.leaves
            || r.get_u32()? != self.levels
        {
            return Err(StateError::Mismatch);
        }
        for buf in [&mut self.tree, &mut self.stash] {
            if r.get_usize()? != buf.len() {
                return Err(StateError::Mismatch);
            }
            for slot in buf.as_mut_slice_untraced() {
                *slot = (r.get_u64()?, V::decode_from(r)?);
            }
        }
        self.posmap.load_from(r)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        self.stats.accesses = r.get_u64()?;
        self.stats.max_stash_occupancy = r.get_usize()?;
        self.stats.evicted_blocks = 0; // not serialized; restart deterministic
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{Granularity, NullTracer, RecordingTracer};
    use std::collections::HashMap;

    fn oram(capacity: usize, posmap: PosMapKind, seed: u64) -> PathOram<u64> {
        PathOram::new(PathOramConfig { capacity, stash_limit: 20, posmap, region_base: 10 }, seed)
    }

    /// Basic read/write/update semantics, sharing one constructed ORAM
    /// (construction dominates tiny tests; one instance covers all three
    /// behaviors without loss of coverage).
    #[test]
    fn basic_ops_share_one_oram() {
        let mut o = oram(16, PosMapKind::LinearScan, 1);
        for k in 0..16 {
            assert_eq!(o.read(k, &mut NullTracer), 0, "unwritten keys read default");
        }
        o.write(5, 555, &mut NullTracer);
        o.write(7, 777, &mut NullTracer);
        assert_eq!(o.read(5, &mut NullTracer), 555);
        assert_eq!(o.read(7, &mut NullTracer), 777);
        assert_eq!(o.read(6, &mut NullTracer), 0);
        let old = o.update(5, |v| v + 5, &mut NullTracer);
        assert_eq!(old, 555, "update returns the pre-image");
        assert_eq!(o.read(5, &mut NullTracer), 560, "update applies f");
        let taken = o.take(5, &mut NullTracer);
        assert_eq!(taken, 560, "take returns the pre-image");
        assert_eq!(o.read(5, &mut NullTracer), 0, "take clears the block");
    }

    /// The canonical model test: random ops vs a HashMap, across all
    /// position-map strategies.
    #[test]
    fn matches_reference_model() {
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            let capacity = 64;
            let mut o = oram(capacity, posmap, 42);
            let mut model: HashMap<u32, u64> = HashMap::new();
            let mut rng = SmallRng::seed_from_u64(7);
            for step in 0..200 {
                let key = rng.gen_range(0..capacity as u32);
                if rng.gen_bool(0.5) {
                    let v = rng.gen::<u64>() >> 1;
                    o.write(key, v, &mut NullTracer);
                    model.insert(key, v);
                } else {
                    let got = o.read(key, &mut NullTracer);
                    let want = model.get(&key).copied().unwrap_or(0);
                    assert_eq!(got, want, "{posmap:?} step {step} key {key}");
                }
            }
        }
    }

    /// The tentpole invariant at unit scope: both kernels, driven with
    /// identical operations, produce bitwise-identical values, traces
    /// (every granularity), stats, and serialized state — across posmap
    /// kinds and capacities including 1 and non-powers-of-two. (The
    /// integration proptest fuzzes the same property.)
    #[test]
    fn kernels_agree_bitwise_in_state_trace_and_output() {
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            for capacity in [1usize, 5, 64, 300] {
                let cfg = PathOramConfig { capacity, stash_limit: 40, posmap, region_base: 10 };
                let mut a = PathOram::<u64>::new(cfg, 99);
                a.set_kernel(OramKernel::Scalar);
                let mut b = PathOram::<u64>::new(cfg, 99);
                b.set_kernel(OramKernel::Batched);
                for granularity in [Granularity::Element, Granularity::Cacheline] {
                    let mut tra = RecordingTracer::new(granularity);
                    let mut trb = RecordingTracer::new(granularity);
                    let mut rng = SmallRng::seed_from_u64(13);
                    for step in 0..60 {
                        let key = rng.gen_range(0..capacity as u32);
                        let (va, vb) = match step % 3 {
                            0 => {
                                let v = rng.gen::<u64>();
                                a.write(key, v, &mut tra);
                                b.write(key, v, &mut trb);
                                continue;
                            }
                            1 => (
                                a.update(key, |v| v ^ 0x5A, &mut tra),
                                b.update(key, |v| v ^ 0x5A, &mut trb),
                            ),
                            _ => (a.take(key, &mut tra), b.take(key, &mut trb)),
                        };
                        assert_eq!(va, vb, "{posmap:?} cap {capacity} step {step}");
                    }
                    assert_eq!(
                        tra.digest(),
                        trb.digest(),
                        "{posmap:?} cap {capacity} {granularity:?} trace divergence"
                    );
                }
                assert_eq!(a.stats().accesses, b.stats().accesses);
                assert_eq!(a.stats().max_stash_occupancy, b.stats().max_stash_occupancy);
                assert_eq!(a.stats().evicted_blocks, b.stats().evicted_blocks);
                assert!(a.stats().evicted_blocks > 0, "evictions must be counted");
                assert_eq!(
                    a.save_state(),
                    b.save_state(),
                    "{posmap:?} cap {capacity} serialized state divergence"
                );
            }
        }
    }

    #[test]
    fn stash_stays_bounded_under_load() {
        let mut o = oram(128, PosMapKind::Trusted, 9);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..800 {
            let key = rng.gen_range(0..128u32);
            o.write(key, key as u64, &mut NullTracer);
        }
        // The access() assertion already enforces ≤ 20; record the margin.
        assert!(o.stats().max_stash_occupancy <= 20);
        assert_eq!(o.stats().accesses, 800);
    }

    /// The aggregation workload (accumulate every cell, then drain every
    /// cell with `take`) must respect the paper's stash bound — the
    /// read-and-clear regression the fast path is specialized for.
    #[test]
    fn stash_stays_bounded_under_read_and_clear() {
        let mut o = oram(256, PosMapKind::Recursive, 5);
        for round in 0..3 {
            for k in 0..256u32 {
                o.update(k, move |v| v + 1 + round, &mut NullTracer);
            }
            for k in 0..256u32 {
                assert_eq!(o.take(k, &mut NullTracer), 1 + round, "round {round} cell {k}");
            }
        }
        assert!(o.stats().max_stash_occupancy <= 20);
        assert!(o.stats().evicted_blocks > 0);
    }

    #[test]
    fn trace_length_is_key_independent() {
        // Statistical obliviousness: with the path randomness fixed by the
        // seed, the *shape* (length and op counts) of the trace must not
        // depend on which key is touched. (Full trace equality does not
        // hold — the random path identity legitimately differs — so we
        // compare op counts, which would differ for any key-dependent
        // stash/bucket logic.)
        let counts = |key: u32| {
            let mut o = oram(64, PosMapKind::LinearScan, 5);
            let mut tr = RecordingTracer::new(Granularity::Element);
            o.write(key, 1, &mut tr);
            o.read(key, &mut tr);
            (tr.stats().reads, tr.stats().writes)
        };
        let base = counts(0);
        for key in [1u32, 17, 63] {
            assert_eq!(counts(key), base, "key {key}");
        }
    }

    #[test]
    fn paths_are_uniformly_distributed() {
        // The remapped leaf after each access is uniform — bucket the
        // accessed paths of a fixed key and check rough uniformity.
        let mut o = oram(64, PosMapKind::Trusted, 13);
        let mut hist = [0u32; 4];
        for _ in 0..400 {
            o.write(5, 1, &mut NullTracer);
            // Peek the posmap through a read of its trusted variant: the
            // next access path = current leaf; bucket by quartile.
            let leaf = match &o.posmap {
                PosMap::Trusted(v) => v[5],
                _ => unreachable!(),
            };
            hist[(leaf / 16) as usize] += 1;
        }
        for (i, &c) in hist.iter().enumerate() {
            assert!((50..=150).contains(&c), "quartile {i}: {c}/400");
        }
    }

    #[test]
    fn capacity_one_works() {
        let mut o = oram(1, PosMapKind::LinearScan, 21);
        o.write(0, 99, &mut NullTracer);
        assert_eq!(o.read(0, &mut NullTracer), 99);
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn out_of_range_key_panics() {
        let mut o = oram(8, PosMapKind::LinearScan, 1);
        o.read(8, &mut NullTracer);
    }

    /// The structured-error contract of the `try_*` entry points: caller
    /// bugs come back as values (an enclave must not abort its attested
    /// round on one), valid keys behave exactly like the panicking API.
    #[test]
    fn try_access_surfaces_structured_error() {
        let mut o = oram(8, PosMapKind::LinearScan, 1);
        assert_eq!(
            o.try_read(8, &mut NullTracer),
            Err(OramError::KeyOutOfRange { key: 8, capacity: 8 })
        );
        assert_eq!(
            o.try_write(1000, 5, &mut NullTracer),
            Err(OramError::KeyOutOfRange { key: 1000, capacity: 8 })
        );
        let e = o.try_update(8, |v| v, &mut NullTracer).unwrap_err();
        assert_eq!(e.to_string(), "key out of range: 8 >= capacity 8");
        assert_eq!(o.try_write(3, 33, &mut NullTracer), Ok(()));
        assert_eq!(o.try_read(3, &mut NullTracer), Ok(33));
        assert_eq!(o.try_take(3, &mut NullTracer), Ok(33));
        assert_eq!(o.try_read(3, &mut NullTracer), Ok(0));
        assert_eq!(o.stats().accesses, 4, "failed accesses must not touch the ORAM");
    }

    #[test]
    fn recursive_posmap_large() {
        // Large enough to force a genuinely recursive position map
        // (512 keys → 32 posmap blocks > the 16-block linear cutoff), but
        // no larger: recursive accesses are the most expensive operation
        // in this suite and this test once dominated its wall-clock.
        let mut o = oram(512, PosMapKind::Recursive, 31);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut model: HashMap<u32, u64> = HashMap::new();
        for _ in 0..96 {
            let key = rng.gen_range(0..512u32);
            let v = rng.gen::<u64>() >> 1;
            o.write(key, v, &mut NullTracer);
            model.insert(key, v);
        }
        // Read back a bounded sample (reads cost the same as writes;
        // verifying every model entry re-pays the whole write pass).
        for (k, v) in model.into_iter().take(32) {
            assert_eq!(o.read(k, &mut NullTracer), v, "key {k}");
        }
    }

    #[test]
    fn state_roundtrip_resumes_exactly() {
        // Snapshot mid-stream, restore into a *fresh* same-config ORAM,
        // then drive both with identical operations: values AND traces
        // must match (the restored RNG continues the same path stream).
        for posmap in [PosMapKind::Trusted, PosMapKind::LinearScan, PosMapKind::Recursive] {
            let capacity = 300; // recursive: 19 blocks > 16 → a real inner ORAM
            let cfg = PathOramConfig { capacity, stash_limit: 40, posmap, region_base: 10 };
            let mut a = PathOram::<u64>::new(cfg, 77);
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..40 {
                let key = rng.gen_range(0..capacity as u32);
                a.write(key, key as u64 + 1000, &mut NullTracer);
            }
            let blob = a.save_state();
            let mut b = PathOram::<u64>::new(cfg, 12345); // seed irrelevant post-load
            b.load_state(&blob).unwrap();
            assert_eq!(b.stats().accesses, a.stats().accesses);
            let mut tra = RecordingTracer::new(Granularity::Element);
            let mut trb = RecordingTracer::new(Granularity::Element);
            for _ in 0..30 {
                let key = rng.gen_range(0..capacity as u32);
                assert_eq!(
                    a.update(key, |v| v ^ 7, &mut tra),
                    b.update(key, |v| v ^ 7, &mut trb),
                    "{posmap:?} value divergence after restore"
                );
            }
            assert_eq!(tra.digest(), trb.digest(), "{posmap:?} trace divergence after restore");
        }
    }

    /// Cross-version checkpoint compatibility: the committed fixture
    /// blobs were generated by the pre-fast-path scalar implementation
    /// (40 deterministic writes, key = 7j mod 300, value = 1000 + 13j).
    /// They must restore into today's ORAM — under either kernel — and
    /// read back every written cell, proving the blob layout stayed
    /// stable across the kernel rewrite.
    #[test]
    fn checkpoint_blob_layout_is_stable_across_versions() {
        let fixtures: [(&[u8], PosMapKind, &str); 3] = [
            (include_bytes!("../fixtures/state_v0_trusted.bin"), PosMapKind::Trusted, "trusted"),
            (include_bytes!("../fixtures/state_v0_linear.bin"), PosMapKind::LinearScan, "linear"),
            (
                include_bytes!("../fixtures/state_v0_recursive.bin"),
                PosMapKind::Recursive,
                "recursive",
            ),
        ];
        for (blob, posmap, name) in fixtures {
            let cfg = PathOramConfig { capacity: 300, stash_limit: 40, posmap, region_base: 10 };
            for kernel in [OramKernel::Scalar, OramKernel::Batched] {
                let mut o = PathOram::<u64>::new(cfg, 1);
                o.set_kernel(kernel);
                o.load_state(blob).unwrap_or_else(|e| {
                    panic!("v0 {name} fixture must restore ({kernel:?}): {e:?}")
                });
                assert_eq!(o.stats().accesses, 40, "{name}");
                for j in 0..40u32 {
                    let got = o.read((j * 7) % 300, &mut NullTracer);
                    assert_eq!(got, 1000 + j as u64 * 13, "{name} {kernel:?} write {j}");
                }
            }
        }
    }

    #[test]
    fn state_blob_shape_mismatch_rejected() {
        let a = oram(64, PosMapKind::LinearScan, 1);
        let blob = a.save_state();
        // Different capacity.
        let mut b = oram(32, PosMapKind::LinearScan, 1);
        assert_eq!(b.load_state(&blob), Err(olive_memsim::StateError::Mismatch));
        // Different posmap strategy.
        let mut c = oram(64, PosMapKind::Trusted, 1);
        assert_eq!(c.load_state(&blob), Err(olive_memsim::StateError::Mismatch));
        // Truncation.
        let mut d = oram(64, PosMapKind::LinearScan, 2);
        assert_eq!(d.load_state(&blob[..blob.len() - 1]), Err(olive_memsim::StateError::Truncated));
    }

    /// The EPC planner's closed-form prediction must equal what a real
    /// instance reports, across posmap strategies and the recursion
    /// cutoffs.
    #[test]
    fn predicted_resident_bytes_matches_instances() {
        for (capacity, posmap) in [
            (1, PosMapKind::LinearScan),
            (64, PosMapKind::Trusted),
            (200, PosMapKind::Recursive), // ≤ 16 blocks → linear fallback
            (300, PosMapKind::Recursive), // linear-scan inner map
            (5000, PosMapKind::Recursive), // recursive inner map
        ] {
            let o = oram(capacity, posmap, 3);
            assert_eq!(
                o.resident_bytes(),
                predicted_resident_bytes(capacity, 20, 16, posmap),
                "capacity {capacity} {posmap:?}"
            );
        }
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
}
