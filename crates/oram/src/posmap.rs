//! Position-map strategies for PathORAM under SGX.

use olive_memsim::{StateError, StateReader, StateWriter, Tracer, TrackedBuf};
use olive_oblivious::primitives::Oblivious;
use olive_oblivious::scan::o_scan_update;

use crate::path_oram::BlockCodec;

/// Number of leaf positions packed into one recursive position-map block.
/// 16 × u32 = 64 bytes = one cacheline, matching ZeroTrace's layout.
pub const POS_BLOCK_FANOUT: usize = 16;

/// A position-map block: [`POS_BLOCK_FANOUT`] leaf labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosBlock(pub [u32; POS_BLOCK_FANOUT]);

impl Default for PosBlock {
    fn default() -> Self {
        PosBlock([0; POS_BLOCK_FANOUT])
    }
}

impl BlockCodec for PosBlock {
    fn encode_into(&self, w: &mut StateWriter) {
        for &x in &self.0 {
            w.put_u32(x);
        }
    }
    fn decode_from(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let mut out = [0u32; POS_BLOCK_FANOUT];
        for x in &mut out {
            *x = r.get_u32()?;
        }
        Ok(PosBlock(out))
    }
}

impl Oblivious for PosBlock {
    #[inline(always)]
    fn o_select(flag: bool, x: Self, y: Self) -> Self {
        let mut out = [0u32; POS_BLOCK_FANOUT];
        for (o, (&xi, &yi)) in out.iter_mut().zip(x.0.iter().zip(y.0.iter())) {
            *o = u32::o_select(flag, xi, yi);
        }
        PosBlock(out)
    }
}

/// Which position-map construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PosMapKind {
    /// A plain array with direct indexing. This is classic PathORAM's
    /// "client storage" assumption — **not oblivious inside an enclave**
    /// (the index of the touched entry leaks the logical key). Kept for
    /// the ablation benchmark quantifying what the SGX model costs.
    Trusted,
    /// One flat tracked array scanned in full per access with `o_select`
    /// (ZeroTrace's base case). Θ(N) per access.
    LinearScan,
    /// Position map blocks stored in a recursively smaller PathORAM,
    /// bottoming out in a linear-scan map once ≤ 256 entries
    /// (ZeroTrace's deployed configuration).
    Recursive,
}

/// The position map: maps logical key → current leaf label, and assigns a
/// fresh leaf on every access (the PathORAM invariant).
pub(crate) enum PosMap {
    Trusted(Vec<u32>),
    Linear(TrackedBuf<u32>),
    Recursive(Box<crate::path_oram::PathOram<PosBlock>>),
}

impl PosMap {
    /// Builds a position map for `n` keys with initial leaves supplied by
    /// `init_leaf(key)`; `region` namespaces its memory accesses.
    pub(crate) fn build(
        kind: PosMapKind,
        n: usize,
        region: u32,
        seed: u64,
        mut init_leaf: impl FnMut(usize) -> u32,
    ) -> Self {
        match kind {
            PosMapKind::Trusted => PosMap::Trusted((0..n).map(&mut init_leaf).collect()),
            PosMapKind::LinearScan => {
                PosMap::Linear(TrackedBuf::new(region, (0..n).map(&mut init_leaf).collect()))
            }
            PosMapKind::Recursive => {
                let blocks = n.div_ceil(POS_BLOCK_FANOUT);
                if blocks <= 16 {
                    // Small enough: no point recursing below one block row.
                    return PosMap::Linear(TrackedBuf::new(
                        region,
                        (0..n).map(&mut init_leaf).collect(),
                    ));
                }
                let cfg = crate::path_oram::PathOramConfig {
                    capacity: blocks,
                    stash_limit: 40,
                    posmap: if blocks <= 256 {
                        PosMapKind::LinearScan
                    } else {
                        PosMapKind::Recursive
                    },
                    region_base: region,
                };
                let mut oram = crate::path_oram::PathOram::<PosBlock>::new(cfg, seed ^ 0x9060_3AD0);
                // Populate blocks; interior ORAM writes are data-independent
                // here (sequential keys), so NullTracer is fine during init.
                let mut tr = olive_memsim::NullTracer;
                for b in 0..blocks {
                    let mut pb = PosBlock::default();
                    for j in 0..POS_BLOCK_FANOUT {
                        let key = b * POS_BLOCK_FANOUT + j;
                        if key < n {
                            pb.0[j] = init_leaf(key);
                        }
                    }
                    oram.write(b as u32, pb, &mut tr);
                }
                PosMap::Recursive(Box::new(oram))
            }
        }
    }

    /// Serializes the map for a sealed checkpoint (tag + payload;
    /// recursive maps recurse into the inner ORAM's serializer).
    pub(crate) fn save_into(&self, w: &mut StateWriter) {
        match self {
            PosMap::Trusted(v) => {
                w.put_u8(0);
                w.put_u32s(v);
            }
            PosMap::Linear(buf) => {
                w.put_u8(1);
                w.put_u32s(buf.as_slice_untraced());
            }
            PosMap::Recursive(oram) => {
                w.put_u8(2);
                oram.save_into(w);
            }
        }
    }

    /// Restores state captured by [`PosMap::save_into`]. The map must
    /// already be of the same variant and size (same build config).
    pub(crate) fn load_from(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let tag = r.get_u8()?;
        match (tag, self) {
            (0, PosMap::Trusted(v)) => {
                let leaves = r.get_u32s()?;
                if leaves.len() != v.len() {
                    return Err(StateError::Mismatch);
                }
                *v = leaves;
                Ok(())
            }
            (1, PosMap::Linear(buf)) => {
                let leaves = r.get_u32s()?;
                if leaves.len() != buf.len() {
                    return Err(StateError::Mismatch);
                }
                buf.as_mut_slice_untraced().copy_from_slice(&leaves);
                Ok(())
            }
            (2, PosMap::Recursive(oram)) => oram.load_from(r),
            (0..=2, _) => Err(StateError::Mismatch),
            _ => Err(StateError::Corrupt),
        }
    }

    /// Returns the current leaf of `key` and re-assigns it to `new_leaf`.
    pub(crate) fn get_and_set<TR: Tracer>(&mut self, key: u32, new_leaf: u32, tr: &mut TR) -> u32 {
        match self {
            PosMap::Trusted(v) => {
                let old = v[key as usize];
                v[key as usize] = new_leaf;
                old
            }
            PosMap::Linear(buf) => {
                // One oblivious read-modify-write sweep: every entry is
                // read and rewritten; the matching one swaps in new_leaf.
                let mut old = 0u32;
                let target = key as usize;
                o_scan_update(
                    buf,
                    |i, v| {
                        let hit = i == target;
                        old = u32::o_select(hit, v, old);
                        u32::o_select(hit, new_leaf, v)
                    },
                    tr,
                );
                old
            }
            PosMap::Recursive(oram) => {
                let block_key = key / POS_BLOCK_FANOUT as u32;
                let slot = (key % POS_BLOCK_FANOUT as u32) as usize;
                // One fused read-modify-write walk instead of the seed's
                // read access + write access pair: the block lives in
                // registers/enclave-local stack for the duration of the
                // access (a one-entry deterministic leaf cache), halving
                // the inner ORAM cost at every recursion level. The trace
                // is the inner ORAM's canonical single-access trace; the
                // in-block select below is branch-free and untraced, the
                // same as the seed's post-read select.
                let prev = oram.update(
                    block_key,
                    move |mut b: PosBlock| {
                        for j in 0..POS_BLOCK_FANOUT {
                            b.0[j] = u32::o_select(j == slot, new_leaf, b.0[j]);
                        }
                        b
                    },
                    tr,
                );
                let mut old = 0u32;
                for j in 0..POS_BLOCK_FANOUT {
                    old = u32::o_select(j == slot, prev.0[j], old);
                }
                old
            }
        }
    }

    /// Propagates a kernel override into recursive inner ORAMs (no-op for
    /// flat maps, whose access path has no kernel split).
    pub(crate) fn set_kernel(&mut self, kernel: crate::kernel::OramKernel) {
        if let PosMap::Recursive(oram) = self {
            oram.set_kernel(kernel);
        }
    }

    /// Resident storage bytes of the map itself — flat leaf arrays, or
    /// the inner ORAM's tree + stash + its own map, recursively.
    pub(crate) fn storage_bytes(&self) -> u64 {
        match self {
            PosMap::Trusted(v) => (v.len() * 4) as u64,
            PosMap::Linear(buf) => (buf.len() * 4) as u64,
            PosMap::Recursive(oram) => oram.memory_bytes() + oram.posmap.storage_bytes(),
        }
    }

    /// Per-access scratch bytes held by recursive inner ORAMs (flat maps
    /// scan in place and hold none).
    pub(crate) fn scratch_bytes(&self) -> u64 {
        match self {
            PosMap::Trusted(_) | PosMap::Linear(_) => 0,
            PosMap::Recursive(oram) => oram.scratch_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_memsim::{assert_oblivious, Granularity, NullTracer};

    #[test]
    fn linear_map_get_and_set() {
        let mut pm = PosMap::build(PosMapKind::LinearScan, 8, 0, 1, |i| i as u32 * 10);
        assert_eq!(pm.get_and_set(3, 99, &mut NullTracer), 30);
        assert_eq!(pm.get_and_set(3, 7, &mut NullTracer), 99);
        assert_eq!(pm.get_and_set(0, 1, &mut NullTracer), 0);
    }

    #[test]
    fn trusted_map_get_and_set() {
        let mut pm = PosMap::build(PosMapKind::Trusted, 4, 0, 1, |i| i as u32);
        assert_eq!(pm.get_and_set(2, 50, &mut NullTracer), 2);
        assert_eq!(pm.get_and_set(2, 60, &mut NullTracer), 50);
    }

    #[test]
    fn recursive_map_get_and_set() {
        let n = 520; // 33 blocks → recursive with linear base
        let mut pm = PosMap::build(PosMapKind::Recursive, n, 0, 2, |i| i as u32 ^ 0x5A5A);
        for key in [0u32, 15, 16, 519, 500] {
            let old = pm.get_and_set(key, key + 7, &mut NullTracer);
            assert_eq!(old, key ^ 0x5A5A, "initial leaf of {key}");
            let again = pm.get_and_set(key, 0, &mut NullTracer);
            assert_eq!(again, key + 7, "updated leaf of {key}");
        }
    }

    #[test]
    fn linear_scan_is_oblivious_in_key() {
        let keys = vec![0u32, 3, 7, 11];
        assert_oblivious(Granularity::Element, &keys, |&key, tr| {
            let mut pm = PosMap::build(PosMapKind::LinearScan, 12, 1, 3, |i| i as u32);
            pm.get_and_set(key, 42, tr);
        });
    }

    #[test]
    fn pos_block_select() {
        let a = PosBlock([1; POS_BLOCK_FANOUT]);
        let b = PosBlock([2; POS_BLOCK_FANOUT]);
        assert_eq!(PosBlock::o_select(true, a, b), a);
        assert_eq!(PosBlock::o_select(false, a, b), b);
    }
}
