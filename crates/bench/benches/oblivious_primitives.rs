//! Criterion microbench: the cost of obliviousness at the primitive level
//! (o_select vs branch; bitonic network vs std unstable sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_memsim::{NullTracer, TrackedBuf};
use olive_oblivious::sort::bitonic_sort_pow2;
use olive_oblivious::{o_scan_read, o_select};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_select(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let data: Vec<(bool, u64, u64)> =
        (0..1024).map(|_| (rng.gen(), rng.gen(), rng.gen())).collect();
    c.bench_function("o_select_u64_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(f, x, y) in &data {
                acc ^= o_select(f, x, y);
            }
            acc
        })
    });
    c.bench_function("branch_select_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(f, x, y) in &data {
                acc ^= if std::hint::black_box(f) { x } else { y };
            }
            acc
        })
    });
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 16] {
        let mut rng = SmallRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("bitonic_oblivious", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = TrackedBuf::new(0, data.clone());
                bitonic_sort_pow2(&mut buf, |x| *x, &mut NullTracer);
                buf.into_inner()
            })
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let buf = TrackedBuf::new(0, (0..4096u64).collect::<Vec<_>>());
    c.bench_function("o_scan_read_4096", |b| {
        b.iter(|| o_scan_read(&buf, std::hint::black_box(1234), &mut NullTracer))
    });
}

criterion_group!(benches, bench_select, bench_sort, bench_scan);
criterion_main!(benches);
