//! Criterion microbench: the cost of obliviousness at the primitive level
//! (o_select vs branch; bitonic network vs std unstable sort), plus the
//! sort-kernel matrix (scalar reference vs batched vs batched+threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_memsim::{NullTracer, TrackedBuf};
use olive_oblivious::sort::bitonic_sort_pow2;
use olive_oblivious::sort_kernel::{bitonic_sort_u64_pow2_with, SortKernel};
use olive_oblivious::{o_scan_read, o_select};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_select(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let data: Vec<(bool, u64, u64)> =
        (0..1024).map(|_| (rng.gen(), rng.gen(), rng.gen())).collect();
    c.bench_function("o_select_u64_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(f, x, y) in &data {
                acc ^= o_select(f, x, y);
            }
            acc
        })
    });
    c.bench_function("branch_select_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(f, x, y) in &data {
                acc ^= if std::hint::black_box(f) { x } else { y };
            }
            acc
        })
    });
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 16] {
        let mut rng = SmallRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        // The historical headline number: the process-default kernel
        // (batched unless OLIVE_SORT_KERNEL=scalar), single-threaded —
        // comparable against the PR 1 baselines in CHANGES.md.
        group.bench_with_input(BenchmarkId::new("bitonic_oblivious", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = TrackedBuf::new(0, data.clone());
                olive_oblivious::bitonic_sort_u64_pow2_with_threads(&mut buf, 1, &mut NullTracer);
                buf.into_inner()
            })
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

/// The sort-kernel matrix: scalar reference vs batched (1 thread) vs
/// batched + threads (`batched_threads`, at the process-default
/// `OLIVE_THREADS` count), at n ∈ {2¹², 2¹⁶, 2²⁰}. The scalar reference
/// is skipped at 2²⁰ unless `OLIVE_BENCH_FULL=1` (it alone would
/// dominate the bench wall-clock ~20×).
fn bench_sort_kernels(c: &mut Criterion) {
    let full = std::env::var("OLIVE_BENCH_FULL").as_deref() == Ok("1");
    let threads = olive_memsim::default_threads();
    let mut group = c.benchmark_group("sort_kernel");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 16, 1 << 20] {
        let mut rng = SmallRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        if n <= 1 << 16 || full {
            group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
                b.iter(|| {
                    let mut buf = TrackedBuf::new(0, data.clone());
                    bitonic_sort_pow2(&mut buf, |x| *x, &mut NullTracer);
                    buf.into_inner()
                })
            });
        } else {
            println!(
                "bench: sort_kernel/scalar/{n} ... skipped (set OLIVE_BENCH_FULL=1 to run the \
                 scalar reference at this size)"
            );
        }
        group.bench_with_input(BenchmarkId::new("batched_t1", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = TrackedBuf::new(0, data.clone());
                bitonic_sort_u64_pow2_with(&mut buf, SortKernel::Batched, 1, &mut NullTracer);
                buf.into_inner()
            })
        });
        // A machine-independent id (the count varies per machine and per
        // OLIVE_THREADS) so JSON entries and skip lines correlate.
        if threads > 1 {
            group.bench_with_input(BenchmarkId::new("batched_threads", n), &n, |b, _| {
                b.iter(|| {
                    let mut buf = TrackedBuf::new(0, data.clone());
                    bitonic_sort_u64_pow2_with(
                        &mut buf,
                        SortKernel::Batched,
                        threads,
                        &mut NullTracer,
                    );
                    buf.into_inner()
                })
            });
        } else {
            println!(
                "bench: sort_kernel/batched_threads/{n} ... skipped \
                 (thread count is 1; would equal batched_t1)"
            );
        }
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let buf = TrackedBuf::new(0, (0..4096u64).collect::<Vec<_>>());
    c.bench_function("o_scan_read_4096", |b| {
        b.iter(|| o_scan_read(&buf, std::hint::black_box(1234), &mut NullTracer))
    });
}

criterion_group!(benches, bench_select, bench_sort, bench_sort_kernels, bench_scan);
criterion_main!(benches);
