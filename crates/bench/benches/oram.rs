//! Criterion microbench: PathORAM access cost per position-map strategy
//! (the ZeroTrace constant factor of Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_memsim::NullTracer;
use olive_oram::{PathOram, PathOramConfig, PosMapKind};

fn bench_oram(c: &mut Criterion) {
    let full = std::env::var("OLIVE_BENCH_FULL").as_deref() == Ok("1");
    let mut group = c.benchmark_group("path_oram_access");
    group.sample_size(10);
    // 131 072 (the d = 100k aggregation tree rounded up) joins the sweep
    // under OLIVE_BENCH_FULL=1; the linear-scan posmap is O(N) per
    // access there, which is exactly the point of the comparison.
    let capacities: &[usize] = if full { &[1_024, 16_384, 131_072] } else { &[1_024, 16_384] };
    for &capacity in capacities {
        for (name, posmap) in [
            ("trusted", PosMapKind::Trusted),
            ("linear_scan", PosMapKind::LinearScan),
            ("recursive", PosMapKind::Recursive),
        ] {
            group.bench_with_input(BenchmarkId::new(name, capacity), &capacity, |b, &capacity| {
                let mut oram = PathOram::<u64>::new(
                    PathOramConfig { capacity, stash_limit: 20, posmap, region_base: 0 },
                    7,
                );
                let mut key = 0u32;
                b.iter(|| {
                    key = (key + 101) % capacity as u32;
                    oram.write(key, key as u64, &mut NullTracer);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_oram);
criterion_main!(benches);
