//! Criterion microbench: the secure-channel crypto on the upload path
//! (AES-GCM seal/open of a typical sparsified-gradient payload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use olive_crypto::gcm::AesGcm;
use olive_crypto::sha256::sha256;

fn bench_gcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_gcm");
    let key = AesGcm::new(&[7u8; 32]).unwrap();
    for size in [4usize << 10, 40 << 10] {
        // 40 KiB ≈ one client's α=0.1 MNIST-MLP upload (5089 cells × 8 B).
        let payload = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, _| {
            b.iter(|| key.seal(&[1u8; 12], &payload, b"aad"))
        });
        let ct = key.seal(&[1u8; 12], &payload, b"aad");
        group.bench_with_input(BenchmarkId::new("open", size), &size, |b, _| {
            b.iter(|| key.open(&[1u8; 12], &ct, b"aad").unwrap())
        });
    }
    group.finish();
}

fn bench_sha(c: &mut Criterion) {
    let data = vec![0u8; 64 << 10];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| sha256(&data)));
    group.finish();
}

criterion_group!(benches, bench_gcm, bench_sha);
criterion_main!(benches);
