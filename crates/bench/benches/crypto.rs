//! Criterion microbench: the secure-channel crypto on the upload path,
//! swept per engine backend (`hw` / `ct` / `table`, whichever the CPU
//! offers) so the dispatch decision's cost is visible in GiB/s.
//!
//! Payloads: 4 KiB (small sealed state), 40 KiB ≈ one client's α=0.1
//! MNIST-MLP upload (5089 cells × 8 B), 4 MiB (a large-model shard —
//! gated behind `OLIVE_BENCH_FULL=1` for the slow software backends).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use olive_crypto::gcm::AesGcm;
use olive_crypto::hmac::HmacSha256;
use olive_crypto::sha256::Sha256;
use olive_crypto::{available_backends, CryptoBackend};

/// The slow software backends skip multi-MiB payloads unless the full
/// sweep is requested (a 4 MiB `ct` seal is ~0.4 s per iteration).
fn sizes_for(backend: CryptoBackend) -> Vec<usize> {
    let full =
        std::env::var("OLIVE_BENCH_FULL").as_deref() == Ok("1") || backend == CryptoBackend::Hw;
    let mut sizes = vec![4usize << 10, 40 << 10];
    if full {
        sizes.push(4 << 20);
    } else {
        eprintln!("aes_gcm/{backend}: skipped 4 MiB payload (set OLIVE_BENCH_FULL=1 to run)");
    }
    sizes
}

fn bench_gcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_gcm");
    for backend in available_backends() {
        let key = AesGcm::with_backend(backend, &[7u8; 32]).unwrap();
        for size in sizes_for(backend) {
            let payload = vec![0xabu8; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(&format!("{backend}/seal"), size),
                &size,
                |b, _| b.iter(|| key.seal(&[1u8; 12], &payload, b"aad")),
            );
            let ct = key.seal(&[1u8; 12], &payload, b"aad");
            group.bench_with_input(
                BenchmarkId::new(&format!("{backend}/open"), size),
                &size,
                |b, _| b.iter(|| key.open(&[1u8; 12], &ct, b"aad").unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_sha(c: &mut Criterion) {
    let data = vec![0u8; 64 << 10];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for backend in available_backends() {
        group.bench_function(format!("{backend}/64KiB"), |b| {
            b.iter(|| {
                let mut h = Sha256::with_backend(backend);
                h.update(&data);
                h.finalize()
            })
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 64 << 10];
    let mut group = c.benchmark_group("hmac");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for backend in available_backends() {
        group.bench_function(format!("{backend}/64KiB"), |b| {
            b.iter(|| {
                let mut h = HmacSha256::with_backend(backend, b"sealing-key");
                h.update(&data);
                h.finalize()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gcm, bench_sha, bench_hmac);
criterion_main!(benches);
