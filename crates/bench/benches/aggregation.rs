//! Criterion microbench backing Figure 9: aggregation algorithms across
//! model sizes (reduced sizes; the `fig09` binary runs paper scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olive_bench::synthetic_updates;
use olive_core::aggregation::{aggregate, AggregatorKind};
use olive_memsim::NullTracer;
use olive_oram::PosMapKind;

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_vs_model_size");
    group.sample_size(10);
    for d in [1_000usize, 10_000, 100_000] {
        let k = (d / 100).max(1);
        let n = 100;
        let updates = synthetic_updates(n, k, d, 1);
        group.bench_with_input(BenchmarkId::new("non_oblivious", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::NonOblivious, &updates, d, &mut NullTracer))
        });
        group.bench_with_input(BenchmarkId::new("baseline_c16", d), &d, |b, &d| {
            b.iter(|| {
                aggregate(
                    AggregatorKind::Baseline { cacheline_weights: 16 },
                    &updates,
                    d,
                    &mut NullTracer,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("advanced", d), &d, |b, &d| {
            b.iter(|| aggregate(AggregatorKind::Advanced, &updates, d, &mut NullTracer))
        });
        if d <= 1_000 {
            group.bench_with_input(BenchmarkId::new("path_oram", d), &d, |b, &d| {
                b.iter(|| {
                    aggregate(
                        AggregatorKind::PathOram { posmap: PosMapKind::LinearScan },
                        &updates,
                        d,
                        &mut NullTracer,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
